#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass before merge.
#
#   ./scripts/check.sh
#
# Builds release (the bench harness and perf-sensitive tests run
# optimized), runs the whole test suite, then lints with clippy at
# deny-warnings. CI and local workflows run the exact same line.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
# Rustdoc gate: first-party crates must document cleanly. Broken
# intra-doc links and malformed examples rot fastest in the wire layer,
# where the Driver trait docs double as the transport-author guide.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q \
    -p snipe-util -p snipe-netsim -p snipe-wire -p snipe-rcds \
    -p snipe-core -p snipe-crypto -p snipe-daemon -p snipe-files \
    -p snipe-rm -p snipe-bench -p snipe-playground -p snipe
# Bounded chaos smoke: a few seeded fault plans per workload plus the
# planted-bug drill; exits nonzero on any oracle violation and writes
# results/chaos.json for inspection.
cargo run -q --release -p snipe-bench --bin harness -- chaos-smoke
echo "check.sh: all gates green"
