#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass before merge.
#
#   ./scripts/check.sh
#
# Builds release (the bench harness and perf-sensitive tests run
# optimized), runs the whole test suite, then lints with clippy at
# deny-warnings. CI and local workflows run the exact same line.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
echo "check.sh: all gates green"
