#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass before merge.
#
#   ./scripts/check.sh
#
# Builds release (the bench harness and perf-sensitive tests run
# optimized), runs the whole test suite, then lints with clippy at
# deny-warnings. CI and local workflows run the exact same line.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo fmt --check
cargo clippy --all-targets -- -D warnings
# Rustdoc gate: first-party crates must document cleanly. Broken
# intra-doc links and malformed examples rot fastest in the wire layer,
# where the Driver trait docs double as the transport-author guide.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q \
    -p snipe-util -p snipe-netsim -p snipe-wire -p snipe-rcds \
    -p snipe-core -p snipe-crypto -p snipe-daemon -p snipe-files \
    -p snipe-rm -p snipe-bench -p snipe-playground -p snipe
# Bounded chaos smoke: a few seeded fault plans per workload plus the
# planted-bug drill; exits nonzero on any oracle violation and writes
# results/chaos.json for inspection.
cargo run -q --release -p snipe-bench --bin harness -- chaos-smoke
# Observability overhead gate: the flight recorder + metrics layer is
# compiled into the engine hot path, so the recorder-disabled build must
# stay within 2% of an observability-free (`--features obs-off`) build
# of the same tree. The comparison is differential — both binaries are
# probed interleaved on this machine right now — because wall-clock
# noise on a shared box dwarfs a 2% effect against any stored absolute
# baseline. Best-of-15 each side (a probe is ~150ms, so trials are
# cheap): the quiet-moment maxima are the stable statistic — best-of-5
# was observed swinging ±5% between runs on a loaded 1-core box, wide
# enough to both mask real regressions and fail clean builds.
cargo build -q --release -p snipe-bench --bin harness --features obs-off
cp target/release/harness target/release/harness-obs-off
cargo build -q --release -p snipe-bench --bin harness
best_base=0
best_head=0
for _ in $(seq 15); do
    b=$(./target/release/harness-obs-off engine-probe)
    h=$(./target/release/harness engine-probe)
    [ "$b" -gt "$best_base" ] && best_base=$b
    [ "$h" -gt "$best_head" ] && best_head=$h
done
echo "overhead gate: recorder-disabled best $best_head events/s vs obs-off baseline $best_base"
awk -v h="$best_head" -v b="$best_base" 'BEGIN {
    ratio = h / b;
    printf "overhead gate: ratio %.3f (floor 0.980)\n", ratio;
    exit (ratio >= 0.98 ? 0 : 1);
}'
# Shard-determinism gate: the sharded engine must produce the same
# behavioural digest no matter how many worker threads drive it. The
# fixed digest-run config (512 hosts, 8 regions, cross-region storm
# with a host flap) is compared byte-for-byte at 1 vs 4 threads.
d1=$(./target/release/harness shard-digest 1)
d4=$(./target/release/harness shard-digest 4)
echo "shard-determinism gate: 1 thread $d1, 4 threads $d4"
if [ "$d1" != "$d4" ]; then
    echo "shard-determinism gate: FAIL (digests differ)"
    exit 1
fi
# FEC smoke: regenerate the goodput-vs-loss A/B curve (plain
# fragmentation vs erasure-coded share spray, 3 seeds per point). The
# harness exits nonzero unless FEC is strictly ahead at every loss rate
# >= 5% and every FEC delivery really used the reconstruction path;
# results/bench_fec.json records the curve.
./target/release/harness fec
# Same property for the full protocol stack: the daemons + RCDS +
# files + RM campus workload prints its engine digest plus the sorted
# application log; both must be byte-identical at 1 vs 4 threads.
fp1=$(./target/release/harness full-proto-digest 1)
fp4=$(./target/release/harness full-proto-digest 4)
echo "shard-determinism gate (full protocol): 1 thread ${fp1%%$'\n'*}, 4 threads ${fp4%%$'\n'*}"
if [ "$fp1" != "$fp4" ]; then
    echo "shard-determinism gate (full protocol): FAIL (digest or app log differs)"
    exit 1
fi
# Metadata-plane scale gate: register one million names into the
# consistent-hash-sharded catalog and resolve through the ring plus
# the client TTL cache; exits nonzero unless the full count registers,
# every shard group owns names and the latency histogram is populated.
# results/bench_rcds.json records the measured table.
./target/release/harness rcds
echo "check.sh: all gates green"
