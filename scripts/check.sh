#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass before merge.
#
#   ./scripts/check.sh
#
# Builds release (the bench harness and perf-sensitive tests run
# optimized), runs the whole test suite, then lints with clippy at
# deny-warnings. CI and local workflows run the exact same line.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
# Bounded chaos smoke: a few seeded fault plans per workload plus the
# planted-bug drill; exits nonzero on any oracle violation and writes
# results/chaos.json for inspection.
cargo run -q --release -p snipe-bench --bin harness -- chaos-smoke
echo "check.sh: all gates green"
