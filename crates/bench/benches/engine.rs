//! `bench_engine` — event-engine throughput under the storm workload.
//!
//! Drives the same deterministic packet storm as `harness engine`
//! (multi-network topology, periodic fault injection) through criterion
//! so regressions in the event-queue fast path show up in `cargo bench`.
//! The `cached` / `uncached` pair isolates what the route cache buys;
//! `results/bench_engine.json` (written by the harness) tracks the
//! headline events/second figure across PRs.

use criterion::{criterion_group, criterion_main, Criterion};

use snipe_bench::engine;
use snipe_util::time::SimDuration;

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    let sim = SimDuration::from_millis(200);
    g.bench_function("storm_16h_200ms_cached", |b| {
        b.iter(|| engine::storm_with("cached", 16, sim, 42, true))
    });
    g.bench_function("storm_16h_200ms_uncached", |b| {
        b.iter(|| engine::storm_with("uncached", 16, sim, 42, false))
    });
    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
