//! Criterion microbenchmarks for the hot kernels under the experiment
//! harness: the wire codec, SHA-256, Schnorr signatures, the SRUDP
//! state machine and RC store merging. `cargo bench` runs these;
//! `cargo run -p snipe-bench --release --bin harness` regenerates the
//! paper's figures/tables.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use snipe_crypto::sha256::sha256;
use snipe_crypto::sign::KeyPair;
use snipe_netsim::topology::Endpoint;
use snipe_rcds::assertion::Assertion;
use snipe_rcds::store::RcStore;
use snipe_rcds::uri::Uri;
use snipe_util::codec::{Decoder, Encoder};
use snipe_util::id::HostId;
use snipe_util::rng::Xoshiro256;
use snipe_util::time::{SimDuration, SimTime};
use snipe_wire::srudp::{Srudp, SrudpConfig};

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");
    let payload = vec![0xABu8; 1400];
    g.throughput(Throughput::Bytes(1400));
    g.bench_function("encode_1400B", |b| {
        b.iter(|| {
            let mut e = Encoder::with_capacity(1500);
            e.put_u64(1);
            e.put_u32(2);
            e.put_bytes(&payload);
            e.finish()
        })
    });
    let encoded = {
        let mut e = Encoder::new();
        e.put_u64(1);
        e.put_u32(2);
        e.put_bytes(&payload);
        e.finish()
    };
    g.bench_function("decode_1400B", |b| {
        b.iter(|| {
            let mut d = Decoder::new(encoded.clone());
            let _ = d.get_u64().unwrap();
            let _ = d.get_u32().unwrap();
            d.get_bytes().unwrap()
        })
    });
    g.finish();
}

fn bench_crypto(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto");
    let data = vec![0u8; 4096];
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("sha256_4k", |b| b.iter(|| sha256(&data)));
    g.finish();

    let mut g = c.benchmark_group("schnorr");
    let mut rng = Xoshiro256::seed_from_u64(1);
    let kp = KeyPair::generate_default(&mut rng);
    g.bench_function("sign", |b| b.iter(|| kp.sign(&mut rng, b"benchmark message")));
    let sig = kp.sign(&mut rng, b"benchmark message");
    g.bench_function("verify", |b| b.iter(|| kp.public.verify(b"benchmark message", &sig)));
    g.finish();
}

fn bench_srudp(c: &mut Criterion) {
    let mut g = c.benchmark_group("srudp");
    g.throughput(Throughput::Bytes(64 * 1024));
    g.bench_function("transfer_64k_loopback", |b| {
        b.iter_batched(
            || {
                let mut a = Srudp::new(1, SrudpConfig::default());
                let b_ = Srudp::new(2, SrudpConfig::default());
                a.set_peer_endpoint(2, Endpoint::new(HostId(1), 5));
                (a, b_)
            },
            |(mut a, mut b_)| {
                a.send_message(SimTime::ZERO, 2, Bytes::from(vec![0u8; 64 * 1024])).unwrap();
                let mut now = SimTime::ZERO;
                let mut delivered = false;
                for _ in 0..200 {
                    let mut moved = false;
                    for o in a.drain() {
                        if let snipe_wire::Out::Send { bytes, .. } = o {
                            moved = true;
                            b_.on_packet(now, Endpoint::new(HostId(0), 5), bytes).unwrap();
                        }
                    }
                    for o in b_.drain() {
                        match o {
                            snipe_wire::Out::Send { bytes, .. } => {
                                moved = true;
                                a.on_packet(now, Endpoint::new(HostId(1), 5), bytes).unwrap();
                            }
                            snipe_wire::Out::Deliver { .. } => delivered = true,
                            _ => {}
                        }
                    }
                    if delivered {
                        break;
                    }
                    if !moved {
                        now = now + SimDuration::from_millis(10);
                        a.on_timer(now);
                    }
                }
                assert!(delivered);
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_rcstore(c: &mut Criterion) {
    let mut g = c.benchmark_group("rcds");
    g.bench_function("merge_1000_updates", |b| {
        b.iter_batched(
            || {
                let mut a = RcStore::new(1);
                for i in 0..1000u64 {
                    a.put(&Uri::process(i), Assertion::new("k", "v"), 0);
                }
                (a, RcStore::new(2))
            },
            |(a, mut b_)| {
                loop {
                    let ups = a.updates_since(b_.version_vector(), 256);
                    if ups.is_empty() {
                        break;
                    }
                    for u in ups {
                        b_.apply(u);
                    }
                }
                b_
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_fig1_point(c: &mut Criterion) {
    // Wall-clock cost of regenerating one Fig. 1 point (simulation
    // efficiency, not protocol speed).
    let mut g = c.benchmark_group("harness");
    g.sample_size(10);
    g.bench_function("fig1_eth100_srudp_64k", |b| {
        b.iter(|| {
            snipe_bench::fig1::measure(
                snipe_netsim::medium::Medium::ethernet100(),
                snipe_bench::fig1::Protocol::Srudp,
                65536,
            )
            .expect("completes")
        })
    });
    g.finish();
}

criterion_group!(benches, bench_codec, bench_crypto, bench_srudp, bench_rcstore, bench_fig1_point);
criterion_main!(benches);
