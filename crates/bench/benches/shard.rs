//! `bench_shard` — sharded-engine throughput under the campus storm.
//!
//! Runs the same deterministic storm as `harness shard` (routable
//! cluster LANs, ~10% cross-region traffic) at a 1k-host size through
//! criterion, at one worker thread vs four, so regressions in the
//! barrier/mailbox machinery or the parallel speedup show up in
//! `cargo bench`. The full scaling matrix (to 100k hosts) lives in the
//! harness, which writes `results/bench_shard.json`.

use criterion::{criterion_group, criterion_main, Criterion};

use snipe_bench::shard_storm;
use snipe_util::time::SimDuration;

fn bench_shard(c: &mut Criterion) {
    let mut g = c.benchmark_group("shard");
    g.sample_size(10);
    let sim = SimDuration::from_millis(100);
    g.bench_function("storm_1k_100ms_1t", |b| b.iter(|| shard_storm::storm(1_000, sim, 42, 1)));
    g.bench_function("storm_1k_100ms_4t", |b| b.iter(|| shard_storm::storm(1_000, sim, 42, 4)));
    g.finish();
}

criterion_group!(benches, bench_shard);
criterion_main!(benches);
