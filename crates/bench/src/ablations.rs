//! Ablations of design choices the paper calls out.
//!
//! * **A1** — SRUDP window and fragment size on a lossy WAN: the
//!   selective-resend design (§6) earns its keep when loss is real.
//! * **A2** — RC anti-entropy interval vs cross-replica staleness:
//!   the availability/consistency trade of §2.1.
//! * **A3** — playground fuel-slice size vs completion time and
//!   checkpoint cost (§5.8).

use std::sync::{Arc, Mutex};

use snipe_netsim::actor::{Actor, Ctx, Event};
use snipe_netsim::medium::Medium;
use snipe_netsim::topology::{Endpoint, HostCfg, Topology};
use snipe_netsim::world::World;
use snipe_rcds::assertion::Assertion;
use snipe_rcds::server::RcServerActor;
use snipe_rcds::store::RcStore;
use snipe_rcds::uri::Uri;
use snipe_util::time::{SimDuration, SimTime};
use snipe_wire::ports;
use snipe_wire::stack::StackConfig;

use crate::fig1::{SrudpReceiver, SrudpSender};
use snipe_netsim::actor::TimerGate;

/// A1 result row.
#[derive(Clone, Debug)]
pub struct A1Point {
    /// SRUDP window (fragments in flight).
    pub window: usize,
    /// Fragment size (bytes).
    pub frag_size: usize,
    /// Loss probability of the WAN.
    pub loss: f64,
    /// Goodput in bytes/second (NaN if the transfer stalled).
    pub goodput: f64,
}

/// A1: sweep SRUDP (window, frag size) over a lossy WAN link.
pub fn run_a1(window: usize, frag_size: usize, loss: f64, seed: u64) -> A1Point {
    let mut topo = Topology::new();
    let wan = topo.add_network("wan", Medium::wan_lossy(loss), true);
    let a = topo.add_host(HostCfg::named("a"));
    let b = topo.add_host(HostCfg::named("b"));
    topo.attach(a, wan);
    topo.attach(b, wan);
    let mut world = World::new(topo, seed);
    let total = 2 << 20;
    let mut cfg = StackConfig::default();
    cfg.srudp.window = window;
    cfg.srudp.frag_size = frag_size;
    cfg.srudp.rto_initial = SimDuration::from_millis(150);
    let received = Arc::new(Mutex::new(0usize));
    let done_at: Arc<Mutex<Option<SimTime>>> = Arc::new(Mutex::new(None));
    world.spawn(
        b,
        20,
        Box::new(SrudpReceiver {
            stack: None,
            received: received.clone(),
            done_at: done_at.clone(),
            expect: total,
            cfg: cfg.clone(),
            pin: None,
            gate: TimerGate::new(),
        }),
    );
    world.spawn(
        a,
        20,
        Box::new(SrudpSender {
            stack: None,
            peer: Endpoint::new(b, 20),
            msg_size: 64 * 1024,
            remaining: total,
            inflight: window * frag_size * 2,
            cfg,
            pin: None,
            gate: TimerGate::new(),
        }),
    );
    for _ in 0..1200 {
        world.run_for(SimDuration::from_millis(100));
        if done_at.lock().unwrap().is_some() {
            break;
        }
    }
    let goodput = match *done_at.lock().unwrap() {
        Some(t) => total as f64 / t.as_secs_f64(),
        None => f64::NAN,
    };
    A1Point { window, frag_size, loss, goodput }
}

/// FEC A/B result row (goodput-vs-loss, plain vs erasure-coded).
#[derive(Clone, Debug)]
pub struct FecAbPoint {
    /// `true` = erasure-coded share spray, `false` = plain fragments.
    pub fec: bool,
    /// Loss probability of the WAN.
    pub loss: f64,
    /// Messages delivered (of [`FEC_AB_COUNT`]).
    pub delivered: u64,
    /// Messages that arrived via FEC reconstruction.
    pub fec_delivered: u64,
    /// Goodput in bytes/second of delivered payload.
    pub goodput: f64,
}

/// Messages per A/B run.
pub const FEC_AB_COUNT: u64 = 60;
/// Message size: five 1400-byte fragments, so FEC uses b=5 → 9 shares.
pub const FEC_AB_MSG: usize = 7000;

/// One goodput-vs-loss point for the Fig.1-style FEC A/B curve.
///
/// The transfer is deliberately latency-bound (one message in flight
/// over a 35 ms WAN): each plain message needs *all five* fragments in
/// one flight or pays a retransmit round-trip, while the FEC variant
/// completes from any 5 of its 9 shares. At zero loss plain wins
/// slightly (no parity bytes); from ~5% loss the avoided RTO rounds
/// dominate and FEC overtakes — that crossover is the claim
/// `fec_beats_plain_on_a_lossy_wan` pins.
pub fn run_fec_ab(fec: bool, loss: f64, seed: u64) -> FecAbPoint {
    use crate::fig1::{FecReceiver, FecSender};
    use snipe_wire::fec::FragStrategy;

    let mut topo = Topology::new();
    let wan = topo.add_network("wan", Medium::wan_lossy(loss), true);
    let a = topo.add_host(HostCfg::named("a"));
    let b = topo.add_host(HostCfg::named("b"));
    topo.attach(a, wan);
    topo.attach(b, wan);
    let mut world = World::new(topo, seed);
    let mut cfg = StackConfig::default();
    if fec {
        cfg.srudp.frag_strategy = FragStrategy::Fec;
    }
    let seqs = Arc::new(Mutex::new(Vec::new()));
    let mismatches = Arc::new(Mutex::new(Vec::new()));
    let stats = Arc::new(Mutex::new(snipe_wire::srudp::SrudpStats::default()));
    let done_at: Arc<Mutex<Option<SimTime>>> = Arc::new(Mutex::new(None));
    world.spawn(
        b,
        20,
        Box::new(FecReceiver {
            stack: None,
            cfg: cfg.clone(),
            pin: None,
            gate: TimerGate::new(),
            expect: FEC_AB_COUNT,
            msg_size: FEC_AB_MSG,
            seqs: seqs.clone(),
            mismatches: mismatches.clone(),
            stats: stats.clone(),
            done_at: done_at.clone(),
        }),
    );
    world.spawn(
        a,
        20,
        Box::new(FecSender {
            stack: None,
            peer: Endpoint::new(b, 20),
            msg_size: FEC_AB_MSG,
            count: FEC_AB_COUNT,
            next: 0,
            // Strict stop-and-wait: the next message enters the stack
            // only when the previous one is fully acknowledged, so both
            // variants carry exactly one message in flight and the
            // comparison is per-message completion latency. (A byte
            // budget would let plain pipeline deeper than FEC purely
            // because shares cost 2b-1/b more bytes.)
            inflight: 0,
            cfg,
            pin: None,
            gate: TimerGate::new(),
        }),
    );
    for _ in 0..600 {
        world.run_for(SimDuration::from_millis(100));
        if done_at.lock().unwrap().is_some() {
            break;
        }
    }
    let delivered = seqs.lock().unwrap().len() as u64;
    assert!(
        mismatches.lock().unwrap().is_empty(),
        "A/B run delivered corrupted payload: {:?}",
        mismatches.lock().unwrap()
    );
    let elapsed = done_at.lock().unwrap().unwrap_or(world.now()).as_secs_f64();
    let goodput =
        if elapsed > 0.0 { delivered as f64 * FEC_AB_MSG as f64 / elapsed } else { f64::NAN };
    let fec_delivered = stats.lock().unwrap().fec_delivered;
    FecAbPoint { fec, loss, delivered, fec_delivered, goodput }
}

/// A2 result row.
#[derive(Clone, Debug)]
pub struct A2Point {
    /// Anti-entropy interval (seconds).
    pub sync_interval: f64,
    /// Mean time for a write at replica 0 to be visible at replica 1.
    pub staleness: f64,
}

const TIMER_PROBE: u64 = 3;

/// Probes replica 1 until the expected value appears; records when.
struct StalenessProbe {
    target: Endpoint,
    uri: Uri,
    expect: String,
    rc: snipe_rcds::client::RcClient,
    visible_at: Arc<Mutex<Option<SimTime>>>,
}

impl StalenessProbe {
    fn flush(&mut self, ctx: &mut Ctx<'_>) {
        for (to, bytes) in self.rc.drain_sends() {
            ctx.send(to, snipe_wire::frame::seal(snipe_wire::frame::Proto::Raw, bytes));
        }
        for (_, result) in self.rc.drain_done() {
            if let Ok(reply) = result {
                if reply.assertions.iter().any(|a| a.value == self.expect)
                    && self.visible_at.lock().unwrap().is_none()
                {
                    *self.visible_at.lock().unwrap() = Some(ctx.now());
                }
            }
        }
        let _ = self.target;
    }
}

impl Actor for StalenessProbe {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
        match event {
            Event::Start | Event::Timer { token: TIMER_PROBE } => {
                if self.visible_at.lock().unwrap().is_none() {
                    let now = ctx.now();
                    self.rc.get(now, &self.uri);
                    self.flush(ctx);
                    ctx.set_timer(SimDuration::from_millis(10), TIMER_PROBE);
                }
            }
            Event::Timer { .. } => {
                self.rc.on_timer(ctx.now());
                self.flush(ctx);
            }
            Event::Packet { from, payload } => {
                if let Ok((snipe_wire::frame::Proto::Raw, body)) = snipe_wire::frame::open(payload)
                {
                    self.rc.on_packet(ctx.now(), from, body);
                }
                self.flush(ctx);
            }
            _ => {}
        }
    }
}

struct OneShotWriter {
    target: Endpoint,
    uri: Uri,
    value: String,
    rc: snipe_rcds::client::RcClient,
    wrote_at: Arc<Mutex<Option<SimTime>>>,
}

impl Actor for OneShotWriter {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
        match event {
            Event::Start => {
                let now = ctx.now();
                self.rc.put(now, &self.uri, vec![Assertion::new("k", self.value.clone())]);
                *self.wrote_at.lock().unwrap() = Some(now);
                for (to, bytes) in self.rc.drain_sends() {
                    ctx.send(to, snipe_wire::frame::seal(snipe_wire::frame::Proto::Raw, bytes));
                }
                let _ = self.target;
            }
            Event::Packet { from, payload } => {
                if let Ok((snipe_wire::frame::Proto::Raw, body)) = snipe_wire::frame::open(payload)
                {
                    self.rc.on_packet(ctx.now(), from, body);
                }
            }
            _ => {}
        }
    }
}

/// A2: measure replication staleness for a sync interval.
pub fn run_a2(sync_interval: SimDuration, seed: u64) -> A2Point {
    let mut topo = Topology::new();
    let net = topo.add_network("lan", Medium::ethernet100(), true);
    let r0 = topo.add_host(HostCfg::named("rc0"));
    let r1 = topo.add_host(HostCfg::named("rc1"));
    let c = topo.add_host(HostCfg::named("c"));
    for h in [r0, r1, c] {
        topo.attach(h, net);
    }
    let mut world = World::new(topo, seed);
    let ep0 = Endpoint::new(r0, ports::RC_SERVER);
    let ep1 = Endpoint::new(r1, ports::RC_SERVER);
    world.spawn(r0, ports::RC_SERVER, Box::new(RcServerActor::new(1, vec![ep1], sync_interval)));
    world.spawn(r1, ports::RC_SERVER, Box::new(RcServerActor::new(2, vec![ep0], sync_interval)));
    // Let the replicas settle so the first sync tick isn't aligned with
    // the write.
    world.run_for(sync_interval + SimDuration::from_millis(37));
    let wrote_at = Arc::new(Mutex::new(None));
    let visible_at = Arc::new(Mutex::new(None));
    let uri = Uri::process(1);
    world.spawn(
        c,
        50,
        Box::new(OneShotWriter {
            target: ep0,
            uri: uri.clone(),
            value: "fresh".into(),
            rc: snipe_rcds::client::RcClient::new(vec![ep0], SimDuration::from_millis(200)),
            wrote_at: wrote_at.clone(),
        }),
    );
    world.spawn(
        c,
        51,
        Box::new(StalenessProbe {
            target: ep1,
            uri,
            expect: "fresh".into(),
            rc: snipe_rcds::client::RcClient::new(vec![ep1], SimDuration::from_millis(200)),
            visible_at: visible_at.clone(),
        }),
    );
    world.run_for(sync_interval * 4 + SimDuration::from_secs(2));
    let staleness = match (*wrote_at.lock().unwrap(), *visible_at.lock().unwrap()) {
        (Some(w), Some(v)) => v.saturating_since(w).as_secs_f64(),
        _ => f64::NAN,
    };
    A2Point { sync_interval: sync_interval.as_secs_f64(), staleness }
}

/// A3 result row.
#[derive(Clone, Debug)]
pub struct A3Point {
    /// Instructions per scheduling slice.
    pub slice: u64,
    /// Completion time of the reference program (seconds).
    pub completion: f64,
    /// Checkpoint size in bytes (taken mid-run).
    pub checkpoint_bytes: usize,
}

/// A3: playground slice-size sweep on a fixed compute kernel.
pub fn run_a3(slice: u64, seed: u64) -> A3Point {
    use snipe_crypto::sign::KeyPair;
    use snipe_playground::bytecode::{CodeImage, Instr, Program};
    use snipe_playground::playground::{PlaygroundActor, PlaygroundConfig, PlaygroundMsg};
    use snipe_playground::vm::{sys, Quotas, Vm, CAP_EMIT};
    use snipe_util::codec::WireDecode;
    use snipe_util::rng::Xoshiro256;

    // countdown loop: 200k iterations (~1.4M instructions).
    let program = Program {
        code: vec![
            Instr::PushI(200_000),
            Instr::Store(0),
            Instr::Load(0), // 2
            Instr::Jz(9),
            Instr::Load(0),
            Instr::PushI(1),
            Instr::Sub,
            Instr::Store(0),
            Instr::Jmp(2),
            Instr::PushI(1), // 9
            Instr::Syscall(sys::EMIT),
            Instr::Halt,
        ],
        locals: 1,
        required_caps: CAP_EMIT,
    };
    // Checkpoint size: measured directly from a VM mid-run.
    let mut vm = Vm::new(&program, CAP_EMIT, Quotas { fuel: 10_000_000, ..Quotas::default() });
    let mut host = snipe_playground::vm::NullHost::default();
    vm.run_slice(50_000, &mut host);
    let checkpoint_bytes = vm.checkpoint().len();

    let mut rng = Xoshiro256::seed_from_u64(seed);
    let signer = KeyPair::generate_default(&mut rng);
    let image = CodeImage::sign(&mut rng, &signer, "kernel", &program);
    let mut topo = Topology::new();
    let net = topo.add_network("lan", Medium::ethernet100(), true);
    let h = topo.add_host(HostCfg::named("pg"));
    let s = topo.add_host(HostCfg::named("sup"));
    topo.attach(h, net);
    topo.attach(s, net);
    let mut world = World::new(topo, seed);
    let done = Arc::new(Mutex::new(None));
    struct Sup {
        done: Arc<Mutex<Option<SimTime>>>,
    }
    impl Actor for Sup {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
            if let Event::Packet { payload, .. } = event {
                if let Ok((snipe_wire::frame::Proto::Raw, body)) = snipe_wire::frame::open(payload)
                {
                    if let Ok(PlaygroundMsg::Done { .. }) = PlaygroundMsg::decode_from_bytes(body) {
                        *self.done.lock().unwrap() = Some(ctx.now());
                    }
                }
            }
        }
    }
    world.spawn(s, 10, Box::new(Sup { done: done.clone() }));
    let cfg = PlaygroundConfig {
        code_signer: signer.public.clone(),
        granted_caps: CAP_EMIT,
        quotas: Quotas { fuel: 10_000_000, ..Quotas::default() },
        slice,
        slice_interval: SimDuration::from_millis(1),
        supervisor: Endpoint::new(s, 10),
        address_book: Default::default(),
    };
    world.spawn(h, 100, Box::new(PlaygroundActor::new(cfg, image, vec![])));
    for _ in 0..600 {
        world.run_for(SimDuration::from_millis(100));
        if done.lock().unwrap().is_some() {
            break;
        }
    }
    let completion = done.lock().unwrap().map(|t| t.as_secs_f64()).unwrap_or(f64::NAN);
    A3Point { slice, completion, checkpoint_bytes }
}

/// Convenience: compare two replicas without networking (pure-store
/// sanity used by the staleness reporting).
pub fn store_merge_rounds(writes: usize) -> usize {
    let mut a = RcStore::new(1);
    let mut b = RcStore::new(2);
    for i in 0..writes {
        a.put(&Uri::process(i as u64), Assertion::new("k", "v"), 0);
    }
    let mut rounds = 0;
    loop {
        let ups = a.updates_since(b.version_vector(), 64);
        if ups.is_empty() {
            break;
        }
        for u in ups {
            b.apply(u);
        }
        rounds += 1;
    }
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a1_bigger_window_helps_on_lossy_wan() {
        let small = run_a1(4, 1400, 0.05, 31);
        let big = run_a1(64, 1400, 0.05, 31);
        assert!(big.goodput > small.goodput, "{small:?} vs {big:?}");
    }

    #[test]
    fn fec_beats_plain_on_a_lossy_wan() {
        // The acceptance claim of the FEC work: at ≥5% loss an
        // erasure-coded multi-fragment message stream beats plain
        // fragmentation, because any-5-of-9 completes in one flight
        // while plain pays an RTO round for every lost fragment.
        for loss in [0.05, 0.10] {
            let plain = run_fec_ab(false, loss, 11);
            let fec = run_fec_ab(true, loss, 11);
            assert_eq!(fec.delivered, FEC_AB_COUNT, "{fec:?}");
            assert_eq!(fec.fec_delivered, FEC_AB_COUNT, "every message must use the FEC path");
            assert!(
                fec.goodput > plain.goodput,
                "loss {loss}: fec {:.0} B/s not above plain {:.0} B/s",
                fec.goodput,
                plain.goodput
            );
        }
    }

    #[test]
    fn a2_staleness_tracks_sync_interval() {
        let fast = run_a2(SimDuration::from_millis(100), 32);
        let slow = run_a2(SimDuration::from_secs(2), 32);
        assert!(fast.staleness.is_finite() && slow.staleness.is_finite());
        assert!(slow.staleness > fast.staleness, "{fast:?} vs {slow:?}");
    }

    #[test]
    fn a3_larger_slices_finish_sooner() {
        let small = run_a3(1_000, 33);
        let big = run_a3(50_000, 33);
        assert!(big.completion < small.completion, "{small:?} vs {big:?}");
        assert!(small.checkpoint_bytes > 0);
    }

    #[test]
    fn merge_rounds_bounded() {
        assert_eq!(store_merge_rounds(100), 2); // 100 updates / 64 per round
    }
}
