//! E4 — §2.2: "PVM allows practical scalability to tens of hosts" while
//! its centralized master serializes naming and spawning; SNIPE's
//! distributed RC + daemons stay near-linear.
//!
//! Workload: start one task on each of N hosts and wait until all are
//! confirmed running, measuring completion time. The PVM path funnels
//! every spawn (and the host-table growth beforehand) through the
//! master's service queue; the SNIPE path spawns through independent
//! per-host daemons.

use std::sync::{Arc, Mutex};

use bytes::Bytes;

use pvm_baseline::proto::Tid;
use pvm_baseline::task::{PvmTask, PvmTaskActor, PvmTaskApi};
use pvm_baseline::{PvmMaster, PvmSlave, MASTER_PORT, SLAVE_PORT};
use snipe_core::api::TicketResult;
use snipe_core::{SnipeApi, SnipeProcess, SnipeWorldBuilder, SpawnTarget};
use snipe_daemon::registry::ProgramRegistry;
use snipe_netsim::medium::Medium;
use snipe_netsim::topology::{Endpoint, HostCfg, Topology};
use snipe_netsim::world::World;
use snipe_util::time::{SimDuration, SimTime};

/// One measured row.
#[derive(Clone, Debug)]
pub struct E4Point {
    /// System name.
    pub system: &'static str,
    /// Host count == task count.
    pub hosts: usize,
    /// Seconds from first request to all tasks confirmed.
    pub elapsed: f64,
    /// Whether every spawn succeeded.
    pub complete: bool,
}

// --- SNIPE side ------------------------------------------------------------

struct Idle;
impl SnipeProcess for Idle {
    fn on_start(&mut self, _api: &mut SnipeApi<'_, '_>) {}
}

struct Coordinator {
    hosts: Vec<String>,
    confirmed: usize,
    done: Arc<Mutex<Option<SimTime>>>,
    failed: Arc<Mutex<bool>>,
}

impl SnipeProcess for Coordinator {
    fn on_start(&mut self, api: &mut SnipeApi<'_, '_>) {
        for h in &self.hosts {
            api.spawn(SpawnTarget::Host(h.clone()), "idle", Bytes::new());
        }
    }
    fn on_ticket(&mut self, api: &mut SnipeApi<'_, '_>, _ticket: u64, result: TicketResult) {
        match result {
            TicketResult::Spawned(Ok(_)) => {
                self.confirmed += 1;
                if self.confirmed == self.hosts.len() {
                    *self.done.lock().unwrap() = Some(api.now());
                }
            }
            TicketResult::Spawned(Err(_)) => *self.failed.lock().unwrap() = true,
            _ => {}
        }
    }
}

/// SNIPE: spawn one task per host from a coordinator.
pub fn run_snipe(n: usize, seed: u64) -> E4Point {
    let mut w = SnipeWorldBuilder::lan(n, seed).build();
    w.register_process("idle", |_| Box::new(Idle));
    let done = Arc::new(Mutex::new(None));
    let failed = Arc::new(Mutex::new(false));
    let (d, f) = (done.clone(), failed.clone());
    let hosts: Vec<String> = (0..n).map(|i| format!("host{i}")).collect();
    w.register_process("coord", move |_| {
        Box::new(Coordinator {
            hosts: hosts.clone(),
            confirmed: 0,
            done: d.clone(),
            failed: f.clone(),
        })
    });
    let t0 = w.now();
    w.spawn_on("host0", "coord", Bytes::new()).unwrap();
    for _ in 0..240 {
        w.run_for(SimDuration::from_millis(500));
        if done.lock().unwrap().is_some() || *failed.lock().unwrap() {
            break;
        }
    }
    let result = *done.lock().unwrap();
    match result {
        Some(t) => E4Point {
            system: "SNIPE",
            hosts: n,
            elapsed: t.since(t0).as_secs_f64(),
            complete: true,
        },
        None => E4Point { system: "SNIPE", hosts: n, elapsed: f64::NAN, complete: false },
    }
}

// --- SNIPE on the sharded engine -------------------------------------------

/// One measured row of the sharded-engine scalability run.
#[derive(Clone, Debug)]
pub struct E4ShardPoint {
    /// Worker threads driving the sharded engine.
    pub threads: usize,
    /// Host count (== clusters × per-cluster == task count).
    pub hosts: usize,
    /// Virtual seconds from first request to all tasks confirmed
    /// (must be thread-count invariant).
    pub elapsed: f64,
    /// Wall-clock milliseconds for the whole run (the quantity that
    /// should shrink with threads).
    pub wall_ms: f64,
    /// Engine digest (must be thread-count invariant).
    pub digest: u64,
    /// Whether every spawn succeeded.
    pub complete: bool,
}

/// The same one-task-per-host burst, but on a multi-cluster campus
/// hosted by the sharded engine: the coordinator in cluster 0 spawns
/// through every per-host daemon while regions execute in parallel.
pub fn run_snipe_sharded(
    clusters: usize,
    per_cluster: usize,
    seed: u64,
    threads: usize,
) -> E4ShardPoint {
    let wall = std::time::Instant::now();
    let mut w = SnipeWorldBuilder::campus(clusters, per_cluster, seed).build_sharded(threads);
    w.register_process("idle", |_| Box::new(Idle));
    let done = Arc::new(Mutex::new(None));
    let failed = Arc::new(Mutex::new(false));
    let (d, f) = (done.clone(), failed.clone());
    let hosts: Vec<String> =
        (0..clusters).flat_map(|c| (0..per_cluster).map(move |i| format!("c{c}h{i}"))).collect();
    let n = hosts.len();
    w.register_process("coord", move |_| {
        Box::new(Coordinator {
            hosts: hosts.clone(),
            confirmed: 0,
            done: d.clone(),
            failed: f.clone(),
        })
    });
    let t0 = w.now();
    w.spawn_on("c0h1", "coord", Bytes::new()).unwrap();
    for _ in 0..240 {
        w.run_for(SimDuration::from_millis(500));
        if done.lock().unwrap().is_some() || *failed.lock().unwrap() {
            break;
        }
    }
    let digest = w.digest();
    let result = *done.lock().unwrap();
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    match result {
        Some(t) => E4ShardPoint {
            threads,
            hosts: n,
            elapsed: t.since(t0).as_secs_f64(),
            wall_ms,
            digest,
            complete: true,
        },
        None => {
            E4ShardPoint { threads, hosts: n, elapsed: f64::NAN, wall_ms, digest, complete: false }
        }
    }
}

// --- PVM side ----------------------------------------------------------------

struct PvmIdle;
impl PvmTask for PvmIdle {
    fn on_start(&mut self, _api: &mut PvmTaskApi<'_>) {}
}

struct PvmCoordinator {
    n: usize,
    confirmed: usize,
    done: Arc<Mutex<Option<SimTime>>>,
}

impl PvmTask for PvmCoordinator {
    fn on_start(&mut self, api: &mut PvmTaskApi<'_>) {
        for _ in 0..self.n {
            api.spawn("idle", Bytes::new());
        }
    }
    fn on_spawned(&mut self, api: &mut PvmTaskApi<'_>, _ticket: u64, ok: bool, _tid: Tid) {
        if ok {
            self.confirmed += 1;
            if self.confirmed == self.n {
                *self.done.lock().unwrap() = Some(api.now());
            }
        }
    }
}

/// PVM: spawn one task per host through the central master.
pub fn run_pvm(n: usize, seed: u64) -> E4Point {
    let mut topo = Topology::new();
    let net = topo.add_network("lan", Medium::ethernet100(), true);
    let mut hosts = Vec::new();
    for i in 0..n {
        let h = topo.add_host(HostCfg::named(format!("pvm{i}")));
        topo.attach(h, net);
        hosts.push(h);
    }
    let mut world = World::new(topo, seed);
    let registry = ProgramRegistry::new();
    let master_ep = Endpoint::new(hosts[0], MASTER_PORT);
    world.spawn(hosts[0], MASTER_PORT, Box::new(PvmMaster::new()));
    for &h in &hosts {
        world.spawn(h, SLAVE_PORT, Box::new(PvmSlave::new(master_ep, registry.clone())));
    }
    let m = master_ep;
    registry.register("idle", move |sctx| {
        Box::new(PvmTaskActor::new(sctx.proc_key as Tid, m, Box::new(PvmIdle)))
    });
    // The enrolment phase (host-table churn) is part of what limits
    // PVM, but for comparability we start timing at the spawn burst.
    world.run_for(SimDuration::from_secs(5));
    let done = Arc::new(Mutex::new(None));
    let coord = PvmTaskActor::new(
        99_999,
        master_ep,
        Box::new(PvmCoordinator { n, confirmed: 0, done: done.clone() }),
    );
    let t0 = world.now();
    world.spawn(hosts[0], 700, Box::new(coord));
    for _ in 0..240 {
        world.run_for(SimDuration::from_millis(500));
        if done.lock().unwrap().is_some() {
            break;
        }
    }
    let result = *done.lock().unwrap();
    match result {
        Some(t) => {
            E4Point { system: "PVM", hosts: n, elapsed: t.since(t0).as_secs_f64(), complete: true }
        }
        None => E4Point { system: "PVM", hosts: n, elapsed: f64::NAN, complete: false },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_burst_completes_and_is_thread_invariant() {
        let a = run_snipe_sharded(2, 4, 7, 1);
        let b = run_snipe_sharded(2, 4, 7, 2);
        assert!(a.complete && b.complete, "{a:?} {b:?}");
        assert_eq!(a.digest, b.digest, "digest must not depend on thread count");
        assert_eq!(a.elapsed, b.elapsed, "virtual completion must not depend on thread count");
    }

    #[test]
    fn snipe_scales_better_than_pvm() {
        let s = run_snipe(24, 9);
        let p = run_pvm(24, 9);
        assert!(s.complete && p.complete, "{s:?} {p:?}");
        assert!(
            s.elapsed < p.elapsed,
            "SNIPE {:.4}s must beat PVM {:.4}s at 24 hosts",
            s.elapsed,
            p.elapsed
        );
    }
}
