//! The experiment harness: regenerates every figure and table of the
//! paper's evaluation (see DESIGN.md §4 for the index).
//!
//! ```text
//! cargo run -p snipe-bench --release --bin harness            # everything
//! cargo run -p snipe-bench --release --bin harness -- f1 e3   # selected
//! ```
//!
//! Output goes to stdout and `results/<exp>.txt`.

use snipe_bench::report::{mbps, Table};
use snipe_bench::{ablations, chaos, e2_mpiconnect, e3_availability, e4_scalability, e5_migration, e6_multicast, e7_failover, e8_spof, engine, fig1, par_map};
use snipe_util::time::SimDuration;

fn run_f1() {
    let mut jobs = Vec::new();
    for medium in fig1::standard_media() {
        for proto in [fig1::Protocol::Srudp, fig1::Protocol::Rstream, fig1::Protocol::Mcast] {
            for &size in &fig1::standard_sizes() {
                jobs.push((medium.clone(), proto, size));
            }
        }
    }
    let points = par_map(jobs, |(m, p, s)| fig1::measure(m.clone(), *p, *s));
    let mut t = Table::new(
        "F1 (Fig. 1): bandwidth offered to SNIPE clients, MB/s",
        &["medium", "protocol", "msg size", "MB/s", "media ceiling MB/s", "% of ceiling"],
    );
    for p in points.into_iter().flatten() {
        let frac = p.goodput / p.ceiling * 100.0;
        t.row(vec![
            p.medium.to_string(),
            p.protocol.to_string(),
            format!("{}", p.msg_size),
            mbps(p.goodput),
            mbps(p.ceiling),
            format!("{frac:.1}%"),
        ]);
    }
    t.emit("f1.txt");
}

fn run_e2() {
    // Sizes stay below the Ethernet MTU: the mini-PVM baseline (like
    // early pvm_send without direct routing) does not fragment, and the
    // §6.1 claim is about point-to-point latency/overheads.
    let sizes = vec![64usize, 256, 1024, 1400];
    let mut rows = Vec::new();
    for &s in &sizes {
        rows.push(e2_mpiconnect::run_snipe(s));
        rows.push(e2_mpiconnect::run_pvmpi(s));
    }
    let mut t = Table::new(
        "E2 (§6.1): MPI Connect (SNIPE) vs PVMPI (PVM), inter-MPP pt2pt",
        &["system", "msg size", "latency (ms)", "bandwidth MB/s"],
    );
    for r in rows {
        t.row(vec![
            r.system.to_string(),
            format!("{}", r.msg_size),
            format!("{:.3}", r.latency * 1e3),
            mbps(r.bandwidth),
        ]);
    }
    t.emit("e2.txt");
}

fn run_e3() {
    let ks = vec![1usize, 2, 3, 4, 5];
    let points = par_map(ks, |&k| e3_availability::run(k, 365, 1000 + k as u64));
    let mut t = Table::new(
        "E3 (§6): metadata availability over one simulated year (MTBF 10d, MTTR 4h)",
        &["RC replicas", "availability", "single-host expectation"],
    );
    for p in points {
        t.row(vec![
            format!("{}", p.replicas),
            format!("{:.5}", p.availability),
            format!("{:.5}", p.single_host),
        ]);
    }
    t.emit("e3.txt");
}

fn run_e4() {
    let ns = vec![4usize, 8, 16, 32, 64, 128];
    let snipe = par_map(ns.clone(), |&n| e4_scalability::run_snipe(n, 40));
    let pvm = par_map(ns.clone(), |&n| e4_scalability::run_pvm(n, 40));
    let mut t = Table::new(
        "E4 (§2.2): time to start one task on each of N hosts",
        &["hosts", "SNIPE (s)", "PVM (s)", "PVM/SNIPE"],
    );
    for (s, p) in snipe.iter().zip(&pvm) {
        let ratio = if s.complete && p.complete { p.elapsed / s.elapsed } else { f64::NAN };
        t.row(vec![
            format!("{}", s.hosts),
            if s.complete { format!("{:.4}", s.elapsed) } else { "DNF".into() },
            if p.complete { format!("{:.4}", p.elapsed) } else { "DNF".into() },
            format!("{ratio:.2}x"),
        ]);
    }
    t.emit("e4.txt");
}

fn run_e5() {
    let p = e5_migration::run(200, 6);
    let mut t = Table::new(
        "E5 (§5.6): migration under load — zero loss contract",
        &["sent", "received", "lost", "out-of-order", "max stall (ms)", "migrated at (s)"],
    );
    t.row(vec![
        format!("{}", p.sent),
        format!("{}", p.received),
        format!("{}", p.sent - p.received),
        format!("{}", p.out_of_order),
        format!("{:.1}", p.max_gap * 1e3),
        format!("{:.3}", p.migrated_at),
    ]);
    t.emit("e5.txt");
}

fn run_e6() {
    let configs = vec![(3usize, 1usize), (5, 2), (7, 3), (9, 4)];
    let points = par_map(configs, |&(r, k)| e6_multicast::run(r, 6, k, 200, 11));
    let mut t = Table::new(
        "E6 (§5.4): multicast delivery with routers killed mid-stream",
        &["routers", "killed", "sent", "min delivered", "delivery", "dup suppressed"],
    );
    for p in points {
        t.row(vec![
            format!("{}", p.routers),
            format!("{}", p.killed),
            format!("{}", p.sent),
            format!("{}", p.min_delivered),
            format!("{:.1}%", p.min_delivered as f64 / p.sent as f64 * 100.0),
            format!("{}", p.duplicates),
        ]);
    }
    t.emit("e6.txt");
}

fn run_e7() {
    let p = e7_failover::run(4 << 20, 13);
    let mut t = Table::new(
        "E7 (§6): route failover when the preferred (ATM) path blackholes",
        &["bytes", "delivered", "failover seen", "fault at (s)", "done at (s)"],
    );
    t.row(vec![
        format!("{}", p.total),
        format!("{}", p.delivered),
        format!("{}", p.failovers_observed),
        format!("{:.3}", p.fault_at),
        format!("{:.3}", p.elapsed),
    ]);
    t.emit("e7.txt");
}

fn run_e8() {
    let s = e8_spof::run_snipe(21);
    let p = e8_spof::run_pvm(21);
    let mut t = Table::new(
        "E8 (§2.2): killing the name service mid-workload",
        &["system", "ok before kill", "ok after kill", "post-kill availability"],
    );
    for r in [s, p] {
        t.row(vec![
            r.system.to_string(),
            format!("{}/{}", r.ok_before, r.ops_before),
            format!("{}/{}", r.ok_after, r.ops_after),
            format!("{:.1}%", r.availability_after() * 100.0),
        ]);
    }
    t.emit("e8.txt");
}

fn run_a1() {
    let mut jobs = Vec::new();
    for window in [4usize, 16, 64, 256] {
        for frag in [512usize, 1400] {
            jobs.push((window, frag));
        }
    }
    let points = par_map(jobs, |&(w, f)| ablations::run_a1(w, f, 0.05, 31));
    let mut t = Table::new(
        "A1: SRUDP window/fragment sweep on 5%-loss WAN",
        &["window", "frag size", "goodput MB/s"],
    );
    for p in points {
        t.row(vec![
            format!("{}", p.window),
            format!("{}", p.frag_size),
            if p.goodput.is_nan() { "stalled".into() } else { mbps(p.goodput) },
        ]);
    }
    t.emit("a1.txt");
}

fn run_a2() {
    let intervals = vec![100u64, 250, 500, 1000, 2000, 5000];
    let points = par_map(intervals, |&ms| ablations::run_a2(SimDuration::from_millis(ms), 32));
    let mut t = Table::new(
        "A2: anti-entropy interval vs cross-replica staleness",
        &["sync interval (s)", "staleness (s)"],
    );
    for p in points {
        t.row(vec![format!("{:.2}", p.sync_interval), format!("{:.3}", p.staleness)]);
    }
    t.emit("a2.txt");
}

fn run_a3() {
    let slices = vec![500u64, 1_000, 5_000, 20_000, 100_000];
    let points = par_map(slices, |&s| ablations::run_a3(s, 33));
    let mut t = Table::new(
        "A3: playground fuel-slice size vs completion and checkpoint size",
        &["slice (instr)", "completion (s)", "checkpoint (bytes)"],
    );
    for p in points {
        t.row(vec![
            format!("{}", p.slice),
            format!("{:.3}", p.completion),
            format!("{}", p.checkpoint_bytes),
        ]);
    }
    t.emit("a3.txt");
}

/// Events/second of the seed engine (pre fast-path: per-packet route
/// recomputation, `Medium` clones, single `BinaryHeap`, `HashMap`
/// counters), measured on this machine with the identical storm
/// (32 hosts, 2 s sim, seed 42) at the commit before the fast path
/// landed. Kept so `results/bench_engine.json` always records the
/// before/after pair the fast-path PR was gated on.
const SEED_ENGINE_EVENTS_PER_SEC: f64 = 1_861_863.0;

fn run_engine() {
    let sim = SimDuration::from_secs(2);
    let run = engine::storm_with("cached", 32, sim, 42, true);
    let uncached = engine::storm_with("uncached", 32, sim, 42, false);
    assert_eq!(
        engine::fingerprint(&run),
        engine::fingerprint(&uncached),
        "route cache changed the traffic — it must be a pure memo"
    );
    let mut t = Table::new(
        "ENGINE: event-loop throughput, 32-host multi-net storm with fault injection",
        &["config", "events", "sent", "delivered", "drops", "wall (s)", "events/sec"],
    );
    for r in [&run, &uncached] {
        t.row(vec![
            r.label.clone(),
            format!("{}", r.events),
            format!("{}", r.sent),
            format!("{}", r.delivered),
            format!("{}", r.drops),
            format!("{:.3}", r.wall_seconds),
            format!("{:.0}", r.events_per_sec),
        ]);
    }
    t.row(vec![
        "seed engine".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        format!("{SEED_ENGINE_EVENTS_PER_SEC:.0}"),
    ]);
    let mut c = Table::new(
        "ENGINE: queue-tier and route-cache counters (cached run)",
        &["heap pops", "now pops", "stream pops", "cache hits", "cache misses", "peak depth"],
    );
    c.row(vec![
        format!("{}", run.heap_pops),
        format!("{}", run.now_pops),
        format!("{}", run.stream_pops),
        format!("{}", run.route_cache_hits),
        format!("{}", run.route_cache_misses),
        format!("{}", run.peak_queue_depth),
    ]);
    t.emit("engine.txt");
    c.emit("engine.txt");
    let json = format!(
        "{{\n  \"experiment\": \"bench_engine\",\n  \"storm\": {{\"hosts\": 32, \"sim_seconds\": {:.1}, \"seed\": 42}},\n  \"seed_engine_events_per_sec\": {:.0},\n  \"events_per_sec\": {:.0},\n  \"events_per_sec_uncached\": {:.0},\n  \"speedup_vs_seed\": {:.2},\n  \"events\": {},\n  \"sent\": {},\n  \"delivered\": {},\n  \"drops\": {},\n  \"wall_seconds\": {:.4},\n  \"engine\": {{\n    \"heap_pops\": {},\n    \"now_pops\": {},\n    \"stream_pops\": {},\n    \"route_cache_hits\": {},\n    \"route_cache_misses\": {},\n    \"peak_queue_depth\": {}\n  }}\n}}\n",
        run.sim_seconds,
        SEED_ENGINE_EVENTS_PER_SEC,
        run.events_per_sec,
        uncached.events_per_sec,
        run.events_per_sec / SEED_ENGINE_EVENTS_PER_SEC,
        run.events,
        run.sent,
        run.delivered,
        run.drops,
        run.wall_seconds,
        run.heap_pops,
        run.now_pops,
        run.stream_pops,
        run.route_cache_hits,
        run.route_cache_misses,
        run.peak_queue_depth,
    );
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write("results/bench_engine.json", json);
}

/// The chaos soak (C1): fan seeded fault plans over every workload,
/// demand green oracles, then prove the oracles have teeth by catching
/// the planted migration-freeze bug and shrinking its plan.
fn run_chaos(seeds_per_workload: u64) -> bool {
    let runs = chaos::soak(seeds_per_workload);
    let mut t = Table::new(
        "C1: chaos soak — seeded fault plans vs invariant oracles",
        &["workload", "plan seed", "wseed", "ops", "packet", "verdict"],
    );
    let mut failures = Vec::new();
    for r in &runs {
        t.row(vec![
            r.workload.to_string(),
            format!("{:#x}", r.plan_seed),
            format!("{:#x}", r.workload_seed),
            format!("{}", r.ops),
            format!("{}", r.packet),
            if r.violations.is_empty() { "green".into() } else { "VIOLATED".into() },
        ]);
        if !r.violations.is_empty() {
            failures.push(r.clone());
        }
    }
    t.emit("chaos.txt");
    for f in &failures {
        println!("VIOLATION in {}: {}", f.workload, f.violations[0]);
        println!("  {}", f.replay);
    }

    let drill = chaos::planted_bug_drill(8);
    let mut d = Table::new(
        "C1b: planted-bug drill — migration freeze disabled on purpose",
        &["caught", "violation", "shrunk plan"],
    );
    d.row(vec![
        format!("{}", drill.caught),
        drill.first_violation.clone(),
        drill.replay.clone(),
    ]);
    d.emit("chaos.txt");
    if drill.caught {
        println!("planted bug caught: {}", drill.first_violation);
        println!("  {}", drill.replay);
    } else {
        println!("planted bug NOT caught — the oracle layer has a blind spot");
    }

    let per_workload: Vec<String> = chaos::ALL_WORKLOADS
        .iter()
        .map(|w| {
            let bad =
                runs.iter().filter(|r| r.workload == w.name() && !r.violations.is_empty()).count();
            format!("    {{\"workload\": \"{}\", \"plans\": {}, \"violations\": {}}}", w.name(), seeds_per_workload, bad)
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"chaos_soak\",\n  \"plans\": {},\n  \"violations\": {},\n  \"workloads\": [\n{}\n  ],\n  \"planted_bug_caught\": {},\n  \"planted_bug_replay\": \"{}\"\n}}\n",
        runs.len(),
        failures.len(),
        per_workload.join(",\n"),
        drill.caught,
        drill.replay.replace('"', "'"),
    );
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write("results/chaos.json", json);
    failures.is_empty() && drill.caught
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty();
    let want = |k: &str| all || args.iter().any(|a| a == k);
    if all {
        // Fresh full run: clear old tables. Selective runs append /
        // replace only their own files.
        let _ = std::fs::remove_dir_all("results");
    } else {
        for a in &args {
            let _ = std::fs::remove_file(format!("results/{a}.txt"));
        }
    }
    if want("f1") {
        run_f1();
    }
    if want("e2") {
        run_e2();
    }
    if want("e3") {
        run_e3();
    }
    if want("e4") {
        run_e4();
    }
    if want("e5") {
        run_e5();
    }
    if want("e6") {
        run_e6();
    }
    if want("e7") {
        run_e7();
    }
    if want("e8") {
        run_e8();
    }
    if want("a1") {
        run_a1();
    }
    if want("a2") {
        run_a2();
    }
    if want("a3") {
        run_a3();
    }
    if want("engine") {
        run_engine();
    }
    let mut chaos_ok = true;
    if args.iter().any(|a| a == "chaos-smoke") {
        // Bounded gate for CI: 2 plans per workload plus the drill.
        let _ = std::fs::remove_file("results/chaos.txt");
        chaos_ok = run_chaos(2);
    } else if want("chaos") {
        chaos_ok = run_chaos(16);
    }
    println!("done. tables written under results/");
    if !chaos_ok {
        std::process::exit(1);
    }
}
