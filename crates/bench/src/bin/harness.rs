//! The experiment harness: regenerates every figure and table of the
//! paper's evaluation (see DESIGN.md §4 for the index).
//!
//! ```text
//! cargo run -p snipe-bench --release --bin harness            # everything
//! cargo run -p snipe-bench --release --bin harness -- f1 e3   # selected
//! ```
//!
//! Output goes to stdout and `results/<exp>.txt`.

use snipe_bench::report::{mbps, Table};
use snipe_bench::{
    ablations, chaos, chaos_shard, e2_mpiconnect, e3_availability, e4_scalability, e5_migration,
    e6_multicast, e7_failover, e8_spof, engine, fig1, par_map, rcds_bench, shard_storm,
};
use snipe_util::time::SimDuration;

fn run_f1() {
    let mut jobs = Vec::new();
    for medium in fig1::standard_media() {
        for proto in [fig1::Protocol::Srudp, fig1::Protocol::Rstream, fig1::Protocol::Mcast] {
            for &size in &fig1::standard_sizes() {
                jobs.push((medium.clone(), proto, size));
            }
        }
    }
    let points = par_map(jobs, |(m, p, s)| fig1::measure(m.clone(), *p, *s));
    let mut t = Table::new(
        "F1 (Fig. 1): bandwidth offered to SNIPE clients, MB/s",
        &["medium", "protocol", "msg size", "MB/s", "media ceiling MB/s", "% of ceiling"],
    );
    for p in points.into_iter().flatten() {
        let frac = p.goodput / p.ceiling * 100.0;
        t.row(vec![
            p.medium.to_string(),
            p.protocol.to_string(),
            format!("{}", p.msg_size),
            mbps(p.goodput),
            mbps(p.ceiling),
            format!("{frac:.1}%"),
        ]);
    }
    t.emit("f1.txt");
}

fn run_e2() {
    // Sizes stay below the Ethernet MTU: the mini-PVM baseline (like
    // early pvm_send without direct routing) does not fragment, and the
    // §6.1 claim is about point-to-point latency/overheads.
    let sizes = vec![64usize, 256, 1024, 1400];
    let mut rows = Vec::new();
    for &s in &sizes {
        rows.push(e2_mpiconnect::run_snipe(s));
        rows.push(e2_mpiconnect::run_pvmpi(s));
    }
    let mut t = Table::new(
        "E2 (§6.1): MPI Connect (SNIPE) vs PVMPI (PVM), inter-MPP pt2pt",
        &["system", "msg size", "latency (ms)", "bandwidth MB/s"],
    );
    for r in rows {
        t.row(vec![
            r.system.to_string(),
            format!("{}", r.msg_size),
            format!("{:.3}", r.latency * 1e3),
            mbps(r.bandwidth),
        ]);
    }
    t.emit("e2.txt");
}

fn run_e3() {
    let ks = vec![1usize, 2, 3, 4, 5];
    let points = par_map(ks, |&k| e3_availability::run(k, 365, 1000 + k as u64));
    let mut t = Table::new(
        "E3 (§6): metadata availability over one simulated year (MTBF 10d, MTTR 4h)",
        &["RC replicas", "availability", "single-host expectation"],
    );
    for p in points {
        t.row(vec![
            format!("{}", p.replicas),
            format!("{:.5}", p.availability),
            format!("{:.5}", p.single_host),
        ]);
    }
    t.emit("e3.txt");
}

fn run_e4() {
    let ns = vec![4usize, 8, 16, 32, 64, 128];
    let snipe = par_map(ns.clone(), |&n| e4_scalability::run_snipe(n, 40));
    let pvm = par_map(ns.clone(), |&n| e4_scalability::run_pvm(n, 40));
    let mut t = Table::new(
        "E4 (§2.2): time to start one task on each of N hosts",
        &["hosts", "SNIPE (s)", "PVM (s)", "PVM/SNIPE"],
    );
    for (s, p) in snipe.iter().zip(&pvm) {
        let ratio = if s.complete && p.complete { p.elapsed / s.elapsed } else { f64::NAN };
        t.row(vec![
            format!("{}", s.hosts),
            if s.complete { format!("{:.4}", s.elapsed) } else { "DNF".into() },
            if p.complete { format!("{:.4}", p.elapsed) } else { "DNF".into() },
            format!("{ratio:.2}x"),
        ]);
    }
    t.emit("e4.txt");
}

/// `harness e4-shard`: the E4 spawn burst on the sharded engine — a
/// 6-cluster campus (one region per cluster) at 1/2/4/8 worker
/// threads. Virtual completion time and the engine digest must be
/// thread-count invariant; wall-clock is what threads buy. Writes
/// `results/bench_e4_shard.json`.
fn run_e4_shard() -> bool {
    let _ = std::fs::remove_file("results/e4_shard.txt");
    let (clusters, per_cluster, seed) = (6usize, 8usize, 40u64);
    let points: Vec<_> = [1usize, 2, 4, 8]
        .iter()
        .map(|&th| e4_scalability::run_snipe_sharded(clusters, per_cluster, seed, th))
        .collect();
    let mut t = Table::new(
        "E4-sharded: one task on each of 48 campus hosts, by worker threads",
        &["threads", "hosts", "virtual (s)", "wall (ms)", "digest", "complete"],
    );
    for p in &points {
        t.row(vec![
            format!("{}", p.threads),
            format!("{}", p.hosts),
            if p.complete { format!("{:.4}", p.elapsed) } else { "DNF".into() },
            format!("{:.1}", p.wall_ms),
            format!("{:#018x}", p.digest),
            format!("{}", p.complete),
        ]);
    }
    t.emit("e4_shard.txt");
    let ok =
        points.iter().all(|p| p.complete) && points.windows(2).all(|w| w[0].digest == w[1].digest);
    if !ok {
        println!("E4-sharded: digest or completion diverged across thread counts");
    }
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"threads\": {}, \"hosts\": {}, \"virtual_s\": {:.6}, \
                 \"wall_ms\": {:.3}, \"digest\": \"{:#018x}\", \"complete\": {}}}",
                p.threads, p.hosts, p.elapsed, p.wall_ms, p.digest, p.complete
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"e4_shard\",\n  \"clusters\": {clusters},\n  \
         \"per_cluster\": {per_cluster},\n  \"seed\": {seed},\n  \
         \"thread_invariant\": {ok},\n  \"points\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
    );
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write("results/bench_e4_shard.json", json);
    ok
}

/// `harness full-proto-digest <threads> [seed]`: run the chaos-free
/// full-protocol campus workload (daemons + RCDS + files + RM) for a
/// fixed virtual duration and print the engine digest plus the sorted
/// application log. The `shard-determinism` gate byte-compares the
/// whole output across thread counts.
fn run_full_proto_digest(rest: &[String]) -> bool {
    let Some(threads) = rest.first().and_then(|s| s.parse::<usize>().ok()).filter(|t| *t > 0)
    else {
        eprintln!("usage: harness full-proto-digest <threads> [seed]");
        return false;
    };
    let seed = match rest.get(1) {
        Some(s) => match parse_seed(s) {
            Some(seed) => seed,
            None => {
                eprintln!("unparseable seed {s:?}");
                return false;
            }
        },
        None => 42,
    };
    let (digest, lines) = chaos_shard::full_protocol_sharded(seed, threads, 20);
    println!("{digest:#018x}");
    for l in &lines {
        println!("{l}");
    }
    true
}

fn run_e5() {
    let p = e5_migration::run(200, 6);
    let mut t = Table::new(
        "E5 (§5.6): migration under load — zero loss contract",
        &["sent", "received", "lost", "out-of-order", "max stall (ms)", "migrated at (s)"],
    );
    t.row(vec![
        format!("{}", p.sent),
        format!("{}", p.received),
        format!("{}", p.sent - p.received),
        format!("{}", p.out_of_order),
        format!("{:.1}", p.max_gap * 1e3),
        format!("{:.3}", p.migrated_at),
    ]);
    t.emit("e5.txt");
}

fn run_e6() {
    let configs = vec![(3usize, 1usize), (5, 2), (7, 3), (9, 4)];
    let points = par_map(configs, |&(r, k)| e6_multicast::run(r, 6, k, 200, 11));
    let mut t = Table::new(
        "E6 (§5.4): multicast delivery with routers killed mid-stream",
        &["routers", "killed", "sent", "min delivered", "delivery", "dup suppressed"],
    );
    for p in points {
        t.row(vec![
            format!("{}", p.routers),
            format!("{}", p.killed),
            format!("{}", p.sent),
            format!("{}", p.min_delivered),
            format!("{:.1}%", p.min_delivered as f64 / p.sent as f64 * 100.0),
            format!("{}", p.duplicates),
        ]);
    }
    t.emit("e6.txt");
}

fn run_e7() {
    let p = e7_failover::run(4 << 20, 13);
    let mut t = Table::new(
        "E7 (§6): route failover when the preferred (ATM) path blackholes",
        &["bytes", "delivered", "failover seen", "fault at (s)", "done at (s)"],
    );
    t.row(vec![
        format!("{}", p.total),
        format!("{}", p.delivered),
        format!("{}", p.failovers_observed),
        format!("{:.3}", p.fault_at),
        format!("{:.3}", p.elapsed),
    ]);
    t.emit("e7.txt");
}

fn run_e8() {
    let s = e8_spof::run_snipe(21);
    let p = e8_spof::run_pvm(21);
    let mut t = Table::new(
        "E8 (§2.2): killing the name service mid-workload",
        &["system", "ok before kill", "ok after kill", "post-kill availability"],
    );
    for r in [s, p] {
        t.row(vec![
            r.system.to_string(),
            format!("{}/{}", r.ok_before, r.ops_before),
            format!("{}/{}", r.ok_after, r.ops_after),
            format!("{:.1}%", r.availability_after() * 100.0),
        ]);
    }
    t.emit("e8.txt");
}

fn run_a1() {
    let mut jobs = Vec::new();
    for window in [4usize, 16, 64, 256] {
        for frag in [512usize, 1400] {
            jobs.push((window, frag));
        }
    }
    let points = par_map(jobs, |&(w, f)| ablations::run_a1(w, f, 0.05, 31));
    let mut t = Table::new(
        "A1: SRUDP window/fragment sweep on 5%-loss WAN",
        &["window", "frag size", "goodput MB/s"],
    );
    for p in points {
        t.row(vec![
            format!("{}", p.window),
            format!("{}", p.frag_size),
            if p.goodput.is_nan() { "stalled".into() } else { mbps(p.goodput) },
        ]);
    }
    t.emit("a1.txt");
}

/// `harness fec`: the Fig.1-style A/B curve — goodput vs loss for
/// plain fragmentation vs erasure-coded share spray, three seeds per
/// point, strict stop-and-wait so both variants carry one message in
/// flight. Writes `results/bench_fec.json` and fails if FEC is not
/// strictly ahead at every loss rate ≥ 5%.
fn run_fec() -> bool {
    const SEEDS: [u64; 3] = [11, 12, 13];
    const LOSSES: [f64; 6] = [0.0, 0.02, 0.05, 0.10, 0.15, 0.20];
    let mut jobs = Vec::new();
    for &loss in &LOSSES {
        for fec in [false, true] {
            for &seed in &SEEDS {
                jobs.push((fec, loss, seed));
            }
        }
    }
    let points = par_map(jobs, |&(fec, loss, seed)| ablations::run_fec_ab(fec, loss, seed));
    // Average the seeds per (strategy, loss) cell.
    let cell = |fec: bool, loss: f64| {
        let sel: Vec<_> = points.iter().filter(|p| p.fec == fec && p.loss == loss).collect();
        let goodput = sel.iter().map(|p| p.goodput).sum::<f64>() / sel.len() as f64;
        let delivered: u64 = sel.iter().map(|p| p.delivered).sum();
        let fec_delivered: u64 = sel.iter().map(|p| p.fec_delivered).sum();
        (goodput, delivered, fec_delivered)
    };
    let mut t = Table::new(
        "FEC A/B: goodput vs loss, plain fragments vs 9-share erasure spray \
         (60 x 7000 B stop-and-wait, 3 seeds)",
        &["loss", "plain B/s", "fec B/s", "fec/plain"],
    );
    let mut ok = true;
    let mut rows = Vec::new();
    for &loss in &LOSSES {
        let (plain_gp, plain_del, _) = cell(false, loss);
        let (fec_gp, fec_del, fec_rec) = cell(true, loss);
        if loss >= 0.05 && fec_gp <= plain_gp {
            println!("FEC A/B: fec not ahead at loss {loss} ({fec_gp:.0} vs {plain_gp:.0} B/s)");
            ok = false;
        }
        // The FEC path must actually engage (not fall back to plain).
        if fec_rec != fec_del {
            println!("FEC A/B: only {fec_rec} of {fec_del} deliveries used FEC at loss {loss}");
            ok = false;
        }
        t.row(vec![
            format!("{:.0}%", loss * 100.0),
            format!("{plain_gp:.0}"),
            format!("{fec_gp:.0}"),
            format!("{:.2}", fec_gp / plain_gp),
        ]);
        rows.push(format!(
            "    {{\"loss\": {loss}, \"plain_goodput_bps\": {plain_gp:.1}, \
             \"fec_goodput_bps\": {fec_gp:.1}, \"plain_delivered\": {plain_del}, \
             \"fec_delivered\": {fec_del}, \"fec_reconstructions\": {fec_rec}}}"
        ));
    }
    t.emit("fec.txt");
    let json = format!(
        "{{\n  \"experiment\": \"fec_ab\",\n  \"messages\": {},\n  \"msg_bytes\": {},\n  \
         \"seeds\": {:?},\n  \"fec_ahead_at_5pct_and_up\": {ok},\n  \"points\": [\n{}\n  ]\n}}\n",
        ablations::FEC_AB_COUNT,
        ablations::FEC_AB_MSG,
        SEEDS,
        rows.join(",\n"),
    );
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write("results/bench_fec.json", json);
    ok
}

fn run_a2() {
    let intervals = vec![100u64, 250, 500, 1000, 2000, 5000];
    let points = par_map(intervals, |&ms| ablations::run_a2(SimDuration::from_millis(ms), 32));
    let mut t = Table::new(
        "A2: anti-entropy interval vs cross-replica staleness",
        &["sync interval (s)", "staleness (s)"],
    );
    for p in points {
        t.row(vec![format!("{:.2}", p.sync_interval), format!("{:.3}", p.staleness)]);
    }
    t.emit("a2.txt");
}

fn run_a3() {
    let slices = vec![500u64, 1_000, 5_000, 20_000, 100_000];
    let points = par_map(slices, |&s| ablations::run_a3(s, 33));
    let mut t = Table::new(
        "A3: playground fuel-slice size vs completion and checkpoint size",
        &["slice (instr)", "completion (s)", "checkpoint (bytes)"],
    );
    for p in points {
        t.row(vec![
            format!("{}", p.slice),
            format!("{:.3}", p.completion),
            format!("{}", p.checkpoint_bytes),
        ]);
    }
    t.emit("a3.txt");
}

/// Events/second of the seed engine (pre fast-path: per-packet route
/// recomputation, `Medium` clones, single `BinaryHeap`, `HashMap`
/// counters), measured on this machine with the identical storm
/// (32 hosts, 2 s sim, seed 42) at the commit before the fast path
/// landed. Kept so `results/bench_engine.json` always records the
/// before/after pair the fast-path PR was gated on.
const SEED_ENGINE_EVENTS_PER_SEC: f64 = 1_861_863.0;

fn run_engine() {
    let sim = SimDuration::from_secs(2);
    let run = engine::storm_with("cached", 32, sim, 42, true);
    let uncached = engine::storm_with("uncached", 32, sim, 42, false);
    assert_eq!(
        engine::fingerprint(&run),
        engine::fingerprint(&uncached),
        "route cache changed the traffic — it must be a pure memo"
    );
    let mut t = Table::new(
        "ENGINE: event-loop throughput, 32-host multi-net storm with fault injection",
        &["config", "events", "sent", "delivered", "drops", "wall (s)", "events/sec"],
    );
    for r in [&run, &uncached] {
        t.row(vec![
            r.label.clone(),
            format!("{}", r.events),
            format!("{}", r.sent),
            format!("{}", r.delivered),
            format!("{}", r.drops),
            format!("{:.3}", r.wall_seconds),
            format!("{:.0}", r.events_per_sec),
        ]);
    }
    t.row(vec![
        "seed engine".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        format!("{SEED_ENGINE_EVENTS_PER_SEC:.0}"),
    ]);
    let mut c = Table::new(
        "ENGINE: queue-tier and route-cache counters (cached run)",
        &["heap pops", "now pops", "stream pops", "cache hits", "cache misses", "peak depth"],
    );
    c.row(vec![
        format!("{}", run.heap_pops),
        format!("{}", run.now_pops),
        format!("{}", run.stream_pops),
        format!("{}", run.route_cache_hits),
        format!("{}", run.route_cache_misses),
        format!("{}", run.peak_queue_depth),
    ]);
    t.emit("engine.txt");
    c.emit("engine.txt");
    let json = format!(
        "{{\n  \"experiment\": \"bench_engine\",\n  \"storm\": {{\"hosts\": 32, \"sim_seconds\": {:.1}, \"seed\": 42}},\n  \"seed_engine_events_per_sec\": {:.0},\n  \"events_per_sec\": {:.0},\n  \"events_per_sec_uncached\": {:.0},\n  \"speedup_vs_seed\": {:.2},\n  \"events\": {},\n  \"sent\": {},\n  \"delivered\": {},\n  \"drops\": {},\n  \"wall_seconds\": {:.4},\n  \"engine\": {{\n    \"heap_pops\": {},\n    \"now_pops\": {},\n    \"stream_pops\": {},\n    \"route_cache_hits\": {},\n    \"route_cache_misses\": {},\n    \"peak_queue_depth\": {}\n  }},\n  \"metrics\": {}\n}}\n",
        run.sim_seconds,
        SEED_ENGINE_EVENTS_PER_SEC,
        run.events_per_sec,
        uncached.events_per_sec,
        run.events_per_sec / SEED_ENGINE_EVENTS_PER_SEC,
        run.events,
        run.sent,
        run.delivered,
        run.drops,
        run.wall_seconds,
        run.heap_pops,
        run.now_pops,
        run.stream_pops,
        run.route_cache_hits,
        run.route_cache_misses,
        run.peak_queue_depth,
        run.metrics_json.trim_end(),
    );
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write("results/bench_engine.json", json);
}

/// The chaos soak (C1): fan seeded fault plans over every workload,
/// demand green oracles, then prove the oracles have teeth by catching
/// the planted migration-freeze bug and shrinking its plan.
fn run_chaos(seeds_per_workload: u64) -> bool {
    let runs = chaos::soak(seeds_per_workload);
    let mut t = Table::new(
        "C1: chaos soak — seeded fault plans vs invariant oracles",
        &["workload", "plan seed", "wseed", "ops", "packet", "verdict"],
    );
    let mut failures = Vec::new();
    for r in &runs {
        t.row(vec![
            r.workload.to_string(),
            format!("{:#x}", r.plan_seed),
            format!("{:#x}", r.workload_seed),
            format!("{}", r.ops),
            format!("{}", r.packet),
            if r.violations.is_empty() { "green".into() } else { "VIOLATED".into() },
        ]);
        if !r.violations.is_empty() {
            failures.push(r.clone());
        }
    }
    t.emit("chaos.txt");
    for f in &failures {
        println!("VIOLATION in {}: {}", f.workload, f.violations[0]);
        println!("  {}", f.replay);
        if let Some(dump) = &f.trace_dump {
            println!(
                "  flight recorder — last {} events before the verdict:",
                chaos::TRACE_DUMP_EVENTS
            );
            for line in dump.lines() {
                println!("    {line}");
            }
        }
    }

    let drill = chaos::planted_bug_drill(8);
    let mut d = Table::new(
        "C1b: planted-bug drill — migration freeze disabled on purpose",
        &["caught", "violation", "shrunk plan"],
    );
    d.row(vec![format!("{}", drill.caught), drill.first_violation.clone(), drill.replay.clone()]);
    d.emit("chaos.txt");
    if drill.caught {
        println!("planted bug caught: {}", drill.first_violation);
        println!("  {}", drill.replay);
        if let Some(dump) = &drill.trace_dump {
            println!(
                "  flight recorder — last {} events of the shrunk replay:",
                chaos::TRACE_DUMP_EVENTS
            );
            for line in dump.lines() {
                println!("    {line}");
            }
        }
    } else {
        println!("planted bug NOT caught — the oracle layer has a blind spot");
    }

    let per_workload: Vec<String> = chaos::ALL_WORKLOADS
        .iter()
        .map(|w| {
            let bad =
                runs.iter().filter(|r| r.workload == w.name() && !r.violations.is_empty()).count();
            format!(
                "    {{\"workload\": \"{}\", \"plans\": {}, \"violations\": {}}}",
                w.name(),
                seeds_per_workload,
                bad
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"chaos_soak\",\n  \"plans\": {},\n  \"violations\": {},\n  \"workloads\": [\n{}\n  ],\n  \"planted_bug_caught\": {},\n  \"planted_bug_replay\": \"{}\",\n  \"metrics\": {}\n}}\n",
        runs.len(),
        failures.len(),
        per_workload.join(",\n"),
        drill.caught,
        drill.replay.replace('"', "'"),
        chaos::aggregate_metrics_json(&runs, 2).trim_end(),
    );
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write("results/chaos.json", json);
    failures.is_empty() && drill.caught
}

/// Parse a seed as printed by the soak table / replay lines: decimal or
/// `0x`-prefixed hex.
fn parse_seed(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// `harness trace <plan-seed> <workload-seed> [workload]`: replay any
/// chaos run with the flight recorder armed and print the full trace,
/// green or not. Defaults to replaying the seed pair against every
/// workload; name one (as printed in replay lines) to narrow it.
fn run_trace(rest: &[String]) -> bool {
    let (Some(plan_seed), Some(workload_seed)) =
        (rest.first().and_then(|s| parse_seed(s)), rest.get(1).and_then(|s| parse_seed(s)))
    else {
        eprintln!("usage: harness trace <plan-seed> <workload-seed> [workload]");
        eprintln!("workloads: {}", chaos::ALL_WORKLOADS.map(|w| w.name()).join(", "));
        return false;
    };
    let workloads: Vec<chaos::Workload> = match rest.get(2) {
        Some(name) => match chaos::Workload::from_name(name) {
            Some(w) => vec![w],
            None => {
                eprintln!(
                    "unknown workload {name:?}; expected one of: {}",
                    chaos::ALL_WORKLOADS.map(|w| w.name()).join(", ")
                );
                return false;
            }
        },
        None => chaos::ALL_WORKLOADS.to_vec(),
    };
    let mut ok = true;
    for w in workloads {
        let r = chaos::trace_one(w, plan_seed, workload_seed);
        println!("=== {} | {}", r.workload, r.replay);
        println!("{}", r.trace_dump.as_deref().unwrap_or("(no events recorded)"));
        println!("event totals: {}", r.metrics_json.trim_end());
        if r.violations.is_empty() {
            println!("verdict: green");
        } else {
            ok = false;
            for v in &r.violations {
                println!("VIOLATION: {v}");
            }
        }
        println!();
    }
    ok
}

/// Allowed recorder-compiled-in-but-disabled overhead: best-of-N must
/// stay at or above this fraction of the observability-free baseline
/// (i.e. at most 2% slower).
const GATE_FRACTION: f64 = 0.98;
/// Trials for the standalone `engine-gate` form. Wall-clock noise on a
/// shared machine dwarfs a 2% effect on any single run; best-of-N
/// isolates the machine's quiet moments.
const GATE_TRIALS: usize = 7;

/// `harness engine-probe`: one storm, recorder disabled, events/s as a
/// bare number on stdout. `scripts/check.sh` interleaves probes of the
/// default build against an `--features obs-off` build (observability
/// compile-folded out of the same tree -- the hot path as it was before
/// the flight recorder landed) so machine-load drift cancels out of the
/// comparison.
fn run_engine_probe() {
    assert!(!snipe_netsim::trace::enabled(), "probe measures the recorder-disabled configuration");
    let r = engine::storm_with("probe", 32, SimDuration::from_secs(2), 42, true);
    println!("{:.0}", r.events_per_sec);
}

/// `harness engine-gate <baseline-events-per-sec>`: best-of-N of the
/// recorder-disabled storm must reach [`GATE_FRACTION`] of `baseline`
/// (an `engine-probe` reading from the `obs-off` build of this tree).
fn run_engine_gate(baseline: f64) -> bool {
    assert!(!snipe_netsim::trace::enabled(), "gate measures the recorder-disabled configuration");
    let sim = SimDuration::from_secs(2);
    let mut best = 0.0f64;
    for trial in 0..GATE_TRIALS {
        let r = engine::storm_with("gate", 32, sim, 42, true);
        println!("  trial {trial}: {:.0} events/s", r.events_per_sec);
        if r.events_per_sec > best {
            best = r.events_per_sec;
        }
    }
    let floor = baseline * GATE_FRACTION;
    let ok = best >= floor;
    println!(
        "engine overhead gate: best-of-{GATE_TRIALS} {best:.0} events/s vs floor {floor:.0} \
         ({:.1}% of observability-free baseline {baseline:.0}) -> {}",
        best / baseline * 100.0,
        if ok { "PASS" } else { "FAIL" },
    );
    ok
}

/// `harness shard`: the sharded-engine scaling matrix — every world
/// size in [`shard_storm::scaling_matrix`] at every thread count in
/// [`shard_storm::THREAD_SWEEP`]. Digests must agree across thread
/// counts at each size (determinism is not optional in a benchmark
/// that exists to prove it). Writes `results/bench_shard.json`.
fn run_shard() -> bool {
    // Early-return dispatch skips main()'s per-experiment cleanup, and
    // Table::emit appends — clear our own file or reruns stack tables.
    let _ = std::fs::remove_file("results/shard.txt");
    let mut t = Table::new(
        "SHARD: sharded-engine storm scaling, hosts x worker threads",
        &[
            "hosts",
            "threads",
            "regions",
            "events",
            "delivered",
            "wall (s)",
            "events/sec",
            "speedup",
        ],
    );
    let mut ok = true;
    let mut size_json = Vec::new();
    for (hosts, sim) in shard_storm::scaling_matrix() {
        let mut runs = Vec::new();
        for &threads in &shard_storm::THREAD_SWEEP {
            runs.push(shard_storm::storm(hosts, sim, 42, threads));
        }
        let base = runs[0].events_per_sec;
        for r in &runs {
            if r.digest != runs[0].digest {
                ok = false;
                println!(
                    "DETERMINISM VIOLATION at {hosts} hosts: {} threads -> {:#x}, 1 thread -> {:#x}",
                    r.threads, r.digest, runs[0].digest
                );
            }
            t.row(vec![
                format!("{hosts}"),
                format!("{}", r.threads),
                format!("{}", r.regions),
                format!("{}", r.events),
                format!("{}", r.delivered),
                format!("{:.3}", r.wall_seconds),
                format!("{:.0}", r.events_per_sec),
                format!("{:.2}x", r.events_per_sec / base),
            ]);
        }
        let best = runs
            .iter()
            .cloned()
            .reduce(|a, b| if b.events_per_sec > a.events_per_sec { b } else { a })
            .expect("runs");
        let run_json: Vec<String> = runs
            .iter()
            .map(|r| {
                format!(
                    "        {{\"threads\": {}, \"events\": {}, \"sent\": {}, \"delivered\": {}, \"wall_seconds\": {:.4}, \"events_per_sec\": {:.0}, \"speedup\": {:.2}}}",
                    r.threads, r.events, r.sent, r.delivered, r.wall_seconds, r.events_per_sec,
                    r.events_per_sec / base,
                )
            })
            .collect();
        size_json.push(format!(
            "    {{\n      \"hosts\": {hosts},\n      \"sim_seconds\": {:.3},\n      \"regions\": {},\n      \"digest\": \"{:#x}\",\n      \"digests_agree\": {},\n      \"best_threads\": {},\n      \"best_speedup\": {:.2},\n      \"runs\": [\n{}\n      ]\n    }}",
            runs[0].sim_seconds,
            runs[0].regions,
            runs[0].digest,
            runs.iter().all(|r| r.digest == runs[0].digest),
            best.threads,
            best.events_per_sec / base,
            run_json.join(",\n"),
        ));
    }
    t.emit("shard.txt");
    // Wall-clock speedup is bounded by the cores this process may
    // actually use; record it so the sweep is interpretable (on a
    // 1-core box the thread columns measure overhead, not scaling).
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let json = format!(
        "{{\n  \"experiment\": \"bench_shard\",\n  \"storm\": {{\"cluster\": {}, \"seed\": 42, \"burst\": 6, \"cross_region_fraction\": 0.1}},\n  \"thread_sweep\": [1, 2, 4, 8],\n  \"cpu_cores\": {cores},\n  \"determinism_ok\": {ok},\n  \"sizes\": [\n{}\n  ]\n}}\n",
        shard_storm::CLUSTER,
        size_json.join(",\n"),
    );
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write("results/bench_shard.json", json);
    ok
}

/// `harness shard-digest <threads> [seed]`: print the behavioural
/// digest of the fixed [`shard_storm::digest_run`] configuration. The
/// `shard-determinism` gate in `scripts/check.sh` compares the output
/// at 1 and 4 threads byte-for-byte.
fn run_shard_digest(rest: &[String]) -> bool {
    let Some(threads) = rest.first().and_then(|s| s.parse::<usize>().ok()).filter(|t| *t > 0)
    else {
        eprintln!("usage: harness shard-digest <threads> [seed]");
        return false;
    };
    let seed = match rest.get(1) {
        Some(s) => match parse_seed(s) {
            Some(seed) => seed,
            None => {
                eprintln!("unparseable seed {s:?}");
                return false;
            }
        },
        None => 42,
    };
    println!("{:#018x}", shard_storm::digest_run(threads, seed));
    true
}

/// `harness shard-soak [seeds-per-workload]` (C2): seeded fault plans
/// against the sharded-engine workloads, every run doubled at a second
/// thread count as a differential determinism check.
fn run_shard_soak(seeds_per_workload: u64) -> bool {
    let _ = std::fs::remove_file("results/chaos_shard.txt");
    let runs = chaos_shard::soak(seeds_per_workload);
    let mut t = Table::new(
        "C2: sharded-engine chaos soak — fault plans vs engine-level oracles",
        &["workload", "plan seed", "wseed", "ops", "packet", "digest", "verdict"],
    );
    let mut failures = Vec::new();
    for r in &runs {
        t.row(vec![
            r.workload.to_string(),
            format!("{:#x}", r.plan_seed),
            format!("{:#x}", r.workload_seed),
            format!("{}", r.ops),
            format!("{}", r.packet),
            format!("{:#x}", r.digest),
            if r.violations.is_empty() { "green".into() } else { "VIOLATED".into() },
        ]);
        if !r.violations.is_empty() {
            failures.push(r.clone());
        }
    }
    t.emit("chaos_shard.txt");
    for f in &failures {
        println!("VIOLATION in {}: {}", f.workload, f.violations[0]);
        println!("  {}", f.replay);
    }
    let per_workload: Vec<String> = chaos_shard::ALL_SHARD_WORKLOADS
        .iter()
        .map(|w| {
            let bad =
                runs.iter().filter(|r| r.workload == w.name() && !r.violations.is_empty()).count();
            format!(
                "    {{\"workload\": \"{}\", \"plans\": {}, \"violations\": {}}}",
                w.name(),
                seeds_per_workload,
                bad
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"chaos_shard_soak\",\n  \"hosts\": {},\n  \"plans\": {},\n  \"violations\": {},\n  \"workloads\": [\n{}\n  ]\n}}\n",
        chaos_shard::SOAK_HOSTS,
        runs.len(),
        failures.len(),
        per_workload.join(",\n"),
    );
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write("results/chaos_shard.json", json);
    failures.is_empty()
}

/// `harness rcds` (RCDS): register [`rcds_bench::NAMES`] names into the
/// sharded catalog and report resolution throughput with p50/p99 from
/// the metrics registry. The check.sh gate requires ≥1M registered
/// names and a written `results/bench_rcds.json`.
fn run_rcds() -> bool {
    let r = rcds_bench::run(rcds_bench::NAMES);
    let mut t = Table::new(
        "RCDS: sharded metadata plane — 1M-name registration and resolution",
        &["phase", "ops", "ops/sec", "p50 ns", "p99 ns"],
    );
    t.row(vec![
        "register".into(),
        format!("{}", r.names),
        format!("{:.0}", r.register_per_sec),
        "-".into(),
        "-".into(),
    ]);
    t.row(vec![
        "resolve (store)".into(),
        format!("{}", r.lookups),
        format!("{:.0}", r.resolve_per_sec),
        format!("{}", r.p50_ns),
        format!("{}", r.p99_ns),
    ]);
    t.row(vec![
        "resolve (client+cache)".into(),
        format!("{}", r.client_lookups),
        format!("{:.0}", r.client_per_sec),
        format!("{}", r.client_p50_ns),
        format!("{}", r.client_p99_ns),
    ]);
    t.emit("bench_rcds.txt");
    println!(
        "shard balance: min {} / max {} names per shard across {} shards; cache hits {}",
        r.shard_min, r.shard_max, r.shards, r.cache_hits
    );
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write("results/bench_rcds.json", r.to_json());
    let ok = r.names >= 1_000_000 && r.p99_ns > 0 && r.shard_min > 0;
    if !ok {
        eprintln!(
            "rcds bench gate FAILED: names={} p99={} shard_min={}",
            r.names, r.p99_ns, r.shard_min
        );
    }
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("rcds") {
        let _ = std::fs::remove_file("results/bench_rcds.txt");
        if !run_rcds() {
            std::process::exit(1);
        }
        return;
    }
    if args.first().map(String::as_str) == Some("shard") {
        if !run_shard() {
            std::process::exit(1);
        }
        return;
    }
    if args.first().map(String::as_str) == Some("shard-digest") {
        if !run_shard_digest(&args[1..]) {
            std::process::exit(1);
        }
        return;
    }
    if args.first().map(String::as_str) == Some("shard-soak") {
        let seeds = args.get(1).and_then(|a| a.parse::<u64>().ok()).unwrap_or(4);
        if !run_shard_soak(seeds) {
            std::process::exit(1);
        }
        return;
    }
    if args.first().map(String::as_str) == Some("full-proto-digest") {
        if !run_full_proto_digest(&args[1..]) {
            std::process::exit(1);
        }
        return;
    }
    if args.first().map(String::as_str) == Some("e4-shard") {
        if !run_e4_shard() {
            std::process::exit(1);
        }
        return;
    }
    if args.first().map(String::as_str) == Some("trace") {
        if !run_trace(&args[1..]) {
            std::process::exit(1);
        }
        return;
    }
    if args.first().map(String::as_str) == Some("fec") {
        let _ = std::fs::remove_file("results/fec.txt");
        if !run_fec() {
            std::process::exit(1);
        }
        println!("done. tables written under results/");
        return;
    }
    if args.first().map(String::as_str) == Some("engine-probe") {
        run_engine_probe();
        return;
    }
    if args.first().map(String::as_str) == Some("engine-gate") {
        let Some(baseline) = args.get(1).and_then(|a| a.parse::<f64>().ok()).filter(|b| *b > 0.0)
        else {
            eprintln!("usage: harness engine-gate <baseline-events-per-sec>");
            eprintln!(
                "(get the baseline from `harness engine-probe` built with --features obs-off)"
            );
            std::process::exit(1);
        };
        if !run_engine_gate(baseline) {
            std::process::exit(1);
        }
        return;
    }
    let all = args.is_empty();
    let want = |k: &str| all || args.iter().any(|a| a == k);
    if all {
        // Fresh full run: clear old tables. Selective runs append /
        // replace only their own files.
        let _ = std::fs::remove_dir_all("results");
    } else {
        for a in &args {
            let _ = std::fs::remove_file(format!("results/{a}.txt"));
        }
    }
    if want("f1") {
        run_f1();
    }
    if want("e2") {
        run_e2();
    }
    if want("e3") {
        run_e3();
    }
    if want("e4") {
        run_e4();
    }
    if want("e5") {
        run_e5();
    }
    if want("e6") {
        run_e6();
    }
    if want("e7") {
        run_e7();
    }
    if want("e8") {
        run_e8();
    }
    if want("a1") {
        run_a1();
    }
    if want("a2") {
        run_a2();
    }
    if want("a3") {
        run_a3();
    }
    if want("engine") {
        run_engine();
    }
    let mut chaos_ok = true;
    if args.iter().any(|a| a == "chaos-smoke") {
        // Bounded gate for CI: 2 plans per workload plus the drill.
        let _ = std::fs::remove_file("results/chaos.txt");
        chaos_ok = run_chaos(2);
    } else if want("chaos") {
        chaos_ok = run_chaos(16);
    }
    println!("done. tables written under results/");
    if !chaos_ok {
        std::process::exit(1);
    }
}
