//! Plain-text tables and result files.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A simple fixed-width table.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render as text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut s = String::new();
        let _ = writeln!(s, "== {} ==", self.title);
        let line = |s: &mut String, cells: &[String]| {
            let mut parts = Vec::new();
            for (i, c) in cells.iter().enumerate() {
                parts.push(format!("{:<w$}", c, w = widths[i]));
            }
            let _ = writeln!(s, "| {} |", parts.join(" | "));
        };
        line(&mut s, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + widths.len() * 3 + 1;
        let _ = writeln!(s, "{}", "-".repeat(total));
        for r in &self.rows {
            line(&mut s, r);
        }
        s
    }

    /// Print to stdout and append to `results/<file>`.
    pub fn emit(&self, file: &str) {
        let text = self.render();
        println!("{text}");
        let dir = Path::new("results");
        let _ = fs::create_dir_all(dir);
        let path = dir.join(file);
        let mut existing = fs::read_to_string(&path).unwrap_or_default();
        existing.push_str(&text);
        existing.push('\n');
        let _ = fs::write(&path, existing);
    }
}

/// Format bytes/second as MB/s (the paper's Fig. 1 unit).
pub fn mbps(bytes_per_sec: f64) -> String {
    format!("{:.2}", bytes_per_sec / 1_000_000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders() {
        let mut t = Table::new("demo", &["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("| 1"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
