//! E6 — §5.4 multicast fault tolerance: a sender targets "more than
//! half of the routers", members register with a majority, routers are
//! fully peered — so killing any minority of routers mid-stream must
//! not lose a single group message.

use std::sync::{Arc, Mutex};

use bytes::Bytes;

use snipe_netsim::actor::{Actor, Ctx, Event};
use snipe_netsim::medium::Medium;
use snipe_netsim::topology::{Endpoint, HostCfg, Topology};
use snipe_netsim::world::World;
use snipe_util::time::{SimDuration, SimTime};
use snipe_wire::frame::{open, seal, Proto};
use snipe_wire::mcast::{majority, McastMember, McastMsg, McastRouter};
use snipe_wire::Out;

/// Measured outcome.
#[derive(Clone, Debug)]
pub struct E6Point {
    /// Routers deployed.
    pub routers: usize,
    /// Routers killed mid-stream.
    pub killed: usize,
    /// Messages sent to the group.
    pub sent: u32,
    /// Distinct messages each member delivered (min across members).
    pub min_delivered: u32,
    /// Duplicate deliveries suppressed at members (sum).
    pub duplicates: u64,
}

struct RouterActor {
    state: McastRouter,
}

impl Actor for RouterActor {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
        if let Event::Packet { payload, .. } = event {
            let Ok((Proto::Mcast, body)) = open(payload) else {
                return;
            };
            let Ok(msg) = McastMsg::decode(body) else {
                return;
            };
            let mut outs = Vec::new();
            self.state.on_message(msg, &mut outs);
            for o in outs {
                if let Out::Send { to, bytes, .. } = o {
                    if to != ctx.me() {
                        ctx.send(to, bytes);
                    }
                }
            }
        }
    }
}

struct MemberActor {
    dedup: McastMember,
    delivered: Arc<Mutex<u32>>,
    duplicates: Arc<Mutex<u64>>,
}

impl Actor for MemberActor {
    fn on_event(&mut self, _ctx: &mut Ctx<'_>, event: Event) {
        if let Event::Packet { payload, .. } = event {
            let Ok((Proto::Mcast, body)) = open(payload) else {
                return;
            };
            let Ok(McastMsg::Data { group, origin, seq, payload, .. }) = McastMsg::decode(body)
            else {
                return;
            };
            if self.dedup.accept(group, origin, seq, payload).is_some() {
                *self.delivered.lock().unwrap() += 1;
            } else {
                *self.duplicates.lock().unwrap() += 1;
            }
        }
    }
}

struct SenderActor {
    routers: Vec<Endpoint>,
    total: u32,
    seq: u64,
    interval: SimDuration,
}

impl Actor for SenderActor {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
        match event {
            Event::Start | Event::Timer { .. } => {
                if self.seq as u32 >= self.total {
                    return;
                }
                let m = majority(self.routers.len());
                for r in self.routers.iter().take(m) {
                    let msg = McastMsg::Data {
                        group: 1,
                        origin: 7,
                        seq: self.seq,
                        ttl: 8,
                        payload: Bytes::from(vec![0u8; 256]),
                    };
                    ctx.send(*r, seal(Proto::Mcast, msg.encode()));
                }
                self.seq += 1;
                ctx.set_timer(self.interval, 1);
            }
            _ => {}
        }
    }
}

/// Run the router-kill drill.
pub fn run(routers: usize, members: usize, kill: usize, total: u32, seed: u64) -> E6Point {
    assert!(kill < majority(routers), "killing a majority is out of contract");
    let mut topo = Topology::new();
    let net = topo.add_network("eth", Medium::ethernet100(), true);
    let mut router_hosts = Vec::new();
    for i in 0..routers {
        let h = topo.add_host(HostCfg::named(format!("r{i}")));
        topo.attach(h, net);
        router_hosts.push(h);
    }
    let mut member_hosts = Vec::new();
    for i in 0..members {
        let h = topo.add_host(HostCfg::named(format!("m{i}")));
        topo.attach(h, net);
        member_hosts.push(h);
    }
    let sender_host = topo.add_host(HostCfg::named("s"));
    topo.attach(sender_host, net);
    let mut world = World::new(topo, seed);
    let router_eps: Vec<Endpoint> = router_hosts.iter().map(|&h| Endpoint::new(h, 5)).collect();
    let member_eps: Vec<Endpoint> = member_hosts.iter().map(|&h| Endpoint::new(h, 20)).collect();
    // Routers: fully peered, each member registered with a majority
    // (the §5.4 registration discipline).
    for (i, &h) in router_hosts.iter().enumerate() {
        let mut state = McastRouter::new();
        let mut scratch = Vec::new();
        for (j, &peer) in router_eps.iter().enumerate() {
            if i != j {
                state.on_message(McastMsg::Peer { group: 1, router: peer }, &mut scratch);
            }
        }
        for (mi, &member) in member_eps.iter().enumerate() {
            // Member mi registers with majority starting at offset mi.
            let m = majority(routers);
            let covers = (0..m).map(|k| (mi + k) % routers).any(|idx| idx == i);
            if covers {
                state.on_message(McastMsg::Join { group: 1, member }, &mut scratch);
            }
        }
        world.spawn(h, 5, Box::new(RouterActor { state }));
    }
    let mut delivered_counters = Vec::new();
    let duplicates = Arc::new(Mutex::new(0u64));
    for &h in &member_hosts {
        let d = Arc::new(Mutex::new(0u32));
        delivered_counters.push(d.clone());
        world.spawn(
            h,
            20,
            Box::new(MemberActor {
                dedup: McastMember::new(),
                delivered: d,
                duplicates: duplicates.clone(),
            }),
        );
    }
    world.spawn(
        sender_host,
        20,
        Box::new(SenderActor {
            routers: router_eps,
            total,
            seq: 0,
            interval: SimDuration::from_millis(5),
        }),
    );
    // Kill `kill` routers midway through the stream.
    let mid = SimTime::ZERO + SimDuration::from_millis(5) * (total as u64 / 2);
    for &h in router_hosts.iter().take(kill) {
        world.schedule_fn(mid, move |w| w.host_down(h));
    }
    world.run_for(SimDuration::from_millis(5) * total as u64 + SimDuration::from_secs(2));
    let min_delivered = delivered_counters.iter().map(|c| *c.lock().unwrap()).min().unwrap_or(0);
    let dups = *duplicates.lock().unwrap();
    E6Point { routers, killed: kill, sent: total, min_delivered, duplicates: dups }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minority_router_kill_loses_nothing() {
        let p = run(5, 4, 2, 100, 11);
        assert_eq!(p.min_delivered, p.sent, "{p:?}");
        assert!(p.duplicates > 0, "redundant paths must produce (suppressed) duplicates");
    }

    #[test]
    fn single_router_no_kill_baseline() {
        let p = run(1, 2, 0, 50, 12);
        assert_eq!(p.min_delivered, 50);
    }
}
