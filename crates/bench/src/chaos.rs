//! C1 — the chaos soak: adversarial fault plans vs invariant oracles.
//!
//! Each workload wires one of the paper's experiment shapes (E7-style
//! failover transfer, E5 migration, E3-style replicated metadata, E6
//! multicast) to a seeded [`ChaosPlan`] and, after the plan quiesces,
//! asserts the cross-stack invariants in [`crate::oracles`]. A failing
//! `(plan_seed, workload_seed)` pair replays bit-for-bit and is greedily
//! shrunk to a minimal violating plan.

use std::rc::Rc;
use std::sync::{Arc, Mutex};

use bytes::Bytes;

use snipe_core::SnipeWorldBuilder;
use snipe_files::{FetchActor, FileServerActor, FileServerConfig};
use snipe_netsim::actor::{Actor, Ctx, Event, TimerGate};
use snipe_netsim::chaos::{shrink_plan, ChaosBinding, ChaosOp, ChaosPlan, ChaosShape};
use snipe_netsim::medium::Medium;
use snipe_netsim::topology::{Endpoint, HostCfg, Topology};
use snipe_netsim::trace::{self, TraceKind};
use snipe_netsim::world::World;
use snipe_rcds::assertion::Assertion;
use snipe_rcds::client::RcClient;
use snipe_rcds::server::RcServerActor;
use snipe_rcds::uri::Uri;
use snipe_util::id::NetId;
use snipe_util::metrics::Registry;
use snipe_util::time::{SimDuration, SimTime};
use snipe_wire::fec::FragStrategy;
use snipe_wire::frame::{open, seal, Proto};
use snipe_wire::mcast::{majority, McastMember, McastMsg, McastRouter};
use snipe_wire::ports;
use snipe_wire::rstream::RstreamConfig;
use snipe_wire::stack::StackConfig;
use snipe_wire::Out;

use crate::fig1::{
    FecReceiver, FecSender, RstreamReceiver, RstreamSender, SrudpReceiver, SrudpSender,
};
use crate::oracles;
use crate::{e5_migration, par_map};

/// How long a workload may sit with zero progress while a physical path
/// exists before the liveness watchdog declares a violation.
const STALL_LIMIT: SimDuration = SimDuration::from_secs(10);

/// Extra virtual time granted after the last fault quiesces for
/// recovery (covers full RTO escalation to `rto_max` plus anti-entropy).
const RECOVERY_TAIL: SimDuration = SimDuration::from_secs(30);

/// Queue-population bounds for the engine oracle: residual events after
/// quiesce (steady-state timers only) and peak depth during the run.
const MAX_RESIDUAL_EVENTS: usize = 512;
const MAX_PEAK_DEPTH: u64 = 250_000;

/// The chaos workloads, one per experiment family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// E7-shape: dual-homed SRUDP bulk transfer with route pinning.
    SrudpTransfer,
    /// Fig.1-shape: RSTREAM bulk transfer under host flaps and packet
    /// chaos (exercises the stream driver's timer re-arm paths).
    RstreamTransfer,
    /// E5-shape: process migration under a message stream.
    Migration,
    /// E3-shape: replicated metadata with crash/restart servers.
    RcdsConverge,
    /// E6-shape: majority-routed multicast (duplication/reorder chaos).
    Mcast,
    /// FEC-shape: erasure-coded message stream with shares sprayed
    /// across two media, under loss-burst / gray-link plans; the
    /// integrity oracle proves a corrupted reconstruction is never
    /// delivered.
    FecSpray,
    /// PR10-shape: replicated metadata *and* a striped file read while
    /// RCDS servers and file replicas crash/restart mid-lookup and
    /// mid-transfer; convergence, content-integrity and exactly-once
    /// stripe completion must all hold.
    ReplicaCrash,
}

/// Every workload, in soak order.
pub const ALL_WORKLOADS: [Workload; 7] = [
    Workload::SrudpTransfer,
    Workload::RstreamTransfer,
    Workload::Migration,
    Workload::RcdsConverge,
    Workload::Mcast,
    Workload::FecSpray,
    Workload::ReplicaCrash,
];

impl Workload {
    /// Stable name used in replay lines and reports.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::SrudpTransfer => "srudp-transfer",
            Workload::RstreamTransfer => "rstream-transfer",
            Workload::Migration => "migration",
            Workload::RcdsConverge => "rcds-converge",
            Workload::Mcast => "mcast",
            Workload::FecSpray => "fec-spray",
            Workload::ReplicaCrash => "replica-crash",
        }
    }

    /// Inverse of [`Workload::name`] — resolves the workload named in a
    /// replay line (for the `harness trace` subcommand).
    pub fn from_name(name: &str) -> Option<Workload> {
        ALL_WORKLOADS.iter().copied().find(|w| w.name() == name)
    }

    /// The fault envelope this workload's contract tolerates.
    pub fn shape(&self) -> ChaosShape {
        match self {
            Workload::SrudpTransfer => ChaosShape {
                horizon: SimDuration::from_secs(5),
                hosts: 2,
                nets: 2,
                ifaces: 4,
                procs: 0,
                max_ops: 6,
                jitter_max: SimDuration::from_millis(20),
                ..ChaosShape::default()
            },
            // Single network (RSTREAM does not fail over routes); host
            // and interface flaps plus packet chaos are in contract —
            // the stream must resume once connectivity heals.
            Workload::RstreamTransfer => ChaosShape {
                horizon: SimDuration::from_secs(5),
                hosts: 2,
                nets: 1,
                ifaces: 2,
                procs: 0,
                max_ops: 6,
                jitter_max: SimDuration::from_millis(20),
                ..ChaosShape::default()
            },
            Workload::Migration => ChaosShape {
                horizon: SimDuration::from_secs(4),
                hosts: 0,
                nets: 1,
                ifaces: 0,
                procs: 0,
                max_ops: 4,
                corrupt_max: 0.02,
                duplicate_max: 0.1,
                reorder_max: 0.1,
                jitter_max: SimDuration::from_millis(10),
                ..ChaosShape::default()
            },
            Workload::RcdsConverge => ChaosShape {
                horizon: SimDuration::from_secs(8),
                hosts: 3,
                nets: 1,
                ifaces: 0,
                procs: 3,
                max_ops: 6,
                ..ChaosShape::default()
            },
            // Multicast routers relay unreliably: only duplication,
            // reordering and gray degradation are within contract
            // (corruption/loss of every redundant copy may drop a
            // message, which §5.4 does not promise to survive). The
            // one host eligible for flapping is the *source* — it must
            // resume its paced stream after recovery.
            Workload::Mcast => ChaosShape {
                horizon: SimDuration::from_secs(3),
                hosts: 1,
                nets: 1,
                ifaces: 0,
                procs: 0,
                max_ops: 4,
                packet_prob: 0.9,
                corrupt_max: 0.0,
                duplicate_max: 0.3,
                reorder_max: 0.3,
                jitter_max: SimDuration::from_millis(15),
                ..ChaosShape::default()
            },
            // No host crashes (no state loss in contract), but both
            // networks may flap, gray out, burst-lose and partition,
            // and per-packet corruption/duplication/reordering runs
            // hot: exactly the envelope share-spraying is built for.
            Workload::FecSpray => ChaosShape {
                horizon: SimDuration::from_secs(8),
                hosts: 0,
                nets: 2,
                ifaces: 4,
                procs: 0,
                max_ops: 6,
                packet_prob: 0.9,
                corrupt_max: 0.05,
                duplicate_max: 0.15,
                reorder_max: 0.15,
                jitter_max: SimDuration::from_millis(20),
                ..ChaosShape::default()
            },
            // Both planes under fire: host flaps over every replica,
            // process crash/restart of RC servers (fresh empty store;
            // anti-entropy repopulates) and of file servers (fresh
            // process, disk contents survive), while a client writes
            // metadata and another stripes a read across the replicas.
            Workload::ReplicaCrash => ChaosShape {
                horizon: SimDuration::from_secs(8),
                hosts: 6,
                nets: 1,
                ifaces: 0,
                procs: 6,
                max_ops: 6,
                ..ChaosShape::default()
            },
        }
    }

    /// Run the workload under `plan`; empty result = every oracle held.
    pub fn run(&self, plan: &ChaosPlan, wseed: u64) -> Vec<String> {
        match self {
            Workload::SrudpTransfer => run_srudp_transfer(plan, wseed),
            Workload::RstreamTransfer => run_rstream_transfer(plan, wseed),
            Workload::Migration => run_migration(plan, wseed, false),
            Workload::RcdsConverge => run_rcds_converge(plan, wseed),
            Workload::Mcast => run_mcast(plan, wseed),
            Workload::FecSpray => run_fec_spray(plan, wseed),
            Workload::ReplicaCrash => run_replica_crash(plan, wseed),
        }
    }
}

// ---------------------------------------------------------------------------
// W1: dual-homed SRUDP transfer (E7 shape) + liveness watchdog
// ---------------------------------------------------------------------------

fn run_srudp_transfer(plan: &ChaosPlan, wseed: u64) -> Vec<String> {
    // Sized so the transfer (~3.4s at ATM rate) spans most of the 5s
    // fault horizon — faults land mid-flight, not on an idle world.
    let total: usize = 64 << 20;
    let mut topo = Topology::new();
    let eth = topo.add_network("eth", Medium::ethernet100(), true);
    let atm = topo.add_network("atm", Medium::atm155(), false);
    let a = topo.add_host(HostCfg::named("a"));
    let b = topo.add_host(HostCfg::named("b"));
    for h in [a, b] {
        topo.attach(h, eth);
        topo.attach(h, atm);
    }
    let mut world = World::new(topo, wseed);
    let received = Arc::new(Mutex::new(0usize));
    let done_at: Arc<Mutex<Option<SimTime>>> = Arc::new(Mutex::new(None));
    let mut cfg = StackConfig::default();
    cfg.srudp.rto_initial = SimDuration::from_millis(20);
    world.spawn(
        b,
        20,
        Box::new(SrudpReceiver {
            stack: None,
            received: received.clone(),
            done_at: done_at.clone(),
            expect: total,
            cfg: cfg.clone(),
            pin: Some(vec![atm, eth]),
            gate: TimerGate::new(),
        }),
    );
    world.spawn(
        a,
        20,
        Box::new(SrudpSender {
            stack: None,
            peer: Endpoint::new(b, 20),
            msg_size: 16 * 1024,
            remaining: total,
            inflight: 64 * 1400,
            cfg,
            pin: Some(vec![atm, eth]),
            gate: TimerGate::new(),
        }),
    );
    let binding = ChaosBinding {
        hosts: vec![a, b],
        nets: vec![eth, atm],
        ifaces: vec![(a, eth), (a, atm), (b, eth), (b, atm)],
        procs: vec![],
    };
    plan.apply(&mut world, &binding);

    // Virtual-time liveness watchdog: stalling while a physical path
    // exists is a violation even before the completion deadline.
    let mut violations = Vec::new();
    let deadline = plan.quiesce_at() + RECOVERY_TAIL;
    let step = SimDuration::from_millis(250);
    let mut last = 0usize;
    let mut stall = SimDuration::from_nanos(0);
    loop {
        world.run_for(step);
        if done_at.lock().unwrap().is_some() {
            break;
        }
        let got = *received.lock().unwrap();
        if got > last {
            last = got;
            stall = SimDuration::from_nanos(0);
        } else if world.topology().reachable(a, b) {
            stall = stall + step;
            if stall >= STALL_LIMIT {
                violations.push(format!(
                    "srudp-transfer: no progress for {:.1}s of virtual time with a live path \
                     ({last} of {total} bytes)",
                    stall.as_secs_f64()
                ));
                break;
            }
        }
        if world.now() >= deadline {
            violations.push(format!(
                "srudp-transfer: transfer incomplete at quiesce+{}s ({} of {total} bytes)",
                RECOVERY_TAIL.as_secs_f64(),
                *received.lock().unwrap()
            ));
            break;
        }
    }
    let got = *received.lock().unwrap();
    if done_at.lock().unwrap().is_some() && got != total {
        violations.push(format!(
            "srudp-transfer: exactly-once violated — {got} bytes delivered for {total} sent"
        ));
    }
    violations.extend(oracles::check_engine_bounded(
        "srudp-transfer",
        &world,
        MAX_RESIDUAL_EVENTS,
        MAX_PEAK_DEPTH,
    ));
    violations
}

// ---------------------------------------------------------------------------
// W1c: FEC share-spray message stream under loss bursts and gray links
// ---------------------------------------------------------------------------

fn run_fec_spray(plan: &ChaosPlan, wseed: u64) -> Vec<String> {
    // 200 × 7000-byte messages, each split into 9 erasure shares and
    // sprayed across two WAN paths. With ~2 messages pipelined the
    // stream is latency-bound (~7s at a 72ms RTT) so the plan's loss
    // bursts and gray links land on live traffic for the whole 8s
    // horizon. The contract: exactly-once in-order delivery, every
    // delivered message byte-exact (reconstruct-then-verify gate), no
    // in-contract peer evicted from partial-reassembly state.
    let count: u64 = 200;
    let msg_size: usize = 7000;
    let mut topo = Topology::new();
    let wan_a = topo.add_network("wan-a", Medium::wan(), true);
    let wan_b = topo.add_network("wan-b", Medium::wan(), false);
    let a = topo.add_host(HostCfg::named("a"));
    let b = topo.add_host(HostCfg::named("b"));
    for h in [a, b] {
        topo.attach(h, wan_a);
        topo.attach(h, wan_b);
    }
    let mut world = World::new(topo, wseed);
    let seqs: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
    let mismatches: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let stats = Arc::new(Mutex::new(snipe_wire::srudp::SrudpStats::default()));
    let done_at: Arc<Mutex<Option<SimTime>>> = Arc::new(Mutex::new(None));
    let mut cfg = StackConfig::default();
    cfg.srudp.frag_strategy = FragStrategy::Fec;
    world.spawn(
        b,
        20,
        Box::new(FecReceiver {
            stack: None,
            cfg: cfg.clone(),
            pin: Some(vec![wan_a, wan_b]),
            gate: TimerGate::new(),
            expect: count,
            msg_size,
            seqs: seqs.clone(),
            mismatches: mismatches.clone(),
            stats: stats.clone(),
            done_at: done_at.clone(),
        }),
    );
    world.spawn(
        a,
        20,
        Box::new(FecSender {
            stack: None,
            peer: Endpoint::new(b, 20),
            msg_size,
            count,
            next: 0,
            inflight: 26_000,
            cfg,
            pin: Some(vec![wan_a, wan_b]),
            gate: TimerGate::new(),
        }),
    );
    let binding = ChaosBinding {
        hosts: vec![a, b],
        nets: vec![wan_a, wan_b],
        ifaces: vec![(a, wan_a), (a, wan_b), (b, wan_a), (b, wan_b)],
        procs: vec![],
    };
    plan.apply(&mut world, &binding);

    let mut violations = Vec::new();
    let deadline = plan.quiesce_at() + RECOVERY_TAIL;
    let step = SimDuration::from_millis(250);
    let mut last = 0usize;
    let mut stall = SimDuration::from_nanos(0);
    loop {
        world.run_for(step);
        if done_at.lock().unwrap().is_some() {
            break;
        }
        let got = seqs.lock().unwrap().len();
        if got > last {
            last = got;
            stall = SimDuration::from_nanos(0);
        } else if world.topology().reachable(a, b) {
            stall = stall + step;
            if stall >= STALL_LIMIT {
                violations.push(format!(
                    "fec-spray: no progress for {:.1}s of virtual time with a live path \
                     ({last} of {count} messages)",
                    stall.as_secs_f64()
                ));
                break;
            }
        }
        if world.now() >= deadline {
            violations.push(format!(
                "fec-spray: transfer incomplete at quiesce+{}s ({} of {count} messages)",
                RECOVERY_TAIL.as_secs_f64(),
                seqs.lock().unwrap().len()
            ));
            break;
        }
    }
    let seqs = seqs.lock().unwrap().clone();
    if done_at.lock().unwrap().is_some() {
        violations.extend(oracles::check_exactly_once_in_order("fec-spray", count as u32, &seqs));
    }
    let st = stats.lock().unwrap().clone();
    violations.extend(oracles::check_fec_integrity(
        "fec-spray",
        &mismatches.lock().unwrap(),
        &st,
        done_at.lock().unwrap().is_some(),
    ));
    // REASM_TTL (60s) exceeds the whole watchdog window, so an
    // in-contract sender must never be swept from reassembly state.
    violations.extend(oracles::check_reasm_bounded("fec-spray", &st, 0));
    violations.extend(oracles::check_engine_bounded(
        "fec-spray",
        &world,
        MAX_RESIDUAL_EVENTS,
        MAX_PEAK_DEPTH,
    ));
    violations
}

// ---------------------------------------------------------------------------
// W1b: RSTREAM bulk transfer (Fig.1 shape) under host flaps
// ---------------------------------------------------------------------------

fn run_rstream_transfer(plan: &ChaosPlan, wseed: u64) -> Vec<String> {
    // ~2.7s at Ethernet rate against the 5s fault horizon.
    let total: usize = 32 << 20;
    let mut topo = Topology::new();
    let net = topo.add_network("eth", Medium::ethernet100(), true);
    let a = topo.add_host(HostCfg::named("a"));
    let b = topo.add_host(HostCfg::named("b"));
    for h in [a, b] {
        topo.attach(h, net);
    }
    let mut world = World::new(topo, wseed);
    let received = Arc::new(Mutex::new(0usize));
    let done_at: Arc<Mutex<Option<SimTime>>> = Arc::new(Mutex::new(None));
    // Faults may sever connectivity for most of the 5s horizon; widen
    // the abort budget so the stream outlives them and resumes.
    let mut rcfg = RstreamConfig::default();
    rcfg.max_timeouts = 100;
    world.spawn(
        b,
        20,
        Box::new(RstreamReceiver {
            stack: None,
            cfg: rcfg.clone(),
            received: received.clone(),
            done_at: done_at.clone(),
            expect: total,
            gate: TimerGate::new(),
        }),
    );
    world.spawn(
        a,
        20,
        Box::new(RstreamSender {
            stack: None,
            cfg: rcfg,
            conn: 0,
            peer: Endpoint::new(b, 20),
            msg_size: 16 * 1024,
            remaining: total,
            inflight_cap: 64 * 1400,
            gate: TimerGate::new(),
        }),
    );
    let binding = ChaosBinding {
        hosts: vec![a, b],
        nets: vec![net],
        ifaces: vec![(a, net), (b, net)],
        procs: vec![],
    };
    plan.apply(&mut world, &binding);

    let mut violations = Vec::new();
    let deadline = plan.quiesce_at() + RECOVERY_TAIL;
    let step = SimDuration::from_millis(250);
    let mut last = 0usize;
    let mut stall = SimDuration::from_nanos(0);
    loop {
        world.run_for(step);
        if done_at.lock().unwrap().is_some() {
            break;
        }
        let got = *received.lock().unwrap();
        if got > last {
            last = got;
            stall = SimDuration::from_nanos(0);
        } else if world.topology().reachable(a, b) {
            stall = stall + step;
            if stall >= STALL_LIMIT {
                violations.push(format!(
                    "rstream-transfer: no progress for {:.1}s of virtual time with a live \
                     path ({last} of {total} bytes)",
                    stall.as_secs_f64()
                ));
                break;
            }
        }
        if world.now() >= deadline {
            violations.push(format!(
                "rstream-transfer: transfer incomplete at quiesce+{}s ({} of {total} bytes)",
                RECOVERY_TAIL.as_secs_f64(),
                *received.lock().unwrap()
            ));
            break;
        }
    }
    let got = *received.lock().unwrap();
    if done_at.lock().unwrap().is_some() && got != total {
        violations.push(format!(
            "rstream-transfer: exactly-once violated — {got} bytes delivered for {total} sent"
        ));
    }
    violations.extend(oracles::check_engine_bounded(
        "rstream-transfer",
        &world,
        MAX_RESIDUAL_EVENTS,
        MAX_PEAK_DEPTH,
    ));
    violations
}

// ---------------------------------------------------------------------------
// W2: migration under load (E5 shape) — and the planted-bug drill
// ---------------------------------------------------------------------------

/// Run the E5 migration stream under a chaos plan. `disable_freeze`
/// switches off the packet freeze that protects in-flight traffic while
/// a process moves — the deliberately planted bug the oracles must
/// catch (`ProcessConfig::chaos_disable_migration_freeze`).
pub fn run_migration(plan: &ChaosPlan, wseed: u64, disable_freeze: bool) -> Vec<String> {
    // 2.8s of stream against a 4s fault horizon: the move at 300ms and
    // most fault ops land while messages are in flight.
    let total: u32 = 700;
    let interval = SimDuration::from_millis(4);
    let mut w = SnipeWorldBuilder::lan(4, wseed).build();
    if disable_freeze {
        w.process_config_mut().chaos_disable_migration_freeze = true;
    }
    let deliveries = Arc::new(Mutex::new(Vec::new()));
    let migrated_at = Arc::new(Mutex::new(None));
    let (dl, ma) = (deliveries.clone(), migrated_at.clone());
    w.register_process("worker", move |_| {
        Box::new(e5_migration::Worker {
            deliveries: dl.clone(),
            migrated_at: ma.clone(),
            move_after: SimDuration::from_millis(300),
            target: "host3".into(),
        })
    });
    let (wkey, _) = w.spawn_on("host1", "worker", Bytes::new()).expect("spawn worker");
    w.register_process("streamer", move |_| {
        Box::new(e5_migration::Streamer { peer: wkey, total, sent: 0, interval })
    });
    w.spawn_on("host2", "streamer", Bytes::new()).expect("spawn streamer");
    let binding =
        ChaosBinding { hosts: vec![], nets: vec![NetId(0)], ifaces: vec![], procs: vec![] };
    plan.apply(w.sim(), &binding);

    let stream_end = SimTime::ZERO + interval * (total as u64 + 2);
    let deadline = plan.quiesce_at().max(stream_end) + RECOVERY_TAIL;
    loop {
        w.run_for(SimDuration::from_millis(500));
        let done = deliveries.lock().unwrap().len() as u32 >= total
            && migrated_at.lock().unwrap().is_some();
        if done || w.now() >= deadline {
            break;
        }
    }

    let mut violations = Vec::new();
    let seqs: Vec<u32> = deliveries.lock().unwrap().iter().map(|&(_, s)| s).collect();
    violations.extend(oracles::check_exactly_once_in_order("migration", total, &seqs));
    if migrated_at.lock().unwrap().is_none() {
        violations.push("migration: process never completed its move".into());
    }
    violations.extend(oracles::check_engine_bounded(
        "migration",
        w.sim_ref(),
        MAX_RESIDUAL_EVENTS,
        MAX_PEAK_DEPTH,
    ));
    violations
}

// ---------------------------------------------------------------------------
// W3: replicated metadata convergence (E3 shape) with server restarts
// ---------------------------------------------------------------------------

const TIMER_FIRE: u64 = 20;
const TIMER_RC: u64 = 21;

/// Writes an evolving assertion during the fault window.
struct ChaosWriter {
    rc: RcClient,
    uri: Uri,
    interval: SimDuration,
    writes_left: u32,
    next_val: u32,
}

impl ChaosWriter {
    fn flush(&mut self, ctx: &mut Ctx<'_>) {
        for (to, bytes) in self.rc.drain_sends() {
            ctx.send(to, seal(Proto::Raw, bytes));
        }
        let _ = self.rc.drain_done();
        if let Some(dl) = self.rc.next_deadline() {
            let delay = dl.saturating_since(ctx.now()) + SimDuration::from_micros(1);
            ctx.set_timer(delay, TIMER_RC);
        }
    }
}

impl Actor for ChaosWriter {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
        match event {
            Event::Start | Event::Timer { token: TIMER_FIRE } => {
                if self.writes_left > 0 {
                    self.writes_left -= 1;
                    let v = format!("v{}", self.next_val);
                    self.next_val += 1;
                    let now = ctx.now();
                    self.rc.put(now, &self.uri, vec![Assertion::new("k", v)]);
                    self.flush(ctx);
                    ctx.set_timer(self.interval, TIMER_FIRE);
                }
            }
            Event::Timer { token: TIMER_RC } => {
                self.rc.on_timer(ctx.now());
                self.flush(ctx);
            }
            Event::Packet { from, payload } => {
                if let Ok((Proto::Raw, body)) = open(payload) {
                    self.rc.on_packet(ctx.now(), from, body);
                }
                self.flush(ctx);
            }
            _ => {}
        }
    }
}

/// Queries exactly one replica once faults quiesce; retries on timeout.
struct ReplicaProbe {
    rc: RcClient,
    uri: Uri,
    at: SimTime,
    out: Arc<Mutex<Option<Vec<Assertion>>>>,
    attempts: u32,
}

impl ReplicaProbe {
    fn flush(&mut self, ctx: &mut Ctx<'_>) {
        for (to, bytes) in self.rc.drain_sends() {
            ctx.send(to, seal(Proto::Raw, bytes));
        }
        for (_, result) in self.rc.drain_done() {
            match result {
                Ok(reply) => {
                    if self.out.lock().unwrap().is_none() {
                        *self.out.lock().unwrap() = Some(reply.assertions);
                    }
                }
                Err(_) if self.attempts < 30 => {
                    self.attempts += 1;
                    let now = ctx.now();
                    let uri = self.uri.clone();
                    self.rc.get(now, &uri);
                }
                Err(_) => {}
            }
        }
        if let Some(dl) = self.rc.next_deadline() {
            let delay = dl.saturating_since(ctx.now()) + SimDuration::from_micros(1);
            ctx.set_timer(delay, TIMER_RC);
        }
    }
}

impl Actor for ReplicaProbe {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
        match event {
            Event::Start => {
                let delay = self.at.saturating_since(ctx.now());
                ctx.set_timer(delay, TIMER_FIRE);
            }
            Event::Timer { token: TIMER_FIRE } => {
                let now = ctx.now();
                let uri = self.uri.clone();
                self.rc.get(now, &uri);
                self.flush(ctx);
            }
            Event::Timer { token: TIMER_RC } => {
                self.rc.on_timer(ctx.now());
                self.flush(ctx);
            }
            Event::Packet { from, payload } => {
                if let Ok((Proto::Raw, body)) = open(payload) {
                    self.rc.on_packet(ctx.now(), from, body);
                }
                self.flush(ctx);
            }
            _ => {}
        }
    }
}

fn run_rcds_converge(plan: &ChaosPlan, wseed: u64) -> Vec<String> {
    let replicas = 3usize;
    let sync = SimDuration::from_millis(500);
    let mut topo = Topology::new();
    let net = topo.add_network("lan", Medium::ethernet100(), true);
    let mut rc_hosts = Vec::new();
    for i in 0..replicas {
        let h = topo.add_host(HostCfg::named(format!("rc{i}")));
        topo.attach(h, net);
        rc_hosts.push(h);
    }
    let client = topo.add_host(HostCfg::named("client"));
    topo.attach(client, net);
    let mut world = World::new(topo, wseed);
    let eps: Vec<Endpoint> = rc_hosts.iter().map(|&h| Endpoint::new(h, ports::RC_SERVER)).collect();
    for (i, ep) in eps.iter().enumerate() {
        let peers: Vec<Endpoint> = eps.iter().copied().filter(|e| e != ep).collect();
        world.spawn(ep.host, ep.port, Box::new(RcServerActor::new(i as u64 + 1, peers, sync)));
    }
    let uri = Uri::process(7);
    world.spawn(
        client,
        50,
        Box::new(ChaosWriter {
            rc: RcClient::new(eps.clone(), SimDuration::from_millis(300)),
            uri: uri.clone(),
            interval: SimDuration::from_millis(300),
            writes_left: 12,
            next_val: 0,
        }),
    );

    // Process-level crash/restart: kill one server actor and respawn a
    // *fresh* replica (new server id, empty store) on the same
    // endpoint — anti-entropy must repopulate it.
    let restart_counter = Arc::new(Mutex::new(0u64));
    let mut procs: Vec<snipe_netsim::chaos::RestartFn> = Vec::new();
    for i in 0..replicas {
        let eps = eps.clone();
        let counter = restart_counter.clone();
        procs.push(Rc::new(move |w: &mut World| {
            let ep = eps[i];
            w.kill(ep);
            *counter.lock().unwrap() += 1;
            let id = 1000 + *counter.lock().unwrap();
            let peers: Vec<Endpoint> = eps.iter().copied().filter(|e| *e != ep).collect();
            let _ = w.spawn(ep.host, ep.port, Box::new(RcServerActor::new(id, peers, sync)));
        }));
    }
    let binding = ChaosBinding { hosts: rc_hosts.clone(), nets: vec![net], ifaces: vec![], procs };
    plan.apply(&mut world, &binding);

    // Probe every replica individually several sync rounds after the
    // last fault healed.
    let probe_at = plan.quiesce_at() + SimDuration::from_secs(4);
    let mut answers = Vec::new();
    for (i, ep) in eps.iter().enumerate() {
        let out = Arc::new(Mutex::new(None));
        answers.push(out.clone());
        world.spawn(
            client,
            60 + i as u16,
            Box::new(ReplicaProbe {
                rc: RcClient::new(vec![*ep], SimDuration::from_millis(300)),
                uri: uri.clone(),
                at: probe_at,
                out,
                attempts: 0,
            }),
        );
    }

    let deadline = probe_at + RECOVERY_TAIL;
    loop {
        world.run_for(SimDuration::from_millis(500));
        let all_answered = answers.iter().all(|a| a.lock().unwrap().is_some());
        if all_answered || world.now() >= deadline {
            break;
        }
    }

    let replies: Vec<Option<Vec<Assertion>>> =
        answers.iter().map(|a| a.lock().unwrap().clone()).collect();
    let mut violations = oracles::check_replicas_converged("rcds-converge", &replies);
    violations.extend(oracles::check_engine_bounded(
        "rcds-converge",
        &world,
        MAX_RESIDUAL_EVENTS,
        MAX_PEAK_DEPTH,
    ));
    violations
}

// ---------------------------------------------------------------------------
// W7: replica crash — sharded-era metadata plus a striped file read
// while RCDS servers and file replicas crash/restart mid-flight
// ---------------------------------------------------------------------------

/// Deterministic file body for the replica-crash workloads (shared
/// with the sharded-engine variant in [`crate::chaos_shard`]).
pub(crate) fn replica_crash_content(wseed: u64) -> Bytes {
    Bytes::from(
        (0..24_000usize)
            .map(|i| ((i as u64).wrapping_mul(31).wrapping_add(wseed) % 251) as u8)
            .collect::<Vec<u8>>(),
    )
}

pub(crate) const REPLICA_CRASH_LIFN: &str = "lifn:snipe:chaos:staged";
/// 24 000 bytes at 2048-byte stripes.
pub(crate) const REPLICA_CRASH_STRIPES: u32 = 12;

fn run_replica_crash(plan: &ChaosPlan, wseed: u64) -> Vec<String> {
    let replicas = 3usize;
    let sync = SimDuration::from_millis(500);
    let mut topo = Topology::new();
    let net = topo.add_network("lan", Medium::ethernet100(), true);
    let mut rc_hosts = Vec::new();
    for i in 0..replicas {
        let h = topo.add_host(HostCfg::named(format!("rc{i}")));
        topo.attach(h, net);
        rc_hosts.push(h);
    }
    let mut fs_hosts = Vec::new();
    for i in 0..replicas {
        let h = topo.add_host(HostCfg::named(format!("fs{i}")));
        topo.attach(h, net);
        fs_hosts.push(h);
    }
    let client = topo.add_host(HostCfg::named("client"));
    topo.attach(client, net);
    let mut world = World::new(topo, wseed);

    let rc_eps: Vec<Endpoint> =
        rc_hosts.iter().map(|&h| Endpoint::new(h, ports::RC_SERVER)).collect();
    for (i, ep) in rc_eps.iter().enumerate() {
        let peers: Vec<Endpoint> = rc_eps.iter().copied().filter(|e| e != ep).collect();
        world.spawn(ep.host, ep.port, Box::new(RcServerActor::new(i as u64 + 1, peers, sync)));
    }

    let fs_eps: Vec<Endpoint> =
        fs_hosts.iter().map(|&h| Endpoint::new(h, ports::FILE_SERVER)).collect();
    let content = replica_crash_content(wseed);
    let make_fs = {
        let fs_eps = fs_eps.clone();
        let rc_eps = rc_eps.clone();
        let content = content.clone();
        move |i: usize| {
            let ep = fs_eps[i];
            let peers: Vec<Endpoint> = fs_eps.iter().copied().filter(|e| *e != ep).collect();
            let mut cfg = FileServerConfig::new(format!("fs{i}"), rc_eps.clone(), peers);
            cfg.replication_factor = replicas;
            let mut fs = FileServerActor::new(cfg);
            // Disk-backed seed: survives process restarts below.
            fs.preload(REPLICA_CRASH_LIFN, content.clone());
            fs
        }
    };
    for (i, ep) in fs_eps.iter().enumerate() {
        world.spawn(ep.host, ep.port, Box::new(make_fs(i)));
    }

    // Metadata writes land throughout the fault window.
    let uri = Uri::process(7);
    world.spawn(
        client,
        50,
        Box::new(ChaosWriter {
            rc: RcClient::new(rc_eps.clone(), SimDuration::from_millis(300)),
            uri: uri.clone(),
            interval: SimDuration::from_millis(300),
            writes_left: 12,
            next_val: 0,
        }),
    );

    // The striped read starts two seconds in, well inside the fault
    // window, and must survive replica crashes mid-transfer.
    let fetch_ep = Endpoint::new(client, 51);
    world.spawn(
        client,
        fetch_ep.port,
        Box::new(FetchActor::new(
            REPLICA_CRASH_LIFN,
            fs_eps.clone(),
            2048,
            SimDuration::from_secs(2),
        )),
    );

    // Crash/restart closures: RC servers come back with a *fresh,
    // empty* store (anti-entropy must repopulate them); file servers
    // come back as fresh processes over surviving disk contents.
    let restart_counter = Arc::new(Mutex::new(0u64));
    let mut procs: Vec<snipe_netsim::chaos::RestartFn> = Vec::new();
    for i in 0..replicas {
        let eps = rc_eps.clone();
        let counter = restart_counter.clone();
        procs.push(Rc::new(move |w: &mut World| {
            let ep = eps[i];
            w.kill(ep);
            *counter.lock().unwrap() += 1;
            let id = 1000 + *counter.lock().unwrap();
            let peers: Vec<Endpoint> = eps.iter().copied().filter(|e| *e != ep).collect();
            let _ = w.spawn(ep.host, ep.port, Box::new(RcServerActor::new(id, peers, sync)));
        }));
    }
    for i in 0..replicas {
        let make_fs = make_fs.clone();
        let eps = fs_eps.clone();
        procs.push(Rc::new(move |w: &mut World| {
            let ep = eps[i];
            w.kill(ep);
            let _ = w.spawn(ep.host, ep.port, Box::new(make_fs(i)));
        }));
    }
    let mut cast = rc_hosts.clone();
    cast.extend(fs_hosts.iter().copied());
    let binding = ChaosBinding { hosts: cast, nets: vec![net], ifaces: vec![], procs };
    plan.apply(&mut world, &binding);

    let probe_at = plan.quiesce_at() + SimDuration::from_secs(4);
    let mut answers = Vec::new();
    for (i, ep) in rc_eps.iter().enumerate() {
        let out = Arc::new(Mutex::new(None));
        answers.push(out.clone());
        world.spawn(
            client,
            60 + i as u16,
            Box::new(ReplicaProbe {
                rc: RcClient::new(vec![*ep], SimDuration::from_millis(300)),
                uri: uri.clone(),
                at: probe_at,
                out,
                attempts: 0,
            }),
        );
    }

    let deadline = probe_at + RECOVERY_TAIL;
    loop {
        world.run_for(SimDuration::from_millis(500));
        let all_answered = answers.iter().all(|a| a.lock().unwrap().is_some());
        let fetch_done = world
            .portable_ref::<FetchActor>(fetch_ep)
            .map(|f| f.result.is_some() || f.failed)
            .unwrap_or(false);
        if (all_answered && fetch_done) || world.now() >= deadline {
            break;
        }
    }

    let replies: Vec<Option<Vec<Assertion>>> =
        answers.iter().map(|a| a.lock().unwrap().clone()).collect();
    let mut violations = oracles::check_replicas_converged("replica-crash", &replies);
    match world.portable_ref::<FetchActor>(fetch_ep) {
        Some(f) => {
            if f.result.as_ref() != Some(&content) {
                violations.push(format!(
                    "replica-crash: striped fetch wrong/incomplete (got {:?} bytes, failed={}, stats={:?})",
                    f.result.as_ref().map(Bytes::len),
                    f.failed,
                    f.stats
                ));
            }
            let mut sorted = f.completions.clone();
            sorted.sort_unstable();
            violations.extend(oracles::check_exactly_once_in_order(
                "replica-crash: stripe completion",
                REPLICA_CRASH_STRIPES,
                &sorted,
            ));
        }
        None => violations.push("replica-crash: fetch actor disappeared".into()),
    }
    violations.extend(oracles::check_engine_bounded(
        "replica-crash",
        &world,
        MAX_RESIDUAL_EVENTS,
        MAX_PEAK_DEPTH,
    ));
    violations
}

// ---------------------------------------------------------------------------
// W4: majority-routed multicast (E6 shape) under duplication/reorder
// ---------------------------------------------------------------------------

struct ChaosMcastMember {
    dedup: McastMember,
    delivered: Arc<Mutex<u32>>,
}

impl Actor for ChaosMcastMember {
    fn on_event(&mut self, _ctx: &mut Ctx<'_>, event: Event) {
        if let Event::Packet { payload, .. } = event {
            let Ok((Proto::Mcast, body)) = open(payload) else {
                return;
            };
            let Ok(McastMsg::Data { group, origin, seq, payload, .. }) = McastMsg::decode(body)
            else {
                return;
            };
            if self.dedup.accept(group, origin, seq, payload).is_some() {
                *self.delivered.lock().unwrap() += 1;
            }
        }
    }
}

struct ChaosMcastSender {
    routers: Vec<Endpoint>,
    total: u32,
    seq: u64,
    interval: SimDuration,
}

impl Actor for ChaosMcastSender {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
        match event {
            // HostUp: a flap swallows the pacing timer; restart it.
            Event::Start | Event::Timer { .. } | Event::HostUp => {
                if self.seq as u32 >= self.total {
                    return;
                }
                let m = majority(self.routers.len());
                for r in self.routers.iter().take(m) {
                    let msg = McastMsg::Data {
                        group: 1,
                        origin: 7,
                        seq: self.seq,
                        ttl: 8,
                        payload: Bytes::from(vec![0u8; 256]),
                    };
                    ctx.send(*r, seal(Proto::Mcast, msg.encode()));
                }
                self.seq += 1;
                ctx.set_timer(self.interval, 1);
            }
            _ => {}
        }
    }
}

struct ChaosMcastRouter {
    state: McastRouter,
}

impl Actor for ChaosMcastRouter {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
        if let Event::Packet { payload, .. } = event {
            let Ok((Proto::Mcast, body)) = open(payload) else {
                return;
            };
            let Ok(msg) = McastMsg::decode(body) else {
                return;
            };
            let mut outs = Vec::new();
            self.state.on_message(msg, &mut outs);
            for o in outs {
                if let Out::Send { to, bytes, .. } = o {
                    if to != ctx.me() {
                        ctx.send(to, bytes);
                    }
                }
            }
        }
    }
}

fn run_mcast(plan: &ChaosPlan, wseed: u64) -> Vec<String> {
    let routers = 5usize;
    let members = 3usize;
    // 2s of stream against the 3s fault horizon.
    let total = 400u32;
    // Multicast relays are fire-and-forget: of the net-level ops only
    // gray degradation (no loss) is within the §5.4 contract. Host
    // flaps are kept too — the binding exposes only the source host,
    // whose paced stream must survive a flap. The plan is
    // deterministically narrowed before applying.
    let mut plan = plan.clone();
    plan.ops.retain(|o| matches!(o, ChaosOp::Gray { .. } | ChaosOp::HostFlap { .. }));

    let mut topo = Topology::new();
    let net = topo.add_network("eth", Medium::ethernet100(), true);
    let mut router_hosts = Vec::new();
    for i in 0..routers {
        let h = topo.add_host(HostCfg::named(format!("r{i}")));
        topo.attach(h, net);
        router_hosts.push(h);
    }
    let mut member_hosts = Vec::new();
    for i in 0..members {
        let h = topo.add_host(HostCfg::named(format!("m{i}")));
        topo.attach(h, net);
        member_hosts.push(h);
    }
    let sender_host = topo.add_host(HostCfg::named("s"));
    topo.attach(sender_host, net);
    let mut world = World::new(topo, wseed);
    let router_eps: Vec<Endpoint> = router_hosts.iter().map(|&h| Endpoint::new(h, 5)).collect();
    let member_eps: Vec<Endpoint> = member_hosts.iter().map(|&h| Endpoint::new(h, 20)).collect();
    for (i, &h) in router_hosts.iter().enumerate() {
        let mut state = McastRouter::new();
        let mut scratch = Vec::new();
        for (j, &peer) in router_eps.iter().enumerate() {
            if i != j {
                state.on_message(McastMsg::Peer { group: 1, router: peer }, &mut scratch);
            }
        }
        for (mi, &member) in member_eps.iter().enumerate() {
            let m = majority(routers);
            let covers = (0..m).map(|k| (mi + k) % routers).any(|idx| idx == i);
            if covers {
                state.on_message(McastMsg::Join { group: 1, member }, &mut scratch);
            }
        }
        world.spawn(h, 5, Box::new(ChaosMcastRouter { state }));
    }
    let mut delivered = Vec::new();
    for &h in &member_hosts {
        let d = Arc::new(Mutex::new(0u32));
        delivered.push(d.clone());
        world.spawn(h, 20, Box::new(ChaosMcastMember { dedup: McastMember::new(), delivered: d }));
    }
    world.spawn(
        sender_host,
        20,
        Box::new(ChaosMcastSender {
            routers: router_eps,
            total,
            seq: 0,
            interval: SimDuration::from_millis(5),
        }),
    );
    plan.apply(
        &mut world,
        &ChaosBinding { hosts: vec![sender_host], nets: vec![net], ..ChaosBinding::default() },
    );

    let stream_end = SimTime::ZERO + SimDuration::from_millis(5) * (total as u64 + 2);
    let deadline = plan.quiesce_at().max(stream_end) + RECOVERY_TAIL;
    loop {
        world.run_for(SimDuration::from_millis(500));
        let all = delivered.iter().all(|d| *d.lock().unwrap() >= total);
        if all || world.now() >= deadline {
            break;
        }
    }

    let mut violations = Vec::new();
    for (i, d) in delivered.iter().enumerate() {
        let got = *d.lock().unwrap();
        if got != total {
            violations
                .push(format!("mcast: member {i} delivered {got} of {total} distinct messages"));
        }
    }
    violations.extend(oracles::check_engine_bounded(
        "mcast",
        &world,
        MAX_RESIDUAL_EVENTS,
        MAX_PEAK_DEPTH,
    ));
    violations
}

// ---------------------------------------------------------------------------
// Soak driver, shrinking and the planted-bug drill
// ---------------------------------------------------------------------------

/// Flight-recorder ring capacity for chaos runs: big enough to hold
/// the last fault window's worth of events, small enough to stay cheap
/// (one reserve per run).
pub const TRACE_RING: usize = 8192;

/// How many trailing events a violation dump shows.
pub const TRACE_DUMP_EVENTS: usize = 40;

/// Outcome of one `(workload, plan, workload-seed)` chaos run.
#[derive(Clone, Debug)]
pub struct ChaosRun {
    /// Workload name.
    pub workload: &'static str,
    /// Seed the plan was generated from.
    pub plan_seed: u64,
    /// Seed driving the workload's own randomness.
    pub workload_seed: u64,
    /// How many fault ops the plan scheduled.
    pub ops: usize,
    /// Whether per-packet chaos was active.
    pub packet: bool,
    /// Oracle violations (empty = green).
    pub violations: Vec<String>,
    /// One-line replay recipe.
    pub replay: String,
    /// Flight-recorder dump of the run's last events — populated only
    /// when an oracle was violated (the diagnosis trail).
    pub trace_dump: Option<String>,
    /// Per-kind flight-recorder event totals for the whole run,
    /// rendered as a metrics-registry JSON object.
    pub metrics_json: String,
    /// Raw per-kind event totals (indexed by `TraceKind::tag()`), kept
    /// alongside the rendered JSON so the harness can aggregate across
    /// a soak without re-parsing.
    pub kind_counts: [u64; TraceKind::COUNT],
    /// Events overwritten by ring wrap-around during the run.
    pub ring_dropped: u64,
}

/// Render per-kind event totals as a metrics-registry JSON object.
fn trace_metrics_json(
    kind_counts: &[u64; TraceKind::COUNT],
    ring_dropped: u64,
    indent: usize,
) -> String {
    let mut metrics = Registry::new();
    for (i, n) in TraceKind::NAMES.iter().enumerate() {
        let name = format!("trace.{n}");
        let id = metrics.counter(&name);
        metrics.set_counter(id, kind_counts[i]);
    }
    let id = metrics.counter("trace.ring_dropped");
    metrics.set_counter(id, ring_dropped);
    metrics.render_json(indent)
}

/// Sum the per-run flight-recorder totals over a whole soak and render
/// them as one metrics-registry snapshot (for `results/chaos.json`).
pub fn aggregate_metrics_json(runs: &[ChaosRun], indent: usize) -> String {
    let mut counts = [0u64; TraceKind::COUNT];
    let mut dropped = 0u64;
    for r in runs {
        for (acc, c) in counts.iter_mut().zip(&r.kind_counts) {
            *acc += c;
        }
        dropped += r.ring_dropped;
    }
    trace_metrics_json(&counts, dropped, indent)
}

/// Derive the `(plan_seed, workload_seed)` pair for soak index `i`.
/// Fixed derivation — the soak is fully reproducible from the index.
pub fn soak_seeds(i: u64) -> (u64, u64) {
    (0xC0FF_EE00 + i, 0x5EED + i)
}

/// Run one seeded plan against one workload, with the flight recorder
/// armed for the whole run. The recorder is thread-local, so parallel
/// soak runs each get their own ring; on an oracle violation the run
/// carries a readable dump of the last [`TRACE_DUMP_EVENTS`] events.
pub fn run_one(w: Workload, plan_seed: u64, workload_seed: u64) -> ChaosRun {
    run_traced(w, plan_seed, workload_seed, false)
}

/// [`run_one`], but the trace dump covers the full ring regardless of
/// verdict — the `harness trace <plan-seed> <workload-seed>` replay
/// path for post-mortems on green-looking seeds.
pub fn trace_one(w: Workload, plan_seed: u64, workload_seed: u64) -> ChaosRun {
    run_traced(w, plan_seed, workload_seed, true)
}

fn run_traced(w: Workload, plan_seed: u64, workload_seed: u64, dump_always: bool) -> ChaosRun {
    let plan = ChaosPlan::generate(plan_seed, &w.shape());
    trace::enable(TRACE_RING);
    let violations = w.run(&plan, workload_seed);
    let trace_dump = if dump_always {
        Some(trace::render_last(TRACE_RING))
    } else if violations.is_empty() {
        None
    } else {
        Some(trace::render_last(TRACE_DUMP_EVENTS))
    };
    let kind_counts = trace::kind_counts();
    let ring_dropped = trace::trace_dropped();
    trace::disable();
    ChaosRun {
        workload: w.name(),
        plan_seed,
        workload_seed,
        ops: plan.ops.len(),
        packet: plan.packet.is_some(),
        violations,
        replay: plan.replay_line(w.name(), workload_seed),
        trace_dump,
        metrics_json: trace_metrics_json(&kind_counts, ring_dropped, 6),
        kind_counts,
        ring_dropped,
    }
}

/// Fan `seeds_per_workload` plans over every workload in parallel.
pub fn soak(seeds_per_workload: u64) -> Vec<ChaosRun> {
    let mut jobs = Vec::new();
    for w in ALL_WORKLOADS {
        for i in 0..seeds_per_workload {
            let (ps, ws) = soak_seeds(i);
            jobs.push((w, ps, ws));
        }
    }
    par_map(jobs, |&(w, ps, ws)| run_one(w, ps, ws))
}

/// Shrink a violating plan to a minimal one that still fails.
pub fn shrink_violation(w: Workload, plan: &ChaosPlan, workload_seed: u64) -> ChaosPlan {
    shrink_plan(plan.clone(), |cand| !w.run(cand, workload_seed).is_empty())
}

/// Outcome of the planted-bug drill.
#[derive(Clone, Debug)]
pub struct PlantedBugReport {
    /// Did any oracle catch the bug?
    pub caught: bool,
    /// The seed pair that exposed it.
    pub plan_seed: u64,
    /// See `plan_seed`.
    pub workload_seed: u64,
    /// First violation the oracles reported.
    pub first_violation: String,
    /// Minimal plan that still exposes the bug.
    pub shrunk: Option<ChaosPlan>,
    /// Replay recipe for the shrunk plan.
    pub replay: String,
    /// Flight-recorder dump of the shrunk plan's violating replay.
    pub trace_dump: Option<String>,
}

/// The planted-bug drill: disable the migration packet freeze (the
/// `chaos_disable_migration_freeze` knob) and verify the exactly-once
/// oracle catches the resulting in-flight loss, then shrink the plan.
/// A healthy oracle stack returns `caught: true` — this is a test *of
/// the chaos engine*, not of the product code.
pub fn planted_bug_drill(max_seeds: u64) -> PlantedBugReport {
    let shape = Workload::Migration.shape();
    for i in 0..max_seeds {
        let (plan_seed, workload_seed) = soak_seeds(i);
        let plan = ChaosPlan::generate(plan_seed, &shape);
        let violations = run_migration(&plan, workload_seed, true);
        if violations.is_empty() {
            continue;
        }
        let shrunk = shrink_plan(plan, |cand| !run_migration(cand, workload_seed, true).is_empty());
        let replay = format!(
            "{} disable_freeze=true shrunk_ops={} shrunk_packet={:?}",
            shrunk.replay_line("migration", workload_seed),
            shrunk.ops.len(),
            shrunk.packet
        );
        // Replay the minimal plan with the flight recorder armed: the
        // drill's report carries the trace that pins the loss to the
        // cutover window, same as any organic violation would.
        trace::enable(TRACE_RING);
        let _ = run_migration(&shrunk, workload_seed, true);
        let trace_dump = trace::render_last(TRACE_DUMP_EVENTS);
        trace::disable();
        return PlantedBugReport {
            caught: true,
            plan_seed,
            workload_seed,
            first_violation: violations[0].clone(),
            shrunk: Some(shrunk),
            replay,
            trace_dump: Some(trace_dump),
        };
    }
    PlantedBugReport {
        caught: false,
        plan_seed: 0,
        workload_seed: 0,
        first_violation: String::new(),
        shrunk: None,
        replay: String::new(),
        trace_dump: None,
    }
}

/// Violating `(workload, plan_seed, workload_seed)` triples found during
/// development, pinned forever: each must stay green now that the
/// underlying behavior is specified. (Plans regenerate from the seed, so
/// a pinned triple is a complete regression test.)
pub const REGRESSION_CORPUS: &[(Workload, u64, u64)] = &[
    (Workload::SrudpTransfer, 0xC0FF_EE00, 0x5EED),
    (Workload::SrudpTransfer, 0xC0FF_EE07, 0x5EED + 7),
    // These three wedged permanently before the SRUDP drivers learned to
    // re-arm their timer gates on `Event::HostUp` (a host flap swallows
    // any timer queued while the host is down). Shrunk repro: a single
    // flap of the sender host mid-transfer.
    (Workload::SrudpTransfer, 0xC0FF_EE01, 0x5EED + 1),
    (Workload::SrudpTransfer, 0xC0FF_EE0A, 0x5EED + 10),
    (Workload::SrudpTransfer, 0xC0FF_EE0D, 0x5EED + 13),
    (Workload::RstreamTransfer, 0xC0FF_EE00, 0x5EED),
    // These wedged in the RTO death crawl: a receiver-side flap loses a
    // whole window, and without NewReno partial-ACK recovery the stream
    // refills the hole at one segment per fully-escalated RTO (~4s per
    // 1400 bytes). Also covers the driver's HostUp timer re-arm and SYN
    // retransmission (a connect whose SYN is lost used to wedge forever).
    (Workload::RstreamTransfer, 0xC0FF_EE02, 0x5EED + 2),
    (Workload::RstreamTransfer, 0xC0FF_EE04, 0x5EED + 4),
    (Workload::RstreamTransfer, 0xC0FF_EE07, 0x5EED + 7),
    (Workload::Migration, 0xC0FF_EE00, 0x5EED),
    (Workload::Migration, 0xC0FF_EE03, 0x5EED + 3),
    (Workload::RcdsConverge, 0xC0FF_EE00, 0x5EED),
    (Workload::RcdsConverge, 0xC0FF_EE05, 0x5EED + 5),
    (Workload::Mcast, 0xC0FF_EE00, 0x5EED),
    // Both plans flap the multicast source host mid-stream: without the
    // `Event::HostUp` re-arm the pacing timer is swallowed and the
    // stream never resumes.
    (Workload::Mcast, 0xC0FF_EE01, 0x5EED + 1),
    (Workload::Mcast, 0xC0FF_EE06, 0x5EED + 6),
    // FEC share-spray under loss bursts / gray links / partitions plus
    // hot per-packet corruption: pins the reconstruct-then-verify
    // delivery gate (no mismatch ever delivered) and the reassembly
    // boundedness contract (no in-contract peer evicted).
    (Workload::FecSpray, 0xC0FF_EE00, 0x5EED),
    (Workload::FecSpray, 0xC0FF_EE02, 0x5EED + 2),
    (Workload::FecSpray, 0xC0FF_EE04, 0x5EED + 4),
    // Replica-crash: host flaps plus process restarts over both the RC
    // replica group and the file replica set while a striped read is
    // in flight. The six-op plan at index 6 restarts servers back to
    // back mid-transfer; stripe re-dispatch plus RC anti-entropy must
    // still deliver convergence, byte-exact content and exactly-once
    // stripe completion.
    (Workload::ReplicaCrash, 0xC0FF_EE00, 0x5EED),
    (Workload::ReplicaCrash, 0xC0FF_EE06, 0x5EED + 6),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regression_corpus_stays_green() {
        for &(w, ps, ws) in REGRESSION_CORPUS {
            let run = run_one(w, ps, ws);
            assert!(
                run.violations.is_empty(),
                "{} plan_seed={ps} wseed={ws}: {:?}",
                w.name(),
                run.violations
            );
        }
    }

    #[test]
    fn planted_migration_bug_is_caught_and_shrunk() {
        let report = planted_bug_drill(8);
        assert!(report.caught, "oracles failed to catch the disabled migration freeze");
        let shrunk = report.shrunk.expect("caught implies shrunk");
        // The minimizer must have reached a fixpoint: every remaining
        // op is load-bearing (removing any makes the run pass).
        for i in 0..shrunk.ops.len() {
            let mut cand = shrunk.clone();
            cand.ops.remove(i);
            assert!(
                run_migration(&cand, report.workload_seed, true).is_empty(),
                "op {i} of the shrunk plan is not load-bearing"
            );
        }
    }
}
