//! `harness rcds` (RCDS): metadata-plane scale benchmark.
//!
//! Registers ≥1M names into a consistent-hash-sharded catalog
//! (16 shard groups as PR 10 wires into the RC plane), then measures
//! name-resolution latency through the ring: raw store resolution at
//! scale, and the client path with the TTL lookup cache both cold and
//! hot. Latencies land in a [`Registry`] log2 histogram so the
//! reported p50/p99 come from the same metrics machinery the actors
//! export.

use std::time::Instant;

use snipe_netsim::topology::Endpoint;
use snipe_rcds::assertion::Assertion;
use snipe_rcds::client::RcClient;
use snipe_rcds::proto::RcMsg;
use snipe_rcds::shard::ShardMap;
use snipe_rcds::store::RcStore;
use snipe_rcds::uri::Uri;
use snipe_util::codec::{WireDecode, WireEncode};
use snipe_util::id::HostId;
use snipe_util::metrics::Registry;
use snipe_util::time::{SimDuration, SimTime};

/// Names registered (the acceptance floor is one million).
pub const NAMES: usize = 1_000_000;
/// Shard groups in the ring.
pub const SHARDS: usize = 16;
/// Replicas per shard group.
pub const REPLICAS_PER_SHARD: usize = 3;
/// Timed resolutions against the sharded stores.
pub const LOOKUPS: usize = 200_000;
/// Hot-set size for the client-cache phase (each name resolved twice).
pub const HOT: usize = 20_000;

/// Everything `harness rcds` reports.
pub struct RcdsBenchReport {
    /// Names actually registered.
    pub names: usize,
    /// Shard groups.
    pub shards: usize,
    /// Registration wall time (seconds).
    pub register_secs: f64,
    /// Registrations per second.
    pub register_per_sec: f64,
    /// Smallest / largest shard population (ring balance).
    pub shard_min: usize,
    /// Largest shard population.
    pub shard_max: usize,
    /// Timed store resolutions.
    pub lookups: usize,
    /// Resolutions per second (store path).
    pub resolve_per_sec: f64,
    /// p50 resolution latency upper bound, nanoseconds.
    pub p50_ns: u64,
    /// p99 resolution latency upper bound, nanoseconds.
    pub p99_ns: u64,
    /// Client-path lookups issued in the cache phase.
    pub client_lookups: usize,
    /// Client-path lookups per second (includes cache hits).
    pub client_per_sec: f64,
    /// Client-path p50, nanoseconds.
    pub client_p50_ns: u64,
    /// Client-path p99, nanoseconds.
    pub client_p99_ns: u64,
    /// Gets served from the client TTL cache.
    pub cache_hits: u64,
}

fn bench_name(i: usize) -> String {
    format!("urn:snipe:bench:obj-{i:07}")
}

fn bench_groups() -> Vec<Vec<Endpoint>> {
    (0..SHARDS)
        .map(|g| {
            (0..REPLICAS_PER_SHARD)
                .map(|r| Endpoint::new(HostId((g * REPLICAS_PER_SHARD + r + 1) as u32), 7000))
                .collect()
        })
        .collect()
}

/// Run the benchmark at the given scale (use [`NAMES`] for the gate).
pub fn run(names: usize) -> RcdsBenchReport {
    let map = ShardMap::new(bench_groups());
    let mut stores: Vec<RcStore> = (0..SHARDS).map(|g| RcStore::new(g as u64 + 1)).collect();

    // Phase 1: register every name through the ring.
    let t0 = Instant::now();
    for i in 0..names {
        let uri = Uri::parse(bench_name(i)).expect("bench names are valid URIs");
        let shard = map.shard_of(uri.as_str());
        stores[shard].put(&uri, Assertion::new("loc", format!("host{}", i % 64)), i as u64);
    }
    let register_secs = t0.elapsed().as_secs_f64();

    let counts: Vec<usize> = stores.iter().map(|s| s.uri_count()).collect();
    let shard_min = counts.iter().copied().min().unwrap_or(0);
    let shard_max = counts.iter().copied().max().unwrap_or(0);

    // Phase 2: resolve a pseudo-random sample through the ring,
    // latencies into the metrics registry.
    let mut reg = Registry::new();
    let resolve_h = reg.histogram("rcds.resolve.ns");
    let client_h = reg.histogram("rcds.client.resolve.ns");

    let mut idx = 0x9e37_79b9_7f4a_7c15u64;
    let sample: Vec<Uri> = (0..LOOKUPS)
        .map(|_| {
            idx = idx.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            Uri::parse(bench_name((idx >> 11) as usize % names)).expect("valid")
        })
        .collect();
    let t1 = Instant::now();
    for uri in &sample {
        let t = Instant::now();
        let shard = map.shard_of(uri.as_str());
        let got = stores[shard].get(uri);
        reg.observe(resolve_h, t.elapsed().as_nanos() as u64);
        assert!(!got.is_empty(), "registered name must resolve: {uri}");
    }
    let resolve_secs = t1.elapsed().as_secs_f64();

    // Phase 3: the client path — first round misses and fills the TTL
    // cache (replica replies are synthesized inline from the owning
    // store), second round is served from cache without touching the
    // "wire".
    let mut client = RcClient::new(bench_groups().concat(), SimDuration::from_millis(250))
        .with_shard_map(map.clone())
        .with_cache_ttl(SimDuration::from_secs(120));
    // Distinct names only (7 is coprime with the modulus range in
    // practice; clamp to `names` so small runs stay duplicate-free).
    let hot: Vec<Uri> = (0..HOT.min(names))
        .map(|i| Uri::parse(bench_name(i * 7 % names)).expect("valid"))
        .collect();
    let mut vnow = SimTime::from_nanos(0);
    let t2 = Instant::now();
    let mut client_lookups = 0usize;
    for _round in 0..2 {
        for uri in &hot {
            let t = Instant::now();
            client.get(vnow, uri);
            for (to, bytes) in client.drain_sends() {
                let Ok(RcMsg::Request { id, op: snipe_rcds::proto::RcOp::Get(u) }) =
                    RcMsg::decode_from_bytes(bytes)
                else {
                    panic!("client sent a non-Get request in the cache phase");
                };
                let target = Uri::parse(u).expect("valid");
                let shard = map.shard_of(target.as_str());
                let resp = RcMsg::Response {
                    id,
                    ok: true,
                    assertions: stores[shard].get(&target),
                    uris: vec![],
                };
                client.on_packet(vnow, to, resp.encode_to_bytes());
            }
            client.drain_done();
            reg.observe(client_h, t.elapsed().as_nanos() as u64);
            client_lookups += 1;
            vnow += SimDuration::from_micros(1);
        }
    }
    let client_secs = t2.elapsed().as_secs_f64();

    RcdsBenchReport {
        names,
        shards: SHARDS,
        register_secs,
        register_per_sec: names as f64 / register_secs.max(1e-9),
        shard_min,
        shard_max,
        lookups: LOOKUPS,
        resolve_per_sec: LOOKUPS as f64 / resolve_secs.max(1e-9),
        p50_ns: reg.histo(resolve_h).quantile_bound(0.50),
        p99_ns: reg.histo(resolve_h).quantile_bound(0.99),
        client_lookups,
        client_per_sec: client_lookups as f64 / client_secs.max(1e-9),
        client_p50_ns: reg.histo(client_h).quantile_bound(0.50),
        client_p99_ns: reg.histo(client_h).quantile_bound(0.99),
        cache_hits: client.stats().cache_hits,
    }
}

impl RcdsBenchReport {
    /// The `results/bench_rcds.json` payload.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"experiment\": \"bench_rcds\",\n  \"names_registered\": {},\n  \"shards\": {},\n  \"shard_min\": {},\n  \"shard_max\": {},\n  \"register_per_sec\": {:.0},\n  \"lookups\": {},\n  \"resolve_per_sec\": {:.0},\n  \"resolve_p50_ns\": {},\n  \"resolve_p99_ns\": {},\n  \"client_lookups\": {},\n  \"client_per_sec\": {:.0},\n  \"client_p50_ns\": {},\n  \"client_p99_ns\": {},\n  \"cache_hits\": {}\n}}\n",
            self.names,
            self.shards,
            self.shard_min,
            self.shard_max,
            self.register_per_sec,
            self.lookups,
            self.resolve_per_sec,
            self.p50_ns,
            self.p99_ns,
            self.client_lookups,
            self.client_per_sec,
            self.client_p50_ns,
            self.client_p99_ns,
            self.cache_hits,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down run keeps the full pipeline honest in CI; the
    /// 1M-name gate runs via `harness rcds` in scripts/check.sh.
    #[test]
    fn small_run_resolves_and_caches() {
        let r = run(5_000);
        assert_eq!(r.names, 5_000);
        assert!(r.shard_min > 0, "every shard group should own names");
        assert!(r.p99_ns > 0);
        // Second hot round must be pure cache hits.
        assert_eq!(r.cache_hits as usize, HOT.min(5_000));
        assert!(r.client_per_sec > 0.0);
    }
}
