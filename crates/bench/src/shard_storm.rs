//! Shard-engine scaling benchmark: the storm workload on the
//! [`ShardedWorld`] at 1k–100k hosts.
//!
//! The single-threaded storm ([`crate::engine`]) measures the event
//! loop's ceiling; this module measures how far the sharded engine
//! pushes that ceiling with worker threads. The world is a campus of
//! routable switched LANs ("clusters") of [`CLUSTER`] hosts each — one
//! partition region per LAN — with ~10% of each burst crossing
//! clusters through the deterministic mailbox. `harness shard` runs
//! the scaling matrix (hosts × threads) and writes
//! `results/bench_shard.json`; `harness shard-digest <threads>` prints
//! the behavioural digest of a fixed run for the `shard-determinism`
//! gate in `scripts/check.sh`.

use bytes::Bytes;

use snipe_netsim::actor::Event;
use snipe_netsim::medium::Medium;
use snipe_netsim::shard::{ShardActor, ShardCtx, ShardLoad, ShardedWorld};
use snipe_netsim::topology::{Endpoint, HostCfg, Topology};
use snipe_util::id::HostId;
use snipe_util::time::SimDuration;

/// Hosts per cluster LAN (one partition region each).
pub const CLUSTER: usize = 64;
/// Port every storm actor binds.
const STORM_PORT: u16 = 9100;
const STORM_PAYLOAD: &[u8] = &[0xA5; 64];

/// The campus LAN medium: switched gigabit with 200µs propagation, so
/// the partition lookahead is a healthy 400µs — wide rounds, little
/// barrier overhead.
pub fn campus_medium() -> Medium {
    Medium {
        name: "campus-gbe",
        bandwidth_bps: 1_000_000_000,
        latency: SimDuration::from_micros(200),
        loss: 0.0,
        mtu: 9000,
        per_packet_overhead: 38,
        shared_bus: false,
    }
}

/// `hosts` hosts in ⌈hosts/[`CLUSTER`]⌉ routable switched LANs.
pub fn cluster_topology(hosts: usize) -> Topology {
    let mut t = Topology::new();
    let clusters = hosts.div_ceil(CLUSTER);
    let mut placed = 0;
    for c in 0..clusters {
        let net = t.add_network(format!("cluster{c}"), campus_medium(), true);
        for i in 0..CLUSTER.min(hosts - placed) {
            let h = t.add_host(HostCfg::named(format!("c{c}h{i}")));
            t.attach(h, net);
        }
        placed += CLUSTER.min(hosts - placed);
    }
    t
}

/// Timer-driven burst generator, `Send` for the sharded engine. Every
/// millisecond it emits `burst` datagrams: most to a neighbor
/// in its own cluster, every tenth to a fixed far host in another
/// cluster (cross-region traffic through the mailbox). Counts
/// arrivals so runs can assert conservation.
pub struct ShardStormActor {
    peer_near: Endpoint,
    peer_far: Endpoint,
    burst: usize,
    /// Datagrams received so far.
    pub got: u64,
}

impl ShardActor for ShardStormActor {
    fn on_event(&mut self, ctx: &mut ShardCtx<'_>, event: Event) {
        match event {
            Event::Start | Event::Timer { .. } => {
                for i in 0..self.burst {
                    let to = if i % 10 == 9 { self.peer_far } else { self.peer_near };
                    ctx.send(to, Bytes::from_static(STORM_PAYLOAD));
                }
                ctx.set_timer(SimDuration::from_millis(1), 1);
            }
            Event::Packet { .. } => self.got += 1,
            _ => {}
        }
    }
}

/// Build the storm world: every host runs a [`ShardStormActor`] whose
/// near peer is the next host in its cluster and whose far peer sits
/// half the campus away.
pub fn build_storm(hosts: usize, seed: u64, threads: usize) -> ShardedWorld {
    let topo = cluster_topology(hosts);
    let mut w = ShardedWorld::new(topo, seed, threads);
    for i in 0..hosts {
        let cluster = i / CLUSTER;
        let base = cluster * CLUSTER;
        let span = CLUSTER.min(hosts - base);
        let near = base + (i - base + 1) % span;
        let far = (i + hosts / 2 + CLUSTER / 2) % hosts;
        let actor = ShardStormActor {
            peer_near: Endpoint::new(HostId(near as u32), STORM_PORT),
            peer_far: Endpoint::new(HostId(far as u32), STORM_PORT),
            burst: 6,
            got: 0,
        };
        w.spawn(HostId(i as u32), STORM_PORT, Box::new(actor));
    }
    w
}

/// Outcome of one sharded storm run.
#[derive(Clone, Debug)]
pub struct ShardRun {
    /// Host count.
    pub hosts: usize,
    /// Worker threads requested.
    pub threads: usize,
    /// Partition regions in the world.
    pub regions: usize,
    /// Simulated span in seconds.
    pub sim_seconds: f64,
    /// Events dispatched across all shards.
    pub events: u64,
    /// Datagrams sent / delivered.
    pub sent: u64,
    /// See [`ShardRun::sent`].
    pub delivered: u64,
    /// Wall-clock seconds.
    pub wall_seconds: f64,
    /// `events / wall_seconds`.
    pub events_per_sec: f64,
    /// Behavioural digest — must be identical at every thread count.
    pub digest: u64,
    /// Per-shard load figures (for boundedness reporting).
    pub loads: Vec<ShardLoad>,
}

/// Run the storm for `sim` and measure wall-clock throughput.
pub fn storm(hosts: usize, sim: SimDuration, seed: u64, threads: usize) -> ShardRun {
    let mut w = build_storm(hosts, seed, threads);
    let t0 = std::time::Instant::now();
    w.run_for(sim);
    let wall = t0.elapsed().as_secs_f64();
    let stats = w.stats();
    ShardRun {
        hosts,
        threads,
        regions: w.regions(),
        sim_seconds: sim.as_secs_f64(),
        events: stats.events,
        sent: stats.sent,
        delivered: stats.delivered,
        wall_seconds: wall,
        events_per_sec: stats.events as f64 / wall,
        digest: w.digest(),
        loads: w.shard_loads(),
    }
}

/// The fixed configuration behind `harness shard-digest`: small enough
/// for a CI gate, multi-region with cross-shard traffic and a fault
/// script so the digest covers the interesting machinery.
pub fn digest_run(threads: usize, seed: u64) -> u64 {
    use snipe_netsim::shard::FaultCmd;
    use snipe_util::time::SimTime;
    let hosts = 512;
    let mut w = build_storm(hosts, seed, threads);
    // A little churn so fault routing is part of the gate.
    w.schedule_fault(SimTime::from_nanos(20_000_000), FaultCmd::HostDown(HostId(7)));
    w.schedule_fault(SimTime::from_nanos(60_000_000), FaultCmd::HostUp(HostId(7)));
    w.run_for(SimDuration::from_millis(100));
    w.digest()
}

/// The scaling matrix: host counts × thread counts, sim spans chosen
/// so the largest world stays tractable.
pub fn scaling_matrix() -> Vec<(usize, SimDuration)> {
    vec![
        (1_000, SimDuration::from_millis(1000)),
        (10_000, SimDuration::from_millis(250)),
        (100_000, SimDuration::from_millis(60)),
    ]
}

/// Thread counts swept at each world size.
pub const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_scales_regions_with_hosts() {
        let w = build_storm(256, 1, 1);
        assert_eq!(w.regions(), 4);
        let w = build_storm(100, 1, 1); // ragged tail cluster
        assert_eq!(w.regions(), 2);
    }

    #[test]
    fn storm_digest_is_thread_count_invariant() {
        let d1 = digest_run(1, 42);
        let d4 = digest_run(4, 42);
        assert_eq!(d1, d4);
        // The workload itself is seed-independent (no loss draws), so
        // sensitivity comes from the world shape, not the seed.
        assert_ne!(
            {
                let mut w = build_storm(256, 42, 1);
                w.run_for(SimDuration::from_millis(20));
                w.digest()
            },
            d1,
            "digest must react to the workload"
        );
    }

    #[test]
    fn storm_conserves_datagrams_on_lossless_lans() {
        let mut w = build_storm(256, 7, 4);
        w.run_for(SimDuration::from_millis(50));
        let s = w.stats();
        assert!(s.sent > 50_000, "storm too quiet: {}", s.sent);
        // Conservation: every datagram is delivered, dropped, or still
        // in flight at the horizon — nothing vanishes.
        assert_eq!(s.total_drops(), 0, "lossless campus must not drop");
        let in_flight = (s.sent - s.delivered) as usize;
        assert!(
            in_flight <= w.queue_depth(),
            "{} sent - {} delivered exceeds {} queued",
            s.sent,
            s.delivered,
            w.queue_depth()
        );
    }
}
