//! # snipe-bench — experiment runners for every figure and table
//!
//! Each module reproduces one artifact of the paper's evaluation (see
//! `DESIGN.md` §4 for the index). The `harness` binary runs them and
//! prints the same rows/series the paper reports; `EXPERIMENTS.md`
//! records paper-vs-measured.
//!
//! Parameter sweeps are embarrassingly parallel across *simulations*
//! (each is single-threaded and deterministic), so runners fan out
//! over threads with crossbeam's scoped threads.

pub mod ablations;
pub mod chaos;
pub mod chaos_shard;
pub mod e2_mpiconnect;
pub mod e3_availability;
pub mod e4_scalability;
pub mod e5_migration;
pub mod e6_multicast;
pub mod e7_failover;
pub mod e8_spof;
pub mod engine;
pub mod fig1;
pub mod oracles;
pub mod rcds_bench;
pub mod report;
pub mod shard_storm;

/// Run closures in parallel, preserving input order in the output.
pub fn par_map<I, O, F>(inputs: Vec<I>, f: F) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let n = inputs.len();
    let mut out: Vec<Option<O>> = (0..n).map(|_| None).collect();
    crossbeam::thread::scope(|s| {
        let mut handles = Vec::new();
        for (i, input) in inputs.iter().enumerate() {
            let f = &f;
            handles.push((i, s.spawn(move |_| f(input))));
        }
        for (i, h) in handles {
            out[i] = Some(h.join().expect("experiment thread panicked"));
        }
    })
    .expect("scope");
    out.into_iter().map(|o| o.expect("filled")).collect()
}

#[cfg(test)]
mod tests {
    #[test]
    fn par_map_preserves_order() {
        let out = super::par_map((0..16).collect(), |&x| x * 2);
        assert_eq!(out, (0..16).map(|x| x * 2).collect::<Vec<_>>());
    }
}
