//! Engine benchmark: raw event-loop throughput of the netsim world.
//!
//! Every experiment in this repro funnels through `World::send_packet`
//! and the event queue, so wall-clock events/second is the ceiling on
//! how large E4 host counts and how long E3 horizons can get. This
//! module drives a packet storm over a multi-network topology with
//! periodic fault injection (the workload shape of E3/E7) and reports
//! simulator throughput; `results/bench_engine.json` tracks the number
//! across PRs.
//!
//! The storm is deterministic in simulation terms (event and packet
//! counts depend only on the seed); only the wall-clock figures vary
//! between machines/runs.

use bytes::Bytes;

use snipe_netsim::actor::{Actor, Ctx, Event};
use snipe_netsim::medium::Medium;
use snipe_netsim::topology::{Endpoint, HostCfg, Topology};
use snipe_netsim::world::World;
use snipe_util::id::{HostId, NetId};
use snipe_util::time::SimDuration;

/// Outcome of one storm run.
#[derive(Clone, Debug)]
pub struct EngineRun {
    /// Configuration label (e.g. `cached` / `uncached`).
    pub label: String,
    /// Simulated span.
    pub sim_seconds: f64,
    /// Events dispatched by the engine.
    pub events: u64,
    /// Datagrams handed to `send_packet`.
    pub sent: u64,
    /// Datagrams delivered to an actor.
    pub delivered: u64,
    /// Datagrams dropped (loss, partitions, downed interfaces...).
    pub drops: u64,
    /// Wall-clock time for the run.
    pub wall_seconds: f64,
    /// Engine throughput: `events / wall_seconds`.
    pub events_per_sec: f64,
    /// Events popped from the future-event heap.
    pub heap_pops: u64,
    /// Events popped from the same-timestamp now-queue.
    pub now_pops: u64,
    /// Deliveries popped from per-transmitter FIFO streams.
    pub stream_pops: u64,
    /// Route lookups answered from the cache.
    pub route_cache_hits: u64,
    /// Route lookups recomputed.
    pub route_cache_misses: u64,
    /// High-water mark of pending events.
    pub peak_queue_depth: u64,
    /// The world's metrics-registry snapshot, rendered as a JSON
    /// object (counters, gauges, latency histogram).
    pub metrics_json: String,
}

const STORM_PAYLOAD: &[u8] = &[0xA5; 64];
/// Port every storm actor binds.
const STORM_PORT: u16 = 9000;

/// Traffic generator: timer-driven bursts to two peers plus a loopback
/// datagram and a signal to a neighbor; echoes every non-loopback
/// packet back to its sender. The timer keeps load alive through fault
/// windows that would otherwise extinguish a pure ping-pong.
struct StormActor {
    peer_far: Endpoint,
    peer_near: Endpoint,
    neighbor: Endpoint,
    burst: usize,
    period: SimDuration,
}

impl Actor for StormActor {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
        match event {
            Event::Start | Event::Timer { .. } => {
                for i in 0..self.burst {
                    let to = if i % 2 == 0 { self.peer_far } else { self.peer_near };
                    ctx.send(to, Bytes::from_static(STORM_PAYLOAD));
                }
                // Same-timestamp work: a loopback datagram and a signal.
                ctx.send(ctx.me(), Bytes::from_static(STORM_PAYLOAD));
                ctx.signal(self.neighbor, 7);
                ctx.set_timer(self.period, 1);
            }
            Event::Packet { from, payload } => {
                // Echo, except loopback (which would self-amplify).
                if from.host != ctx.host() {
                    ctx.send(from, payload);
                }
            }
            _ => {}
        }
    }
}

/// Two Ethernet sites bridged by IP routing, with an ATM fabric
/// spanning every third host — the multi-homed UTK shape scaled up.
fn storm_topology(hosts: usize) -> (Topology, Vec<HostId>, [NetId; 3]) {
    assert!(hosts >= 4 && hosts % 2 == 0, "need an even host count >= 4");
    let mut t = Topology::new();
    let eth0 = t.add_network("site0-eth", Medium::ethernet100(), true);
    let eth1 = t.add_network("site1-eth", Medium::ethernet100(), true);
    let atm = t.add_network("campus-atm", Medium::atm155(), false);
    let mut ids = Vec::with_capacity(hosts);
    for i in 0..hosts {
        let h = t.add_host(HostCfg::named(format!("storm{i}")));
        t.attach(h, if i < hosts / 2 { eth0 } else { eth1 });
        if i % 3 == 0 {
            t.attach(h, atm);
        }
        ids.push(h);
    }
    (t, ids, [eth0, eth1, atm])
}

/// Periodic fault script: every 50 ms of simulated time one rotating
/// mutation lands (interface flaps, loss injection, a partition window,
/// one host crash/repair cycle) — enough churn to invalidate routing
/// state the way E3/E7 do, while most packets still see a stable
/// topology.
fn schedule_faults(world: &mut World, ids: &[HostId], nets: [NetId; 3], sim: SimDuration) {
    let [eth0, eth1, atm] = nets;
    let step = SimDuration::from_millis(50);
    let steps = (sim.as_nanos() / step.as_nanos()) as usize;
    let victim = ids[0];
    let flapper = ids[ids.len() / 2];
    for k in 0..steps {
        let at = snipe_util::time::SimTime::ZERO + step * k as u64;
        match k % 8 {
            0 => world.schedule_fn(at, move |w| {
                w.set_iface_up(victim, atm, false);
            }),
            1 => world.schedule_fn(at, move |w| {
                w.set_iface_up(victim, atm, true);
            }),
            2 => world.schedule_fn(at, move |w| w.set_net_loss(eth0, Some(0.02))),
            3 => world.schedule_fn(at, move |w| w.set_net_loss(eth0, None)),
            4 => world.schedule_fn(at, move |w| w.set_partition(eth1, 1)),
            5 => world.schedule_fn(at, move |w| w.set_partition(eth1, 0)),
            6 => world.schedule_fn(at, move |w| w.host_down(flapper)),
            _ => world.schedule_fn(at, move |w| w.host_up(flapper)),
        }
    }
}

/// Build the storm world (shared by the harness run and the criterion
/// bench).
pub fn build_storm(hosts: usize, sim: SimDuration, seed: u64) -> World {
    let (topo, ids, nets) = storm_topology(hosts);
    let n = ids.len();
    let mut world = World::new(topo, seed);
    for (i, &h) in ids.iter().enumerate() {
        let actor = StormActor {
            peer_far: Endpoint::new(ids[(i + n / 2) % n], STORM_PORT),
            peer_near: Endpoint::new(ids[(i + 1) % n], STORM_PORT),
            neighbor: Endpoint::new(ids[(i + 2) % n], STORM_PORT),
            burst: 6,
            period: SimDuration::from_millis(1),
        };
        world.spawn(h, STORM_PORT, Box::new(actor));
    }
    schedule_faults(&mut world, &ids, nets, sim);
    world
}

/// Run the storm for `sim` simulated time and measure engine
/// throughput.
pub fn storm(label: &str, hosts: usize, sim: SimDuration, seed: u64) -> EngineRun {
    storm_with(label, hosts, sim, seed, true)
}

/// [`storm`] with the route cache optionally disabled (A/B runs; the
/// traffic fingerprint must be identical either way).
pub fn storm_with(
    label: &str,
    hosts: usize,
    sim: SimDuration,
    seed: u64,
    route_cache: bool,
) -> EngineRun {
    let mut world = build_storm(hosts, sim, seed);
    world.set_route_cache(route_cache);
    let t0 = std::time::Instant::now();
    world.run_for(sim);
    let wall = t0.elapsed().as_secs_f64();
    let metrics_json = world.metrics_json(2);
    let stats = world.stats();
    EngineRun {
        label: label.to_string(),
        sim_seconds: sim.as_secs_f64(),
        events: stats.events,
        sent: stats.sent,
        delivered: stats.delivered,
        drops: stats.total_drops(),
        wall_seconds: wall,
        events_per_sec: stats.events as f64 / wall,
        heap_pops: stats.engine.heap_pops,
        now_pops: stats.engine.now_pops,
        stream_pops: stats.engine.stream_pops,
        route_cache_hits: stats.engine.route_cache_hits,
        route_cache_misses: stats.engine.route_cache_misses,
        peak_queue_depth: stats.engine.peak_queue_depth,
        metrics_json,
    }
}

/// Deterministic fingerprint of a run (must not depend on wall clock).
pub fn fingerprint(r: &EngineRun) -> (u64, u64, u64, u64) {
    (r.events, r.sent, r.delivered, r.drops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_is_deterministic_and_busy() {
        let a = storm("a", 16, SimDuration::from_millis(200), 42);
        let b = storm("b", 16, SimDuration::from_millis(200), 42);
        assert_eq!(fingerprint(&a), fingerprint(&b));
        assert!(a.delivered > 10_000, "storm too quiet: {a:?}");
        assert!(a.drops > 0, "faults should cause some drops: {a:?}");
    }
}
