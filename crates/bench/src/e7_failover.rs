//! E7 — §6: "the ability to switch routes/interfaces as links failed
//! without user applications intervention."
//!
//! Dual-homed hosts (Ethernet + ATM, the UTK shape). The sender pins
//! its ranked routes [ATM, Ethernet]; mid-transfer the ATM fabric
//! silently blackholes (loss = 100%, interfaces still "up", so the
//! simulator cannot reroute by itself). The SRUDP timeout escalation
//! must rotate to Ethernet and complete the transfer with no
//! application involvement.

use std::sync::{Arc, Mutex};

use snipe_netsim::medium::Medium;
use snipe_netsim::topology::{Endpoint, HostCfg, Topology};
use snipe_netsim::world::World;
use snipe_util::time::{SimDuration, SimTime};
use snipe_wire::stack::StackConfig;

use crate::fig1::{SrudpReceiver, SrudpSender};
use snipe_netsim::actor::TimerGate;

/// Measured outcome.
#[derive(Clone, Debug)]
pub struct E7Point {
    /// Bytes to transfer.
    pub total: usize,
    /// Bytes delivered.
    pub delivered: usize,
    /// Route failovers performed by the stack.
    pub failovers_observed: bool,
    /// Transfer completion time (seconds); NaN if incomplete.
    pub elapsed: f64,
    /// When the blackhole was injected (seconds).
    pub fault_at: f64,
}

/// Run the blackhole failover drill.
pub fn run(total: usize, seed: u64) -> E7Point {
    let mut topo = Topology::new();
    let eth = topo.add_network("eth", Medium::ethernet100(), true);
    let atm = topo.add_network("atm", Medium::atm155(), false);
    let a = topo.add_host(HostCfg::named("a"));
    let b = topo.add_host(HostCfg::named("b"));
    for h in [a, b] {
        topo.attach(h, eth);
        topo.attach(h, atm);
    }
    let mut world = World::new(topo, seed);
    let received = Arc::new(Mutex::new(0usize));
    let done_at: Arc<Mutex<Option<SimTime>>> = Arc::new(Mutex::new(None));
    let mut cfg = StackConfig::default();
    cfg.srudp.rto_initial = SimDuration::from_millis(20);
    world.spawn(
        b,
        20,
        Box::new(SrudpReceiver {
            stack: None,
            received: received.clone(),
            done_at: done_at.clone(),
            expect: total,
            cfg: cfg.clone(),
            pin: Some(vec![atm, eth]),
            gate: TimerGate::new(),
        }),
    );
    // Pin routes: prefer ATM, fall back to Ethernet.
    let sender = SrudpSender {
        stack: None,
        peer: Endpoint::new(b, 20),
        msg_size: 16 * 1024,
        remaining: total,
        inflight: 64 * 1400,
        cfg,
        pin: Some(vec![atm, eth]),
        gate: TimerGate::new(),
    };
    world.spawn(a, 20, Box::new(sender));
    // Blackhole the ATM fabric at 40% of the expected transfer time.
    let fault_at = SimTime::ZERO + SimDuration::from_millis(100);
    world.schedule_fn(fault_at, move |w| w.set_net_loss(atm, Some(1.0)));
    for _ in 0..300 {
        world.run_for(SimDuration::from_millis(100));
        if done_at.lock().unwrap().is_some() {
            break;
        }
    }
    let elapsed = done_at.lock().unwrap().map(|t| t.as_secs_f64()).unwrap_or(f64::NAN);
    // Failovers happened iff bytes flowed on Ethernet after the fault.
    let eth_bytes = world.stats().bytes_on(eth);
    let delivered = *received.lock().unwrap();
    E7Point {
        total,
        delivered,
        failovers_observed: eth_bytes > 0,
        elapsed,
        fault_at: fault_at.as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_survives_blackholed_preferred_route() {
        let p = run(4 << 20, 13);
        assert!(p.delivered >= p.total, "{p:?}");
        assert!(p.failovers_observed, "{p:?}");
        assert!(p.elapsed.is_finite());
    }
}
