//! E5 — §5.6: "Processes with open communications are guaranteed no
//! loss of data while migration is in progress."
//!
//! A streamer fires messages at a worker at a fixed rate while the
//! worker migrates between hosts. We measure messages lost (must be 0),
//! FIFO violations (must be 0) and the delivery stall around the move.

use std::sync::{Arc, Mutex};

use bytes::Bytes;

use snipe_core::{ProcRef, SnipeApi, SnipeProcess, SnipeWorldBuilder};
use snipe_util::time::{SimDuration, SimTime};

/// Measured outcome.
#[derive(Clone, Debug)]
pub struct E5Point {
    /// Messages sent at the migrating process.
    pub sent: u32,
    /// Messages it received.
    pub received: u32,
    /// FIFO violations observed.
    pub out_of_order: u32,
    /// Longest gap between consecutive deliveries (seconds) — the
    /// migration stall.
    pub max_gap: f64,
    /// When the process completed its move (seconds).
    pub migrated_at: f64,
}

pub(crate) struct Worker {
    pub(crate) deliveries: Arc<Mutex<Vec<(SimTime, u32)>>>,
    pub(crate) migrated_at: Arc<Mutex<Option<SimTime>>>,
    pub(crate) move_after: SimDuration,
    pub(crate) target: String,
}

impl SnipeProcess for Worker {
    fn on_start(&mut self, api: &mut SnipeApi<'_, '_>) {
        api.set_timer(self.move_after, 1);
    }
    fn on_timer(&mut self, api: &mut SnipeApi<'_, '_>, _token: u64) {
        api.migrate_to(self.target.clone());
    }
    fn on_migrated(&mut self, api: &mut SnipeApi<'_, '_>) {
        *self.migrated_at.lock().unwrap() = Some(api.now());
    }
    fn on_message(&mut self, api: &mut SnipeApi<'_, '_>, _from: ProcRef, msg: Bytes) {
        // Under chaos a peer could hand us a runt; never slice past it.
        let Some(head) = msg.get(..4) else { return };
        let mut b = [0u8; 4];
        b.copy_from_slice(head);
        self.deliveries.lock().unwrap().push((api.now(), u32::from_be_bytes(b)));
    }
    // Worker state rides along: the delivery log lives outside (test
    // instrumentation), so nothing to checkpoint.
}

pub(crate) struct Streamer {
    pub(crate) peer: u64,
    pub(crate) total: u32,
    pub(crate) sent: u32,
    pub(crate) interval: SimDuration,
}

impl SnipeProcess for Streamer {
    fn on_start(&mut self, api: &mut SnipeApi<'_, '_>) {
        api.set_timer(self.interval, 1);
    }
    fn on_timer(&mut self, api: &mut SnipeApi<'_, '_>, _token: u64) {
        if self.sent < self.total {
            let mut payload = self.sent.to_be_bytes().to_vec();
            payload.extend_from_slice(&[0u8; 252]);
            api.send(self.peer, payload);
            self.sent += 1;
            api.set_timer(self.interval, 1);
        }
    }
}

/// Run the migration drill.
pub fn run(total_msgs: u32, seed: u64) -> E5Point {
    let mut w = SnipeWorldBuilder::lan(4, seed).build();
    let deliveries = Arc::new(Mutex::new(Vec::new()));
    let migrated_at = Arc::new(Mutex::new(None));
    let (dl, ma) = (deliveries.clone(), migrated_at.clone());
    w.register_process("worker", move |_| {
        Box::new(Worker {
            deliveries: dl.clone(),
            migrated_at: ma.clone(),
            move_after: SimDuration::from_millis(500),
            target: "host3".into(),
        })
    });
    let (wkey, _) = w.spawn_on("host1", "worker", Bytes::new()).unwrap();
    w.register_process("streamer", move |_| {
        Box::new(Streamer {
            peer: wkey,
            total: total_msgs,
            sent: 0,
            interval: SimDuration::from_millis(20),
        })
    });
    w.spawn_on("host2", "streamer", Bytes::new()).unwrap();
    w.run_for_secs(5 + (total_msgs as u64 / 20));
    let log = deliveries.lock().unwrap();
    let mut out_of_order = 0;
    let mut max_gap = 0.0f64;
    for pair in log.windows(2) {
        if pair[1].1 < pair[0].1 {
            out_of_order += 1;
        }
        let gap = pair[1].0.since(pair[0].0).as_secs_f64();
        max_gap = max_gap.max(gap);
    }
    let migrated = *migrated_at.lock().unwrap();
    let received = log.len() as u32;
    drop(log);
    E5Point {
        sent: total_msgs,
        received,
        out_of_order,
        max_gap,
        migrated_at: migrated.map(|t| t.as_secs_f64()).unwrap_or(f64::NAN),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_loss_zero_reorder() {
        let p = run(100, 6);
        assert_eq!(p.received, p.sent, "{p:?}");
        assert_eq!(p.out_of_order, 0, "{p:?}");
        assert!(p.migrated_at > 0.0);
    }
}
