//! E8 — §2.2: "PVM can tolerate slave failures but not failure of its
//! master host" vs SNIPE's redundancy. The same lookup workload runs
//! against a 2-replica RC service and against a PVM master; midway the
//! preferred server dies. SNIPE fails over; PVM goes dark.

use std::sync::{Arc, Mutex};

use snipe_netsim::actor::{Actor, Ctx, Event};
use snipe_netsim::medium::Medium;
use snipe_netsim::topology::{Endpoint, HostCfg, Topology};
use snipe_netsim::world::World;
use snipe_rcds::assertion::Assertion;
use snipe_rcds::client::RcClient;
use snipe_rcds::server::RcServerActor;
use snipe_rcds::uri::Uri;
use snipe_util::codec::{WireDecode, WireEncode};
use snipe_util::time::{SimDuration, SimTime};
use snipe_wire::frame::{open, seal, Proto};
use snipe_wire::ports;

use pvm_baseline::proto::PvmMsg;
use pvm_baseline::{PvmMaster, MASTER_PORT};

/// Measured outcome of one system.
#[derive(Clone, Debug)]
pub struct E8Point {
    /// System name.
    pub system: &'static str,
    /// Operations issued before the kill.
    pub ops_before: u64,
    /// Of those, answered.
    pub ok_before: u64,
    /// Operations issued after the kill.
    pub ops_after: u64,
    /// Of those, answered.
    pub ok_after: u64,
}

impl E8Point {
    /// Post-failure availability.
    pub fn availability_after(&self) -> f64 {
        if self.ops_after == 0 {
            0.0
        } else {
            self.ok_after as f64 / self.ops_after as f64
        }
    }
}

const TIMER_TICK: u64 = 1;
const TIMER_RC: u64 = 2;

struct SnipeLoad {
    rc: RcClient,
    uri: Uri,
    kill_at: SimTime,
    stop_at: SimTime,
    issued: Arc<Mutex<(u64, u64)>>,
    answered: Arc<Mutex<(u64, u64)>>,
    pending_epoch: std::collections::HashMap<u64, bool>,
    seeded: bool,
}

impl SnipeLoad {
    fn flush(&mut self, ctx: &mut Ctx<'_>) {
        for (to, bytes) in self.rc.drain_sends() {
            ctx.send(to, seal(Proto::Raw, bytes));
        }
        for (id, result) in self.rc.drain_done() {
            if !self.seeded {
                self.seeded = true;
                continue;
            }
            let after = self.pending_epoch.remove(&id).unwrap_or(false);
            if result.is_ok_and(|r| !r.assertions.is_empty()) {
                let mut a = self.answered.lock().unwrap();
                if after {
                    a.1 += 1;
                } else {
                    a.0 += 1;
                }
            }
        }
        if let Some(dl) = self.rc.next_deadline() {
            let delay = dl.saturating_since(ctx.now()) + SimDuration::from_micros(1);
            ctx.set_timer(delay, TIMER_RC);
        }
    }
}

impl Actor for SnipeLoad {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
        match event {
            Event::Start => {
                let now = ctx.now();
                self.rc.put(now, &self.uri, vec![Assertion::new("k", "v")]);
                self.flush(ctx);
                ctx.set_timer(SimDuration::from_millis(100), TIMER_TICK);
            }
            Event::Timer { token: TIMER_TICK } => {
                let now = ctx.now();
                if now >= self.stop_at {
                    return; // drain window: let pending ops finish
                }
                let after = now >= self.kill_at;
                let id = self.rc.get(now, &self.uri);
                self.pending_epoch.insert(id, after);
                let mut i = self.issued.lock().unwrap();
                if after {
                    i.1 += 1;
                } else {
                    i.0 += 1;
                }
                drop(i);
                self.flush(ctx);
                ctx.set_timer(SimDuration::from_millis(100), TIMER_TICK);
            }
            Event::Timer { token: TIMER_RC } => {
                self.rc.on_timer(ctx.now());
                self.flush(ctx);
            }
            Event::Packet { from, payload } => {
                if let Ok((Proto::Raw, body)) = open(payload) {
                    self.rc.on_packet(ctx.now(), from, body);
                }
                self.flush(ctx);
            }
            _ => {}
        }
    }
}

/// SNIPE side: two RC replicas; kill the preferred one midway.
pub fn run_snipe(seed: u64) -> E8Point {
    let mut topo = Topology::new();
    let net = topo.add_network("lan", Medium::ethernet100(), true);
    let r0 = topo.add_host(HostCfg::named("rc0"));
    let r1 = topo.add_host(HostCfg::named("rc1"));
    let c = topo.add_host(HostCfg::named("client"));
    for h in [r0, r1, c] {
        topo.attach(h, net);
    }
    let mut world = World::new(topo, seed);
    let eps = vec![Endpoint::new(r0, ports::RC_SERVER), Endpoint::new(r1, ports::RC_SERVER)];
    world.spawn(
        r0,
        ports::RC_SERVER,
        Box::new(RcServerActor::new(1, vec![eps[1]], SimDuration::from_millis(200))),
    );
    world.spawn(
        r1,
        ports::RC_SERVER,
        Box::new(RcServerActor::new(2, vec![eps[0]], SimDuration::from_millis(200))),
    );
    let kill_at = SimTime::ZERO + SimDuration::from_secs(5);
    world.schedule_fn(kill_at, move |w| w.host_down(r0));
    let issued = Arc::new(Mutex::new((0u64, 0u64)));
    let answered = Arc::new(Mutex::new((0u64, 0u64)));
    let load = SnipeLoad {
        rc: RcClient::new(eps, SimDuration::from_millis(200)),
        uri: Uri::process(3),
        kill_at,
        stop_at: SimTime::ZERO + SimDuration::from_secs(10),
        issued: issued.clone(),
        answered: answered.clone(),
        pending_epoch: Default::default(),
        seeded: false,
    };
    world.spawn(c, 50, Box::new(load));
    world.run_for(SimDuration::from_secs(13));
    let i = *issued.lock().unwrap();
    let a = *answered.lock().unwrap();
    E8Point {
        system: "SNIPE (2 RC replicas)",
        ops_before: i.0,
        ok_before: a.0,
        ops_after: i.1,
        ok_after: a.1,
    }
}

struct PvmLoad {
    master: Endpoint,
    kill_at: SimTime,
    issued: Arc<Mutex<(u64, u64)>>,
    answered: Arc<Mutex<(u64, u64)>>,
    pending_epoch: std::collections::HashMap<u64, bool>,
    next_req: u64,
}

impl Actor for PvmLoad {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
        match event {
            Event::Start => {
                // Register tid 3 so lookups succeed while the master
                // lives.
                let me = ctx.me();
                let reg = PvmMsg::Register { tid: 3, endpoint: me };
                ctx.send(self.master, seal(Proto::Raw, reg.encode_to_bytes()));
                ctx.set_timer(SimDuration::from_millis(100), TIMER_TICK);
            }
            Event::Timer { token: TIMER_TICK } => {
                let after = ctx.now() >= self.kill_at;
                let req = self.next_req;
                self.next_req += 1;
                self.pending_epoch.insert(req, after);
                let mut i = self.issued.lock().unwrap();
                if after {
                    i.1 += 1;
                } else {
                    i.0 += 1;
                }
                drop(i);
                let msg = PvmMsg::LookupReq { req_id: req, tid: 3 };
                ctx.send(self.master, seal(Proto::Raw, msg.encode_to_bytes()));
                ctx.set_timer(SimDuration::from_millis(100), TIMER_TICK);
            }
            Event::Packet { from: _, payload } => {
                let Ok((Proto::Raw, body)) = open(payload) else {
                    return;
                };
                let Ok(PvmMsg::LookupResp { req_id, ok, .. }) = PvmMsg::decode_from_bytes(body)
                else {
                    return;
                };
                if ok {
                    if let Some(after) = self.pending_epoch.remove(&req_id) {
                        let mut a = self.answered.lock().unwrap();
                        if after {
                            a.1 += 1;
                        } else {
                            a.0 += 1;
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

/// PVM side: single master; kill it midway.
pub fn run_pvm(seed: u64) -> E8Point {
    let mut topo = Topology::new();
    let net = topo.add_network("lan", Medium::ethernet100(), true);
    let m = topo.add_host(HostCfg::named("master"));
    let c = topo.add_host(HostCfg::named("client"));
    for h in [m, c] {
        topo.attach(h, net);
    }
    let mut world = World::new(topo, seed);
    let master_ep = Endpoint::new(m, MASTER_PORT);
    world.spawn(m, MASTER_PORT, Box::new(PvmMaster::new()));
    let kill_at = SimTime::ZERO + SimDuration::from_secs(5);
    world.schedule_fn(kill_at, move |w| w.host_down(m));
    let issued = Arc::new(Mutex::new((0u64, 0u64)));
    let answered = Arc::new(Mutex::new((0u64, 0u64)));
    let load = PvmLoad {
        master: master_ep,
        kill_at,
        issued: issued.clone(),
        answered: answered.clone(),
        pending_epoch: Default::default(),
        next_req: 1,
    };
    world.spawn(c, 50, Box::new(load));
    world.run_for(SimDuration::from_secs(10));
    let i = *issued.lock().unwrap();
    let a = *answered.lock().unwrap();
    E8Point {
        system: "PVM (single master)",
        ops_before: i.0,
        ok_before: a.0,
        ops_after: i.1,
        ok_after: a.1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snipe_survives_pvm_does_not() {
        let s = run_snipe(21);
        let p = run_pvm(21);
        assert!(s.availability_after() > 0.9, "{s:?}");
        assert!(p.availability_after() < 0.1, "{p:?}");
        assert!(s.ok_before > 0 && p.ok_before > 0);
    }
}
