//! C2 — the chaos soak for the sharded engine.
//!
//! The single-world soak ([`crate::chaos`]) exercises the full SNIPE
//! protocol stack on the serial engine. This soak targets
//! [`ShardedWorld`]: six bespoke `Send` workloads exercise the
//! *engine-level* contracts — mailbox routing, fault dispatch across
//! regions, chaos determinism, bounded per-shard queues, erasure-coded
//! share spraying — and, now that every service actor is a
//! [`PortableActor`], a
//! **full-protocol** workload runs the real stack (per-host daemons,
//! RCDS replication, file transfer) on a multi-cluster
//! [`ShardedSnipeWorld`] under the same chaos plans.
//!
//! The engine-level runs happen on a 1000-host campus (16 regions)
//! with a small active cast; the full-protocol run uses a 48-host
//! campus (6 regions) because it installs the whole runtime on every
//! host. Each run executes its seeded [`ChaosPlan`] to quiescence plus
//! a recovery tail, asserts its invariants plus the per-shard
//! boundedness oracle, and is doubled at a second thread count — the
//! digests must match bit-for-bit.

use std::collections::BTreeMap;

use bytes::Bytes;

use snipe_core::api::TicketResult;
use snipe_core::{ShardedSnipeWorld, SnipeApi, SnipeProcess, SnipeWorldBuilder, SpawnTarget};
use snipe_files::{FetchActor, FileServerActor, FileServerConfig};
use snipe_netsim::actor::{Event, PortableActor, SimCtx, TimerGate};
use snipe_netsim::chaos::{ChaosBinding, ChaosPlan, ChaosShape};
use snipe_netsim::shard::{ShardActor, ShardCtx, ShardedWorld};
use snipe_netsim::topology::Endpoint;
use snipe_rcds::assertion::Assertion;
use snipe_rcds::client::RcClient;
use snipe_rcds::server::RcServerActor;
use snipe_rcds::uri::Uri;
use snipe_util::id::{HostId, NetId};
use snipe_util::time::{SimDuration, SimTime};
use snipe_wire::fec;
use snipe_wire::frame::{open, seal, Proto};
use snipe_wire::ports;

use crate::chaos::{replica_crash_content, soak_seeds, REPLICA_CRASH_LIFN, REPLICA_CRASH_STRIPES};
use crate::oracles;
use crate::par_map;
use crate::shard_storm::cluster_topology;

/// Hosts in every soak world (16 regions of 64).
pub const SOAK_HOSTS: usize = 1000;
/// Worker threads for the primary run of each plan.
pub const SOAK_THREADS: usize = 4;
/// Thread count for the differential re-run (digests must match).
pub const DIFF_THREADS: usize = 1;
/// Recovery tail after the plan quiesces.
const RECOVERY_TAIL: SimDuration = SimDuration::from_secs(30);
/// Per-shard bounds for [`oracles::check_shard_bounded`].
const MAX_RESIDUAL_EVENTS: usize = 512;
const MAX_PEAK_DEPTH: u64 = 100_000;
const MAX_MAILBOX_BURST: u64 = 10_000;

const PORT: u16 = 7000;

// ---------------------------------------------------------------------------
// Checksummed frames
// ---------------------------------------------------------------------------
// Packet chaos flips payload bits; workloads that promise delivery
// treat a corrupt frame as loss (drop + retransmit). An FNV-1a trailer
// makes corruption detectable.

fn fnv(bytes: &[u8]) -> u32 {
    let mut h = 0x811c_9dc5u32;
    for &b in bytes {
        h = (h ^ b as u32).wrapping_mul(0x0100_0193);
    }
    h
}

/// `[tag, seq, value, csum]`, all little-endian u32s plus padding to a
/// plausible datagram size.
fn frame(tag: u32, seq: u32, value: u32) -> Bytes {
    let mut b = Vec::with_capacity(64);
    b.extend_from_slice(&tag.to_le_bytes());
    b.extend_from_slice(&seq.to_le_bytes());
    b.extend_from_slice(&value.to_le_bytes());
    let c = fnv(&b);
    b.extend_from_slice(&c.to_le_bytes());
    b.resize(64, 0x5A);
    Bytes::from(b)
}

/// Parse + verify; `None` = corrupt (caller treats as loss).
fn parse(payload: &[u8]) -> Option<(u32, u32, u32)> {
    if payload.len() < 16 {
        return None;
    }
    let word = |i: usize| u32::from_le_bytes(payload[i * 4..i * 4 + 4].try_into().unwrap());
    if fnv(&payload[..12]) != word(3) {
        return None;
    }
    if payload[16..].iter().any(|&b| b != 0x5A) {
        return None;
    }
    Some((word(0), word(1), word(2)))
}

const TAG_DATA: u32 = 1;
const TAG_ACK: u32 = 2;
const TAG_SWITCH: u32 = 3;

// ---------------------------------------------------------------------------
// W1: acked transfer with retransmission (cross-region)
// ---------------------------------------------------------------------------

/// Sender: windowed chunks, blanket retransmit of the unacked set on a
/// periodic timer. Tolerates loss, duplication, reordering, corruption
/// and flaps of either endpoint.
struct XferSender {
    peer: Endpoint,
    total: u32,
    acked: Vec<bool>,
    done: bool,
}

impl XferSender {
    fn pump(&mut self, ctx: &mut ShardCtx<'_>) {
        let mut sent = 0;
        for seq in 0..self.total {
            if !self.acked[seq as usize] {
                ctx.send(self.peer, frame(TAG_DATA, seq, seq ^ 0xABCD));
                sent += 1;
                if sent >= 32 {
                    break;
                }
            }
        }
        if sent > 0 {
            ctx.set_timer(SimDuration::from_millis(100), 1);
        } else {
            self.done = true;
        }
    }
}

impl ShardActor for XferSender {
    fn on_event(&mut self, ctx: &mut ShardCtx<'_>, event: Event) {
        match event {
            Event::Start | Event::Timer { .. } | Event::HostUp => self.pump(ctx),
            Event::Packet { payload, .. } => {
                if let Some((TAG_ACK, seq, _)) = parse(&payload) {
                    if (seq as usize) < self.acked.len() {
                        self.acked[seq as usize] = true;
                    }
                    if self.acked.iter().all(|&a| a) && !self.done {
                        self.done = true;
                    }
                }
            }
            _ => {}
        }
    }
}

/// Receiver: dedups by sequence number, acks everything (acks are
/// idempotent, so ack loss only costs a retransmit).
struct XferReceiver {
    seen: Vec<bool>,
    distinct: u32,
}

impl ShardActor for XferReceiver {
    fn on_event(&mut self, ctx: &mut ShardCtx<'_>, event: Event) {
        if let Event::Packet { from, payload } = event {
            if let Some((TAG_DATA, seq, _)) = parse(&payload) {
                if (seq as usize) < self.seen.len() {
                    if !self.seen[seq as usize] {
                        self.seen[seq as usize] = true;
                        self.distinct += 1;
                    }
                    ctx.send(from, frame(TAG_ACK, seq, 0));
                }
            }
        }
    }
}

fn run_transfer(plan: &ChaosPlan, wseed: u64, threads: usize) -> (Vec<String>, u64) {
    const TOTAL: u32 = 256;
    let mut w = soak_world(wseed, threads);
    let a = HostId(3); // cluster 0
    let b = HostId(200); // cluster 3 — routed cross-region path
    let tx = w
        .spawn(
            a,
            PORT,
            Box::new(XferSender {
                peer: Endpoint::new(b, PORT),
                total: TOTAL,
                acked: vec![false; TOTAL as usize],
                done: false,
            }),
        )
        .unwrap();
    let rx = w
        .spawn(b, PORT, Box::new(XferReceiver { seen: vec![false; TOTAL as usize], distinct: 0 }))
        .unwrap();
    apply(&mut w, plan, &[a, b]);
    let mut v = run_to_deadline(&mut w, plan, |w| {
        w.actor_ref::<XferSender>(tx).map(|s| s.done).unwrap_or(false)
    });
    let got = w.actor_ref::<XferReceiver>(rx).map(|r| r.distinct).unwrap_or(0);
    if got != TOTAL {
        v.push(format!("shard-transfer: receiver holds {got} of {TOTAL} distinct chunks"));
    }
    if !w.actor_ref::<XferSender>(tx).map(|s| s.done).unwrap_or(false) {
        v.push("shard-transfer: sender never saw every ack".into());
    }
    v.extend(bounded("shard-transfer", &w));
    (v, w.digest())
}

// ---------------------------------------------------------------------------
// W2: go-back-N sequenced stream (in-order, exactly-once delivery)
// ---------------------------------------------------------------------------

struct StreamSender {
    peer: Endpoint,
    total: u32,
    base: u32,
    window: u32,
}

impl StreamSender {
    fn pump(&mut self, ctx: &mut ShardCtx<'_>) {
        if self.base >= self.total {
            return;
        }
        for seq in self.base..(self.base + self.window).min(self.total) {
            ctx.send(self.peer, frame(TAG_DATA, seq, seq.wrapping_mul(31)));
        }
        ctx.set_timer(SimDuration::from_millis(120), 1);
    }
}

impl ShardActor for StreamSender {
    fn on_event(&mut self, ctx: &mut ShardCtx<'_>, event: Event) {
        match event {
            Event::Start | Event::Timer { .. } | Event::HostUp => self.pump(ctx),
            Event::Packet { payload, .. } => {
                // Cumulative ack: `seq` = receiver's next expected.
                if let Some((TAG_ACK, seq, _)) = parse(&payload) {
                    if seq > self.base && seq <= self.total {
                        self.base = seq;
                    }
                }
            }
            _ => {}
        }
    }
}

/// In-order receiver: accepts only `next`, acks cumulatively. The
/// delivery log is the in-order prefix by construction; the oracle
/// checks it reaches `total` and that `log[i] == i`.
struct StreamReceiver {
    next: u32,
    log: Vec<u32>,
}

impl ShardActor for StreamReceiver {
    fn on_event(&mut self, ctx: &mut ShardCtx<'_>, event: Event) {
        if let Event::Packet { from, payload } = event {
            if let Some((TAG_DATA, seq, _)) = parse(&payload) {
                if seq == self.next {
                    self.log.push(seq);
                    self.next += 1;
                }
                ctx.send(from, frame(TAG_ACK, self.next, 0));
            }
        }
    }
}

fn run_stream(plan: &ChaosPlan, wseed: u64, threads: usize) -> (Vec<String>, u64) {
    const TOTAL: u32 = 200;
    let mut w = soak_world(wseed, threads);
    let a = HostId(70); // cluster 1
    let b = HostId(400); // cluster 6
    let tx = w
        .spawn(
            a,
            PORT,
            Box::new(StreamSender {
                peer: Endpoint::new(b, PORT),
                total: TOTAL,
                base: 0,
                window: 16,
            }),
        )
        .unwrap();
    let rx = w.spawn(b, PORT, Box::new(StreamReceiver { next: 0, log: Vec::new() })).unwrap();
    apply(&mut w, plan, &[a, b]);
    let mut v = run_to_deadline(&mut w, plan, |w| {
        w.actor_ref::<StreamSender>(tx).map(|s| s.base >= TOTAL).unwrap_or(false)
    });
    let log = w.actor_ref::<StreamReceiver>(rx).map(|r| r.log.clone()).unwrap_or_default();
    v.extend(oracles::check_exactly_once_in_order("shard-stream", TOTAL, &log));
    v.extend(bounded("shard-stream", &w));
    (v, w.digest())
}

// ---------------------------------------------------------------------------
// W3: intra-region service migration under a message stream
// ---------------------------------------------------------------------------

/// Stop-and-wait driver: sends message `seq` until acked, then moves
/// on; a `TAG_SWITCH` control frame retargets it mid-stream.
struct MigDriver {
    target: Endpoint,
    total: u32,
    acked: u32,
}

impl MigDriver {
    fn pump(&mut self, ctx: &mut ShardCtx<'_>) {
        if self.acked >= self.total {
            return;
        }
        ctx.send(self.target, frame(TAG_DATA, self.acked, 7));
        ctx.set_timer(SimDuration::from_millis(80), 1);
    }
}

impl ShardActor for MigDriver {
    fn on_event(&mut self, ctx: &mut ShardCtx<'_>, event: Event) {
        match event {
            Event::Start | Event::Timer { .. } | Event::HostUp => self.pump(ctx),
            Event::Packet { payload, .. } => match parse(&payload) {
                Some((TAG_ACK, seq, _)) => {
                    if seq == self.acked {
                        self.acked += 1;
                        self.pump(ctx);
                    }
                }
                Some((TAG_SWITCH, _, host)) => {
                    self.target = Endpoint::new(HostId(host), PORT + 1);
                    self.pump(ctx);
                }
                _ => {}
            },
            _ => {}
        }
    }
}

/// The service: dedups by sequence, acks, and at a fixed virtual time
/// hands its state to a successor spawned on a sibling host in the
/// same region, then unbinds.
struct MigService {
    seen: Vec<bool>,
    distinct: u32,
    driver: Endpoint,
    move_to: Option<HostId>,
}

impl ShardActor for MigService {
    fn on_event(&mut self, ctx: &mut ShardCtx<'_>, event: Event) {
        match event {
            Event::Start | Event::HostUp => {
                if self.move_to.is_some() {
                    ctx.set_timer(SimDuration::from_millis(900), 2);
                }
            }
            Event::Timer { token: 2 } => {
                if let Some(dest) = self.move_to.take() {
                    let successor = MigService {
                        seen: self.seen.clone(),
                        distinct: self.distinct,
                        driver: self.driver,
                        move_to: None,
                    };
                    if ctx.spawn(dest, PORT + 1, Box::new(successor)).is_some() {
                        ctx.send(self.driver, frame(TAG_SWITCH, 0, dest.0));
                        let me = ctx.me();
                        ctx.kill(me);
                    } else {
                        // Port race (can't happen here) — retry later.
                        self.move_to = Some(dest);
                        ctx.set_timer(SimDuration::from_millis(100), 2);
                    }
                }
            }
            Event::Packet { from, payload } => {
                if let Some((TAG_DATA, seq, _)) = parse(&payload) {
                    if (seq as usize) < self.seen.len() {
                        if !self.seen[seq as usize] {
                            self.seen[seq as usize] = true;
                            self.distinct += 1;
                        }
                        ctx.send(from, frame(TAG_ACK, seq, 0));
                    }
                }
            }
            _ => {}
        }
    }
}

fn run_migration(plan: &ChaosPlan, wseed: u64, threads: usize) -> (Vec<String>, u64) {
    const TOTAL: u32 = 100;
    let mut w = soak_world(wseed, threads);
    let driver_h = HostId(130); // cluster 2
    let svc_h = HostId(520); // cluster 8
    let dest_h = HostId(530); // same cluster: intra-region handoff
    let drv = w
        .spawn(
            driver_h,
            PORT,
            Box::new(MigDriver { target: Endpoint::new(svc_h, PORT + 1), total: TOTAL, acked: 0 }),
        )
        .unwrap();
    w.spawn(
        svc_h,
        PORT + 1,
        Box::new(MigService {
            seen: vec![false; TOTAL as usize],
            distinct: 0,
            driver: Endpoint::new(driver_h, PORT),
            move_to: Some(dest_h),
        }),
    )
    .unwrap();
    apply(&mut w, plan, &[driver_h, dest_h]);
    let mut v = run_to_deadline(&mut w, plan, |w| {
        w.actor_ref::<MigDriver>(drv).map(|d| d.acked >= TOTAL).unwrap_or(false)
    });
    let successor = Endpoint::new(dest_h, PORT + 1);
    match w.actor_ref::<MigService>(successor) {
        None => v.push("shard-migration: successor never came up on the destination host".into()),
        Some(s) => {
            if s.distinct != TOTAL {
                v.push(format!(
                    "shard-migration: successor holds {} of {TOTAL} messages after handoff",
                    s.distinct
                ));
            }
        }
    }
    if w.is_bound(Endpoint::new(svc_h, PORT + 1)) {
        v.push("shard-migration: origin service still bound after handoff".into());
    }
    v.extend(bounded("shard-migration", &w));
    (v, w.digest())
}

// ---------------------------------------------------------------------------
// W4: gossip convergence across regions
// ---------------------------------------------------------------------------

/// Max-merge gossip: each member pushes its current maximum to a
/// rotating peer on a jittered period. Convergence needs only eventual
/// connectivity, so every fault class is in contract.
struct Gossip {
    peers: Vec<Endpoint>,
    value: u32,
    cursor: usize,
}

impl ShardActor for Gossip {
    fn on_event(&mut self, ctx: &mut ShardCtx<'_>, event: Event) {
        match event {
            Event::Start | Event::Timer { .. } | Event::HostUp => {
                let peer = self.peers[self.cursor % self.peers.len()];
                self.cursor += 1;
                ctx.send(peer, frame(TAG_DATA, 0, self.value));
                let jitter = ctx.rng().gen_range(20) as u64;
                ctx.set_timer(SimDuration::from_millis(40 + jitter), 1);
            }
            Event::Packet { payload, .. } => {
                if let Some((TAG_DATA, _, value)) = parse(&payload) {
                    if value > self.value {
                        self.value = value;
                    }
                }
            }
            _ => {}
        }
    }
}

fn run_gossip(plan: &ChaosPlan, wseed: u64, threads: usize) -> (Vec<String>, u64) {
    const MEMBERS: usize = 24;
    let mut w = soak_world(wseed, threads);
    // Spread the mesh over six clusters, four members each.
    let hosts: Vec<HostId> = (0..MEMBERS).map(|i| HostId((i / 4 * 64 + i % 4) as u32)).collect();
    let eps: Vec<Endpoint> = hosts.iter().map(|&h| Endpoint::new(h, PORT)).collect();
    let max_value = 1_000 + MEMBERS as u32 - 1;
    for (i, &h) in hosts.iter().enumerate() {
        let peers: Vec<Endpoint> = eps.iter().copied().filter(|e| e.host != h).collect();
        w.spawn(h, PORT, Box::new(Gossip { peers, value: 1_000 + i as u32, cursor: i }));
    }
    apply(&mut w, plan, &hosts);
    let eps2 = eps.clone();
    let mut v = run_to_deadline(&mut w, plan, move |w| {
        eps2.iter()
            .all(|&e| w.actor_ref::<Gossip>(e).map(|g| g.value == max_value).unwrap_or(false))
    });
    for &e in &eps {
        let got = w.actor_ref::<Gossip>(e).map(|g| g.value).unwrap_or(0);
        if got != max_value {
            v.push(format!("shard-gossip: {e} stuck at {got}, never saw the maximum {max_value}"));
        }
    }
    v.extend(bounded("shard-gossip", &w));
    (v, w.digest())
}

// ---------------------------------------------------------------------------
// W5: relayed multicast fan-out
// ---------------------------------------------------------------------------

/// Source: paces `total` messages, each pushed to every relay; repeats
/// the full schedule three times so duplication-only chaos and source
/// flaps cannot starve a leaf.
struct McastSource {
    relays: Vec<Endpoint>,
    total: u32,
    sent: u32,
    rounds: u32,
}

impl ShardActor for McastSource {
    fn on_event(&mut self, ctx: &mut ShardCtx<'_>, event: Event) {
        match event {
            Event::Start | Event::Timer { .. } | Event::HostUp => {
                if self.sent == self.total {
                    if self.rounds == 0 {
                        return;
                    }
                    self.rounds -= 1;
                    self.sent = 0;
                }
                let seq = self.sent;
                for &r in &self.relays {
                    ctx.send(r, frame(TAG_DATA, seq, 0));
                }
                self.sent += 1;
                ctx.set_timer(SimDuration::from_millis(15), 1);
            }
            _ => {}
        }
    }
}

/// Relay: forwards every valid frame to all leaves (stateless).
struct McastRelay {
    leaves: Vec<Endpoint>,
}

impl ShardActor for McastRelay {
    fn on_event(&mut self, ctx: &mut ShardCtx<'_>, event: Event) {
        if let Event::Packet { payload, .. } = event {
            if parse(&payload).is_some() {
                for &l in &self.leaves {
                    ctx.send(l, payload.clone());
                }
            }
        }
    }
}

/// Leaf: records which sequence numbers arrived (at least once).
struct McastLeaf {
    seen: Vec<bool>,
}

impl ShardActor for McastLeaf {
    fn on_event(&mut self, _ctx: &mut ShardCtx<'_>, event: Event) {
        if let Event::Packet { payload, .. } = event {
            if let Some((TAG_DATA, seq, _)) = parse(&payload) {
                if (seq as usize) < self.seen.len() {
                    self.seen[seq as usize] = true;
                }
            }
        }
    }
}

fn run_mcast(plan: &ChaosPlan, wseed: u64, threads: usize) -> (Vec<String>, u64) {
    const TOTAL: u32 = 50;
    let mut w = soak_world(wseed, threads);
    let src = HostId(0);
    let relays: Vec<HostId> = vec![HostId(64), HostId(128), HostId(192)];
    let leaves: Vec<HostId> = (0..8).map(|i| HostId(256 + i * 64)).collect();
    let leaf_eps: Vec<Endpoint> = leaves.iter().map(|&h| Endpoint::new(h, PORT)).collect();
    for &r in &relays {
        w.spawn(r, PORT, Box::new(McastRelay { leaves: leaf_eps.clone() }));
    }
    for &l in &leaves {
        w.spawn(l, PORT, Box::new(McastLeaf { seen: vec![false; TOTAL as usize] }));
    }
    w.spawn(
        src,
        PORT,
        Box::new(McastSource {
            relays: relays.iter().map(|&h| Endpoint::new(h, PORT)).collect(),
            total: TOTAL,
            sent: 0,
            rounds: 2,
        }),
    );
    // Only the source host may flap (matching the single-world mcast
    // contract: relays are unreliable but must stay up).
    apply(&mut w, plan, &[src]);
    let eps2 = leaf_eps.clone();
    let mut v = run_to_deadline(&mut w, plan, move |w| {
        eps2.iter().all(|&e| {
            w.actor_ref::<McastLeaf>(e).map(|l| l.seen.iter().all(|&s| s)).unwrap_or(false)
        })
    });
    for &e in &leaf_eps {
        let missing = w
            .actor_ref::<McastLeaf>(e)
            .map(|l| l.seen.iter().filter(|&&s| !s).count())
            .unwrap_or(TOTAL as usize);
        if missing > 0 {
            v.push(format!("shard-mcast: leaf {e} missing {missing} of {TOTAL} messages"));
        }
    }
    v.extend(bounded("shard-mcast", &w));
    (v, w.digest())
}

// ---------------------------------------------------------------------------
// W6: erasure-coded share spray (the wire FEC codec on the sharded engine)
// ---------------------------------------------------------------------------
// The same Reed-Solomon codec SRUDP's `FragStrategy::Fec` uses, driven
// as a raw Send workload: each message is encoded into `2b-1` shares
// sent as independent datagrams, the receiver reconstructs from
// whichever `b` arrive and applies the reconstruct-then-verify gate
// before delivery. Covers the codec's determinism across shard thread
// counts and its integrity contract under loss bursts and corruption.

const TAG_FEC_SHARE: u32 = 4;

/// Deterministic message body for sequence `seq`.
fn fec_msg(seq: u32, len: usize) -> Vec<u8> {
    (0..len).map(|j| ((seq as usize * 131 + j * 31) % 251) as u8).collect()
}

/// Share datagram: seven LE u32 header words, the share bytes, and an
/// FNV trailer over everything (corruption ⇒ treated as loss).
fn fec_frame(seq: u32, share_idx: u32, b: u32, msg_len: u32, csum: u32, share: &[u8]) -> Bytes {
    let mut v = Vec::with_capacity(32 + share.len());
    for w in [TAG_FEC_SHARE, seq, share_idx, b, msg_len, csum, share.len() as u32] {
        v.extend_from_slice(&w.to_le_bytes());
    }
    v.extend_from_slice(share);
    let c = fnv(&v);
    v.extend_from_slice(&c.to_le_bytes());
    Bytes::from(v)
}

struct FecFrame {
    seq: u32,
    share_idx: u32,
    b: u32,
    msg_len: u32,
    csum: u32,
    share: Bytes,
}

fn parse_fec(payload: &Bytes) -> Option<FecFrame> {
    if payload.len() < 32 {
        return None;
    }
    let word = |i: usize| u32::from_le_bytes(payload[i * 4..i * 4 + 4].try_into().unwrap());
    if word(0) != TAG_FEC_SHARE {
        return None;
    }
    let share_len = word(6) as usize;
    if payload.len() != 28 + share_len + 4 {
        return None;
    }
    let trailer = u32::from_le_bytes(payload[28 + share_len..].try_into().unwrap());
    if fnv(&payload[..28 + share_len]) != trailer {
        return None;
    }
    Some(FecFrame {
        seq: word(1),
        share_idx: word(2),
        b: word(3),
        msg_len: word(4),
        csum: word(5),
        share: payload.slice(28..28 + share_len),
    })
}

/// Sender: blanket-resprays every share of each unacked message in a
/// bounded window on a periodic timer. Any `b` of the `2b-1` shares
/// landing is enough, so a retransmit round survives heavy loss.
struct FecShardSender {
    peer: Endpoint,
    total: u32,
    b: usize,
    msg_len: usize,
    acked: Vec<bool>,
    window: u32,
    done: bool,
}

impl FecShardSender {
    fn pump(&mut self, ctx: &mut ShardCtx<'_>) {
        let mut live = 0;
        for seq in 0..self.total {
            if self.acked[seq as usize] {
                continue;
            }
            let msg = fec_msg(seq, self.msg_len);
            let csum = fec::msg_checksum(&msg);
            let shares = fec::encode(&msg, self.b).expect("b within codec bounds");
            for (i, s) in shares.iter().enumerate() {
                ctx.send(
                    self.peer,
                    fec_frame(seq, i as u32, self.b as u32, self.msg_len as u32, csum, s),
                );
            }
            live += 1;
            if live >= self.window {
                break;
            }
        }
        if live > 0 {
            ctx.set_timer(SimDuration::from_millis(100), 1);
        } else {
            self.done = true;
        }
    }
}

impl ShardActor for FecShardSender {
    fn on_event(&mut self, ctx: &mut ShardCtx<'_>, event: Event) {
        match event {
            Event::Start | Event::Timer { .. } | Event::HostUp => self.pump(ctx),
            Event::Packet { payload, .. } => {
                if let Some((TAG_ACK, seq, _)) = parse(&payload) {
                    if (seq as usize) < self.acked.len() {
                        self.acked[seq as usize] = true;
                    }
                    if self.acked.iter().all(|&a| a) {
                        self.done = true;
                    }
                }
            }
            _ => {}
        }
    }
}

/// Bound on buffered partial reconstructions (stalest evicted first) —
/// the sharded mirror of the SRUDP reassembly cap.
const FEC_PARTIAL_CAP: usize = 64;

/// Receiver: buffers shares per message, decodes at quorum, and only
/// delivers (acks) a reconstruction whose message checksum matches.
/// A checksum-passing reconstruction that differs from the known
/// plaintext is recorded — that is the integrity oracle's kill shot.
struct FecShardReceiver {
    expect_b: usize,
    expect_len: usize,
    total: u32,
    seen: Vec<bool>,
    distinct: u32,
    reconstructed: u64,
    mismatches: Vec<String>,
    partial: BTreeMap<u32, BTreeMap<u32, Bytes>>,
}

impl ShardActor for FecShardReceiver {
    fn on_event(&mut self, ctx: &mut ShardCtx<'_>, event: Event) {
        if let Event::Packet { from, payload } = event {
            let Some(f) = parse_fec(&payload) else { return };
            if f.b as usize != self.expect_b
                || f.msg_len as usize != self.expect_len
                || f.seq >= self.total
                || f.share_idx as usize >= 2 * self.expect_b - 1
            {
                return;
            }
            if self.seen[f.seq as usize] {
                // Already delivered — the ack was lost; re-ack.
                ctx.send(from, frame(TAG_ACK, f.seq, 0));
                return;
            }
            let entry = self.partial.entry(f.seq).or_default();
            entry.insert(f.share_idx, f.share);
            if entry.len() >= self.expect_b {
                let survivors: Vec<(u32, Bytes)> =
                    entry.iter().take(self.expect_b).map(|(&i, s)| (i, s.clone())).collect();
                match fec::decode(self.expect_b, self.expect_len, &survivors) {
                    Ok(msg) if fec::msg_checksum(&msg) == f.csum => {
                        if msg != fec_msg(f.seq, self.expect_len) {
                            self.mismatches.push(format!(
                                "msg {} passed the checksum but the content differs",
                                f.seq
                            ));
                        }
                        self.partial.remove(&f.seq);
                        self.seen[f.seq as usize] = true;
                        self.distinct += 1;
                        self.reconstructed += 1;
                        ctx.send(from, frame(TAG_ACK, f.seq, 0));
                    }
                    // Failed reconstruction: discard the partial and
                    // let the next respray rebuild it from scratch.
                    _ => {
                        self.partial.remove(&f.seq);
                    }
                }
            }
            while self.partial.len() > FEC_PARTIAL_CAP {
                let stalest = *self.partial.keys().next().unwrap();
                self.partial.remove(&stalest);
            }
        }
    }
}

fn run_fec(plan: &ChaosPlan, wseed: u64, threads: usize) -> (Vec<String>, u64) {
    const TOTAL: u32 = 48;
    const B: usize = 4; // 7 shares of 750 bytes per 3000-byte message
    const MSG_LEN: usize = 3000;
    let mut w = soak_world(wseed, threads);
    let src = HostId(10); // cluster 0
    let dst = HostId(300); // cluster 4 — shares cross the mailbox
    let tx = w
        .spawn(
            src,
            PORT,
            Box::new(FecShardSender {
                peer: Endpoint::new(dst, PORT),
                total: TOTAL,
                b: B,
                msg_len: MSG_LEN,
                acked: vec![false; TOTAL as usize],
                window: 8,
                done: false,
            }),
        )
        .unwrap();
    let rx = w
        .spawn(
            dst,
            PORT,
            Box::new(FecShardReceiver {
                expect_b: B,
                expect_len: MSG_LEN,
                total: TOTAL,
                seen: vec![false; TOTAL as usize],
                distinct: 0,
                reconstructed: 0,
                mismatches: Vec::new(),
                partial: BTreeMap::new(),
            }),
        )
        .unwrap();
    apply(&mut w, plan, &[src, dst]);
    let mut v = run_to_deadline(&mut w, plan, |w| {
        w.actor_ref::<FecShardSender>(tx).map(|s| s.done).unwrap_or(false)
    });
    match w.actor_ref::<FecShardReceiver>(rx) {
        None => v.push("shard-fec: receiver vanished".into()),
        Some(r) => {
            if r.distinct != TOTAL {
                v.push(format!(
                    "shard-fec: receiver reconstructed {} of {TOTAL} messages",
                    r.distinct
                ));
            }
            for m in &r.mismatches {
                v.push(format!("shard-fec: corrupted reconstruction delivered — {m}"));
            }
            if r.reconstructed == 0 {
                v.push("shard-fec: no reconstructions — the erasure path never engaged".into());
            }
            if r.partial.len() > FEC_PARTIAL_CAP {
                v.push(format!(
                    "shard-fec: {} partials buffered past the cap {FEC_PARTIAL_CAP}",
                    r.partial.len()
                ));
            }
        }
    }
    v.extend(bounded("shard-fec", &w));
    (v, w.digest())
}

// ---------------------------------------------------------------------------
// W7: the full SNIPE protocol stack (daemons + RCDS + files), sharded
// ---------------------------------------------------------------------------
// A 6-cluster campus (one region per cluster) runs the complete
// runtime: a daemon on all 48 hosts, RC replicas on three cluster
// heads, replicated file servers on two, a resource manager on one.
// The workload crosses every subsystem *and* every region: a publisher
// writes a file and registers a service, a daemon-spawned child calls
// home across clusters, and three subscribers in other regions resolve
// the service and fetch the file. All progress is judged from process
// logs read back through `portable_ref` — no shared-memory side
// channels — so the same milestones double as the engine-agnostic
// application digest for the serial-vs-sharded differential tests.

/// Clusters / hosts-per-cluster of the full-protocol campus.
const FP_CLUSTERS: usize = 6;
const FP_PER_CLUSTER: usize = 8;
/// Hosts in the full-protocol world.
pub const FP_HOSTS: usize = FP_CLUSTERS * FP_PER_CLUSTER;

/// The published file and its content (fixed so every engine and
/// thread count must log the same checksum).
const FP_LIFN: &str = "lifn:soak/blob";

fn fp_payload() -> Bytes {
    let mut b = Vec::with_capacity(1024);
    for i in 0..1024u32 {
        b.push((i.wrapping_mul(2654435761) >> 24) as u8);
    }
    Bytes::from(b)
}

struct SoakPublisher {
    published: bool,
    spawned: bool,
    child_ok: bool,
    /// Registration is fire-and-forget soft state; re-announce on a
    /// bounded schedule so a registration lost to chaos heals.
    reg_left: u32,
}

impl SnipeProcess for SoakPublisher {
    fn on_start(&mut self, api: &mut SnipeApi<'_, '_>) {
        api.register_service("soak.pub");
        api.write_file(FP_LIFN, fp_payload());
        api.set_timer(SimDuration::from_secs(2), 3);
    }

    fn on_ticket(&mut self, api: &mut SnipeApi<'_, '_>, _ticket: u64, result: TicketResult) {
        match result {
            TicketResult::FileWritten(Ok(())) => {
                if !self.published {
                    self.published = true;
                    api.log(format!("published {:08x}", fnv(&fp_payload())));
                }
                if !self.spawned {
                    let key = api.my_key();
                    api.spawn(
                        SpawnTarget::Host("c4h2".into()),
                        "soak-echo",
                        Bytes::copy_from_slice(&key.to_be_bytes()),
                    );
                }
            }
            TicketResult::FileWritten(Err(_)) => api.set_timer(SimDuration::from_millis(500), 1),
            TicketResult::Spawned(Ok(_)) => {
                if !self.spawned {
                    self.spawned = true;
                    api.log("spawn ok");
                }
            }
            TicketResult::Spawned(Err(_)) => api.set_timer(SimDuration::from_millis(700), 2),
            _ => {}
        }
    }

    fn on_timer(&mut self, api: &mut SnipeApi<'_, '_>, token: u64) {
        match token {
            1 if !self.published => {
                api.write_file(FP_LIFN, fp_payload());
            }
            2 if !self.spawned => {
                let key = api.my_key();
                api.spawn(
                    SpawnTarget::Host("c4h2".into()),
                    "soak-echo",
                    Bytes::copy_from_slice(&key.to_be_bytes()),
                );
            }
            3 if self.reg_left > 0 => {
                self.reg_left -= 1;
                api.register_service("soak.pub");
                api.set_timer(SimDuration::from_secs(2), 3);
            }
            _ => {}
        }
    }

    fn on_message(&mut self, api: &mut SnipeApi<'_, '_>, _from: snipe_core::ProcRef, msg: Bytes) {
        if msg.as_ref() == b"hello" && !self.child_ok {
            self.child_ok = true;
            api.log("child hello");
        }
    }
}

/// Daemon-spawned child: calls home across clusters until the send
/// has had time to land (the publisher dedups).
struct SoakEcho {
    parent: u64,
    tries: u32,
}

impl SoakEcho {
    fn from_args(args: &Bytes) -> SoakEcho {
        let parent =
            if args.len() >= 8 { u64::from_be_bytes(args[..8].try_into().unwrap()) } else { 0 };
        SoakEcho { parent, tries: 5 }
    }
}

impl SnipeProcess for SoakEcho {
    fn on_start(&mut self, api: &mut SnipeApi<'_, '_>) {
        api.send(self.parent, Bytes::from_static(b"hello"));
        api.set_timer(SimDuration::from_secs(1), 1);
    }

    fn on_timer(&mut self, api: &mut SnipeApi<'_, '_>, _token: u64) {
        if self.tries > 0 {
            self.tries -= 1;
            api.send(self.parent, Bytes::from_static(b"hello"));
            api.set_timer(SimDuration::from_secs(1), 1);
        }
    }
}

struct SoakSubscriber {
    fetched: bool,
    svc_ok: bool,
    /// Remaining periodic retry kicks. Requests can vanish without an
    /// error ticket (e.g. during a partition), so progress is driven
    /// by a bounded periodic timer, not by failure responses.
    kicks_left: u32,
}

impl SnipeProcess for SoakSubscriber {
    fn on_start(&mut self, api: &mut SnipeApi<'_, '_>) {
        api.set_timer(SimDuration::from_secs(1), 1);
    }

    fn on_timer(&mut self, api: &mut SnipeApi<'_, '_>, _token: u64) {
        if !self.fetched {
            api.read_file(FP_LIFN);
        }
        if !self.svc_ok {
            api.lookup_service("soak.pub");
        }
        if !(self.fetched && self.svc_ok) && self.kicks_left > 0 {
            self.kicks_left -= 1;
            api.set_timer(SimDuration::from_secs(1), 1);
        }
    }

    fn on_ticket(&mut self, api: &mut SnipeApi<'_, '_>, _ticket: u64, result: TicketResult) {
        match result {
            TicketResult::FileRead(Ok(content)) => {
                if !self.fetched {
                    self.fetched = true;
                    api.log(format!("fetched {:08x}", fnv(&content)));
                }
            }
            TicketResult::Service(Ok(refs)) if !refs.is_empty() => {
                if !self.svc_ok {
                    self.svc_ok = true;
                    api.log("svc ok");
                }
            }
            _ => {}
        }
    }
}

/// Root endpoints of the full-protocol cast.
struct FpCast {
    publisher: Endpoint,
    subscribers: Vec<Endpoint>,
}

/// Register programs and bootstrap the cast — identical on either
/// engine (the two world types share the `SnipeWorld` API surface).
macro_rules! install_full_protocol {
    ($w:expr) => {{
        $w.register_process("soak-pub", |_| {
            Box::new(SoakPublisher {
                published: false,
                spawned: false,
                child_ok: false,
                reg_left: 20,
            })
        });
        $w.register_process("soak-echo", |args| Box::new(SoakEcho::from_args(&args)));
        $w.register_process("soak-sub", |_| {
            Box::new(SoakSubscriber { fetched: false, svc_ok: false, kicks_left: 45 })
        });
        let publisher = $w.spawn_on("c0h1", "soak-pub", Bytes::new()).expect("spawn pub").1;
        let subscribers: Vec<Endpoint> = ["c3h1", "c4h1", "c5h1"]
            .iter()
            .map(|h| $w.spawn_on(h, "soak-sub", Bytes::new()).expect("spawn sub").1)
            .collect();
        FpCast { publisher, subscribers }
    }};
}

/// The milestone lines every complete run must log, publisher first.
fn fp_expected() -> (Vec<&'static str>, String) {
    let fetched = format!("fetched {:08x}", fnv(&fp_payload()));
    (vec!["published", "spawn ok", "child hello"], fetched)
}

/// Milestone check: log lines present on the publisher and every
/// subscriber. `lines` come time-stripped from [`fp_app_lines`].
fn fp_violations(lines: &[String]) -> Vec<String> {
    let (pub_marks, fetched) = fp_expected();
    let mut v = Vec::new();
    for m in pub_marks {
        if !lines.iter().any(|l| l.starts_with("pub:") && l.contains(m)) {
            v.push(format!("shard-full-protocol: publisher never logged {m:?}"));
        }
    }
    for i in 0..3 {
        let tag = format!("sub{i}:");
        if !lines.iter().any(|l| l.starts_with(&tag) && l.contains(&fetched)) {
            v.push(format!("shard-full-protocol: subscriber {i} never fetched the published file"));
        }
        if !lines.iter().any(|l| l.starts_with(&tag) && l.contains("svc ok")) {
            v.push(format!("shard-full-protocol: subscriber {i} never resolved the service"));
        }
    }
    v
}

/// Time-stripped, labelled, sorted log lines of the cast — the
/// engine-agnostic application digest.
fn fp_app_lines(log_of: impl Fn(Endpoint) -> Vec<String>, cast: &FpCast) -> Vec<String> {
    let mut lines: Vec<String> =
        log_of(cast.publisher).into_iter().map(|l| format!("pub: {l}")).collect();
    for (i, &ep) in cast.subscribers.iter().enumerate() {
        lines.extend(log_of(ep).into_iter().map(|l| format!("sub{i}: {l}")));
    }
    lines.sort();
    lines
}

fn fp_world(wseed: u64, threads: usize) -> (ShardedSnipeWorld, FpCast) {
    let mut w =
        SnipeWorldBuilder::campus(FP_CLUSTERS, FP_PER_CLUSTER, wseed).build_sharded(threads);
    let cast = install_full_protocol!(w);
    (w, cast)
}

fn fp_lines_sharded(w: &ShardedSnipeWorld, cast: &FpCast) -> Vec<String> {
    fp_app_lines(
        |ep| {
            w.process_ref(ep)
                .map(|p| p.log.iter().map(|(_, l)| l.clone()).collect())
                .unwrap_or_default()
        },
        cast,
    )
}

fn run_full_protocol(plan: &ChaosPlan, wseed: u64, threads: usize) -> (Vec<String>, u64) {
    let (mut w, cast) = fp_world(wseed, threads);
    // No host flaps: SNIPE processes exit on a host crash by contract,
    // so the cast must stay up; packet and net chaos are in contract.
    apply(w.sim(), plan, &[]);
    let deadline = plan.quiesce_at() + RECOVERY_TAIL;
    let step = SimDuration::from_millis(250);
    let mut v = loop {
        w.run_for(step);
        if fp_violations(&fp_lines_sharded(&w, &cast)).is_empty() {
            w.run_for(SimDuration::from_secs(1));
            break Vec::new();
        }
        if w.now() >= deadline {
            break fp_violations(&fp_lines_sharded(&w, &cast));
        }
    };
    v.extend(bounded("shard-full-protocol", w.sim_ref()));
    (v, w.sim_ref().digest())
}

/// Chaos-free full-protocol run on the sharded engine for a fixed
/// virtual duration: returns the engine digest and the sorted
/// application log lines. The `full-proto-digest` gate byte-compares
/// this across thread counts; the differential tests compare the app
/// lines against [`full_protocol_serial`].
pub fn full_protocol_sharded(wseed: u64, threads: usize, secs: u64) -> (u64, Vec<String>) {
    let (mut w, cast) = fp_world(wseed, threads);
    w.run_for_secs(secs);
    let lines = fp_lines_sharded(&w, &cast);
    (w.digest(), lines)
}

/// The same workload, world layout and duration on the serial
/// [`World`](snipe_netsim::world::World): returns the sorted
/// application log lines. Engine digests are not comparable across
/// engines (the serial world draws from one RNG stream, shards from
/// per-region streams), but the application outcome must match.
pub fn full_protocol_serial(wseed: u64, secs: u64) -> Vec<String> {
    let mut w = SnipeWorldBuilder::campus(FP_CLUSTERS, FP_PER_CLUSTER, wseed).build();
    let cast = install_full_protocol!(w);
    w.run_for_secs(secs);
    fp_app_lines(
        |ep| {
            w.process_ref(ep)
                .map(|p| p.log.iter().map(|(_, l)| l.clone()).collect())
                .unwrap_or_default()
        },
        &cast,
    )
}

/// Debug hook: run `plan` against the full-protocol world and hand
/// back the world plus `(publisher, subscribers)` endpoints so a
/// failing pin can be dissected from a scratch binary.
#[doc(hidden)]
pub fn fp_debug_world(
    wseed: u64,
    threads: usize,
    plan: &ChaosPlan,
) -> (ShardedSnipeWorld, (Endpoint, Vec<Endpoint>)) {
    let (mut w, cast) = fp_world(wseed, threads);
    apply(w.sim(), plan, &[]);
    let deadline = plan.quiesce_at() + RECOVERY_TAIL;
    let step = SimDuration::from_millis(250);
    loop {
        w.run_for(step);
        if fp_violations(&fp_lines_sharded(&w, &cast)).is_empty() || w.now() >= deadline {
            break;
        }
    }
    (w, (cast.publisher, cast.subscribers))
}

// ---------------------------------------------------------------------------
// W8: replica crash — sharded metadata plus a striped cross-region file
// read while RCDS servers and file replicas crash/restart mid-flight
// ---------------------------------------------------------------------------
// The sharded twin of the serial soak's `replica-crash` workload: the
// same service actors (they are [`PortableActor`]s) on the 1000-host
// campus, with the cast spread over three regions so every RC sync,
// stripe request and anti-entropy push crosses shard boundaries.

const RC_TIMER_FIRE: u64 = 20;
const RC_TIMER_GATE: u64 = 21;
const TIMER_CRASH: u64 = 51;
const TIMER_RESPAWN: u64 = 52;

/// Portable twin of the serial soak's `ChaosWriter`: puts an evolving
/// assertion during the fault window. No `Arc` side-channels — the
/// actor must be `Send`, so results are read back via `portable_ref`.
struct ShardRcWriter {
    rc: RcClient,
    uri: Uri,
    interval: SimDuration,
    writes_left: u32,
    next_val: u32,
    gate: TimerGate,
}

impl ShardRcWriter {
    fn flush(&mut self, ctx: &mut dyn SimCtx) {
        for (to, bytes) in self.rc.drain_sends() {
            ctx.send(to, seal(Proto::Raw, bytes));
        }
        let _ = self.rc.drain_done();
        if let Some(dl) = self.rc.next_deadline() {
            self.gate.arm_at(ctx, dl + SimDuration::from_micros(1), RC_TIMER_GATE);
        }
    }
}

impl PortableActor for ShardRcWriter {
    fn on_event(&mut self, ctx: &mut dyn SimCtx, event: Event) {
        match event {
            Event::Start | Event::Timer { token: RC_TIMER_FIRE } => {
                if self.writes_left > 0 {
                    self.writes_left -= 1;
                    let v = format!("v{}", self.next_val);
                    self.next_val += 1;
                    let now = ctx.now();
                    self.rc.put(now, &self.uri, vec![Assertion::new("k", v)]);
                    self.flush(ctx);
                    ctx.set_timer(self.interval, RC_TIMER_FIRE);
                }
            }
            Event::Timer { token: RC_TIMER_GATE } => {
                self.gate.fired();
                self.rc.on_timer(ctx.now());
                self.flush(ctx);
            }
            Event::Packet { from, payload } => {
                if let Ok((Proto::Raw, body)) = open(payload) {
                    self.rc.on_packet(ctx.now(), from, body);
                }
                self.flush(ctx);
            }
            _ => {}
        }
    }
}

/// Portable twin of `ReplicaProbe`: queries exactly one replica after
/// faults quiesce, retrying on timeout; `answer` is read back via
/// `portable_ref` once the run settles.
struct ShardRcProbe {
    rc: RcClient,
    uri: Uri,
    at: SimTime,
    attempts: u32,
    gate: TimerGate,
    answer: Option<Vec<Assertion>>,
}

impl ShardRcProbe {
    fn flush(&mut self, ctx: &mut dyn SimCtx) {
        for (to, bytes) in self.rc.drain_sends() {
            ctx.send(to, seal(Proto::Raw, bytes));
        }
        for (_, result) in self.rc.drain_done() {
            match result {
                Ok(reply) => {
                    if self.answer.is_none() {
                        self.answer = Some(reply.assertions);
                    }
                }
                Err(_) if self.attempts < 30 => {
                    self.attempts += 1;
                    let now = ctx.now();
                    let uri = self.uri.clone();
                    self.rc.get(now, &uri);
                }
                Err(_) => {}
            }
        }
        if let Some(dl) = self.rc.next_deadline() {
            self.gate.arm_at(ctx, dl + SimDuration::from_micros(1), RC_TIMER_GATE);
        }
    }
}

impl PortableActor for ShardRcProbe {
    fn on_event(&mut self, ctx: &mut dyn SimCtx, event: Event) {
        match event {
            Event::Start => {
                let delay = self.at.saturating_since(ctx.now());
                ctx.set_timer(delay, RC_TIMER_FIRE);
            }
            Event::Timer { token: RC_TIMER_FIRE } => {
                let now = ctx.now();
                let uri = self.uri.clone();
                self.rc.get(now, &uri);
                self.flush(ctx);
            }
            Event::Timer { token: RC_TIMER_GATE } => {
                self.gate.fired();
                self.rc.on_timer(ctx.now());
                self.flush(ctx);
            }
            Event::Packet { from, payload } => {
                if let Ok((Proto::Raw, body)) = open(payload) {
                    self.rc.on_packet(ctx.now(), from, body);
                }
                self.flush(ctx);
            }
            _ => {}
        }
    }
}

/// Process-crash chaos for the sharded engine. Plan-level `ProcRestart`
/// ops are skipped by `apply_chaos_plan` (their restart closures are
/// `Rc`-bound to the serial world), so this supervisor lives on the
/// victim's own host — same region by construction, which is what
/// [`SimCtx::kill`] requires — kills the target at each scheduled
/// virtual time, and respawns a fresh process after a short downtime.
struct ProcRestarter {
    target: Endpoint,
    /// Ascending absolute crash times.
    crashes: Vec<SimTime>,
    downtime: SimDuration,
    /// Builds the replacement process; the argument is the restart
    /// generation (used for fresh RC server identities).
    make: Box<dyn FnMut(u64) -> Box<dyn PortableActor> + Send>,
    generation: u64,
}

impl ProcRestarter {
    fn arm_next(&mut self, ctx: &mut dyn SimCtx) {
        if !self.crashes.is_empty() {
            let at = self.crashes.remove(0);
            ctx.set_timer(at.saturating_since(ctx.now()), TIMER_CRASH);
        }
    }
}

impl PortableActor for ProcRestarter {
    fn on_event(&mut self, ctx: &mut dyn SimCtx, event: Event) {
        match event {
            Event::Start => self.arm_next(ctx),
            Event::Timer { token: TIMER_CRASH } => {
                if ctx.is_bound(self.target) {
                    ctx.kill(self.target);
                }
                ctx.set_timer(self.downtime, TIMER_RESPAWN);
            }
            Event::Timer { token: TIMER_RESPAWN } => {
                self.generation += 1;
                let fresh = (self.make)(self.generation);
                let _ = ctx.spawn_portable(self.target.host, self.target.port, fresh);
                self.arm_next(ctx);
            }
            _ => {}
        }
    }
}

fn run_shard_replica_crash(plan: &ChaosPlan, wseed: u64, threads: usize) -> (Vec<String>, u64) {
    let label = "shard-replica-crash";
    let mut w = soak_world(wseed, threads);
    let replicas = 3usize;
    let sync = SimDuration::from_millis(500);
    // Cast spread across regions 0..2 (64 hosts per cluster LAN), the
    // client alongside the first replicas in region 0.
    let rc_hosts = [HostId(10), HostId(74), HostId(138)];
    let fs_hosts = [HostId(20), HostId(84), HostId(148)];
    let client = HostId(30);

    let rc_eps: Vec<Endpoint> =
        rc_hosts.iter().map(|&h| Endpoint::new(h, ports::RC_SERVER)).collect();
    for (i, ep) in rc_eps.iter().enumerate() {
        let peers: Vec<Endpoint> = rc_eps.iter().copied().filter(|e| e != ep).collect();
        let _ = w.spawn_portable(
            ep.host,
            ep.port,
            Box::new(RcServerActor::new(i as u64 + 1, peers, sync)),
        );
    }

    let fs_eps: Vec<Endpoint> =
        fs_hosts.iter().map(|&h| Endpoint::new(h, ports::FILE_SERVER)).collect();
    let content = replica_crash_content(wseed);
    let make_fs = {
        let fs_eps = fs_eps.clone();
        let rc_eps = rc_eps.clone();
        let content = content.clone();
        move |i: usize| {
            let ep = fs_eps[i];
            let peers: Vec<Endpoint> = fs_eps.iter().copied().filter(|e| *e != ep).collect();
            let mut cfg = FileServerConfig::new(format!("fs{i}"), rc_eps.clone(), peers);
            cfg.replication_factor = replicas;
            let mut fs = FileServerActor::new(cfg);
            // Disk-backed seed: survives the process restarts below.
            fs.preload(REPLICA_CRASH_LIFN, content.clone());
            fs
        }
    };
    for (i, ep) in fs_eps.iter().enumerate() {
        let _ = w.spawn_portable(ep.host, ep.port, Box::new(make_fs(i)));
    }

    // Metadata writes land throughout the fault window.
    let uri = Uri::process(7);
    let _ = w.spawn_portable(
        client,
        50,
        Box::new(ShardRcWriter {
            rc: RcClient::new(rc_eps.clone(), SimDuration::from_millis(300)),
            uri: uri.clone(),
            interval: SimDuration::from_millis(300),
            writes_left: 12,
            next_val: 0,
            gate: TimerGate::new(),
        }),
    );

    // The striped read starts two seconds in, mid-fault-window, and
    // must survive replica crashes mid-transfer.
    let fetch_ep = Endpoint::new(client, 51);
    let _ = w.spawn_portable(
        client,
        fetch_ep.port,
        Box::new(FetchActor::new(
            REPLICA_CRASH_LIFN,
            fs_eps.clone(),
            2048,
            SimDuration::from_secs(2),
        )),
    );

    // One supervisor per server: RC replicas come back as *fresh,
    // empty* stores (anti-entropy must repopulate them); file replicas
    // come back as fresh processes over surviving disk contents. The
    // schedule staggers crashes across the fault window.
    let t0 = SimTime::from_nanos(0);
    for (i, &ep) in rc_eps.iter().enumerate() {
        let peers: Vec<Endpoint> = rc_eps.iter().copied().filter(|e| *e != ep).collect();
        let _ = w.spawn_portable(
            ep.host,
            7900,
            Box::new(ProcRestarter {
                target: ep,
                crashes: vec![t0 + SimDuration::from_millis(1200 + 700 * i as u64)],
                downtime: SimDuration::from_millis(150),
                make: Box::new(move |generation| {
                    Box::new(RcServerActor::new(
                        1000 + i as u64 * 100 + generation,
                        peers.clone(),
                        sync,
                    ))
                }),
                generation: 0,
            }),
        );
    }
    for (i, &ep) in fs_eps.iter().enumerate() {
        let make_fs = make_fs.clone();
        let _ = w.spawn_portable(
            ep.host,
            7901,
            Box::new(ProcRestarter {
                target: ep,
                crashes: vec![t0 + SimDuration::from_millis(1500 + 700 * i as u64)],
                downtime: SimDuration::from_millis(150),
                make: Box::new(move |_| Box::new(make_fs(i))),
                generation: 0,
            }),
        );
    }

    // No host flaps: process crash/restart chaos comes from the
    // supervisors above (a host flap would also swallow their pending
    // timers); net partitions and per-packet chaos are in contract.
    apply(&mut w, plan, &[]);

    // Probe every RC replica individually several sync rounds after the
    // last fault healed.
    let probe_at = plan.quiesce_at() + SimDuration::from_secs(4);
    for (i, &ep) in rc_eps.iter().enumerate() {
        let _ = w.spawn_portable(
            client,
            60 + i as u16,
            Box::new(ShardRcProbe {
                rc: RcClient::new(vec![ep], SimDuration::from_millis(300)),
                uri: uri.clone(),
                at: probe_at,
                attempts: 0,
                gate: TimerGate::new(),
                answer: None,
            }),
        );
    }

    let mut violations = run_to_deadline(&mut w, plan, |w| {
        let probes_done = (0..replicas).all(|i| {
            w.portable_ref::<ShardRcProbe>(Endpoint::new(client, 60 + i as u16))
                .map(|p| p.answer.is_some())
                .unwrap_or(false)
        });
        let fetch_done = w
            .portable_ref::<FetchActor>(fetch_ep)
            .map(|f| f.result.is_some() || f.failed)
            .unwrap_or(false);
        probes_done && fetch_done
    });

    let replies: Vec<Option<Vec<Assertion>>> = (0..replicas)
        .map(|i| {
            w.portable_ref::<ShardRcProbe>(Endpoint::new(client, 60 + i as u16))
                .and_then(|p| p.answer.clone())
        })
        .collect();
    violations.extend(oracles::check_replicas_converged(label, &replies));
    match w.portable_ref::<FetchActor>(fetch_ep) {
        Some(f) => {
            if f.result.as_ref() != Some(&content) {
                violations.push(format!(
                    "{label}: striped fetch wrong/incomplete (got {:?} bytes, failed={}, \
                     stats={:?})",
                    f.result.as_ref().map(Bytes::len),
                    f.failed,
                    f.stats
                ));
            }
            let mut sorted = f.completions.clone();
            sorted.sort_unstable();
            violations.extend(oracles::check_exactly_once_in_order(
                &format!("{label}: stripe completion"),
                REPLICA_CRASH_STRIPES,
                &sorted,
            ));
        }
        None => violations.push(format!("{label}: fetch actor disappeared")),
    }
    violations.extend(bounded(label, &w));
    (violations, w.digest())
}

// ---------------------------------------------------------------------------
// Soak plumbing
// ---------------------------------------------------------------------------

fn soak_world(wseed: u64, threads: usize) -> ShardedWorld {
    ShardedWorld::new(cluster_topology(SOAK_HOSTS), wseed, threads)
}

/// Translate the plan and bind its abstract targets: flappable hosts
/// are the workload's cast, net-level faults rotate over the first six
/// cluster LANs, interface flaps over the cast's interfaces.
fn apply(w: &mut ShardedWorld, plan: &ChaosPlan, cast: &[HostId]) {
    let nets: Vec<NetId> = (0..6).map(NetId).collect();
    let ifaces: Vec<(HostId, NetId)> =
        cast.iter().map(|&h| (h, NetId(h.index() as u32 / 64))).collect();
    let binding = ChaosBinding { hosts: cast.to_vec(), nets, ifaces, procs: Vec::new() };
    w.apply_chaos_plan(plan, &binding);
}

/// Drive the world in 250 ms slices until `done` or the deadline
/// (quiesce + recovery tail). A missed deadline is the liveness
/// violation; invariant details are the caller's to report.
fn run_to_deadline(
    w: &mut ShardedWorld,
    plan: &ChaosPlan,
    done: impl Fn(&ShardedWorld) -> bool,
) -> Vec<String> {
    let deadline = plan.quiesce_at() + RECOVERY_TAIL;
    let step = SimDuration::from_millis(250);
    loop {
        w.run_for(step);
        if done(w) {
            // A short drain so in-flight retransmissions/acks settle
            // before residual-queue bounds are checked.
            w.run_for(SimDuration::from_secs(1));
            return Vec::new();
        }
        if w.now() >= deadline {
            return vec![format!(
                "liveness: workload incomplete at quiesce+{}s of virtual time",
                RECOVERY_TAIL.as_secs_f64()
            )];
        }
    }
}

fn bounded(label: &str, w: &ShardedWorld) -> Vec<String> {
    oracles::check_shard_bounded(label, w, MAX_RESIDUAL_EVENTS, MAX_PEAK_DEPTH, MAX_MAILBOX_BURST)
}

/// The sharded-engine workloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardWorkload {
    /// Acked transfer with blanket retransmission, cross-region.
    Transfer,
    /// Go-back-N sequenced stream (exactly-once, in-order).
    Stream,
    /// Intra-region service migration under a stop-and-wait stream.
    Migration,
    /// Max-merge gossip mesh over six regions.
    Gossip,
    /// Relayed multicast fan-out (duplication/reorder chaos only).
    Mcast,
    /// Erasure-coded share spray using the wire FEC codec.
    FecSpray,
    /// The full SNIPE stack (daemons, RCDS, files, RM) on a campus.
    FullProtocol,
    /// Replicated RCDS metadata plus a striped cross-region file read
    /// while RC servers and file replicas crash/restart mid-flight.
    ReplicaCrash,
}

/// Every workload, in soak order.
pub const ALL_SHARD_WORKLOADS: [ShardWorkload; 8] = [
    ShardWorkload::Transfer,
    ShardWorkload::Stream,
    ShardWorkload::Migration,
    ShardWorkload::Gossip,
    ShardWorkload::Mcast,
    ShardWorkload::FecSpray,
    ShardWorkload::FullProtocol,
    ShardWorkload::ReplicaCrash,
];

impl ShardWorkload {
    /// Stable name used in replay lines and reports.
    pub fn name(&self) -> &'static str {
        match self {
            ShardWorkload::Transfer => "shard-transfer",
            ShardWorkload::Stream => "shard-stream",
            ShardWorkload::Migration => "shard-migration",
            ShardWorkload::Gossip => "shard-gossip",
            ShardWorkload::Mcast => "shard-mcast",
            ShardWorkload::FecSpray => "shard-fec",
            ShardWorkload::FullProtocol => "shard-full-protocol",
            ShardWorkload::ReplicaCrash => "shard-replica-crash",
        }
    }

    /// Inverse of [`ShardWorkload::name`].
    pub fn from_name(name: &str) -> Option<ShardWorkload> {
        ALL_SHARD_WORKLOADS.iter().copied().find(|w| w.name() == name)
    }

    /// The fault envelope each workload's contract tolerates. Horizons
    /// are short (the workloads are small); the recovery tail does the
    /// healing.
    pub fn shape(&self) -> ChaosShape {
        match self {
            ShardWorkload::Transfer => ChaosShape {
                horizon: SimDuration::from_secs(4),
                hosts: 2,
                nets: 4,
                ifaces: 2,
                procs: 0,
                max_ops: 6,
                jitter_max: SimDuration::from_millis(20),
                ..ChaosShape::default()
            },
            ShardWorkload::Stream => ChaosShape {
                horizon: SimDuration::from_secs(4),
                hosts: 2,
                nets: 4,
                ifaces: 2,
                procs: 0,
                max_ops: 6,
                jitter_max: SimDuration::from_millis(20),
                ..ChaosShape::default()
            },
            ShardWorkload::Migration => ChaosShape {
                horizon: SimDuration::from_secs(4),
                hosts: 2,
                nets: 3,
                ifaces: 0,
                procs: 0,
                max_ops: 4,
                corrupt_max: 0.02,
                jitter_max: SimDuration::from_millis(10),
                ..ChaosShape::default()
            },
            ShardWorkload::Gossip => ChaosShape {
                horizon: SimDuration::from_secs(5),
                hosts: 6,
                nets: 6,
                ifaces: 4,
                procs: 0,
                max_ops: 6,
                ..ChaosShape::default()
            },
            // Relays are unreliable by design: only duplication,
            // reordering and gray degradation are in contract, plus
            // flaps of the source host (it must resume pacing).
            ShardWorkload::Mcast => ChaosShape {
                horizon: SimDuration::from_secs(3),
                hosts: 1,
                nets: 2,
                ifaces: 0,
                procs: 0,
                max_ops: 4,
                packet_prob: 0.9,
                corrupt_max: 0.0,
                duplicate_max: 0.3,
                reorder_max: 0.3,
                jitter_max: SimDuration::from_millis(15),
                ..ChaosShape::default()
            },
            // FEC sender resprays full share sets on a timer (HostUp
            // re-arms it), so endpoint flaps, net faults and hot packet
            // chaos — including corruption — are all in contract.
            ShardWorkload::FecSpray => ChaosShape {
                horizon: SimDuration::from_secs(4),
                hosts: 2,
                nets: 4,
                ifaces: 2,
                procs: 0,
                max_ops: 6,
                corrupt_max: 0.05,
                duplicate_max: 0.15,
                reorder_max: 0.15,
                jitter_max: SimDuration::from_millis(20),
                ..ChaosShape::default()
            },
            // SNIPE processes exit when their host crashes (that is the
            // paper's contract), so host flaps would kill the cast:
            // only net partitions and per-packet chaos are in envelope.
            ShardWorkload::FullProtocol => ChaosShape {
                horizon: SimDuration::from_secs(4),
                hosts: 0,
                nets: 3,
                ifaces: 0,
                procs: 0,
                max_ops: 4,
                corrupt_max: 0.02,
                jitter_max: SimDuration::from_millis(10),
                ..ChaosShape::default()
            },
            // Process crash/restart chaos is supplied by the workload's
            // own supervisors (plan `ProcRestart` ops are serial-only),
            // and host flaps would swallow the supervisors' timers, so
            // the plan contributes net partitions and packet chaos.
            ShardWorkload::ReplicaCrash => ChaosShape {
                horizon: SimDuration::from_secs(4),
                hosts: 0,
                nets: 3,
                ifaces: 0,
                procs: 0,
                max_ops: 4,
                corrupt_max: 0.02,
                jitter_max: SimDuration::from_millis(10),
                ..ChaosShape::default()
            },
        }
    }

    /// Run the workload under `plan` at `threads` workers; returns
    /// oracle violations (empty = green) and the world digest.
    pub fn run(&self, plan: &ChaosPlan, wseed: u64, threads: usize) -> (Vec<String>, u64) {
        match self {
            ShardWorkload::Transfer => run_transfer(plan, wseed, threads),
            ShardWorkload::Stream => run_stream(plan, wseed, threads),
            ShardWorkload::Migration => run_migration(plan, wseed, threads),
            ShardWorkload::Gossip => run_gossip(plan, wseed, threads),
            ShardWorkload::Mcast => run_mcast(plan, wseed, threads),
            ShardWorkload::FecSpray => run_fec(plan, wseed, threads),
            ShardWorkload::FullProtocol => run_full_protocol(plan, wseed, threads),
            ShardWorkload::ReplicaCrash => run_shard_replica_crash(plan, wseed, threads),
        }
    }
}

/// Outcome of one `(workload, plan, workload-seed)` sharded chaos run.
#[derive(Clone, Debug)]
pub struct ShardChaosRun {
    /// Workload name.
    pub workload: &'static str,
    /// Seed the plan was generated from.
    pub plan_seed: u64,
    /// Seed driving the workload world.
    pub workload_seed: u64,
    /// Fault ops in the plan.
    pub ops: usize,
    /// Whether per-packet chaos was active.
    pub packet: bool,
    /// Oracle violations (empty = green).
    pub violations: Vec<String>,
    /// One-line replay recipe.
    pub replay: String,
    /// World digest of the primary run.
    pub digest: u64,
}

/// Run one plan: primary at [`SOAK_THREADS`] workers plus a
/// differential re-run at [`DIFF_THREADS`]; a digest mismatch is
/// itself an oracle violation.
pub fn run_one(w: ShardWorkload, plan_seed: u64, workload_seed: u64) -> ShardChaosRun {
    let plan = ChaosPlan::generate(plan_seed, &w.shape());
    let (mut violations, digest) = w.run(&plan, workload_seed, SOAK_THREADS);
    let (_, digest1) = w.run(&plan, workload_seed, DIFF_THREADS);
    if digest != digest1 {
        violations.push(format!(
            "{}: digest diverged across thread counts ({SOAK_THREADS} -> {digest:#x}, \
             {DIFF_THREADS} -> {digest1:#x})",
            w.name()
        ));
    }
    ShardChaosRun {
        workload: w.name(),
        plan_seed,
        workload_seed,
        ops: plan.ops.len(),
        packet: plan.packet.is_some(),
        violations,
        replay: plan.replay_line(w.name(), workload_seed),
        digest,
    }
}

/// Fan `seeds_per_workload` plans over every workload in parallel
/// (each simulation already uses [`SOAK_THREADS`] workers internally,
/// so the outer fan-out stays modest).
pub fn soak(seeds_per_workload: u64) -> Vec<ShardChaosRun> {
    let mut jobs = Vec::new();
    for w in ALL_SHARD_WORKLOADS {
        for i in 0..seeds_per_workload {
            let (ps, ws) = soak_seeds(i);
            jobs.push((w, ps, ws));
        }
    }
    par_map(jobs, |&(w, ps, ws)| run_one(w, ps, ws))
}

/// `(workload, plan_seed, workload_seed)` triples pinned from soak
/// runs during development — each must stay green forever. The first
/// pins per workload are the soak's leading seeds; the extra transfer
/// and stream pins wedged until senders learned to re-arm their
/// retransmit timers on [`Event::HostUp`] (a flap of the sending host
/// swallows any timer queued while it was down — same failure family
/// as the single-world corpus). The full-protocol pin failed until RC
/// anti-entropy learned to size its SyncPush batches to the path MTU:
/// on a catalog busy with daemon soft-state churn, every count-only
/// push exceeded 1500 bytes and was dropped `TooBig`, so replicas
/// never converged and any client whose retries had failed over to a
/// secondary replica could never resolve a service registered at the
/// primary.
pub const SHARD_REGRESSION_CORPUS: &[(ShardWorkload, u64, u64)] = &[
    (ShardWorkload::Transfer, 0xC0FF_EE00, 0x5EED),
    (ShardWorkload::Transfer, 0xC0FF_EE01, 0x5EED + 1),
    (ShardWorkload::Stream, 0xC0FF_EE00, 0x5EED),
    (ShardWorkload::Stream, 0xC0FF_EE03, 0x5EED + 3),
    (ShardWorkload::Migration, 0xC0FF_EE00, 0x5EED),
    (ShardWorkload::Gossip, 0xC0FF_EE00, 0x5EED),
    (ShardWorkload::Mcast, 0xC0FF_EE00, 0x5EED),
    (ShardWorkload::Mcast, 0xC0FF_EE01, 0x5EED + 1),
    // Erasure spray under the hottest packet chaos in the corpus: pins
    // the codec's integrity gate and its cross-thread determinism (the
    // plan at index 2 carries six ops including corruption).
    (ShardWorkload::FecSpray, 0xC0FF_EE00, 0x5EED),
    (ShardWorkload::FecSpray, 0xC0FF_EE02, 0x5EED + 2),
    (ShardWorkload::FullProtocol, 0xC0FF_EE00, 0x5EED),
    // Replica crash/restart under cross-region RC sync and a striped
    // read: the soak's leading seed plus the plan carrying the fullest
    // fault envelope in the sweep (four ops incl. net partitions, with
    // packet corruption on). Pins supervisor-driven process restarts —
    // kill + respawn inside shard regions — and the fetch layer's
    // straggler re-dispatch, alongside cross-thread digest equality.
    (ShardWorkload::ReplicaCrash, 0xC0FF_EE00, 0x5EED),
    (ShardWorkload::ReplicaCrash, 0xC0FF_EE02, 0x5EED + 2),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_regression_corpus_stays_green() {
        for &(w, ps, ws) in SHARD_REGRESSION_CORPUS {
            let run = run_one(w, ps, ws);
            assert!(
                run.violations.is_empty(),
                "{} plan_seed={ps:#x} wseed={ws:#x}: {:?}\n  {}",
                w.name(),
                run.violations,
                run.replay
            );
        }
    }

    #[test]
    fn workload_names_round_trip() {
        for w in ALL_SHARD_WORKLOADS {
            assert_eq!(ShardWorkload::from_name(w.name()), Some(w));
        }
        assert_eq!(ShardWorkload::from_name("nope"), None);
    }
}
