//! E3 — §6: "SNIPE testbeds have been running ... since autumn 1997 and
//! due to replication have maintained an almost perfect level of
//! availability."
//!
//! A client issues metadata lookups continuously for a simulated year
//! while every host (including the RC replicas) crashes and repairs
//! following exponential processes. We report the fraction of lookups
//! answered, versus the replica count k.

use std::sync::{Arc, Mutex};

use snipe_netsim::actor::{Actor, Ctx, Event};
use snipe_netsim::fault::{schedule_host_failures, FailureModel};
use snipe_netsim::medium::Medium;
use snipe_netsim::topology::{Endpoint, HostCfg, Topology};
use snipe_netsim::world::World;
use snipe_rcds::assertion::Assertion;
use snipe_rcds::client::RcClient;
use snipe_rcds::server::RcServerActor;
use snipe_rcds::uri::Uri;
use snipe_util::rng::Xoshiro256;
use snipe_util::time::{SimDuration, SimTime};
use snipe_wire::frame::{open, seal, Proto};
use snipe_wire::ports;

/// One measured row.
#[derive(Clone, Debug)]
pub struct E3Point {
    /// RC replica count.
    pub replicas: usize,
    /// Fraction of lookups answered.
    pub availability: f64,
    /// Expected single-host availability under the failure model.
    pub single_host: f64,
}

const TIMER_TICK: u64 = 10;
const TIMER_RC: u64 = 11;

struct LookupLoad {
    rc: RcClient,
    interval: SimDuration,
    uri: Uri,
    issued: Arc<Mutex<u64>>,
    answered: Arc<Mutex<u64>>,
    seeded: bool,
}

impl LookupLoad {
    fn flush(&mut self, ctx: &mut Ctx<'_>) {
        for (to, bytes) in self.rc.drain_sends() {
            ctx.send(to, seal(Proto::Raw, bytes));
        }
        for (_, result) in self.rc.drain_done() {
            if let Ok(reply) = result {
                if !self.seeded {
                    self.seeded = true; // the initial put
                } else if !reply.assertions.is_empty() {
                    *self.answered.lock().unwrap() += 1;
                }
            }
        }
        if let Some(dl) = self.rc.next_deadline() {
            let delay = dl.saturating_since(ctx.now()) + SimDuration::from_micros(1);
            ctx.set_timer(delay, TIMER_RC);
        }
    }
}

impl Actor for LookupLoad {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
        match event {
            Event::Start => {
                let now = ctx.now();
                self.rc.put(now, &self.uri, vec![Assertion::new("k", "v")]);
                self.flush(ctx);
                ctx.set_timer(self.interval, TIMER_TICK);
            }
            Event::Timer { token: TIMER_TICK } => {
                let now = ctx.now();
                self.rc.get(now, &self.uri);
                *self.issued.lock().unwrap() += 1;
                self.flush(ctx);
                ctx.set_timer(self.interval, TIMER_TICK);
            }
            Event::Timer { token: TIMER_RC } => {
                self.rc.on_timer(ctx.now());
                self.flush(ctx);
            }
            Event::Packet { from, payload } => {
                if let Ok((Proto::Raw, body)) = open(payload) {
                    self.rc.on_packet(ctx.now(), from, body);
                }
                self.flush(ctx);
            }
            _ => {}
        }
    }
}

/// Run one availability measurement.
///
/// `horizon_days` of simulated operation, hosts failing with the given
/// model; lookups every `lookup_interval`.
pub fn run(replicas: usize, horizon_days: u64, seed: u64) -> E3Point {
    let model = FailureModel { mtbf: SimDuration::from_days(10), mttr: SimDuration::from_hours(4) };
    let mut topo = Topology::new();
    let net = topo.add_network("lan", Medium::ethernet100(), true);
    let mut rc_hosts = Vec::new();
    for i in 0..replicas {
        let h = topo.add_host(HostCfg::named(format!("rc{i}")));
        topo.attach(h, net);
        rc_hosts.push(h);
    }
    // The client host never fails (we measure service availability, not
    // client uptime).
    let client = topo.add_host(HostCfg::named("client"));
    topo.attach(client, net);
    let mut world = World::new(topo, seed);
    let eps: Vec<Endpoint> = rc_hosts.iter().map(|&h| Endpoint::new(h, ports::RC_SERVER)).collect();
    for (i, ep) in eps.iter().enumerate() {
        let peers: Vec<Endpoint> = eps.iter().copied().filter(|e| e != ep).collect();
        world.spawn(
            ep.host,
            ep.port,
            Box::new(RcServerActor::new(i as u64 + 1, peers, SimDuration::from_secs(30))),
        );
    }
    let horizon = SimTime::ZERO + SimDuration::from_days(horizon_days);
    let mut frng = Xoshiro256::seed_from_u64(seed ^ 0xFA11);
    for &h in &rc_hosts {
        schedule_host_failures(&mut world, h, model, horizon, &mut frng);
    }
    let issued = Arc::new(Mutex::new(0u64));
    let answered = Arc::new(Mutex::new(0u64));
    let load = LookupLoad {
        rc: RcClient::new(eps, SimDuration::from_millis(300)),
        interval: SimDuration::from_secs(600),
        uri: Uri::process(7),
        issued: issued.clone(),
        answered: answered.clone(),
        seeded: false,
    };
    world.spawn(client, 50, Box::new(load));
    world.run_until(horizon);
    let i = *issued.lock().unwrap();
    let a = *answered.lock().unwrap();
    E3Point {
        replicas,
        availability: if i == 0 { 0.0 } else { a as f64 / i as f64 },
        single_host: model.single_host_availability(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replication_raises_availability() {
        let one = run(1, 40, 3);
        let three = run(3, 40, 3);
        assert!(three.availability > one.availability, "{one:?} vs {three:?}");
        assert!(three.availability > 0.99, "k=3 must be near-perfect: {three:?}");
    }
}
