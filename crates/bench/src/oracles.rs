//! Cross-stack invariant oracles for chaos runs.
//!
//! Each check inspects the *outcome* of a finished (or watchdogged)
//! simulation and returns human-readable violation strings — empty
//! means the invariant held. Workloads in [`crate::chaos`] compose the
//! checks relevant to their contract; the soak driver treats any
//! non-empty result as a failing plan and shrinks it.

use snipe_netsim::world::World;
use snipe_rcds::assertion::Assertion;

/// Exactly-once, in-order delivery: the receiver's sequence log must be
/// precisely `0..sent` in that order. Covers loss (missing), duplication
/// (repeats) and reordering (wrong position) in one pass.
pub fn check_exactly_once_in_order(label: &str, sent: u32, delivered: &[u32]) -> Vec<String> {
    let mut v = Vec::new();
    if delivered.len() != sent as usize {
        v.push(format!(
            "{label}: exactly-once violated — sent {sent}, delivered {} entries",
            delivered.len()
        ));
    }
    let mut dup = 0u32;
    let mut reordered = 0u32;
    let mut seen = vec![false; sent as usize];
    let mut prev: Option<u32> = None;
    for &seq in delivered {
        if let Some(s) = seen.get_mut(seq as usize) {
            if *s {
                dup += 1;
            }
            *s = true;
        } else {
            v.push(format!("{label}: delivered unknown sequence {seq} (sent {sent})"));
        }
        if let Some(p) = prev {
            if seq < p {
                reordered += 1;
            }
        }
        prev = Some(seq);
    }
    if dup > 0 {
        v.push(format!("{label}: {dup} duplicate deliveries"));
    }
    if reordered > 0 {
        v.push(format!("{label}: {reordered} out-of-order deliveries"));
    }
    let missing = seen.iter().filter(|s| !**s).count();
    if missing > 0 {
        v.push(format!("{label}: {missing} of {sent} messages lost"));
    }
    v
}

/// Engine-boundedness: after a run the event/timer population must be
/// bounded (steady-state timers only, no unbounded retransmit storms)
/// and the peak queue depth must stay under a generous ceiling.
pub fn check_engine_bounded(
    label: &str,
    world: &World,
    max_residual: usize,
    max_peak: u64,
) -> Vec<String> {
    let mut v = Vec::new();
    let depth = world.queue_depth();
    if depth > max_residual {
        v.push(format!(
            "{label}: {depth} events still queued after quiesce (bound {max_residual})"
        ));
    }
    let peak = world.stats().engine.peak_queue_depth;
    if peak > max_peak {
        v.push(format!("{label}: peak queue depth {peak} exceeded bound {max_peak}"));
    }
    v
}

/// Replica convergence: once faults quiesce and anti-entropy has had
/// time to run, every replica must report the same non-empty assertion
/// set for the probed URI.
pub fn check_replicas_converged(label: &str, replies: &[Option<Vec<Assertion>>]) -> Vec<String> {
    let mut v = Vec::new();
    let mut canon: Option<Vec<Assertion>> = None;
    for (i, r) in replies.iter().enumerate() {
        let Some(assertions) = r else {
            v.push(format!("{label}: replica {i} never answered the probe"));
            continue;
        };
        let mut sorted = assertions.clone();
        sorted.sort_by(|a, b| (&a.name, &a.value).cmp(&(&b.name, &b.value)));
        if sorted.is_empty() {
            v.push(format!("{label}: replica {i} converged to an empty record"));
            continue;
        }
        match &canon {
            None => canon = Some(sorted),
            Some(c) if *c != sorted => {
                v.push(format!(
                    "{label}: replica {i} disagrees with replica 0 ({} vs {} assertions)",
                    sorted.len(),
                    c.len()
                ));
            }
            Some(_) => {}
        }
    }
    v
}

/// Corruption containment: chaos flipped bits in `corrupted` frames;
/// the wire layer must have rejected them (checksums) without a panic —
/// reaching this check at all proves no panic, so the oracle only
/// verifies the injection really happened when the plan asked for it.
pub fn check_corruption_exercised(label: &str, world: &World, expected: bool) -> Vec<String> {
    let c = world.stats().chaos.corrupted;
    if expected && c == 0 {
        vec![format!("{label}: plan enabled corruption but no frame was corrupted")]
    } else {
        Vec::new()
    }
}

/// FEC end-to-end integrity: an erasure-coded transfer may lose shares,
/// retransmit, even catch corrupted reconstructions (counted in
/// `fec_corrupt`) — but a *content mismatch in a delivered message* is
/// an absolute violation: the reconstruct-then-verify gate failed open.
/// When `expect_fec` is set the workload also proves FEC actually
/// engaged (a misconfigured plain run would vacuously "pass").
pub fn check_fec_integrity(
    label: &str,
    mismatches: &[String],
    stats: &snipe_wire::srudp::SrudpStats,
    expect_fec: bool,
) -> Vec<String> {
    let mut v = Vec::new();
    for m in mismatches {
        v.push(format!("{label}: corrupted reconstruction delivered — {m}"));
    }
    if expect_fec && stats.fec_delivered == 0 {
        v.push(format!(
            "{label}: no FEC-reconstructed deliveries — the erasure path never engaged"
        ));
    }
    v
}

/// Receiver-side reassembly boundedness: partial-reassembly state the
/// eviction machinery let accumulate past the cap means the bugfix
/// regressed (an in-contract sender can always have a few in flight).
pub fn check_reasm_bounded(
    label: &str,
    stats: &snipe_wire::srudp::SrudpStats,
    evicted_max: u64,
) -> Vec<String> {
    if stats.reasm_evicted > evicted_max {
        vec![format!(
            "{label}: {} partial reassemblies evicted (bound {evicted_max}) — peers are \
             being forgotten while still in contract",
            stats.reasm_evicted
        )]
    } else {
        Vec::new()
    }
}

/// Per-shard boundedness for the sharded engine: aggregate totals can
/// hide one runaway region, so every shard's residual queue, peak
/// depth, slab/stream high-water marks and per-round mailbox burst
/// must each stay under its bound.
pub fn check_shard_bounded(
    label: &str,
    world: &snipe_netsim::shard::ShardedWorld,
    max_residual: usize,
    max_peak: u64,
    max_mailbox: u64,
) -> Vec<String> {
    let mut v = Vec::new();
    for l in world.shard_loads() {
        if l.queue_depth > max_residual {
            v.push(format!(
                "{label}: shard {} holds {} events after quiesce (bound {max_residual})",
                l.region, l.queue_depth
            ));
        }
        if l.peak_queue_depth > max_peak {
            v.push(format!(
                "{label}: shard {} peak queue depth {} exceeded bound {max_peak}",
                l.region, l.peak_queue_depth
            ));
        }
        if l.mailbox_hwm > max_mailbox {
            v.push(format!(
                "{label}: shard {} took {} mailbox items in one round (bound {max_mailbox})",
                l.region, l.mailbox_hwm
            ));
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_once_accepts_perfect_log() {
        let log: Vec<u32> = (0..10).collect();
        assert!(check_exactly_once_in_order("t", 10, &log).is_empty());
    }

    #[test]
    fn exactly_once_flags_each_failure_mode() {
        // Loss.
        let v = check_exactly_once_in_order("t", 3, &[0, 2]);
        assert!(v.iter().any(|s| s.contains("lost")), "{v:?}");
        // Duplication.
        let v = check_exactly_once_in_order("t", 3, &[0, 1, 1, 2]);
        assert!(v.iter().any(|s| s.contains("duplicate")), "{v:?}");
        // Reordering.
        let v = check_exactly_once_in_order("t", 3, &[0, 2, 1]);
        assert!(v.iter().any(|s| s.contains("out-of-order")), "{v:?}");
        // Phantom sequence numbers.
        let v = check_exactly_once_in_order("t", 2, &[0, 1, 7]);
        assert!(v.iter().any(|s| s.contains("unknown sequence")), "{v:?}");
    }

    #[test]
    fn convergence_flags_disagreement_and_silence() {
        let a = vec![Assertion::new("k", "v")];
        let b = vec![Assertion::new("k", "w")];
        let v = check_replicas_converged("t", &[Some(a.clone()), Some(b)]);
        assert!(v.iter().any(|s| s.contains("disagrees")), "{v:?}");
        let v = check_replicas_converged("t", &[Some(a.clone()), None]);
        assert!(v.iter().any(|s| s.contains("never answered")), "{v:?}");
        let v = check_replicas_converged("t", &[Some(a.clone()), Some(a)]);
        assert!(v.is_empty(), "{v:?}");
    }
}
