//! Fig. 1 — "Bandwidth in MegaBytes/Second offered to SNIPE client
//! applications on various media."
//!
//! Two (three for multicast) hosts on one segment of the medium under
//! test; a sender streams fixed-size messages through the protocol
//! module under test and we report delivered payload bytes per
//! simulated second, exactly the quantity the paper plots against
//! message size for 100 Mbit Ethernet and 155 Mbit ATM.

use std::sync::{Arc, Mutex};

use bytes::Bytes;

use snipe_netsim::actor::{Actor, Ctx, Event, TimerGate};
use snipe_netsim::medium::Medium;
use snipe_netsim::topology::{Endpoint, HostCfg, Topology};
use snipe_netsim::world::World;
use snipe_util::time::{SimDuration, SimTime};
use snipe_wire::frame::{open, seal, Proto};
use snipe_wire::mcast::{McastMsg, McastRouter};
use snipe_wire::rstream::RstreamConfig;
use snipe_wire::stack::{endpoint_key, StackConfig, WireStack};
use snipe_wire::Out;

/// Protocol module under test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Protocol {
    /// SNIPE's selective re-send UDP.
    Srudp,
    /// The TCP substitute.
    Rstream,
    /// Router-relayed multicast (per-receiver goodput).
    Mcast,
}

impl Protocol {
    /// Display name (matches the figure legend).
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Srudp => "SRUDP",
            Protocol::Rstream => "TCP(RSTREAM)",
            Protocol::Mcast => "MCAST",
        }
    }
}

/// One measured point.
#[derive(Clone, Debug)]
pub struct Fig1Point {
    /// Medium name.
    pub medium: &'static str,
    /// Protocol name.
    pub protocol: &'static str,
    /// Message size in bytes.
    pub msg_size: usize,
    /// Delivered payload bytes per simulated second.
    pub goodput: f64,
    /// Analytic media ceiling at this packet size (reference line).
    pub ceiling: f64,
}

// ---------------------------------------------------------------------------
// SRUDP driver
// ---------------------------------------------------------------------------

pub(crate) struct SrudpSender {
    pub(crate) stack: Option<WireStack>,
    pub(crate) peer: Endpoint,
    pub(crate) msg_size: usize,
    pub(crate) remaining: usize,
    /// Keep this many payload bytes queued at once.
    pub(crate) inflight: usize,
    pub(crate) cfg: StackConfig,
    /// Ranked pinned routes toward the peer (multi-path, E7).
    pub(crate) pin: Option<Vec<snipe_util::id::NetId>>,
    pub(crate) gate: TimerGate,
}

const TIMER_STACK: u64 = 1;

fn flush_wire(
    stack: &mut WireStack,
    gate: &mut TimerGate,
    ctx: &mut Ctx<'_>,
    delivered: &mut usize,
) {
    for o in stack.drain() {
        match o {
            Out::Send { to, via, bytes, .. } => match via {
                Some(n) => ctx.send_via(to, bytes, n),
                None => ctx.send(to, bytes),
            },
            Out::Deliver { msg, .. } => *delivered += msg.len(),
            Out::Wake { .. } => {}
        }
    }
    if let Some(dl) = stack.next_deadline() {
        gate.arm_at(ctx, dl + SimDuration::from_micros(1), TIMER_STACK);
    }
}

impl SrudpSender {
    fn pump_app(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let Some(stack) = self.stack.as_mut() else {
            return;
        };
        // Keep a bounded amount of payload queued in the transport so
        // the wire stays saturated without unbounded memory use.
        while self.remaining > 0 && stack_backlog(stack) < self.inflight {
            let size = self.msg_size.min(self.remaining);
            stack
                .send(now, endpoint_key(self.peer), Bytes::from(vec![0xAB; size]))
                .expect("configured frag size");
            self.remaining -= size;
        }
        let mut sink = 0;
        flush_wire(stack, &mut self.gate, ctx, &mut sink);
    }
}

fn stack_backlog(stack: &WireStack) -> usize {
    // Unacked bytes toward all peers — our pipeline depth proxy.
    stack.backlog_total()
}

impl Actor for SrudpSender {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
        match event {
            Event::Start => {
                let me = ctx.me();
                let mut stack = WireStack::new(endpoint_key(me), self.cfg.clone());
                let routes = self.pin.clone().unwrap_or_default();
                stack.set_peer_at(ctx.now(), endpoint_key(self.peer), self.peer, routes);
                self.stack = Some(stack);
                self.pump_app(ctx);
            }
            Event::Timer { token: TIMER_STACK } | Event::HostUp => {
                // HostUp: timers queued while the host was down were
                // swallowed by the engine, so the gate may reference a
                // deadline that will never fire. Re-drive the stack now
                // to resume retransmission after recovery.
                self.gate.fired();
                let now = ctx.now();
                if let Some(s) = self.stack.as_mut() {
                    s.on_timer(now);
                }
                self.pump_app(ctx);
            }
            Event::Packet { from, payload } => {
                let now = ctx.now();
                if let Some(s) = self.stack.as_mut() {
                    let _ = s.on_datagram(now, from, payload);
                }
                self.pump_app(ctx);
            }
            _ => {}
        }
    }
}

pub(crate) struct SrudpReceiver {
    pub(crate) stack: Option<WireStack>,
    pub(crate) received: Arc<Mutex<usize>>,
    pub(crate) done_at: Arc<Mutex<Option<SimTime>>>,
    pub(crate) expect: usize,
    pub(crate) cfg: StackConfig,
    /// Ranked routes to pin toward senders (multi-path, E7).
    pub(crate) pin: Option<Vec<snipe_util::id::NetId>>,
    pub(crate) gate: TimerGate,
}

impl Actor for SrudpReceiver {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
        match event {
            Event::Start => {
                let me = ctx.me();
                self.stack = Some(WireStack::new(endpoint_key(me), self.cfg.clone()));
            }
            Event::Packet { from, payload } => {
                let now = ctx.now();
                let Some(stack) = self.stack.as_mut() else {
                    return;
                };
                let _ = stack.on_datagram(now, from, payload);
                // Pin our return routes toward the sender (its key was
                // learned from the packet).
                if let Some(pin) = &self.pin {
                    for key in stack.known_peers() {
                        if stack.route_candidates(key).is_empty() {
                            if let Some(ep) = stack.peer_endpoint(key) {
                                stack.set_peer_at(now, key, ep, pin.clone());
                            }
                        }
                    }
                }
                let mut got = 0;
                flush_wire(stack, &mut self.gate, ctx, &mut got);
                if got > 0 {
                    let mut r = self.received.lock().unwrap();
                    *r += got;
                    if *r >= self.expect && self.done_at.lock().unwrap().is_none() {
                        *self.done_at.lock().unwrap() = Some(ctx.now());
                    }
                }
            }
            Event::Timer { token: TIMER_STACK } | Event::HostUp => {
                // See SrudpSender: re-arm after a flap swallowed timers.
                self.gate.fired();
                let now = ctx.now();
                if let Some(s) = self.stack.as_mut() {
                    s.on_timer(now);
                    let mut got = 0;
                    flush_wire(s, &mut self.gate, ctx, &mut got);
                    if got > 0 {
                        let mut r = self.received.lock().unwrap();
                        *r += got;
                        if *r >= self.expect && self.done_at.lock().unwrap().is_none() {
                            *self.done_at.lock().unwrap() = Some(ctx.now());
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// FEC integrity workload actors (chaos + A/B bench)
// ---------------------------------------------------------------------------

/// Deterministic patterned payload for message `i`: an 8-byte index
/// header followed by an index-keyed byte pattern, so a receiver can
/// verify *content*, not just byte counts — the integrity oracle for
/// erasure-coded transfers.
pub(crate) fn fec_payload(i: u64, size: usize) -> Bytes {
    let size = size.max(8);
    let mut v = Vec::with_capacity(size);
    v.extend_from_slice(&i.to_be_bytes());
    v.extend((8..size).map(|j| ((i as usize).wrapping_mul(31).wrapping_add(j) % 251) as u8));
    Bytes::from(v)
}

/// Streams `count` indexed patterned messages, keeping the transport
/// backlog under `inflight` bytes (set `inflight` below one message's
/// wire cost for stop-and-wait pacing).
pub(crate) struct FecSender {
    pub(crate) stack: Option<WireStack>,
    pub(crate) peer: Endpoint,
    pub(crate) msg_size: usize,
    pub(crate) count: u64,
    pub(crate) next: u64,
    pub(crate) inflight: usize,
    pub(crate) cfg: StackConfig,
    pub(crate) pin: Option<Vec<snipe_util::id::NetId>>,
    pub(crate) gate: TimerGate,
}

impl FecSender {
    fn pump_app(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let Some(stack) = self.stack.as_mut() else {
            return;
        };
        while self.next < self.count && stack_backlog(stack) <= self.inflight {
            let msg = fec_payload(self.next, self.msg_size);
            stack.send(now, endpoint_key(self.peer), msg).expect("configured frag size");
            self.next += 1;
        }
        let mut sink = 0;
        flush_wire(stack, &mut self.gate, ctx, &mut sink);
    }
}

impl Actor for FecSender {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
        match event {
            Event::Start => {
                let me = ctx.me();
                let mut stack = WireStack::new(endpoint_key(me), self.cfg.clone());
                let routes = self.pin.clone().unwrap_or_default();
                stack.set_peer_at(ctx.now(), endpoint_key(self.peer), self.peer, routes);
                self.stack = Some(stack);
                self.pump_app(ctx);
            }
            Event::Timer { token: TIMER_STACK } | Event::HostUp => {
                self.gate.fired();
                let now = ctx.now();
                if let Some(s) = self.stack.as_mut() {
                    s.on_timer(now);
                }
                self.pump_app(ctx);
            }
            Event::Packet { from, payload } => {
                let now = ctx.now();
                if let Some(s) = self.stack.as_mut() {
                    let _ = s.on_datagram(now, from, payload);
                }
                self.pump_app(ctx);
            }
            _ => {}
        }
    }
}

/// Verifies every delivered message against [`fec_payload`]: indices
/// land in `seqs` (order preserved), content mismatches in
/// `mismatches` (each one is an integrity violation — reconstruction
/// must fail closed, never fabricate), and the final SRUDP stats
/// snapshot in `stats`.
pub(crate) struct FecReceiver {
    pub(crate) stack: Option<WireStack>,
    pub(crate) cfg: StackConfig,
    pub(crate) pin: Option<Vec<snipe_util::id::NetId>>,
    pub(crate) gate: TimerGate,
    pub(crate) expect: u64,
    pub(crate) msg_size: usize,
    pub(crate) seqs: Arc<Mutex<Vec<u32>>>,
    pub(crate) mismatches: Arc<Mutex<Vec<String>>>,
    pub(crate) stats: Arc<Mutex<snipe_wire::srudp::SrudpStats>>,
    pub(crate) done_at: Arc<Mutex<Option<SimTime>>>,
}

impl FecReceiver {
    fn drain_verified(&mut self, ctx: &mut Ctx<'_>) {
        let Some(stack) = self.stack.as_mut() else {
            return;
        };
        for o in stack.drain() {
            match o {
                Out::Send { to, via, bytes, .. } => match via {
                    Some(n) => ctx.send_via(to, bytes, n),
                    None => ctx.send(to, bytes),
                },
                Out::Deliver { msg, .. } => {
                    let mut seqs = self.seqs.lock().unwrap();
                    if msg.len() >= 8 {
                        let i = u64::from_be_bytes(msg[..8].try_into().unwrap());
                        if msg != fec_payload(i, self.msg_size) {
                            self.mismatches.lock().unwrap().push(format!(
                                "message {i}: {} bytes delivered with corrupted content",
                                msg.len()
                            ));
                        }
                        seqs.push(i as u32);
                    } else {
                        self.mismatches
                            .lock()
                            .unwrap()
                            .push(format!("runt message delivered ({} bytes)", msg.len()));
                    }
                    if seqs.len() as u64 >= self.expect && self.done_at.lock().unwrap().is_none() {
                        *self.done_at.lock().unwrap() = Some(ctx.now());
                    }
                }
                Out::Wake { .. } => {}
            }
        }
        *self.stats.lock().unwrap() = stack.srudp_stats();
        if let Some(dl) = stack.next_deadline() {
            self.gate.arm_at(ctx, dl + SimDuration::from_micros(1), TIMER_STACK);
        }
    }
}

impl Actor for FecReceiver {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
        match event {
            Event::Start => {
                let me = ctx.me();
                self.stack = Some(WireStack::new(endpoint_key(me), self.cfg.clone()));
            }
            Event::Packet { from, payload } => {
                let now = ctx.now();
                let Some(stack) = self.stack.as_mut() else {
                    return;
                };
                let _ = stack.on_datagram(now, from, payload);
                if let Some(pin) = &self.pin {
                    for key in stack.known_peers() {
                        if stack.route_candidates(key).is_empty() {
                            if let Some(ep) = stack.peer_endpoint(key) {
                                stack.set_peer_at(now, key, ep, pin.clone());
                            }
                        }
                    }
                }
                self.drain_verified(ctx);
            }
            Event::Timer { token: TIMER_STACK } | Event::HostUp => {
                self.gate.fired();
                let now = ctx.now();
                if let Some(s) = self.stack.as_mut() {
                    s.on_timer(now);
                }
                self.drain_verified(ctx);
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// RSTREAM driver
// ---------------------------------------------------------------------------

pub(crate) struct RstreamSender {
    pub(crate) stack: Option<WireStack>,
    pub(crate) cfg: RstreamConfig,
    pub(crate) conn: u64,
    pub(crate) peer: Endpoint,
    pub(crate) msg_size: usize,
    pub(crate) remaining: usize,
    pub(crate) inflight_cap: usize,
    pub(crate) gate: TimerGate,
}

impl RstreamSender {
    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let Some(stack) = self.stack.as_mut() else {
            return;
        };
        {
            let rs = stack.rstream_mut().expect("RSTREAM driver registered");
            while self.remaining > 0 && rs.unacked_bytes(self.conn) < self.inflight_cap {
                let size = self.msg_size.min(self.remaining);
                if rs.send_message(now, self.conn, &vec![0xCD; size]).is_err() {
                    break;
                }
                self.remaining -= size;
            }
        }
        let mut sink = 0;
        flush_wire(stack, &mut self.gate, ctx, &mut sink);
    }
}

impl Actor for RstreamSender {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
        match event {
            Event::Start => {
                let me = ctx.me();
                let cfg = StackConfig { rstream: Some(self.cfg.clone()), ..StackConfig::default() };
                let mut stack = WireStack::new(endpoint_key(me), cfg);
                self.conn = stack
                    .rstream_mut()
                    .expect("RSTREAM driver registered")
                    .connect(ctx.now(), self.peer);
                self.stack = Some(stack);
                self.pump(ctx);
            }
            Event::Timer { token: TIMER_STACK } | Event::HostUp => {
                // See SrudpSender: re-drive after a flap swallowed timers.
                self.gate.fired();
                let now = ctx.now();
                if let Some(s) = self.stack.as_mut() {
                    s.on_timer(now);
                }
                self.pump(ctx);
            }
            Event::Packet { from, payload } => {
                let now = ctx.now();
                if let Some(s) = self.stack.as_mut() {
                    let _ = s.on_datagram(now, from, payload);
                }
                self.pump(ctx);
            }
            _ => {}
        }
    }
}

pub(crate) struct RstreamReceiver {
    pub(crate) stack: Option<WireStack>,
    pub(crate) cfg: RstreamConfig,
    pub(crate) received: Arc<Mutex<usize>>,
    pub(crate) done_at: Arc<Mutex<Option<SimTime>>>,
    pub(crate) expect: usize,
    pub(crate) gate: TimerGate,
}

impl RstreamReceiver {
    fn drain(&mut self, ctx: &mut Ctx<'_>) {
        let Some(stack) = self.stack.as_mut() else {
            return;
        };
        let mut got = 0;
        flush_wire(stack, &mut self.gate, ctx, &mut got);
        if got > 0 {
            let mut r = self.received.lock().unwrap();
            *r += got;
            if *r >= self.expect && self.done_at.lock().unwrap().is_none() {
                *self.done_at.lock().unwrap() = Some(ctx.now());
            }
        }
    }
}

impl Actor for RstreamReceiver {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
        match event {
            Event::Start => {
                let me = ctx.me();
                let cfg = StackConfig { rstream: Some(self.cfg.clone()), ..StackConfig::default() };
                self.stack = Some(WireStack::new(endpoint_key(me), cfg));
            }
            Event::Packet { from, payload } => {
                let now = ctx.now();
                if let Some(s) = self.stack.as_mut() {
                    let _ = s.on_datagram(now, from, payload);
                }
                self.drain(ctx);
            }
            Event::Timer { token: TIMER_STACK } | Event::HostUp => {
                self.gate.fired();
                let now = ctx.now();
                if let Some(s) = self.stack.as_mut() {
                    s.on_timer(now);
                }
                self.drain(ctx);
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Multicast driver (sender → router → member; per-receiver goodput)
// ---------------------------------------------------------------------------

struct McastSource {
    router: Endpoint,
    msg_size: usize,
    remaining: usize,
    seq: u64,
    /// Pace: messages per tick to avoid infinite same-time loops.
    burst: usize,
}

impl Actor for McastSource {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
        match event {
            // HostUp: a flap swallows the pacing timer; restart it.
            Event::Start | Event::Timer { .. } | Event::HostUp => {
                for _ in 0..self.burst {
                    if self.remaining == 0 {
                        return;
                    }
                    let size = self.msg_size.min(self.remaining);
                    self.remaining -= size;
                    let msg = McastMsg::Data {
                        group: 1,
                        origin: 42,
                        seq: self.seq,
                        ttl: 2,
                        payload: Bytes::from(vec![0xEF; size]),
                    };
                    self.seq += 1;
                    ctx.send(self.router, seal(Proto::Mcast, msg.encode()));
                }
                ctx.set_timer(SimDuration::from_micros(200), 1);
            }
            _ => {}
        }
    }
}

struct McastRouterHost {
    state: McastRouter,
}

impl Actor for McastRouterHost {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
        if let Event::Packet { payload, .. } = event {
            let Ok((Proto::Mcast, body)) = open(payload) else {
                return;
            };
            let Ok(msg) = McastMsg::decode(body) else {
                return;
            };
            let mut outs = Vec::new();
            self.state.on_message(msg, &mut outs);
            for o in outs {
                if let Out::Send { to, bytes, .. } = o {
                    ctx.send(to, bytes);
                }
            }
        }
    }
}

struct McastMemberHost {
    stack: Option<WireStack>,
    received: Arc<Mutex<usize>>,
    done_at: Arc<Mutex<Option<SimTime>>>,
    expect: usize,
    gate: TimerGate,
}

impl McastMemberHost {
    fn drain(&mut self, ctx: &mut Ctx<'_>) {
        let Some(stack) = self.stack.as_mut() else {
            return;
        };
        for o in stack.drain() {
            match o {
                Out::Send { to, via, bytes, .. } => match via {
                    Some(n) => ctx.send_via(to, bytes, n),
                    None => ctx.send(to, bytes),
                },
                // Member deliveries carry the whole MCAST envelope;
                // goodput counts only the application payload.
                Out::Deliver { msg, .. } => {
                    let Ok(McastMsg::Data { payload, .. }) = McastMsg::decode(msg) else {
                        continue;
                    };
                    let mut r = self.received.lock().unwrap();
                    *r += payload.len();
                    if *r >= self.expect && self.done_at.lock().unwrap().is_none() {
                        *self.done_at.lock().unwrap() = Some(ctx.now());
                    }
                }
                Out::Wake { .. } => {}
            }
        }
        if let Some(dl) = stack.next_deadline() {
            self.gate.arm_at(ctx, dl + SimDuration::from_micros(1), TIMER_STACK);
        }
    }
}

impl Actor for McastMemberHost {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
        match event {
            Event::Start => {
                let me = ctx.me();
                let cfg = StackConfig { mcast_member: true, ..StackConfig::default() };
                self.stack = Some(WireStack::new(endpoint_key(me), cfg));
            }
            Event::Packet { from, payload } => {
                let now = ctx.now();
                if let Some(s) = self.stack.as_mut() {
                    let _ = s.on_datagram(now, from, payload);
                }
                self.drain(ctx);
            }
            Event::Timer { token: TIMER_STACK } | Event::HostUp => {
                self.gate.fired();
                let now = ctx.now();
                if let Some(s) = self.stack.as_mut() {
                    s.on_timer(now);
                }
                self.drain(ctx);
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Total payload streamed per measurement.
fn total_for(msg_size: usize) -> usize {
    (msg_size * 64).clamp(1 << 21, 1 << 24)
}

/// Measure one (medium, protocol, size) point.
pub fn measure(medium: Medium, protocol: Protocol, msg_size: usize) -> Option<Fig1Point> {
    let medium_name = medium.name;
    // Multicast is unfragmented: sizes beyond the MTU are not sendable.
    if protocol == Protocol::Mcast && msg_size + 64 > medium.mtu {
        return None;
    }
    let ceiling = medium.goodput_ceiling(msg_size.min(medium.mtu));
    let mut topo = Topology::new();
    let net = topo.add_network("m", medium, true);
    let a = topo.add_host(HostCfg::named("a"));
    let b = topo.add_host(HostCfg::named("b"));
    let c = topo.add_host(HostCfg::named("c"));
    for h in [a, b, c] {
        topo.attach(h, net);
    }
    let mut world = World::new(topo, 99);
    let total = total_for(msg_size);
    let received = Arc::new(Mutex::new(0usize));
    let done_at = Arc::new(Mutex::new(None));
    match protocol {
        Protocol::Srudp => {
            world.spawn(
                b,
                20,
                Box::new(SrudpReceiver {
                    stack: None,
                    received: received.clone(),
                    done_at: done_at.clone(),
                    expect: total,
                    cfg: StackConfig::default(),
                    pin: None,
                    gate: TimerGate::new(),
                }),
            );
            world.spawn(
                a,
                20,
                Box::new(SrudpSender {
                    stack: None,
                    peer: Endpoint::new(b, 20),
                    msg_size,
                    remaining: total,
                    // Pipeline depth: several messages or a window's
                    // worth of fragments, whichever is larger.
                    inflight: (4 * msg_size).max(64 * 1400),
                    cfg: StackConfig::default(),
                    pin: None,
                    gate: TimerGate::new(),
                }),
            );
        }
        Protocol::Rstream => {
            world.spawn(
                b,
                20,
                Box::new(RstreamReceiver {
                    stack: None,
                    cfg: RstreamConfig::default(),
                    received: received.clone(),
                    done_at: done_at.clone(),
                    expect: total,
                    gate: TimerGate::new(),
                }),
            );
            world.spawn(
                a,
                20,
                Box::new(RstreamSender {
                    stack: None,
                    cfg: RstreamConfig::default(),
                    conn: 0,
                    peer: Endpoint::new(b, 20),
                    msg_size,
                    remaining: total,
                    inflight_cap: 64 * 1400,
                    gate: TimerGate::new(),
                }),
            );
        }
        Protocol::Mcast => {
            world.spawn(
                c,
                20,
                Box::new(McastMemberHost {
                    stack: None,
                    received: received.clone(),
                    done_at: done_at.clone(),
                    expect: total,
                    gate: TimerGate::new(),
                }),
            );
            let mut router = McastRouter::new();
            let mut scratch = Vec::new();
            router.on_message(
                McastMsg::Join { group: 1, member: Endpoint::new(c, 20) },
                &mut scratch,
            );
            world.spawn(b, 20, Box::new(McastRouterHost { state: router }));
            world.spawn(
                a,
                20,
                Box::new(McastSource {
                    router: Endpoint::new(b, 20),
                    msg_size,
                    remaining: total,
                    seq: 0,
                    burst: 8,
                }),
            );
        }
    }
    // Run until done (bounded).
    for _ in 0..600 {
        world.run_for(SimDuration::from_millis(100));
        if done_at.lock().unwrap().is_some() {
            break;
        }
    }
    let t = (*done_at.lock().unwrap())?;
    let secs = t.as_secs_f64();
    if secs <= 0.0 {
        return None;
    }
    Some(Fig1Point {
        medium: medium_name,
        protocol: protocol.name(),
        msg_size,
        goodput: total as f64 / secs,
        ceiling,
    })
}

/// Instrumented variant of [`measure`] printing progress (debugging).
pub fn measure_debug(medium: Medium, protocol: Protocol, msg_size: usize) {
    let medium_name = medium.name;
    let _ = medium_name;
    let mut topo = Topology::new();
    let net = topo.add_network("m", medium, true);
    let a = topo.add_host(HostCfg::named("a"));
    let b = topo.add_host(HostCfg::named("b"));
    let c = topo.add_host(HostCfg::named("c"));
    for h in [a, b, c] {
        topo.attach(h, net);
    }
    let mut world = World::new(topo, 99);
    let total = total_for(msg_size);
    let received = Arc::new(Mutex::new(0usize));
    let done_at = Arc::new(Mutex::new(None));
    assert_eq!(protocol, Protocol::Srudp);
    world.spawn(
        b,
        20,
        Box::new(SrudpReceiver {
            stack: None,
            received: received.clone(),
            done_at: done_at.clone(),
            expect: total,
            cfg: StackConfig::default(),
            pin: None,
            gate: TimerGate::new(),
        }),
    );
    world.spawn(
        a,
        20,
        Box::new(SrudpSender {
            stack: None,
            peer: Endpoint::new(b, 20),
            msg_size,
            remaining: total,
            inflight: (4 * msg_size).max(64 * 1400),
            cfg: StackConfig::default(),
            pin: None,
            gate: TimerGate::new(),
        }),
    );
    for i in 0..600 {
        let t0 = std::time::Instant::now();
        world.run_for(SimDuration::from_millis(100));
        eprintln!(
            "iter {i}: wall {:?} received {} / {} events {}",
            t0.elapsed(),
            *received.lock().unwrap(),
            total,
            world.stats().events
        );
        if done_at.lock().unwrap().is_some() {
            eprintln!("DONE at {:?}", *done_at.lock().unwrap());
            break;
        }
    }
}

/// The standard message-size series of the figure.
pub fn standard_sizes() -> Vec<usize> {
    vec![64, 256, 1024, 1400, 4096, 16384, 65536, 262144, 1 << 20]
}

/// The standard media of the figure (plus extensions).
pub fn standard_media() -> Vec<Medium> {
    vec![Medium::ethernet10(), Medium::ethernet100(), Medium::atm155(), Medium::myrinet()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn srudp_reaches_reasonable_fraction_of_ethernet() {
        let p = measure(Medium::ethernet100(), Protocol::Srudp, 65536).expect("completes");
        // Large messages must achieve a solid fraction of the 12.5 MB/s
        // raw rate (shape requirement, not absolute).
        assert!(p.goodput > 6e6, "goodput {} too low", p.goodput);
        assert!(p.goodput <= p.ceiling * 1.01, "goodput above ceiling?");
    }

    #[test]
    fn small_messages_slower_than_large() {
        let small = measure(Medium::ethernet100(), Protocol::Srudp, 64).expect("completes");
        let large = measure(Medium::ethernet100(), Protocol::Srudp, 65536).expect("completes");
        assert!(small.goodput < large.goodput);
    }

    #[test]
    fn atm_beats_ethernet_for_bulk() {
        let eth = measure(Medium::ethernet100(), Protocol::Srudp, 262144).expect("completes");
        let atm = measure(Medium::atm155(), Protocol::Srudp, 262144).expect("completes");
        assert!(atm.goodput > eth.goodput, "atm {} vs eth {}", atm.goodput, eth.goodput);
    }

    #[test]
    fn mcast_skips_oversized() {
        assert!(measure(Medium::ethernet100(), Protocol::Mcast, 65536).is_none());
        let p = measure(Medium::ethernet100(), Protocol::Mcast, 1024).expect("completes");
        assert!(p.goodput > 1e5);
    }
}
