//! E2 — §6.1: MPI Connect (SNIPE) vs PVMPI (PVM) point-to-point
//! performance between two "MPPs" (two LAN sites over routable edges).

use std::sync::{Arc, Mutex};

use bytes::Bytes;

use mpi_connect::{MpiApi, MpiRank, PvmpiRankActor, SnipeMpiProcess};
use pvm_baseline::{PvmMaster, PvmSlave, MASTER_PORT, SLAVE_PORT};
use snipe_core::SnipeWorldBuilder;
use snipe_daemon::registry::ProgramRegistry;
use snipe_netsim::medium::Medium;
use snipe_netsim::topology::{Endpoint, HostCfg, Topology};
use snipe_netsim::world::World;
use snipe_util::time::{SimDuration, SimTime};

/// One measured row.
#[derive(Clone, Debug)]
pub struct E2Point {
    /// "MPI Connect (SNIPE)" or "PVMPI (PVM)".
    pub system: &'static str,
    /// Message size.
    pub msg_size: usize,
    /// Mean one-way latency per message (seconds) over the run.
    pub latency: f64,
    /// Payload bandwidth (bytes/second) for the streamed phase.
    pub bandwidth: f64,
}

struct Pinger {
    peer: u64,
    rounds: u32,
    msg_size: usize,
    start: Arc<Mutex<Option<SimTime>>>,
    done: Arc<Mutex<Option<SimTime>>>,
    remaining: u32,
}

impl MpiRank for Pinger {
    fn on_start(&mut self, api: &mut dyn MpiApi) {
        self.remaining = self.rounds;
        *self.start.lock().unwrap() = Some(api.now());
        api.send(self.peer, Bytes::from(vec![0u8; self.msg_size]));
    }
    fn on_recv(&mut self, api: &mut dyn MpiApi, _from: u64, _data: Bytes) {
        self.remaining -= 1;
        if self.remaining == 0 {
            *self.done.lock().unwrap() = Some(api.now());
        } else {
            api.send(self.peer, Bytes::from(vec![0u8; self.msg_size]));
        }
    }
}

struct Ponger;
impl MpiRank for Ponger {
    fn on_start(&mut self, _api: &mut dyn MpiApi) {}
    fn on_recv(&mut self, api: &mut dyn MpiApi, from: u64, data: Bytes) {
        api.send(from, data);
    }
}

const ROUNDS: u32 = 40;

/// Run the SNIPE-substrate (MPI Connect) side.
pub fn run_snipe(msg_size: usize) -> E2Point {
    let mut w = SnipeWorldBuilder::two_site(2, 77).build();
    let start = Arc::new(Mutex::new(None));
    let done = Arc::new(Mutex::new(None));
    w.register_process("ponger", |_| Box::new(SnipeMpiProcess::new(Box::new(Ponger))));
    let (pong_key, _) = w.spawn_on("site1-host1", "ponger", Bytes::new()).unwrap();
    // Let the ponger register its location before timing starts (the
    // PVMPI runner likewise enrols its VM first).
    w.run_for(SimDuration::from_millis(100));
    let (s, d) = (start.clone(), done.clone());
    w.register_process("pinger", move |_| {
        Box::new(SnipeMpiProcess::new(Box::new(Pinger {
            peer: pong_key,
            rounds: ROUNDS,
            msg_size,
            start: s.clone(),
            done: d.clone(),
            remaining: 0,
        })))
    });
    w.spawn_on("site0-host1", "pinger", Bytes::new()).unwrap();
    for _ in 0..120 {
        w.run_for(SimDuration::from_millis(500));
        if done.lock().unwrap().is_some() {
            break;
        }
    }
    let t0 = start.lock().unwrap().expect("started");
    let t1 = done.lock().unwrap().expect("snipe e2 completed");
    let elapsed = t1.since(t0).as_secs_f64();
    E2Point {
        system: "MPI Connect (SNIPE)",
        msg_size,
        latency: elapsed / (2.0 * ROUNDS as f64),
        bandwidth: (ROUNDS as usize * msg_size) as f64 / elapsed,
    }
}

/// Run the PVM-substrate (PVMPI) side on an identical physical layout.
pub fn run_pvmpi(msg_size: usize) -> E2Point {
    let mut topo = Topology::new();
    let s0 = topo.add_network("site0", Medium::ethernet100(), true);
    let s1 = topo.add_network("site1", Medium::ethernet100(), true);
    let mut hosts = Vec::new();
    for i in 0..2 {
        let h = topo.add_host(HostCfg::named(format!("site0-host{i}")));
        topo.attach(h, s0);
        hosts.push(h);
    }
    for i in 0..2 {
        let h = topo.add_host(HostCfg::named(format!("site1-host{i}")));
        topo.attach(h, s1);
        hosts.push(h);
    }
    let mut world = World::new(topo, 77);
    let registry = ProgramRegistry::new();
    let master_ep = Endpoint::new(hosts[0], MASTER_PORT);
    world.spawn(hosts[0], MASTER_PORT, Box::new(PvmMaster::new()));
    for &h in &hosts {
        world.spawn(h, SLAVE_PORT, Box::new(PvmSlave::new(master_ep, registry.clone())));
    }
    world.run_for(SimDuration::from_millis(200));
    let start = Arc::new(Mutex::new(None));
    let done = Arc::new(Mutex::new(None));
    let pong = PvmpiRankActor::build(2, master_ep, Box::new(Ponger));
    world.spawn(hosts[3], 300, Box::new(pong));
    world.run_for(SimDuration::from_millis(100));
    let ping = PvmpiRankActor::build(
        1,
        master_ep,
        Box::new(Pinger {
            peer: 2,
            rounds: ROUNDS,
            msg_size,
            start: start.clone(),
            done: done.clone(),
            remaining: 0,
        }),
    );
    world.spawn(hosts[1], 300, Box::new(ping));
    for _ in 0..120 {
        world.run_for(SimDuration::from_millis(500));
        if done.lock().unwrap().is_some() {
            break;
        }
    }
    let t0 = start.lock().unwrap().expect("started");
    let t1 = done.lock().unwrap().expect("pvmpi e2 completed");
    let elapsed = t1.since(t0).as_secs_f64();
    E2Point {
        system: "PVMPI (PVM)",
        msg_size,
        latency: elapsed / (2.0 * ROUNDS as f64),
        bandwidth: (ROUNDS as usize * msg_size) as f64 / elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snipe_latency_beats_pvmpi() {
        let s = run_snipe(64);
        let p = run_pvmpi(64);
        assert!(s.latency < p.latency, "snipe {} vs pvmpi {}", s.latency, p.latency);
    }
}
