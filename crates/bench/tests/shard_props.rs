//! Differential determinism properties of the sharded engine.
//!
//! The contract under test: for any seed and any fault script, a
//! [`ShardedWorld`] run is a pure function of the world — the worker
//! thread count must never leak into behaviour. Each case runs a small
//! multi-region storm (with a seed-derived host flap so the coordinator
//! path is exercised) at 1, 2, 4 and 8 threads and demands bit-identical
//! digests *and* metrics. A pinned digest at the end catches silent
//! behavioural drift between PRs (the digest folds event counts, drop
//! taxonomies, chaos counters and per-shard clocks).

use proptest::{prop_assert_eq, proptest};
use snipe_bench::{chaos_shard, shard_storm};
use snipe_netsim::shard::FaultCmd;
use snipe_util::id::HostId;
use snipe_util::time::{SimDuration, SimTime};

/// A small cross-region storm (2 clusters) with a seed-derived flap,
/// run to a short horizon; returns (digest, metrics snapshot).
fn probe(seed: u64, threads: usize) -> (u64, String) {
    let hosts = 128;
    let mut w = shard_storm::build_storm(hosts, seed, threads);
    // Flap a seed-chosen host across a seed-chosen window so fault
    // dispatch and post-recovery traffic are inside the property.
    let victim = HostId((seed % hosts as u64) as u32);
    let down_ns = 1_000_000 + (seed % 3_000_000);
    let up_ns = down_ns + 1_500_000 + (seed / 7 % 2_000_000);
    w.schedule_fault(SimTime::from_nanos(down_ns), FaultCmd::HostDown(victim));
    w.schedule_fault(SimTime::from_nanos(up_ns), FaultCmd::HostUp(victim));
    w.run_for(SimDuration::from_millis(8));
    (w.digest(), w.metrics_json(0))
}

proptest! {
    #[test]
    fn digest_and_metrics_are_thread_count_invariant(seed in proptest::any::<u32>()) {
        let (d1, m1) = probe(seed as u64, 1);
        for threads in [2usize, 4, 8] {
            let (dt, mt) = probe(seed as u64, threads);
            prop_assert_eq!(d1, dt, "digest diverged at {} threads (seed {})", threads, seed);
            prop_assert_eq!(&m1, &mt, "metrics diverged at {} threads (seed {})", threads, seed);
        }
    }
}

/// The `shard-determinism` gate's fixed configuration, pinned. If an
/// intentional engine change shifts behaviour, re-pin via
/// `cargo run -p snipe-bench --release --bin harness -- shard-digest 1`
/// and say why in the PR.
#[test]
fn pinned_digest_run_stays_stable() {
    let d = shard_storm::digest_run(1, 42);
    assert_eq!(d, shard_storm::digest_run(8, 42), "thread-count invariance of the gate config");
    assert_eq!(d, PINNED_DIGEST, "digest_run(_, 42) drifted — intentional? re-pin with rationale");
}

const PINNED_DIGEST: u64 = 0x9493_0970_f057_78f1;

/// The full protocol stack (daemons, RCDS, replicated files, RM) on a
/// 6-cluster campus must also be a pure function of the world: same
/// engine digest and same application log at every thread count.
#[test]
fn full_protocol_digest_is_thread_count_invariant() {
    let (d1, l1) = chaos_shard::full_protocol_sharded(42, 1, 20);
    assert!(
        !l1.is_empty(),
        "full-protocol run produced no application log lines — workload broken"
    );
    for threads in [2usize, 4, 8] {
        let (dt, lt) = chaos_shard::full_protocol_sharded(42, threads, 20);
        assert_eq!(d1, dt, "full-protocol digest diverged at {threads} threads");
        assert_eq!(l1, lt, "full-protocol app log diverged at {threads} threads");
    }
}

/// The erasure-coded share-spray chaos workload must be a pure
/// function of the world too: same digest (and a green verdict) at
/// every thread count, under a six-op plan with packet corruption.
#[test]
fn fec_spray_digest_is_thread_count_invariant() {
    use snipe_netsim::chaos::ChaosPlan;
    let w = chaos_shard::ShardWorkload::FecSpray;
    let plan = ChaosPlan::generate(0xC0FF_EE02, &w.shape());
    let (v1, d1) = w.run(&plan, 0x5EED + 2, 1);
    assert!(v1.is_empty(), "fec spray violated its oracles at 1 thread: {v1:?}");
    for threads in [2usize, 4, 8] {
        let (vt, dt) = w.run(&plan, 0x5EED + 2, threads);
        assert!(vt.is_empty(), "fec spray violated its oracles at {threads} threads: {vt:?}");
        assert_eq!(d1, dt, "fec spray digest diverged at {threads} threads");
    }
}

/// The same workload on the serial [`World`] must reach the same
/// application outcome (milestone log lines) as the sharded engine.
/// Engine digests are incomparable across engines — the serial world
/// draws from one global RNG stream, shards from per-region streams —
/// so the differential is judged at the SNIPE-process level.
#[test]
fn full_protocol_serial_matches_sharded_app_log() {
    let serial = chaos_shard::full_protocol_serial(42, 20);
    let (_, sharded) = chaos_shard::full_protocol_sharded(42, 1, 20);
    assert_eq!(serial, sharded, "serial vs sharded full-protocol app log diverged");
}
