//! Structural properties of chaos plans for every workload shape.
//!
//! These run the *generator and minimizer* over many seeds, not full
//! simulations, so they are cheap enough for tier-1. The contracts:
//! plans are pure functions of their seed, faults respect the shape's
//! horizon discipline (start after 5%, quiesce by 90%), packet-chaos
//! levels stay under the shape's ceilings, and the greedy shrinker
//! reaches a fixpoint where every surviving op is load-bearing.

use proptest::{prop_assert, prop_assert_eq, proptest};
use snipe_bench::chaos::{Workload, ALL_WORKLOADS};
use snipe_netsim::chaos::{shrink_plan, ChaosOp, ChaosPlan};
use snipe_util::time::SimTime;

fn op_start(op: &ChaosOp) -> SimTime {
    match *op {
        ChaosOp::HostFlap { at, .. }
        | ChaosOp::NetFlap { at, .. }
        | ChaosOp::IfaceFlap { at, .. }
        | ChaosOp::Gray { at, .. }
        | ChaosOp::LossBurst { at, .. }
        | ChaosOp::Partition { at, .. }
        | ChaosOp::ProcRestart { at, .. } => at,
    }
}

proptest! {
    #[test]
    fn plans_are_pure_functions_of_their_seed(seed in proptest::any::<u32>()) {
        for w in ALL_WORKLOADS {
            let shape = w.shape();
            let a = ChaosPlan::generate(seed as u64, &shape);
            let b = ChaosPlan::generate(seed as u64, &shape);
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(a.packet_seed(), b.packet_seed());
        }
    }

    #[test]
    fn every_workload_shape_respects_horizon_discipline(seed in proptest::any::<u32>()) {
        for w in ALL_WORKLOADS {
            let shape = w.shape();
            let plan = ChaosPlan::generate(seed as u64, &shape);
            let h = shape.horizon.as_nanos();
            let lo = SimTime::from_nanos((h as f64 * 0.05) as u64);
            let hi = SimTime::from_nanos((h as f64 * 0.9) as u64);
            prop_assert!(!plan.ops.is_empty());
            prop_assert!(plan.ops.len() <= shape.max_ops as usize);
            for op in &plan.ops {
                prop_assert!(op_start(op) >= lo, "{}: op starts too early: {op:?}", w.name());
            }
            // Quiesce covers both the last op end and packet cutoff.
            prop_assert!(
                plan.quiesce_at() <= hi.max(plan.packet_until),
                "{}: plan quiesces too late",
                w.name()
            );
            if let Some(pc) = plan.packet {
                prop_assert!(pc.corrupt <= shape.corrupt_max);
                prop_assert!(pc.duplicate <= shape.duplicate_max);
                prop_assert!(pc.reorder <= shape.reorder_max);
                prop_assert!(pc.jitter <= shape.jitter_max);
            }
        }
    }

    #[test]
    fn mcast_shape_never_generates_corruption(seed in proptest::any::<u32>()) {
        // W4's contract: duplication/reordering only — a corrupt-capable
        // plan would make the distinct-delivery oracle unsound.
        let plan = ChaosPlan::generate(seed as u64, &Workload::Mcast.shape());
        if let Some(pc) = plan.packet {
            prop_assert_eq!(pc.corrupt, 0.0);
        }
    }

    #[test]
    fn shrinker_reaches_a_load_bearing_fixpoint(seed in proptest::any::<u32>()) {
        // Synthetic failure predicate: "fails iff ≥2 net-level ops
        // remain". The shrunk plan must sit exactly on the boundary.
        let plan = ChaosPlan::generate(seed as u64, &Workload::SrudpTransfer.shape());
        let net_ops = |p: &ChaosPlan| {
            p.ops
                .iter()
                .filter(|o| {
                    matches!(
                        o,
                        ChaosOp::NetFlap { .. }
                            | ChaosOp::Gray { .. }
                            | ChaosOp::LossBurst { .. }
                            | ChaosOp::Partition { .. }
                    )
                })
                .count()
        };
        if net_ops(&plan) >= 2 {
            let min = shrink_plan(plan, |p| net_ops(p) >= 2);
            prop_assert_eq!(net_ops(&min), 2);
            prop_assert_eq!(min.ops.len(), 2, "non-culprit ops all dropped: {:?}", min.ops);
            prop_assert_eq!(min.packet, None, "irrelevant packet chaos cleared");
        }
    }
}
