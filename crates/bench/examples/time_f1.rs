use snipe_bench::fig1::{measure_debug, Protocol};
fn main() {
    measure_debug(snipe_netsim::medium::Medium::ethernet100(), Protocol::Srudp, 64);
}
