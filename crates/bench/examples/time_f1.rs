use snipe_bench::fig1::{Protocol, measure_debug};
fn main() {
    measure_debug(snipe_netsim::medium::Medium::ethernet100(), Protocol::Srudp, 64);
}
