//! Replicated processes and services (§5.7).
//!
//! The paper describes three replication shapes; this module implements
//! the two that are pure naming conventions over the existing
//! machinery, as the paper itself does:
//!
//! * **Multicast pseudo-processes** — "a multicast group can be created
//!   to provide input to all of those processes. SNIPE metadata can
//!   then be created for the new pseudo-process ... with the multicast
//!   group listed as the communications URL. All data sent to the
//!   pseudo-process will then be transmitted to each member of the
//!   group." A pseudo-process is an RC entry whose `comm-group`
//!   attribute names a multicast group; [`pseudo_process_group`] teaches
//!   the client library to fan such sends out.
//!
//! * **LIFN services** — "a LIFN can be created for that service, and
//!   each of the service locations (URLs) associated with that LIFN.
//!   Any process attempting to communicate with that service will then
//!   see multiple service locations from which to choose." Covered by
//!   `SnipeApi::register_service` / `lookup_service`; the helpers here
//!   add the choosing policies.

use snipe_rcds::assertion::Assertion;
use snipe_util::error::{SnipeError, SnipeResult};

use crate::api::ProcRef;
use crate::names::ATTR_COMM_GROUP;

/// How a client picks among a service's registered locations (§5.7:
/// "multiple service locations (URLs) from which to choose").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServicePick {
    /// The lowest-keyed location (stable primary).
    Primary,
    /// Spread load by hashing the chooser's key over locations.
    HashByCaller(u64),
}

/// Choose one location from a service lookup result.
pub fn choose_location(locations: &[ProcRef], policy: ServicePick) -> SnipeResult<ProcRef> {
    if locations.is_empty() {
        return Err(SnipeError::NameNotFound("service has no registered locations".into()));
    }
    Ok(match policy {
        ServicePick::Primary => locations[0],
        ServicePick::HashByCaller(key) => locations[(key % locations.len() as u64) as usize],
    })
}

/// The assertions registering a multicast pseudo-process: metadata for
/// a name whose communications address is a *group*, not an endpoint.
pub fn pseudo_process_assertions(group: &str) -> Vec<Assertion> {
    vec![
        Assertion::new("type", "pseudo-process"),
        Assertion::new(ATTR_COMM_GROUP, group.to_string()),
    ]
}

/// Extract the group name if assertions describe a pseudo-process.
pub fn pseudo_process_group(assertions: &[Assertion]) -> Option<&str> {
    assertions.iter().find(|a| a.name == ATTR_COMM_GROUP).map(|a| a.value.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;
    use snipe_netsim::topology::Endpoint;
    use snipe_util::id::HostId;

    fn loc(key: u64) -> ProcRef {
        ProcRef { key, endpoint: Endpoint::new(HostId(key as u32), 1) }
    }

    #[test]
    fn choose_primary_and_hash() {
        let locs = vec![loc(1), loc(2), loc(3)];
        assert_eq!(choose_location(&locs, ServicePick::Primary).unwrap().key, 1);
        let a = choose_location(&locs, ServicePick::HashByCaller(7)).unwrap();
        let b = choose_location(&locs, ServicePick::HashByCaller(7)).unwrap();
        assert_eq!(a, b, "deterministic per caller");
        assert_eq!(a.key, 1 + 7 % 3);
    }

    #[test]
    fn empty_service_errors() {
        assert!(choose_location(&[], ServicePick::Primary).is_err());
    }

    #[test]
    fn pseudo_process_round_trip() {
        let asserts = pseudo_process_assertions("replica-pool");
        assert_eq!(pseudo_process_group(&asserts), Some("replica-pool"));
        assert_eq!(pseudo_process_group(&[]), None);
    }
}
