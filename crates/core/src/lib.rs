//! # snipe-core — the SNIPE client library and world assembly
//!
//! The programming environment of the paper: processes with global
//! names, reliable multi-path messaging, spawning through daemons and
//! resource managers, multicast groups, replicated files, migration and
//! consoles — assembled over the substrates in the sibling crates.
//!
//! A user implements [`SnipeProcess`] (the moral equivalent of a 1997
//! program linked against the SNIPE client library) and registers it
//! with a [`SnipeWorld`]; everything else — RC lookups, SRUDP, location
//! caching, group membership, checkpointing — is handled by the
//! embedded [`actor::ProcessActor`].
//!
//! ```
//! use bytes::Bytes;
//! use snipe_core::{SnipeApi, SnipeProcess, SnipeWorldBuilder};
//!
//! struct Hello;
//! impl SnipeProcess for Hello {
//!     fn on_start(&mut self, api: &mut SnipeApi<'_, '_>) {
//!         api.log("hello from a SNIPE process");
//!         api.exit();
//!     }
//! }
//!
//! let mut world = SnipeWorldBuilder::lan(4, 42).build();
//! world.register_process("hello", |_| Box::new(Hello));
//! world.spawn_on("host0", "hello", Bytes::new()).unwrap();
//! world.run_for_secs(1);
//! ```

pub mod actor;
pub mod api;
pub mod console;
pub mod names;
pub mod service;
pub mod world;

pub use actor::{ProcessActor, ProcessConfig};
pub use api::{GroupEvent, ProcRef, SnipeApi, SnipeProcess, SpawnTarget};
pub use console::{ConsoleActor, HttpMsg};
pub use names::group_id;
pub use service::{choose_location, ServicePick};
pub use world::{ShardedSnipeWorld, SnipeWorld, SnipeWorldBuilder};
