//! Naming conventions: how SNIPE system state is laid out in RC
//! metadata attributes (§5.2), plus helpers for the values.

use snipe_netsim::topology::Endpoint;
use snipe_rcds::uri::Uri;
use snipe_util::id::HostId;

/// Attribute holding a process's current communications address.
pub const ATTR_COMM_ADDRESS: &str = "comm-address";
/// Attribute holding a process's lifecycle state.
pub const ATTR_STATE: &str = "state";
/// Attribute prefix for multicast router registrations (§5.2.4).
pub const ATTR_ROUTER_PREFIX: &str = "router:";
/// Attribute holding a host daemon's endpoint.
pub const ATTR_DAEMON_ENDPOINT: &str = "daemon-endpoint";
/// Attribute prefix for service locations on a LIFN (§5.7).
pub const ATTR_LOCATION_PREFIX: &str = "location:";
/// Attribute naming a pseudo-process's multicast group (§5.7).
pub const ATTR_COMM_GROUP: &str = "comm-group";

/// Format an endpoint as a metadata value.
pub fn format_endpoint(ep: Endpoint) -> String {
    format!("{}:{}", ep.host.0, ep.port)
}

/// Parse a metadata endpoint value.
pub fn parse_endpoint(s: &str) -> Option<Endpoint> {
    let (h, p) = s.split_once(':')?;
    Some(Endpoint::new(HostId(h.parse().ok()?), p.parse().ok()?))
}

/// The URN of a multicast group and its 64-bit wire id.
///
/// Wire protocols carry the FNV-1a hash of the group URN; the URN
/// itself stays in RC metadata.
pub fn group_id(name: &str) -> u64 {
    let urn = Uri::mcast_group(name);
    let mut h: u64 = 0xcbf29ce484222325;
    for b in urn.as_str().bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Build the raw migrate-request control payload an active resource
/// manager sends to a process (§3.5). Seal with `Proto::Raw`.
pub fn migrate_request(target_hostname: &str) -> bytes::Bytes {
    let mut e = snipe_util::codec::Encoder::new();
    e.put_u8(0xAA);
    e.put_str(target_hostname);
    e.finish()
}

/// Extract router endpoints from a group's assertions.
pub fn parse_routers(assertions: &[snipe_rcds::assertion::Assertion]) -> Vec<Endpoint> {
    let mut v: Vec<Endpoint> = assertions
        .iter()
        .filter(|a| a.name.starts_with(ATTR_ROUTER_PREFIX))
        .filter_map(|a| parse_endpoint(&a.value))
        .collect();
    v.sort();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use snipe_rcds::assertion::Assertion;

    #[test]
    fn endpoint_round_trip() {
        let ep = Endpoint::new(HostId(7), 1234);
        assert_eq!(parse_endpoint(&format_endpoint(ep)), Some(ep));
        assert_eq!(parse_endpoint("junk"), None);
        assert_eq!(parse_endpoint("1:2:3"), None);
    }

    #[test]
    fn group_ids_distinct_and_stable() {
        let a = group_id("weather");
        let b = group_id("weather2");
        assert_ne!(a, b);
        assert_eq!(a, group_id("weather"));
    }

    #[test]
    fn router_parsing() {
        let asserts = vec![
            Assertion::new("router:0:5", "0:5"),
            Assertion::new("router:3:5", "3:5"),
            Assertion::new("other", "1:1"),
            Assertion::new("router:bad", "junk"),
        ];
        let routers = parse_routers(&asserts);
        assert_eq!(routers, vec![Endpoint::new(HostId(0), 5), Endpoint::new(HostId(3), 5)]);
    }
}
