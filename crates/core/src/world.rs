//! World assembly: build a SNIPE testbed in one call.
//!
//! A [`SnipeWorldBuilder`] lays out hosts and networks; `build()`
//! installs the full SNIPE runtime on them — RC metadata servers,
//! per-host daemons, resource managers and file servers — and returns a
//! [`SnipeWorld`] ready to register programs and spawn processes.
//! `build_sharded(threads)` installs the *same* runtime on a
//! [`ShardedWorld`] instead, returning a [`ShardedSnipeWorld`]: every
//! service actor is a [`PortableActor`], so the full protocol stack
//! runs unchanged on either engine and the choice is made once, here.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use bytes::Bytes;

use snipe_netsim::actor::PortableActor;
use snipe_netsim::medium::Medium;
use snipe_netsim::shard::ShardedWorld;
use snipe_netsim::topology::{Endpoint, HostCfg, Topology};
use snipe_netsim::world::World;
use snipe_util::error::{SnipeError, SnipeResult};
use snipe_util::id::{HostId, NetId};
use snipe_util::time::{SimDuration, SimTime};
use snipe_wire::ports;

use snipe_daemon::registry::{ProgramRegistry, SpawnCtx};
use snipe_daemon::{DaemonActor, DaemonConfig};
use snipe_files::{FileServerActor, FileServerConfig};
use snipe_rcds::server::RcServerActor;
use snipe_rm::{RmActor, RmConfig};

use crate::actor::{MigrationPayload, ProcessActor, ProcessConfig};
use crate::api::SnipeProcess;

/// The program name used internally for migrated processes.
pub const MIGRATE_PROGRAM: &str = "__snipe_migrate__";

/// Application process factory: constructor args → process. `Send +
/// Sync` because the registry holding it is shared across the shards
/// of a sharded world.
pub type ProcessFactory = Box<dyn Fn(Bytes) -> Box<dyn SnipeProcess> + Send + Sync>;

/// The shared name → factory map behind [`SnipeWorld::register_process`].
type ProgramMap = Arc<RwLock<HashMap<String, Arc<ProcessFactory>>>>;

/// Infrastructure actors to install: `(host, port, actor)` triples.
type ServiceRoster = Vec<(HostId, u16, Box<dyn PortableActor>)>;

/// Builder for a SNIPE testbed.
pub struct SnipeWorldBuilder {
    seed: u64,
    topo: Topology,
    rc_hosts: Vec<HostId>,
    rm_hosts: Vec<HostId>,
    file_hosts: Vec<HostId>,
    rc_sync_interval: SimDuration,
}

impl SnipeWorldBuilder {
    /// Empty builder.
    pub fn new(seed: u64) -> SnipeWorldBuilder {
        SnipeWorldBuilder {
            seed,
            topo: Topology::new(),
            rc_hosts: Vec::new(),
            rm_hosts: Vec::new(),
            file_hosts: Vec::new(),
            rc_sync_interval: SimDuration::from_millis(200),
        }
    }

    /// Add a network segment.
    pub fn network(&mut self, name: &str, medium: Medium, routable: bool) -> NetId {
        self.topo.add_network(name, medium, routable)
    }

    /// Add a host attached to the given networks.
    pub fn host(&mut self, name: &str, nets: &[NetId]) -> HostId {
        let h = self.topo.add_host(HostCfg::named(name));
        for &n in nets {
            self.topo.attach(h, n);
        }
        h
    }

    /// Add a host with a CPU factor.
    pub fn host_with_cpu(&mut self, name: &str, cpu_factor: f64, nets: &[NetId]) -> HostId {
        let mut cfg = HostCfg::named(name);
        cfg.cpu_factor = cpu_factor;
        let h = self.topo.add_host(cfg);
        for &n in nets {
            self.topo.attach(h, n);
        }
        h
    }

    /// Place an RC metadata replica on a host.
    pub fn rc_on(&mut self, h: HostId) -> &mut Self {
        self.rc_hosts.push(h);
        self
    }

    /// Place a resource manager on a host.
    pub fn rm_on(&mut self, h: HostId) -> &mut Self {
        self.rm_hosts.push(h);
        self
    }

    /// Place a file server on a host.
    pub fn files_on(&mut self, h: HostId) -> &mut Self {
        self.file_hosts.push(h);
        self
    }

    /// Anti-entropy interval for RC replicas.
    pub fn rc_sync_interval(&mut self, d: SimDuration) -> &mut Self {
        self.rc_sync_interval = d;
        self
    }

    /// A single-segment 100 Mbit Ethernet LAN with `n` hosts named
    /// `host0..`, RC + RM on host0, file servers on the first two
    /// hosts.
    pub fn lan(n: usize, seed: u64) -> SnipeWorldBuilder {
        let mut b = SnipeWorldBuilder::new(seed);
        let net = b.network("lan", Medium::ethernet100(), true);
        let hosts: Vec<HostId> = (0..n).map(|i| b.host(&format!("host{i}"), &[net])).collect();
        if let Some(&h0) = hosts.first() {
            b.rc_on(h0);
            b.rm_on(h0);
            b.files_on(h0);
        }
        if let Some(&h1) = hosts.get(1) {
            b.files_on(h1);
        }
        b
    }

    /// The UTK-style dual-homed testbed of Fig. 1: `n` hosts on both a
    /// 100 Mbit Ethernet and a 155 Mbit ATM fabric. RC/RM/files on
    /// host0, a second RC replica on host1.
    pub fn utk_testbed(n: usize, seed: u64) -> SnipeWorldBuilder {
        let mut b = SnipeWorldBuilder::new(seed);
        let eth = b.network("utk-eth", Medium::ethernet100(), true);
        let atm = b.network("utk-atm", Medium::atm155(), false);
        let hosts: Vec<HostId> = (0..n).map(|i| b.host(&format!("host{i}"), &[eth, atm])).collect();
        if let Some(&h0) = hosts.first() {
            b.rc_on(h0);
            b.rm_on(h0);
            b.files_on(h0);
        }
        if let Some(&h1) = hosts.get(1) {
            b.rc_on(h1);
            b.files_on(h1);
        }
        b
    }

    /// Two LAN sites joined by routable WAN edges (the cross-MPP /
    /// cross-site scenarios of §6.1): `site0-hostI` and `site1-hostI`.
    pub fn two_site(per_site: usize, seed: u64) -> SnipeWorldBuilder {
        let mut b = SnipeWorldBuilder::new(seed);
        let s0 = b.network("site0", Medium::ethernet100(), true);
        let s1 = b.network("site1", Medium::ethernet100(), true);
        for i in 0..per_site {
            b.host(&format!("site0-host{i}"), &[s0]);
        }
        for i in 0..per_site {
            b.host(&format!("site1-host{i}"), &[s1]);
        }
        let h0 = b.topo.host_by_name("site0-host0").expect("exists");
        let h1 = b.topo.host_by_name("site1-host0").expect("exists");
        b.rc_on(h0).rc_on(h1).rm_on(h0).files_on(h0).files_on(h1);
        b
    }

    /// A multi-cluster campus for the sharded engine: `clusters`
    /// separate routable Ethernet LANs (`cluster{c}`), each with
    /// `per_cluster` hosts (`c{c}h{i}`), no shared backbone — so the
    /// partition yields one region per cluster and cross-cluster
    /// traffic is routed (and crosses the deterministic mailbox). RC
    /// replicas go on the heads of the first three clusters, file
    /// servers on the first two, the resource manager on cluster 0.
    pub fn campus(clusters: usize, per_cluster: usize, seed: u64) -> SnipeWorldBuilder {
        let mut b = SnipeWorldBuilder::new(seed);
        let mut heads = Vec::new();
        for c in 0..clusters {
            let net = b.network(&format!("cluster{c}"), Medium::ethernet100(), true);
            for i in 0..per_cluster {
                let h = b.host(&format!("c{c}h{i}"), &[net]);
                if i == 0 {
                    heads.push(h);
                }
            }
        }
        for &h in heads.iter().take(3) {
            b.rc_on(h);
        }
        for &h in heads.iter().take(2) {
            b.files_on(h);
        }
        if let Some(&h0) = heads.first() {
            b.rm_on(h0);
        }
        b
    }

    /// Direct access to the topology for custom layouts.
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topo
    }

    /// Engine-agnostic service roster: every infrastructure actor the
    /// runtime needs, as `(host, port, portable actor)` triples, plus
    /// the shared registry/config the processes will use.
    fn services(&self) -> (SnipeRuntime, ServiceRoster) {
        let registry = ProgramRegistry::new();
        let rc_eps: Vec<Endpoint> =
            self.rc_hosts.iter().map(|&h| Endpoint::new(h, ports::RC_SERVER)).collect();
        let rm_eps: Vec<Endpoint> =
            self.rm_hosts.iter().map(|&h| Endpoint::new(h, ports::RESOURCE_MANAGER)).collect();
        let file_eps: Vec<Endpoint> =
            self.file_hosts.iter().map(|&h| Endpoint::new(h, ports::FILE_SERVER)).collect();

        let mut actors: ServiceRoster = Vec::new();
        // RC replicas.
        for (i, ep) in rc_eps.iter().enumerate() {
            let peers: Vec<Endpoint> = rc_eps.iter().copied().filter(|e| e != ep).collect();
            let server = RcServerActor::new(i as u64 + 1, peers, self.rc_sync_interval);
            actors.push((ep.host, ep.port, Box::new(server)));
        }
        // Daemons on every host.
        for i in 0..self.topo.host_count() {
            let h = HostId::from_index(i);
            let name = self.topo.host(h).name.clone();
            let cfg = DaemonConfig::new(name, rc_eps.clone());
            actors.push((h, ports::DAEMON, Box::new(DaemonActor::new(cfg, registry.clone()))));
        }
        // Resource managers.
        for (i, ep) in rm_eps.iter().enumerate() {
            let mut cfg = RmConfig::new(rc_eps.clone());
            cfg.key_seed = 0x524d + i as u64;
            actors.push((ep.host, ep.port, Box::new(RmActor::new(cfg))));
        }
        // File servers.
        for (i, ep) in file_eps.iter().enumerate() {
            let peers: Vec<Endpoint> = file_eps.iter().copied().filter(|e| e != ep).collect();
            let cfg = FileServerConfig::new(format!("fs{i}"), rc_eps.clone(), peers);
            actors.push((ep.host, ep.port, Box::new(FileServerActor::new(cfg))));
        }

        let proc_cfg = ProcessConfig {
            rc_replicas: rc_eps.clone(),
            file_servers: file_eps.clone(),
            resource_managers: rm_eps.clone(),
            stack: Default::default(),
            echo_logs: false,
            chaos_disable_migration_freeze: false,
        };
        let programs: ProgramMap = Arc::new(RwLock::new(HashMap::new()));
        register_migration_shim(&registry, &programs, &proc_cfg);

        let rt = SnipeRuntime {
            registry,
            programs,
            proc_cfg,
            rc_eps,
            rm_eps,
            file_eps,
            next_root_key: 1 << 20,
        };
        (rt, actors)
    }

    /// Assemble the runtime on the serial engine.
    pub fn build(self) -> SnipeWorld {
        let (rt, actors) = self.services();
        let mut world = World::new(self.topo, self.seed);
        for (h, port, actor) in actors {
            world.spawn_portable(h, port, actor);
        }
        SnipeWorld { world, rt }
    }

    /// Assemble the *same* runtime on the sharded engine, executing on
    /// up to `threads` worker threads. Requires routable media with
    /// nonzero latency between regions (see [`ShardedWorld::new`]).
    pub fn build_sharded(self, threads: usize) -> ShardedSnipeWorld {
        let (rt, actors) = self.services();
        let mut world = ShardedWorld::new(self.topo, self.seed, threads);
        for (h, port, actor) in actors {
            world.spawn_portable(h, port, actor);
        }
        ShardedSnipeWorld { world, rt }
    }
}

/// Install the migration shim: reconstruct the original process from
/// the payload and resume it under the same key.
fn register_migration_shim(
    registry: &ProgramRegistry,
    programs: &ProgramMap,
    proc_cfg: &ProcessConfig,
) {
    let programs = programs.clone();
    let proc_cfg = proc_cfg.clone();
    // Fallible: the payload arrived over the wire, so a corrupt or
    // stale SpawnReq must turn into a SpawnResp error the migration
    // protocol retries — never a panic.
    registry.register_fallible(MIGRATE_PROGRAM, move |sctx: &SpawnCtx| {
        let payload = MigrationPayload::decode(sctx.args.clone())
            .map_err(|e| SnipeError::Codec(format!("bad migration payload: {e}")))?;
        let factory =
            programs.read().expect("programs poisoned").get(&payload.program).cloned().ok_or_else(
                || SnipeError::NameNotFound(format!("migrated program {:?}", payload.program)),
            )?;
        let process = factory(payload.args.clone());
        Ok(Box::new(ProcessActor::resume_from(proc_cfg.clone(), sctx.proc_key, payload, process))
            as Box<dyn PortableActor>)
    });
}

/// The engine-independent half of a running testbed: registry, program
/// map, process configuration and service endpoints.
struct SnipeRuntime {
    registry: ProgramRegistry,
    programs: ProgramMap,
    proc_cfg: ProcessConfig,
    rc_eps: Vec<Endpoint>,
    rm_eps: Vec<Endpoint>,
    file_eps: Vec<Endpoint>,
    next_root_key: u64,
}

impl SnipeRuntime {
    fn register_process(
        &mut self,
        name: String,
        factory: impl Fn(Bytes) -> Box<dyn SnipeProcess> + Send + Sync + 'static,
    ) {
        let factory: Arc<ProcessFactory> = Arc::new(Box::new(factory));
        self.programs.write().expect("programs poisoned").insert(name.clone(), factory.clone());
        let cfg = self.proc_cfg.clone();
        let prog_name = name.clone();
        self.registry.register(name, move |sctx: &SpawnCtx| {
            let process = factory(sctx.args.clone());
            Box::new(ProcessActor::new(
                cfg.clone(),
                sctx.proc_key,
                prog_name.clone(),
                sctx.args.clone(),
                process,
            ))
        });
    }

    /// Construct a root process actor for `spawn_on`, assigning it a
    /// fresh key scoped to its host.
    fn make_root(
        &mut self,
        h: HostId,
        program: &str,
        args: Bytes,
    ) -> SnipeResult<(u64, ProcessActor)> {
        let factory = self
            .programs
            .read()
            .expect("programs poisoned")
            .get(program)
            .cloned()
            .ok_or_else(|| SnipeError::NameNotFound(format!("program {program}")))?;
        let process = factory(args.clone());
        let key = ((h.0 as u64) << 32) | self.next_root_key;
        self.next_root_key += 1;
        let actor =
            ProcessActor::new(self.proc_cfg.clone(), key, program.to_string(), args, process);
        Ok((key, actor))
    }
}

/// A running SNIPE testbed.
pub struct SnipeWorld {
    world: World,
    rt: SnipeRuntime,
}

impl SnipeWorld {
    /// Echo every `api.log` line to stdout. Call **before** registering
    /// programs — each registration captures the configuration.
    pub fn echo_logs(&mut self) {
        self.rt.proc_cfg.echo_logs = true;
    }

    /// Register an application program so daemons (and migration) can
    /// instantiate it.
    pub fn register_process(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn(Bytes) -> Box<dyn SnipeProcess> + Send + Sync + 'static,
    ) {
        self.rt.register_process(name.into(), factory);
    }

    /// Bootstrap a root process directly on a host (outside the daemon,
    /// like a user launching a binary from a shell). Returns the
    /// process key and endpoint.
    pub fn spawn_on(
        &mut self,
        hostname: &str,
        program: &str,
        args: Bytes,
    ) -> SnipeResult<(u64, Endpoint)> {
        let Some(h) = self.world.topology().host_by_name(hostname) else {
            return Err(SnipeError::NameNotFound(format!("host {hostname}")));
        };
        let (key, actor) = self.rt.make_root(h, program, args)?;
        let port = self.world.alloc_port(h);
        let ep = self
            .world
            .spawn_portable(h, port, Box::new(actor))
            .ok_or_else(|| SnipeError::WrongState("port collision".into()))?;
        Ok((key, ep))
    }

    /// RC replica endpoints.
    pub fn rc_endpoints(&self) -> &[Endpoint] {
        &self.rt.rc_eps
    }

    /// Resource manager endpoints.
    pub fn rm_endpoints(&self) -> &[Endpoint] {
        &self.rt.rm_eps
    }

    /// File server endpoints.
    pub fn file_endpoints(&self) -> &[Endpoint] {
        &self.rt.file_eps
    }

    /// The shared process configuration.
    pub fn process_config(&self) -> &ProcessConfig {
        &self.rt.proc_cfg
    }

    /// Mutate the shared process configuration. Like
    /// [`SnipeWorld::echo_logs`], call **before** registering programs:
    /// each registration captures a snapshot of the configuration.
    pub fn process_config_mut(&mut self) -> &mut ProcessConfig {
        &mut self.rt.proc_cfg
    }

    /// The program registry (for registering non-process actors).
    pub fn registry(&self) -> &ProgramRegistry {
        &self.rt.registry
    }

    /// The underlying simulator (fault injection, stats, time).
    pub fn sim(&mut self) -> &mut World {
        &mut self.world
    }

    /// Immutable simulator access.
    pub fn sim_ref(&self) -> &World {
        &self.world
    }

    /// Run for a simulated duration.
    pub fn run_for(&mut self, d: SimDuration) {
        self.world.run_for(d);
    }

    /// Run for whole simulated seconds.
    pub fn run_for_secs(&mut self, s: u64) {
        self.world.run_for(SimDuration::from_secs(s));
    }

    /// Run until the event queue drains (bounded).
    pub fn run_until_idle(&mut self, limit: u64) -> u64 {
        self.world.run_until_idle(limit)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.world.now()
    }

    /// Borrow a root process spawned via [`SnipeWorld::spawn_on`]
    /// (between runs), e.g. to read its log.
    pub fn process_ref(&self, ep: Endpoint) -> Option<&ProcessActor> {
        self.world.portable_ref::<ProcessActor>(ep)
    }
}

/// A running SNIPE testbed on the sharded engine: the same protocol
/// stack as [`SnipeWorld`], hosted region-per-shard on a
/// [`ShardedWorld`]. Results are bit-identical at any thread count.
pub struct ShardedSnipeWorld {
    world: ShardedWorld,
    rt: SnipeRuntime,
}

impl ShardedSnipeWorld {
    /// Echo every `api.log` line to stdout. Call **before** registering
    /// programs — each registration captures the configuration.
    pub fn echo_logs(&mut self) {
        self.rt.proc_cfg.echo_logs = true;
    }

    /// Register an application program so daemons (and migration) can
    /// instantiate it.
    pub fn register_process(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn(Bytes) -> Box<dyn SnipeProcess> + Send + Sync + 'static,
    ) {
        self.rt.register_process(name.into(), factory);
    }

    /// Bootstrap a root process directly on a host. Returns the
    /// process key and endpoint.
    pub fn spawn_on(
        &mut self,
        hostname: &str,
        program: &str,
        args: Bytes,
    ) -> SnipeResult<(u64, Endpoint)> {
        let Some(h) = self.world.topology().host_by_name(hostname) else {
            return Err(SnipeError::NameNotFound(format!("host {hostname}")));
        };
        let (key, actor) = self.rt.make_root(h, program, args)?;
        let port = self.world.alloc_port(h);
        let ep = self
            .world
            .spawn_portable(h, port, Box::new(actor))
            .ok_or_else(|| SnipeError::WrongState("port collision".into()))?;
        Ok((key, ep))
    }

    /// RC replica endpoints.
    pub fn rc_endpoints(&self) -> &[Endpoint] {
        &self.rt.rc_eps
    }

    /// Resource manager endpoints.
    pub fn rm_endpoints(&self) -> &[Endpoint] {
        &self.rt.rm_eps
    }

    /// File server endpoints.
    pub fn file_endpoints(&self) -> &[Endpoint] {
        &self.rt.file_eps
    }

    /// The shared process configuration (mutate **before** registering
    /// programs).
    pub fn process_config(&self) -> &ProcessConfig {
        &self.rt.proc_cfg
    }

    /// Mutate the shared process configuration.
    pub fn process_config_mut(&mut self) -> &mut ProcessConfig {
        &mut self.rt.proc_cfg
    }

    /// The program registry (for registering non-process actors).
    pub fn registry(&self) -> &ProgramRegistry {
        &self.rt.registry
    }

    /// The underlying sharded simulator (faults, digests, loads).
    pub fn sim(&mut self) -> &mut ShardedWorld {
        &mut self.world
    }

    /// Immutable simulator access.
    pub fn sim_ref(&self) -> &ShardedWorld {
        &self.world
    }

    /// Run for a simulated duration.
    pub fn run_for(&mut self, d: SimDuration) {
        self.world.run_for(d);
    }

    /// Run for whole simulated seconds.
    pub fn run_for_secs(&mut self, s: u64) {
        self.world.run_for(SimDuration::from_secs(s));
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.world.now()
    }

    /// Engine digest over all shards (thread-count invariant).
    pub fn digest(&self) -> u64 {
        self.world.digest()
    }

    /// Borrow a root process spawned via
    /// [`ShardedSnipeWorld::spawn_on`] (between runs).
    pub fn process_ref(&self, ep: Endpoint) -> Option<&ProcessActor> {
        self.world.portable_ref::<ProcessActor>(ep)
    }
}
