//! Consoles: SNIPE processes that talk to humans (§3.7).
//!
//! "A SNIPE process can also function as an HTTP server ... A
//! SNIPE-based HTTP server can register a binding between a URN or URL
//! and its current location, allowing a web browser to find it even
//! though it may migrate from one host to another." The [`ConsoleActor`]
//! is that HTTP server; [`BrowserActor`] is the paper's proxy-resolving
//! web browser, locating consoles through RC metadata.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use snipe_netsim::actor::{Event, PortableActor, SimCtx};
use snipe_netsim::portable_actor;
use snipe_netsim::topology::Endpoint;
use snipe_rcds::assertion::Assertion;
use snipe_rcds::client::RcClient;
use snipe_rcds::uri::Uri;
use snipe_util::codec::{Decoder, Encoder, WireDecode, WireEncode};
use snipe_util::error::{SnipeError, SnipeResult};
use snipe_util::time::SimDuration;
use snipe_wire::frame::{open, seal, Proto};

use crate::names::{format_endpoint, parse_endpoint, ATTR_COMM_ADDRESS};

const MAGIC: u8 = 0xA9;
const TIMER_RC: u64 = 1;
const TIMER_FETCH: u64 = 2;

/// Minimal HTTP-shaped request/response pair.
#[derive(Clone, Debug, PartialEq)]
pub enum HttpMsg {
    /// GET a path.
    Get {
        /// Request id echoed in the response.
        req_id: u64,
        /// Path, e.g. `/status`.
        path: String,
    },
    /// Response.
    Resp {
        /// Echoed id.
        req_id: u64,
        /// 200 or 404.
        status: u16,
        /// Body text.
        body: String,
    },
}

impl WireEncode for HttpMsg {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(MAGIC);
        match self {
            HttpMsg::Get { req_id, path } => {
                enc.put_u8(1);
                enc.put_u64(*req_id);
                enc.put_str(path);
            }
            HttpMsg::Resp { req_id, status, body } => {
                enc.put_u8(2);
                enc.put_u64(*req_id);
                enc.put_u16(*status);
                enc.put_str(body);
            }
        }
    }
}

impl WireDecode for HttpMsg {
    fn decode(dec: &mut Decoder) -> SnipeResult<Self> {
        if dec.get_u8()? != MAGIC {
            return Err(SnipeError::Codec("not an HTTP message".into()));
        }
        Ok(match dec.get_u8()? {
            1 => HttpMsg::Get { req_id: dec.get_u64()?, path: dec.get_str()? },
            2 => HttpMsg::Resp {
                req_id: dec.get_u64()?,
                status: dec.get_u16()?,
                body: dec.get_str()?,
            },
            t => return Err(SnipeError::Codec(format!("unknown HTTP tag {t}"))),
        })
    }
}

/// A console: serves registered pages over the simulated HTTP protocol
/// and keeps its URL→location binding fresh in RC metadata.
pub struct ConsoleActor {
    /// The console's URL (e.g. `http://console.snipe/`).
    url: Uri,
    rc_replicas: Vec<Endpoint>,
    rc: Option<RcClient>,
    pages: HashMap<String, Box<dyn Fn() -> String + Send>>,
    /// Requests served (diagnostics).
    pub served: u64,
}

impl ConsoleActor {
    /// A console registered under `url`.
    pub fn new(url: Uri, rc_replicas: Vec<Endpoint>) -> ConsoleActor {
        ConsoleActor { url, rc_replicas, rc: None, pages: HashMap::new(), served: 0 }
    }

    /// Register a page.
    pub fn page(
        mut self,
        path: impl Into<String>,
        render: impl Fn() -> String + Send + 'static,
    ) -> Self {
        self.pages.insert(path.into(), Box::new(render));
        self
    }

    fn flush_rc(&mut self, ctx: &mut dyn SimCtx) {
        let Some(rc) = self.rc.as_mut() else { return };
        for (to, bytes) in rc.drain_sends() {
            ctx.send(to, seal(Proto::Raw, bytes));
        }
        rc.drain_done();
        if let Some(dl) = rc.next_deadline() {
            let delay = dl.saturating_since(ctx.now()) + SimDuration::from_micros(1);
            ctx.set_timer(delay, TIMER_RC);
        }
    }

    fn publish(&mut self, ctx: &mut dyn SimCtx) {
        let me = ctx.me();
        let url = self.url.clone();
        let now = ctx.now();
        if let Some(rc) = self.rc.as_mut() {
            rc.put(now, &url, vec![Assertion::new(ATTR_COMM_ADDRESS, format_endpoint(me))]);
        }
        self.flush_rc(ctx);
    }
}

impl PortableActor for ConsoleActor {
    fn on_event(&mut self, ctx: &mut dyn SimCtx, event: Event) {
        match event {
            Event::Start | Event::HostUp => {
                if self.rc.is_none() {
                    self.rc = Some(RcClient::new(
                        self.rc_replicas.clone(),
                        SimDuration::from_millis(250),
                    ));
                }
                self.publish(ctx);
            }
            Event::Timer { token: TIMER_RC } => {
                let now = ctx.now();
                if let Some(rc) = self.rc.as_mut() {
                    rc.on_timer(now);
                }
                self.flush_rc(ctx);
            }
            Event::Packet { from, payload } => {
                let Ok((Proto::Raw, body)) = open(payload) else {
                    return;
                };
                if let Ok(HttpMsg::Get { req_id, path }) = HttpMsg::decode_from_bytes(body.clone())
                {
                    self.served += 1;
                    let resp = match self.pages.get(&path) {
                        Some(render) => HttpMsg::Resp { req_id, status: 200, body: render() },
                        None => HttpMsg::Resp { req_id, status: 404, body: "not found".into() },
                    };
                    ctx.send(from, seal(Proto::Raw, resp.encode_to_bytes()));
                } else if let Some(rc) = self.rc.as_mut() {
                    rc.on_packet(ctx.now(), from, body);
                    self.flush_rc(ctx);
                }
            }
            _ => {}
        }
    }
}

/// A scripted "web browser": resolves console URLs via RC metadata (the
/// §3.7 proxy behaviour) and fetches paths, logging responses.
pub struct BrowserActor {
    rc_replicas: Vec<Endpoint>,
    rc: Option<RcClient>,
    /// (delay, url, path) fetches to perform in order.
    script: Vec<(SimDuration, Uri, String)>,
    /// Pending RC lookups: rc req id → (req_id for HTTP, path).
    pending_resolve: HashMap<u64, (u64, String)>,
    next_req: u64,
    /// Responses received: (status, body).
    pub responses: Arc<Mutex<Vec<(u16, String)>>>,
}

impl BrowserActor {
    /// A browser with a fetch script.
    pub fn new(
        rc_replicas: Vec<Endpoint>,
        script: Vec<(SimDuration, Uri, String)>,
        responses: Arc<Mutex<Vec<(u16, String)>>>,
    ) -> BrowserActor {
        BrowserActor {
            rc_replicas,
            rc: None,
            script,
            pending_resolve: HashMap::new(),
            next_req: 1,
            responses,
        }
    }

    fn flush_rc(&mut self, ctx: &mut dyn SimCtx) {
        let mut resolved = Vec::new();
        if let Some(rc) = self.rc.as_mut() {
            for (to, bytes) in rc.drain_sends() {
                ctx.send(to, seal(Proto::Raw, bytes));
            }
            for (id, result) in rc.drain_done() {
                if let Some((req_id, path)) = self.pending_resolve.remove(&id) {
                    let ep = result.ok().and_then(|r| {
                        r.assertions
                            .iter()
                            .find(|a| a.name == ATTR_COMM_ADDRESS)
                            .and_then(|a| parse_endpoint(&a.value))
                    });
                    resolved.push((req_id, path, ep));
                }
            }
            if let Some(dl) = rc.next_deadline() {
                let delay = dl.saturating_since(ctx.now()) + SimDuration::from_micros(1);
                ctx.set_timer(delay, TIMER_RC);
            }
        }
        for (req_id, path, ep) in resolved {
            match ep {
                Some(ep) => {
                    let msg = HttpMsg::Get { req_id, path };
                    ctx.send(ep, seal(Proto::Raw, msg.encode_to_bytes()));
                }
                None => self
                    .responses
                    .lock()
                    .expect("responses poisoned")
                    .push((0, format!("resolve failed: {path}"))),
            }
        }
    }
}

impl PortableActor for BrowserActor {
    fn on_event(&mut self, ctx: &mut dyn SimCtx, event: Event) {
        match event {
            Event::Start => {
                self.rc =
                    Some(RcClient::new(self.rc_replicas.clone(), SimDuration::from_millis(250)));
                if !self.script.is_empty() {
                    ctx.set_timer(self.script[0].0, TIMER_FETCH);
                }
            }
            Event::Timer { token: TIMER_FETCH } => {
                let (_, url, path) = self.script.remove(0);
                let req_id = self.next_req;
                self.next_req += 1;
                let now = ctx.now();
                if let Some(rc) = self.rc.as_mut() {
                    let id = rc.get(now, &url);
                    self.pending_resolve.insert(id, (req_id, path));
                }
                if !self.script.is_empty() {
                    ctx.set_timer(self.script[0].0, TIMER_FETCH);
                }
                self.flush_rc(ctx);
            }
            Event::Timer { token: TIMER_RC } => {
                let now = ctx.now();
                if let Some(rc) = self.rc.as_mut() {
                    rc.on_timer(now);
                }
                self.flush_rc(ctx);
            }
            Event::Timer { .. } => {}
            Event::Packet { from, payload } => {
                let Ok((Proto::Raw, body)) = open(payload) else {
                    return;
                };
                if let Ok(HttpMsg::Resp { status, body, .. }) =
                    HttpMsg::decode_from_bytes(body.clone())
                {
                    self.responses.lock().expect("responses poisoned").push((status, body));
                } else if let Some(rc) = self.rc.as_mut() {
                    rc.on_packet(ctx.now(), from, body);
                    self.flush_rc(ctx);
                }
            }
            _ => {}
        }
    }
}

portable_actor!(ConsoleActor);
portable_actor!(BrowserActor);
