//! The SNIPE process programming interface.
//!
//! [`SnipeProcess`] is what an application implements; [`SnipeApi`] is
//! the client library handed to every callback (§3.4: "resource
//! location, communications, authentication, task management, and
//! access to external data stores").

use bytes::Bytes;

use snipe_netsim::topology::Endpoint;
use snipe_util::error::SnipeResult;
use snipe_util::id::NetId;
use snipe_util::time::{SimDuration, SimTime};

use snipe_daemon::proto::TaskState;

/// A resolved reference to another SNIPE process.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ProcRef {
    /// The process's globally unique key (its URN is
    /// `urn:snipe:proc:<key>`).
    pub key: u64,
    /// Its location at resolution time (may change on migration; the
    /// key stays valid).
    pub endpoint: Endpoint,
}

/// Where a spawn request should be directed.
#[derive(Clone, Debug)]
pub enum SpawnTarget {
    /// A specific host by name ("the request is sent to the host
    /// daemon", §5.5).
    Host(String),
    /// Let a resource manager choose (§3.5 active mode).
    ResourceManager,
}

/// A group-related notification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GroupEvent {
    /// Join completed; the group is usable.
    Joined,
    /// Join failed (no routers could be arranged).
    JoinFailed,
}

/// Completion payloads delivered to [`SnipeProcess::on_ticket`].
#[derive(Debug)]
pub enum TicketResult {
    /// `lookup` finished.
    Lookup(SnipeResult<ProcRef>),
    /// `spawn` finished.
    Spawned(SnipeResult<ProcRef>),
    /// `read_file` finished.
    FileRead(SnipeResult<Bytes>),
    /// `write_file` finished.
    FileWritten(SnipeResult<()>),
    /// `lookup_service` finished: the service's registered locations.
    Service(SnipeResult<Vec<ProcRef>>),
}

/// The trait a SNIPE application implements. Every callback receives
/// the client-library handle; all methods except [`Self::on_start`]
/// have do-nothing defaults so simple processes stay small.
pub trait SnipeProcess: Send {
    /// The process was started on its host.
    fn on_start(&mut self, api: &mut SnipeApi<'_, '_>);

    /// A point-to-point message arrived (reliable, FIFO per sender).
    fn on_message(&mut self, api: &mut SnipeApi<'_, '_>, from: ProcRef, msg: Bytes) {
        let _ = (api, from, msg);
    }

    /// A multicast group message arrived (exactly once per origin/seq).
    fn on_group_message(
        &mut self,
        api: &mut SnipeApi<'_, '_>,
        group: &str,
        origin: u64,
        msg: Bytes,
    ) {
        let _ = (api, group, origin, msg);
    }

    /// Group membership changed state.
    fn on_group_event(&mut self, api: &mut SnipeApi<'_, '_>, group: &str, event: GroupEvent) {
        let _ = (api, group, event);
    }

    /// An async operation completed.
    fn on_ticket(&mut self, api: &mut SnipeApi<'_, '_>, ticket: u64, result: TicketResult) {
        let _ = (api, ticket, result);
    }

    /// A watched process changed state (notify list, §5.2.3).
    fn on_task_event(&mut self, api: &mut SnipeApi<'_, '_>, proc_key: u64, state: TaskState) {
        let _ = (api, proc_key, state);
    }

    /// An application timer fired.
    fn on_timer(&mut self, api: &mut SnipeApi<'_, '_>, token: u64) {
        let _ = (api, token);
    }

    /// A signal was delivered (§3.3).
    fn on_signal(&mut self, api: &mut SnipeApi<'_, '_>, signum: u32) {
        let _ = (api, signum);
    }

    /// Serialize application state for migration / checkpointing
    /// (§5.6). The default carries no state.
    fn checkpoint(&mut self) -> Bytes {
        Bytes::new()
    }

    /// Restore application state after migration / restart.
    fn restore(&mut self, state: Bytes) {
        let _ = state;
    }

    /// Called instead of [`Self::on_start`] when the process resumes on
    /// a new host after migration.
    fn on_migrated(&mut self, api: &mut SnipeApi<'_, '_>) {
        let _ = api;
    }
}

/// Commands collected from the process during a callback; executed by
/// the owning `ProcessActor` afterwards.
#[derive(Debug)]
pub(crate) enum Command {
    SendProc { to_key: u64, payload: Bytes },
    PinRoutes { to_key: u64, routes: Vec<NetId> },
    Lookup { ticket: u64, proc_key: u64 },
    Spawn { ticket: u64, target: SpawnTarget, program: String, args: Bytes },
    JoinGroup { name: String },
    LeaveGroup { name: String },
    SendGroup { name: String, payload: Bytes },
    WriteFile { ticket: u64, lifn: String, content: Bytes },
    ReadFile { ticket: u64, lifn: String },
    RegisterService { name: String },
    RegisterPseudo { name: String, group: String },
    SendPseudo { name: String, payload: Bytes },
    LookupService { ticket: u64, name: String },
    WatchProcess { proc_key: u64 },
    SetTimer { delay: SimDuration, token: u64 },
    MigrateTo { hostname: String },
    Exit,
    Log(String),
}

/// The client library handle: every capability of §3.4 as a method.
///
/// Operations that need the network return a **ticket**; the result
/// arrives later through [`SnipeProcess::on_ticket`].
pub struct SnipeApi<'a, 'b> {
    pub(crate) now: SimTime,
    pub(crate) my_key: u64,
    pub(crate) my_endpoint: Endpoint,
    pub(crate) my_hostname: &'a str,
    pub(crate) commands: &'a mut Vec<Command>,
    pub(crate) next_ticket: &'a mut u64,
    pub(crate) log: &'b mut Vec<(SimTime, String)>,
}

impl SnipeApi<'_, '_> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This process's globally unique key.
    pub fn my_key(&self) -> u64 {
        self.my_key
    }

    /// This process's URN.
    pub fn my_urn(&self) -> String {
        format!("urn:snipe:proc:{}", self.my_key)
    }

    /// This process's current endpoint.
    pub fn my_endpoint(&self) -> Endpoint {
        self.my_endpoint
    }

    /// The name of the host we are running on.
    pub fn my_hostname(&self) -> &str {
        self.my_hostname
    }

    fn ticket(&mut self) -> u64 {
        let t = *self.next_ticket;
        *self.next_ticket += 1;
        t
    }

    /// Send a reliable FIFO message to another process by key. The
    /// location is resolved (and re-resolved after migrations) from RC
    /// metadata automatically; messages queue meanwhile.
    pub fn send(&mut self, to: u64, payload: impl Into<Bytes>) {
        self.commands.push(Command::SendProc { to_key: to, payload: payload.into() });
    }

    /// Pin the ranked candidate networks used to reach `to` (multi-path
    /// routing, §5.3/§6). Unpinned peers use default routing.
    pub fn pin_routes(&mut self, to: u64, routes: Vec<NetId>) {
        self.commands.push(Command::PinRoutes { to_key: to, routes });
    }

    /// Resolve a process's current location. Returns a ticket.
    pub fn lookup(&mut self, proc_key: u64) -> u64 {
        let t = self.ticket();
        self.commands.push(Command::Lookup { ticket: t, proc_key });
        t
    }

    /// Start a program (§5.5). Returns a ticket resolving to the new
    /// process's [`ProcRef`].
    pub fn spawn(
        &mut self,
        target: SpawnTarget,
        program: impl Into<String>,
        args: impl Into<Bytes>,
    ) -> u64 {
        let t = self.ticket();
        self.commands.push(Command::Spawn {
            ticket: t,
            target,
            program: program.into(),
            args: args.into(),
        });
        t
    }

    /// Join a multicast group (§5.4), electing routers as needed.
    pub fn join_group(&mut self, name: impl Into<String>) {
        self.commands.push(Command::JoinGroup { name: name.into() });
    }

    /// Leave a multicast group.
    pub fn leave_group(&mut self, name: impl Into<String>) {
        self.commands.push(Command::LeaveGroup { name: name.into() });
    }

    /// Send to every member of a group (joins implicitly if needed).
    pub fn send_group(&mut self, name: impl Into<String>, payload: impl Into<Bytes>) {
        self.commands.push(Command::SendGroup { name: name.into(), payload: payload.into() });
    }

    /// Store a file on the SNIPE file servers (§5.9). Ticketed.
    pub fn write_file(&mut self, lifn: impl Into<String>, content: impl Into<Bytes>) -> u64 {
        let t = self.ticket();
        self.commands.push(Command::WriteFile {
            ticket: t,
            lifn: lifn.into(),
            content: content.into(),
        });
        t
    }

    /// Read a file back (closest replica first). Ticketed.
    pub fn read_file(&mut self, lifn: impl Into<String>) -> u64 {
        let t = self.ticket();
        self.commands.push(Command::ReadFile { ticket: t, lifn: lifn.into() });
        t
    }

    /// Register this process as one location of a multi-location
    /// service LIFN (§5.7).
    pub fn register_service(&mut self, name: impl Into<String>) {
        self.commands.push(Command::RegisterService { name: name.into() });
    }

    /// Create a multicast **pseudo-process** (§5.7): a globally named
    /// entity whose communications address is a multicast group, so
    /// every replica joined to `group` receives everything sent to it.
    pub fn register_pseudo_process(&mut self, name: impl Into<String>, group: impl Into<String>) {
        self.commands.push(Command::RegisterPseudo { name: name.into(), group: group.into() });
    }

    /// Send to a pseudo-process by name: the metadata lookup discovers
    /// the group and the message fans out to all replicas.
    pub fn send_pseudo(&mut self, name: impl Into<String>, payload: impl Into<Bytes>) {
        self.commands.push(Command::SendPseudo { name: name.into(), payload: payload.into() });
    }

    /// Resolve all registered locations of a service LIFN. Ticketed.
    pub fn lookup_service(&mut self, name: impl Into<String>) -> u64 {
        let t = self.ticket();
        self.commands.push(Command::LookupService { ticket: t, name: name.into() });
        t
    }

    /// Subscribe to state changes of another process (notify list).
    pub fn watch(&mut self, proc_key: u64) {
        self.commands.push(Command::WatchProcess { proc_key });
    }

    /// Arm an application timer.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.commands.push(Command::SetTimer { delay, token });
    }

    /// Initiate migration of this process to another host (§5.6). The
    /// process is checkpointed, restarted there under the same key, and
    /// [`SnipeProcess::on_migrated`] runs on arrival. In-flight
    /// messages are preserved.
    pub fn migrate_to(&mut self, hostname: impl Into<String>) {
        self.commands.push(Command::MigrateTo { hostname: hostname.into() });
    }

    /// Terminate this process (reported to the daemon and notify list).
    pub fn exit(&mut self) {
        self.commands.push(Command::Exit);
    }

    /// Append a line to this process's log (visible to tests/benches).
    pub fn log(&mut self, line: impl Into<String>) {
        let line = line.into();
        self.log.push((self.now, line.clone()));
        self.commands.push(Command::Log(line));
    }
}
