//! The process actor: the runtime half of the SNIPE client library.
//!
//! Wraps a user's [`SnipeProcess`] with everything §3.4 promises:
//! reliable multi-path messaging (SRUDP with location re-resolution
//! after migration), RC metadata access, task management through
//! daemons and resource managers, multicast groups with router
//! election, replicated file access, notify lists, and self-initiated
//! migration (§5.6).

use std::collections::HashMap;

use bytes::Bytes;

use snipe_netsim::actor::{Event, PortableActor, SimCtx, TimerGate};
use snipe_netsim::portable_actor;
use snipe_netsim::topology::Endpoint;
use snipe_netsim::trace::{self, MigrationPhase, TraceKind};
use snipe_rcds::assertion::Assertion;
use snipe_rcds::client::RcClient;
use snipe_rcds::uri::Uri;
use snipe_util::codec::{Decoder, Encoder, WireDecode, WireEncode};
use snipe_util::error::{SnipeError, SnipeResult};
use snipe_util::time::{SimDuration, SimTime};
use snipe_wire::frame::{seal, Proto};
use snipe_wire::mcast::{majority, McastMsg};
use snipe_wire::ports;
use snipe_wire::stack::{Incoming, StackConfig, WireStack};
use snipe_wire::Out;

use snipe_daemon::proto::{DaemonMsg, SpawnSpec, TaskState};
use snipe_files::proto::FileMsg;
use snipe_rm::proto::{AllocMode, RmMsg};

use crate::api::{Command, GroupEvent, ProcRef, SnipeApi, SnipeProcess, SpawnTarget, TicketResult};
use crate::names::{
    format_endpoint, group_id, parse_endpoint, parse_routers, ATTR_COMM_ADDRESS,
    ATTR_LOCATION_PREFIX, ATTR_STATE,
};

const TIMER_RC: u64 = 1;
const TIMER_STACK: u64 = 2;
const TIMER_GROUP: u64 = 3;
const TIMER_MIGRATE_GRACE: u64 = 4;
const TIMER_RESOLVE_RETRY: u64 = 5;
const TIMER_FILE: u64 = 6;
/// Per-attempt deadline for file server operations.
const FILE_OP_TIMEOUT: SimDuration = SimDuration::from_millis(800);
/// App timers: `(token << 4) | APP_TIMER_BIT`.
const APP_TIMER_BIT: u64 = 0x8;

/// Group refresh period (router liveness / re-registration).
const GROUP_REFRESH: SimDuration = SimDuration::from_secs(2);
/// First refresh comes quickly to heal join-time races (simultaneous
/// router elections that could not see each other yet).
const GROUP_REFRESH_FIRST: SimDuration = SimDuration::from_millis(300);
/// How long a migrated-away process keeps redirecting (§5.6 "act as a
/// relay or redirect for a short period").
const REDIRECT_GRACE: SimDuration = SimDuration::from_secs(1);
/// Consecutive SRUDP timeouts before we suspect the peer migrated and
/// re-resolve its location from RC.
const RELOOKUP_TIMEOUTS: u32 = 4;

/// Magic for core inter-process payloads.
const CORE_MAGIC: u8 = 0xA7;
const CORE_APP: u8 = 1;
/// Magic for the raw redirect notice.
const REDIRECT_MAGIC: u8 = 0xA8;
/// Magic for the raw migrate-request control message (§3.5: an active
/// resource manager "may ... migrate processes between hosts").
pub(crate) const MIGRATE_MAGIC: u8 = 0xAA;

/// Static configuration shared by every process of a world.
#[derive(Clone, Default)]
pub struct ProcessConfig {
    /// RC replica endpoints.
    pub rc_replicas: Vec<Endpoint>,
    /// File server endpoints, nearest first.
    pub file_servers: Vec<Endpoint>,
    /// Resource manager endpoints.
    pub resource_managers: Vec<Endpoint>,
    /// Wire stack tuning.
    pub stack: StackConfig,
    /// Print `api.log` lines to stdout (examples / demos).
    pub echo_logs: bool,
    /// **Fault-injection knob, tests only.** Disables the packet-side
    /// freeze during migration cutover, the guard that parks incoming
    /// DATA until the new incarnation owns the stack. With it off, the
    /// old stack keeps acking deliveries it will never hand to anyone —
    /// the exact message-loss bug the chaos oracles must catch.
    pub chaos_disable_migration_freeze: bool,
}

/// What an RC completion was for.
enum RcPending {
    ResolvePeer { peer_key: u64, ticket: Option<u64> },
    PseudoLookup { name: String, payload: Bytes },
    GroupRouters { name: String, refresh: bool },
    ServiceLookup { ticket: u64, name: String },
    WatchLookup { peer_key: u64 },
    Publish,
}

struct GroupState {
    gid: u64,
    routers: Vec<Endpoint>,
    joined: bool,
    pending_out: Vec<Bytes>,
}

enum SpawnPending {
    App { ticket: u64 },
    Migration,
}

struct FilePending {
    ticket: u64,
    lifn: String,
    write: bool,
    content: Bytes,
    /// Remaining servers to try (failover for reads *and* writes).
    remaining: Vec<Endpoint>,
    deadline: SimTime,
}

/// Serialized state shipped to the new host during migration.
pub(crate) struct MigrationPayload {
    pub program: String,
    pub args: Bytes,
    pub user_state: Bytes,
    pub stack_state: Bytes,
    pub groups: Vec<String>,
}

impl MigrationPayload {
    pub(crate) fn encode(&self) -> Bytes {
        let mut e = Encoder::new();
        e.put_str(&self.program);
        e.put_bytes(&self.args);
        e.put_bytes(&self.user_state);
        e.put_bytes(&self.stack_state);
        snipe_util::codec::encode_seq(&mut e, self.groups.iter());
        e.finish()
    }

    pub(crate) fn decode(b: Bytes) -> SnipeResult<MigrationPayload> {
        let mut d = Decoder::new(b);
        let p = MigrationPayload {
            program: d.get_str()?,
            args: d.get_bytes()?,
            user_state: d.get_bytes()?,
            stack_state: d.get_bytes()?,
            groups: snipe_util::codec::decode_seq(&mut d)?,
        };
        d.expect_end()?;
        Ok(p)
    }
}

/// The actor hosting one [`SnipeProcess`].
pub struct ProcessActor {
    cfg: ProcessConfig,
    proc_key: u64,
    /// Program name (needed to recreate the process after migration).
    program: String,
    /// Original constructor args.
    args: Bytes,
    process: Box<dyn SnipeProcess>,
    /// Restore data when resuming from migration.
    resume: Option<MigrationPayload>,

    stack: Option<WireStack>,
    rc: RcClient,
    rc_pending: HashMap<u64, RcPending>,
    /// Peers with an in-flight location resolution.
    resolving: HashMap<u64, u32>,
    groups: HashMap<String, GroupState>,
    spawn_pending: HashMap<u64, SpawnPending>,
    file_pending: HashMap<u64, FilePending>,
    next_req: u64,
    hostname: String,

    stack_gate: TimerGate,
    rc_gate: TimerGate,
    /// Reused scratch for the peers-in-trouble scan (no steady-state
    /// allocation on the stack timer path).
    trouble_scratch: Vec<u64>,
    commands: Vec<Command>,
    next_ticket: u64,
    /// Process log, readable by tests and benches.
    pub log: Vec<(SimTime, String)>,
    migrating: bool,
    redirect_to: Option<Endpoint>,
    exited: bool,
    group_timer_armed: bool,
    group_refreshes: u32,
}

impl ProcessActor {
    /// Host a fresh process.
    pub fn new(
        cfg: ProcessConfig,
        proc_key: u64,
        program: impl Into<String>,
        args: Bytes,
        process: Box<dyn SnipeProcess>,
    ) -> ProcessActor {
        let rc = RcClient::new(cfg.rc_replicas.clone(), SimDuration::from_millis(250));
        ProcessActor {
            cfg,
            proc_key,
            program: program.into(),
            args,
            process,
            resume: None,
            stack: None,
            rc,
            rc_pending: HashMap::new(),
            resolving: HashMap::new(),
            groups: HashMap::new(),
            spawn_pending: HashMap::new(),
            file_pending: HashMap::new(),
            next_req: 1,
            hostname: String::new(),
            stack_gate: TimerGate::new(),
            rc_gate: TimerGate::new(),
            trouble_scratch: Vec::new(),
            commands: Vec::new(),
            next_ticket: 1,
            log: Vec::new(),
            migrating: false,
            redirect_to: None,
            exited: false,
            group_timer_armed: false,
            group_refreshes: 0,
        }
    }

    /// Host a process resuming from a migration payload.
    pub(crate) fn resume_from(
        cfg: ProcessConfig,
        proc_key: u64,
        payload: MigrationPayload,
        process: Box<dyn SnipeProcess>,
    ) -> ProcessActor {
        let mut a = ProcessActor::new(
            cfg,
            proc_key,
            payload.program.clone(),
            payload.args.clone(),
            process,
        );
        a.resume = Some(payload);
        a
    }

    fn req_id(&mut self) -> u64 {
        let r = self.next_req;
        self.next_req += 1;
        r
    }

    // ---- callback plumbing -------------------------------------------------

    fn with_process(
        &mut self,
        ctx: &mut dyn SimCtx,
        f: impl FnOnce(&mut dyn SnipeProcess, &mut SnipeApi<'_, '_>),
    ) {
        if self.exited {
            return;
        }
        let now = ctx.now();
        let me = ctx.me();
        let Self { process, commands, next_ticket, log, hostname, proc_key, .. } = self;
        let mut api = SnipeApi {
            now,
            my_key: *proc_key,
            my_endpoint: me,
            my_hostname: hostname,
            commands,
            next_ticket,
            log,
        };
        f(process.as_mut(), &mut api);
    }

    fn complete_ticket(&mut self, ctx: &mut dyn SimCtx, ticket: u64, result: TicketResult) {
        self.with_process(ctx, |p, api| p.on_ticket(api, ticket, result));
    }

    // ---- wire stack --------------------------------------------------------

    /// The stack configuration for this process: the user's tuning plus
    /// the member-side multicast driver every SNIPE process runs (group
    /// dedup state then rides the stack's migration snapshot).
    fn stack_config(&self) -> StackConfig {
        let mut c = self.cfg.stack.clone();
        c.mcast_member = true;
        c
    }

    fn flush_stack(&mut self, ctx: &mut dyn SimCtx) {
        let Some(stack) = self.stack.as_mut() else {
            return;
        };
        let outs = stack.drain();
        let mut delivered = Vec::new();
        for o in outs {
            match o {
                Out::Send { to, via, bytes, .. } => match via {
                    Some(n) => ctx.send_via(to, bytes, n),
                    None => ctx.send(to, bytes),
                },
                Out::Deliver { proto, from_key, from_ep, msg } => {
                    delivered.push((proto, from_key, from_ep, msg))
                }
                Out::Wake { .. } => {}
            }
        }
        if let Some(dl) = self.stack.as_ref().and_then(|s| s.next_deadline()) {
            self.stack_gate.arm_at(ctx, dl + SimDuration::from_micros(1), TIMER_STACK);
        }
        for (proto, from_key, from_ep, msg) in delivered {
            match proto {
                Proto::Srudp => self.on_reliable(ctx, from_key, from_ep, msg),
                Proto::Mcast => self.on_group_deliver(ctx, msg),
                _ => {}
            }
        }
    }

    fn on_reliable(&mut self, ctx: &mut dyn SimCtx, from_key: u64, from_ep: Endpoint, msg: Bytes) {
        // Infrastructure peers (bit 63 set) speak their own protocols.
        if from_key & (1 << 63) != 0 {
            if let Ok(fmsg) = FileMsg::decode_from_bytes(msg) {
                self.on_file_msg(ctx, fmsg);
            }
            return;
        }
        let mut d = Decoder::new(msg);
        let Ok(magic) = d.get_u8() else { return };
        if magic != CORE_MAGIC {
            return;
        }
        let Ok(kind) = d.get_u8() else { return };
        if kind == CORE_APP {
            let Ok(payload) = d.get_bytes() else { return };
            let from = ProcRef { key: from_key, endpoint: from_ep };
            self.with_process(ctx, |p, api| p.on_message(api, from, payload));
            self.run_commands(ctx);
        }
    }

    fn wrap_app(payload: &Bytes) -> Bytes {
        let mut e = Encoder::with_capacity(payload.len() + 8);
        e.put_u8(CORE_MAGIC);
        e.put_u8(CORE_APP);
        e.put_bytes(payload);
        e.finish()
    }

    // ---- RC ----------------------------------------------------------------

    fn flush_rc(&mut self, ctx: &mut dyn SimCtx) {
        for (to, bytes) in self.rc.drain_sends() {
            ctx.send(to, seal(Proto::Raw, bytes));
        }
        if let Some(dl) = self.rc.next_deadline() {
            self.rc_gate.arm_at(ctx, dl + SimDuration::from_micros(1), TIMER_RC);
        }
        let done = self.rc.drain_done();
        for (id, result) in done {
            self.on_rc_done(ctx, id, result);
        }
    }

    fn on_rc_done(
        &mut self,
        ctx: &mut dyn SimCtx,
        id: u64,
        result: SnipeResult<snipe_rcds::client::RcReply>,
    ) {
        let Some(pending) = self.rc_pending.remove(&id) else {
            return;
        };
        match pending {
            RcPending::Publish => {}
            RcPending::ResolvePeer { peer_key, ticket } => {
                let resolved = result.as_ref().ok().and_then(|r| {
                    r.assertions
                        .iter()
                        .find(|a| a.name == ATTR_COMM_ADDRESS)
                        .and_then(|a| parse_endpoint(&a.value))
                });
                match resolved {
                    Some(ep) => {
                        self.resolving.remove(&peer_key);
                        let now = ctx.now();
                        if let Some(stack) = self.stack.as_mut() {
                            stack.set_peer_at(now, peer_key, ep, vec![]);
                        }
                        self.flush_stack(ctx);
                        if let Some(t) = ticket {
                            self.complete_ticket(
                                ctx,
                                t,
                                TicketResult::Lookup(Ok(ProcRef { key: peer_key, endpoint: ep })),
                            );
                            self.run_commands(ctx);
                        }
                    }
                    None => {
                        if let Some(t) = ticket {
                            self.resolving.remove(&peer_key);
                            self.complete_ticket(
                                ctx,
                                t,
                                TicketResult::Lookup(Err(SnipeError::NameNotFound(format!(
                                    "urn:snipe:proc:{peer_key}"
                                )))),
                            );
                            self.run_commands(ctx);
                        } else {
                            // Implicit resolution for a queued send:
                            // retry with backoff — the target may still
                            // be starting up or mid-migration.
                            let attempts = self.resolving.entry(peer_key).or_insert(0);
                            *attempts += 1;
                            if *attempts <= 10 {
                                let backoff = SimDuration::from_millis(50) * (*attempts as u64);
                                ctx.set_timer(backoff, TIMER_RESOLVE_RETRY);
                            } else {
                                self.resolving.remove(&peer_key);
                            }
                        }
                    }
                }
            }
            RcPending::PseudoLookup { name, payload } => {
                let group = result.ok().and_then(|r| {
                    crate::service::pseudo_process_group(&r.assertions).map(str::to_string)
                });
                match group {
                    Some(g) => {
                        // Fan out through the group: join implicitly
                        // (sender semantics identical to send_group).
                        self.commands.push(Command::SendGroup { name: g, payload });
                        self.run_commands(ctx);
                    }
                    None => {
                        self.log.push((
                            ctx.now(),
                            format!("pseudo-process {name} has no comm-group metadata"),
                        ));
                    }
                }
            }
            RcPending::GroupRouters { name, refresh } => {
                let routers = result.map(|r| parse_routers(&r.assertions)).unwrap_or_default();
                self.on_group_routers(ctx, &name, routers, refresh);
            }
            RcPending::ServiceLookup { ticket, name } => {
                let refs = result.map(|r| {
                    let mut v: Vec<ProcRef> = r
                        .assertions
                        .iter()
                        .filter(|a| a.name.starts_with(ATTR_LOCATION_PREFIX))
                        .filter_map(|a| {
                            let key: u64 = a.name[ATTR_LOCATION_PREFIX.len()..].parse().ok()?;
                            let ep = parse_endpoint(&a.value)?;
                            Some(ProcRef { key, endpoint: ep })
                        })
                        .collect();
                    v.sort_by_key(|r| r.key);
                    v
                });
                let _ = name;
                self.complete_ticket(ctx, ticket, TicketResult::Service(refs));
                self.run_commands(ctx);
            }
            RcPending::WatchLookup { peer_key } => {
                // Find the peer's location, then ask its host daemon to
                // add us to the notify list.
                if let Ok(r) = result {
                    if let Some(ep) = r
                        .assertions
                        .iter()
                        .find(|a| a.name == ATTR_COMM_ADDRESS)
                        .and_then(|a| parse_endpoint(&a.value))
                    {
                        let me = ctx.me();
                        let daemon = Endpoint::new(ep.host, ports::DAEMON);
                        let msg = DaemonMsg::Watch { port: ep.port, watcher: me };
                        ctx.send(daemon, seal(Proto::Raw, msg.encode_to_bytes()));
                    }
                }
                let _ = peer_key;
            }
        }
    }

    fn publish_location(&mut self, ctx: &mut dyn SimCtx) {
        let me = ctx.me();
        let uri = Uri::process(self.proc_key);
        let now = ctx.now();
        let id = self.rc.put(
            now,
            &uri,
            vec![
                Assertion::new(ATTR_COMM_ADDRESS, format_endpoint(me)),
                Assertion::new(ATTR_STATE, "running"),
                Assertion::new("host", self.hostname.clone()),
            ],
        );
        self.rc_pending.insert(id, RcPending::Publish);
        self.flush_rc(ctx);
    }

    // ---- groups ------------------------------------------------------------

    fn start_join(&mut self, ctx: &mut dyn SimCtx, name: &str, refresh: bool) {
        let uri = Uri::mcast_group_wire(group_id(name));
        let now = ctx.now();
        let id = self.rc.get(now, &uri);
        self.rc_pending.insert(id, RcPending::GroupRouters { name: name.to_string(), refresh });
        self.flush_rc(ctx);
    }

    fn on_group_routers(
        &mut self,
        ctx: &mut dyn SimCtx,
        name: &str,
        routers: Vec<Endpoint>,
        refresh: bool,
    ) {
        let Some(g) = self.groups.get_mut(name) else {
            return;
        };
        if !routers.is_empty() {
            g.routers = routers.clone();
            let was_joined = g.joined;
            g.joined = true;
            let gid = g.gid;
            let me = ctx.me();
            // Register membership with a majority of routers (§5.4) and
            // keep the router mesh fully peered.
            let m = majority(routers.len());
            let join_targets: Vec<Endpoint> = routers.iter().copied().take(m).collect();
            for r in &join_targets {
                let msg = McastMsg::Join { group: gid, member: me };
                ctx.send(*r, seal(Proto::Mcast, msg.encode()));
            }
            for a in &routers {
                for b in &routers {
                    if a != b {
                        let msg = McastMsg::Peer { group: gid, router: *b };
                        ctx.send(*a, seal(Proto::Mcast, msg.encode()));
                    }
                }
            }
            let pend = std::mem::take(&mut self.groups.get_mut(name).expect("present").pending_out);
            for payload in pend {
                self.do_send_group(ctx, name, payload);
            }
            if !was_joined && !refresh {
                let n = name.to_string();
                self.with_process(ctx, |p, api| p.on_group_event(api, &n, GroupEvent::Joined));
                self.run_commands(ctx);
            }
            self.arm_group_timer(ctx);
        } else {
            // No routers yet: ask the local daemon to elect itself.
            let daemon = Endpoint::new(ctx.host(), ports::DAEMON);
            let msg = DaemonMsg::ElectRouter { group: g.gid };
            ctx.send(daemon, seal(Proto::Raw, msg.encode_to_bytes()));
        }
    }

    fn on_elect_resp(&mut self, ctx: &mut dyn SimCtx, gid: u64, router: Endpoint) {
        let Some(name) = self.groups.iter().find(|(_, g)| g.gid == gid).map(|(n, _)| n.clone())
        else {
            return;
        };
        self.on_group_routers(ctx, &name, vec![router], false);
    }

    fn do_send_group(&mut self, ctx: &mut dyn SimCtx, name: &str, payload: Bytes) {
        let Some(g) = self.groups.get_mut(name) else {
            return;
        };
        if !g.joined {
            g.pending_out.push(payload);
            return;
        }
        let gid = g.gid;
        let key = self.proc_key;
        // Sequence allocation and self-dedup live in the stack's member
        // driver, the same state that suppresses the router echo of
        // this very message.
        let Some(member) = self.stack.as_mut().and_then(|s| s.mcast_member_mut()) else {
            return;
        };
        let seq = member.next_seq(gid);
        // Deliver to ourselves exactly once, too (we are a member).
        if member.accept(gid, key, seq, payload.clone()).is_some() {
            let n = name.to_string();
            let pl = payload.clone();
            self.with_process(ctx, |p, api| p.on_group_message(api, &n, key, pl));
            self.run_commands(ctx);
        }
        let Some(g) = self.groups.get(name) else {
            return;
        };
        let m = majority(g.routers.len());
        for r in g.routers.iter().take(m) {
            let msg = McastMsg::Data {
                group: gid,
                origin: self.proc_key,
                seq,
                ttl: 8,
                payload: payload.clone(),
            };
            ctx.send(*r, seal(Proto::Mcast, msg.encode()));
        }
    }

    fn arm_group_timer(&mut self, ctx: &mut dyn SimCtx) {
        if !self.group_timer_armed && !self.groups.is_empty() {
            self.group_timer_armed = true;
            let delay = if self.group_refreshes == 0 { GROUP_REFRESH_FIRST } else { GROUP_REFRESH };
            ctx.set_timer(delay, TIMER_GROUP);
        }
    }

    /// A group message delivered by the stack's member driver (already
    /// dedup'd across router legs); `body` is the encoded [`McastMsg`].
    fn on_group_deliver(&mut self, ctx: &mut dyn SimCtx, body: Bytes) {
        let Ok(McastMsg::Data { group, origin, payload, .. }) = McastMsg::decode(body) else {
            return;
        };
        let Some(name) = self.groups.iter().find(|(_, g)| g.gid == group).map(|(n, _)| n.clone())
        else {
            return;
        };
        self.with_process(ctx, |proc, api| proc.on_group_message(api, &name, origin, payload));
        self.run_commands(ctx);
    }

    // ---- files -------------------------------------------------------------

    fn on_file_msg(&mut self, ctx: &mut dyn SimCtx, msg: FileMsg) {
        match msg {
            FileMsg::StoreResp { req_id, ok } => {
                if let Some(fp) = self.file_pending.remove(&req_id) {
                    let res = if ok {
                        Ok(())
                    } else {
                        Err(SnipeError::Unavailable("file store rejected".into()))
                    };
                    self.complete_ticket(ctx, fp.ticket, TicketResult::FileWritten(res));
                    self.run_commands(ctx);
                }
            }
            FileMsg::ReadResp { req_id, ok, content, .. } => {
                if let Some(mut fp) = self.file_pending.remove(&req_id) {
                    if ok {
                        self.complete_ticket(ctx, fp.ticket, TicketResult::FileRead(Ok(content)));
                        self.run_commands(ctx);
                    } else if let Some(next) = fp.remaining.first().copied() {
                        // Closest-replica failover: try the next server.
                        fp.remaining.remove(0);
                        fp.deadline = ctx.now() + FILE_OP_TIMEOUT;
                        ctx.set_timer(FILE_OP_TIMEOUT + SimDuration::from_micros(1), TIMER_FILE);
                        let new_req = self.req_id();
                        let m = FileMsg::ReadReq { req_id: new_req, lifn: fp.lifn.clone() };
                        self.file_pending.insert(new_req, fp);
                        self.send_to_infra(ctx, next, m.encode_to_bytes());
                    } else {
                        self.complete_ticket(
                            ctx,
                            fp.ticket,
                            TicketResult::FileRead(Err(SnipeError::NameNotFound(fp.lifn.clone()))),
                        );
                        self.run_commands(ctx);
                    }
                }
            }
            _ => {}
        }
    }

    /// Reliable message to an infrastructure endpoint (file server...).
    fn send_to_infra(&mut self, ctx: &mut dyn SimCtx, to: Endpoint, payload: Bytes) {
        let now = ctx.now();
        if let Some(stack) = self.stack.as_mut() {
            let key = snipe_wire::stack::endpoint_key(to);
            stack.set_peer_at(now, key, to, vec![]);
            stack.send(now, key, payload).expect("configured frag size");
        }
        self.flush_stack(ctx);
    }

    // ---- command execution ---------------------------------------------------

    fn run_commands(&mut self, ctx: &mut dyn SimCtx) {
        // Commands may trigger callbacks that push more commands; loop
        // with a depth bound for safety.
        for _ in 0..64 {
            if self.commands.is_empty() || self.exited {
                return;
            }
            let batch: Vec<Command> = std::mem::take(&mut self.commands);
            for cmd in batch {
                self.exec(ctx, cmd);
                if self.exited {
                    return;
                }
            }
        }
    }

    fn exec(&mut self, ctx: &mut dyn SimCtx, cmd: Command) {
        match cmd {
            Command::Log(line) => {
                if self.cfg.echo_logs {
                    println!("[{}] {} {}: {line}", ctx.now(), self.hostname, ctx.me());
                }
            }
            Command::SetTimer { delay, token } => {
                ctx.set_timer(delay, (token << 4) | APP_TIMER_BIT);
            }
            Command::SendProc { to_key, payload } => {
                let now = ctx.now();
                let wrapped = Self::wrap_app(&payload);
                let known = self.stack.as_ref().is_some_and(|s| s.peer_endpoint(to_key).is_some());
                if let Some(stack) = self.stack.as_mut() {
                    stack.send(now, to_key, wrapped).expect("configured frag size");
                }
                if !known {
                    self.resolve_peer(ctx, to_key, None);
                }
                self.flush_stack(ctx);
            }
            Command::PinRoutes { to_key, routes } => {
                if let Some(stack) = self.stack.as_mut() {
                    if let Some(ep) = stack.peer_endpoint(to_key) {
                        stack.set_peer(to_key, ep, routes);
                    }
                }
            }
            Command::Lookup { ticket, proc_key } => {
                self.resolve_peer(ctx, proc_key, Some(ticket));
            }
            Command::Spawn { ticket, target, program, args } => {
                self.do_spawn(ctx, ticket, target, program, args);
            }
            Command::JoinGroup { name } => {
                if !self.groups.contains_key(&name) {
                    self.groups.insert(
                        name.clone(),
                        GroupState {
                            gid: group_id(&name),
                            routers: Vec::new(),
                            joined: false,
                            pending_out: Vec::new(),
                        },
                    );
                    self.start_join(ctx, &name, false);
                }
            }
            Command::LeaveGroup { name } => {
                if let Some(g) = self.groups.remove(&name) {
                    let me = ctx.me();
                    for r in &g.routers {
                        let msg = McastMsg::Leave { group: g.gid, member: me };
                        ctx.send(*r, seal(Proto::Mcast, msg.encode()));
                    }
                }
            }
            Command::SendGroup { name, payload } => {
                if !self.groups.contains_key(&name) {
                    self.groups.insert(
                        name.clone(),
                        GroupState {
                            gid: group_id(&name),
                            routers: Vec::new(),
                            joined: false,
                            pending_out: vec![payload],
                        },
                    );
                    self.start_join(ctx, &name, false);
                } else {
                    self.do_send_group(ctx, &name, payload);
                }
            }
            Command::WriteFile { ticket, lifn, content } => {
                let mut servers = self.cfg.file_servers.clone();
                if servers.is_empty() {
                    self.complete_ticket(
                        ctx,
                        ticket,
                        TicketResult::FileWritten(Err(SnipeError::Unavailable(
                            "no file servers configured".into(),
                        ))),
                    );
                    return;
                }
                let first = servers.remove(0);
                let req = self.req_id();
                self.file_pending.insert(
                    req,
                    FilePending {
                        ticket,
                        lifn: lifn.clone(),
                        write: true,
                        content: content.clone(),
                        remaining: servers,
                        deadline: ctx.now() + FILE_OP_TIMEOUT,
                    },
                );
                ctx.set_timer(FILE_OP_TIMEOUT + SimDuration::from_micros(1), TIMER_FILE);
                let m = FileMsg::StoreReq { req_id: req, lifn, content };
                self.send_to_infra(ctx, first, m.encode_to_bytes());
            }
            Command::ReadFile { ticket, lifn } => {
                let mut servers = self.cfg.file_servers.clone();
                if servers.is_empty() {
                    self.complete_ticket(
                        ctx,
                        ticket,
                        TicketResult::FileRead(Err(SnipeError::Unavailable(
                            "no file servers configured".into(),
                        ))),
                    );
                    return;
                }
                let first = servers.remove(0);
                let req = self.req_id();
                self.file_pending.insert(
                    req,
                    FilePending {
                        ticket,
                        lifn: lifn.clone(),
                        write: false,
                        content: Bytes::new(),
                        remaining: servers,
                        deadline: ctx.now() + FILE_OP_TIMEOUT,
                    },
                );
                ctx.set_timer(FILE_OP_TIMEOUT + SimDuration::from_micros(1), TIMER_FILE);
                let m = FileMsg::ReadReq { req_id: req, lifn };
                self.send_to_infra(ctx, first, m.encode_to_bytes());
            }
            Command::RegisterPseudo { name, group } => {
                // §5.7: metadata for the pseudo-process, with the group
                // as its communications address.
                let Ok(uri) = Uri::parse(format!("urn:snipe:pseudo:{name}")) else {
                    return;
                };
                let now = ctx.now();
                let id = self.rc.put(now, &uri, crate::service::pseudo_process_assertions(&group));
                self.rc_pending.insert(id, RcPending::Publish);
                // The registrar is usually also a replica coordinator;
                // joining the group is the replicas' job.
                self.flush_rc(ctx);
            }
            Command::SendPseudo { name, payload } => {
                let Ok(uri) = Uri::parse(format!("urn:snipe:pseudo:{name}")) else {
                    return;
                };
                let now = ctx.now();
                let id = self.rc.get(now, &uri);
                self.rc_pending.insert(id, RcPending::PseudoLookup { name, payload });
                self.flush_rc(ctx);
            }
            Command::RegisterService { name } => {
                let uri = Uri::service(&name);
                let me = ctx.me();
                let now = ctx.now();
                let id = self.rc.put(
                    now,
                    &uri,
                    vec![Assertion::new(
                        format!("{ATTR_LOCATION_PREFIX}{}", self.proc_key),
                        format_endpoint(me),
                    )],
                );
                self.rc_pending.insert(id, RcPending::Publish);
                self.flush_rc(ctx);
            }
            Command::LookupService { ticket, name } => {
                let uri = Uri::service(&name);
                let now = ctx.now();
                let id = self.rc.get(now, &uri);
                self.rc_pending.insert(id, RcPending::ServiceLookup { ticket, name });
                self.flush_rc(ctx);
            }
            Command::WatchProcess { proc_key } => {
                let uri = Uri::process(proc_key);
                let now = ctx.now();
                let id = self.rc.get(now, &uri);
                self.rc_pending.insert(id, RcPending::WatchLookup { peer_key: proc_key });
                self.flush_rc(ctx);
            }
            Command::MigrateTo { hostname } => {
                self.start_migration(ctx, hostname);
            }
            Command::Exit => {
                self.exited = true;
                let me = ctx.me();
                let daemon = Endpoint::new(ctx.host(), ports::DAEMON);
                let msg = DaemonMsg::TaskReport { port: me.port, state: TaskState::Exited };
                ctx.send(daemon, seal(Proto::Raw, msg.encode_to_bytes()));
            }
        }
    }

    fn resolve_peer(&mut self, ctx: &mut dyn SimCtx, peer_key: u64, ticket: Option<u64>) {
        if ticket.is_none() && self.resolving.contains_key(&peer_key) {
            return; // already in flight
        }
        self.resolving.entry(peer_key).or_insert(0);
        let uri = Uri::process(peer_key);
        let now = ctx.now();
        let id = self.rc.get(now, &uri);
        self.rc_pending.insert(id, RcPending::ResolvePeer { peer_key, ticket });
        self.flush_rc(ctx);
    }

    fn do_spawn(
        &mut self,
        ctx: &mut dyn SimCtx,
        ticket: u64,
        target: SpawnTarget,
        program: String,
        args: Bytes,
    ) {
        let me = ctx.me();
        let mut spec = SpawnSpec::program(program, args);
        spec.notify = vec![me];
        match target {
            SpawnTarget::Host(hostname) => {
                let Some(h) = ctx.topology().host_by_name(&hostname) else {
                    self.complete_ticket(
                        ctx,
                        ticket,
                        TicketResult::Spawned(Err(SnipeError::NameNotFound(hostname))),
                    );
                    return;
                };
                let req = self.req_id();
                self.spawn_pending.insert(req, SpawnPending::App { ticket });
                let msg = DaemonMsg::SpawnReq { req_id: req, spec };
                ctx.send(Endpoint::new(h, ports::DAEMON), seal(Proto::Raw, msg.encode_to_bytes()));
            }
            SpawnTarget::ResourceManager => {
                let Some(&rm) = self.cfg.resource_managers.first() else {
                    self.complete_ticket(
                        ctx,
                        ticket,
                        TicketResult::Spawned(Err(SnipeError::Unavailable(
                            "no resource managers configured".into(),
                        ))),
                    );
                    return;
                };
                let req = self.req_id();
                self.spawn_pending.insert(req, SpawnPending::App { ticket });
                let msg = RmMsg::AllocReq { req_id: req, spec, count: 1, mode: AllocMode::Active };
                ctx.send(rm, seal(Proto::Raw, msg.encode_to_bytes()));
            }
        }
    }

    // ---- migration -----------------------------------------------------------

    fn start_migration(&mut self, ctx: &mut dyn SimCtx, hostname: String) {
        if self.migrating {
            return;
        }
        let Some(target) = ctx.topology().host_by_name(&hostname) else {
            self.with_process(ctx, |p, api| {
                api.log(format!("migration failed: unknown host {hostname}"));
                let _ = p;
            });
            return;
        };
        if target == ctx.host() {
            return; // already there
        }
        self.migrating = true;
        if trace::enabled() {
            trace::record(
                ctx.now(),
                TraceKind::Migration { phase: MigrationPhase::Checkpoint, key: self.proc_key },
            );
        }
        let user_state = self.process.checkpoint();
        let stack_state = self.stack.as_ref().map(|s| s.export_state()).unwrap_or_default();
        let payload = MigrationPayload {
            program: self.program.clone(),
            args: self.args.clone(),
            user_state,
            stack_state,
            groups: self.groups.keys().cloned().collect(),
        };
        let mut spec = SpawnSpec::program(crate::world::MIGRATE_PROGRAM, payload.encode());
        spec.fixed_key = self.proc_key;
        let req = self.req_id();
        self.spawn_pending.insert(req, SpawnPending::Migration);
        let msg = DaemonMsg::SpawnReq { req_id: req, spec };
        ctx.send(Endpoint::new(target, ports::DAEMON), seal(Proto::Raw, msg.encode_to_bytes()));
    }

    fn on_spawn_resp(
        &mut self,
        ctx: &mut dyn SimCtx,
        req_id: u64,
        ok: bool,
        endpoint: Endpoint,
        proc_key: u64,
        error: String,
    ) {
        let Some(pending) = self.spawn_pending.remove(&req_id) else {
            return;
        };
        match pending {
            SpawnPending::App { ticket } => {
                let res = if ok {
                    Ok(ProcRef { key: proc_key, endpoint })
                } else {
                    Err(SnipeError::Unavailable(format!("spawn failed: {error}")))
                };
                self.complete_ticket(ctx, ticket, TicketResult::Spawned(res));
                self.run_commands(ctx);
            }
            SpawnPending::Migration => {
                if !ok {
                    self.migrating = false;
                    self.log.push((ctx.now(), format!("migration rejected: {error}")));
                    return;
                }
                // Handoff: the new incarnation owns all protocol state
                // now — drop ours so stale retransmissions from the old
                // address can never confuse peers — then detach from
                // the daemon, redirect stragglers briefly, and
                // disappear (§5.6).
                if trace::enabled() {
                    trace::record(
                        ctx.now(),
                        TraceKind::Migration { phase: MigrationPhase::Cutover, key: self.proc_key },
                    );
                }
                self.stack = None;
                self.redirect_to = Some(endpoint);
                let me = ctx.me();
                let daemon = Endpoint::new(ctx.host(), ports::DAEMON);
                let msg = DaemonMsg::Detach { port: me.port };
                ctx.send(daemon, seal(Proto::Raw, msg.encode_to_bytes()));
                ctx.set_timer(REDIRECT_GRACE, TIMER_MIGRATE_GRACE);
            }
        }
    }

    fn send_redirect(&mut self, ctx: &mut dyn SimCtx, to: Endpoint) {
        let Some(new_ep) = self.redirect_to else {
            return;
        };
        let mut e = Encoder::new();
        e.put_u8(REDIRECT_MAGIC);
        e.put_u64(self.proc_key);
        e.put_u32(new_ep.host.0);
        e.put_u16(new_ep.port);
        ctx.send(to, seal(Proto::Raw, e.finish()));
    }

    /// An authorized controller (resource manager) asks us to move.
    fn try_migrate_request(&mut self, ctx: &mut dyn SimCtx, body: &Bytes) -> bool {
        let mut d = Decoder::new(body.clone());
        let Ok(m) = d.get_u8() else { return false };
        if m != MIGRATE_MAGIC {
            return false;
        }
        let Ok(hostname) = d.get_str() else {
            return true;
        };
        self.log.push((ctx.now(), format!("resource manager requests migration to {hostname}")));
        self.start_migration(ctx, hostname);
        true
    }

    fn try_redirect_notice(&mut self, ctx: &mut dyn SimCtx, body: &Bytes) -> bool {
        let mut d = Decoder::new(body.clone());
        let Ok(m) = d.get_u8() else { return false };
        if m != REDIRECT_MAGIC {
            return false;
        }
        let (Ok(key), Ok(h), Ok(p)) = (d.get_u64(), d.get_u32(), d.get_u16()) else {
            return true;
        };
        let ep = Endpoint::new(snipe_util::id::HostId(h), p);
        let now = ctx.now();
        if let Some(stack) = self.stack.as_mut() {
            stack.set_peer_at(now, key, ep, vec![]);
        }
        self.flush_stack(ctx);
        true
    }

    // ---- event entry ----------------------------------------------------------

    fn on_start(&mut self, ctx: &mut dyn SimCtx) {
        self.hostname = ctx.topology().host(ctx.host()).name.clone();
        let me = ctx.me();
        let now = ctx.now();
        let migrated = self.resume.is_some();
        if let Some(payload) = self.resume.take() {
            if trace::enabled() {
                trace::record(
                    now,
                    TraceKind::Migration { phase: MigrationPhase::Resume, key: self.proc_key },
                );
            }
            let scfg = self.stack_config();
            let stack = if payload.stack_state.is_empty() {
                WireStack::new(self.proc_key, scfg)
            } else {
                WireStack::import_state(payload.stack_state, scfg.clone(), now)
                    .unwrap_or_else(|_| WireStack::new(self.proc_key, scfg))
            };
            // No explicit "moved" broadcast is needed: the imported
            // stack immediately retransmits everything unacknowledged,
            // and SRUDP receivers learn sender locations from live
            // traffic; peers that *send to us* re-resolve via RC after
            // repeated timeouts (see TIMER_STACK) or get a redirect
            // from the shell we left behind.
            self.stack = Some(stack);
            self.process.restore(payload.user_state);
            self.publish_location(ctx);
            // Re-join groups on the new host.
            for name in payload.groups {
                self.groups.insert(
                    name.clone(),
                    GroupState {
                        gid: group_id(&name),
                        routers: Vec::new(),
                        joined: false,
                        pending_out: Vec::new(),
                    },
                );
                self.start_join(ctx, &name, true);
            }
            self.flush_stack(ctx);
            if migrated {
                self.with_process(ctx, |p, api| p.on_migrated(api));
                self.run_commands(ctx);
            }
            let _ = me;
        } else {
            self.stack = Some(WireStack::new(self.proc_key, self.stack_config()));
            self.publish_location(ctx);
            self.with_process(ctx, |p, api| p.on_start(api));
            self.run_commands(ctx);
        }
    }
}

impl PortableActor for ProcessActor {
    fn on_event(&mut self, ctx: &mut dyn SimCtx, event: Event) {
        if self.exited {
            return;
        }
        match event {
            Event::Start => self.on_start(ctx),
            Event::HostUp => {
                // Reboot: RAM state is gone; the daemon reports us
                // crashed. Just disappear.
                self.exited = true;
                let me = ctx.me();
                ctx.kill(me);
            }
            Event::HostDown => {}
            Event::Timer { token } => {
                if self.migrating && token != TIMER_MIGRATE_GRACE {
                    return; // frozen for migration: no timers may mutate state
                }
                if token & APP_TIMER_BIT != 0 {
                    let app_token = token >> 4;
                    self.with_process(ctx, |p, api| p.on_timer(api, app_token));
                    self.run_commands(ctx);
                    return;
                }
                match token {
                    TIMER_RC => {
                        self.rc_gate.fired();
                        self.rc.on_timer(ctx.now());
                        self.flush_rc(ctx);
                    }
                    TIMER_STACK => {
                        self.stack_gate.fired();
                        let now = ctx.now();
                        if let Some(stack) = self.stack.as_mut() {
                            stack.on_timer(now);
                        }
                        self.flush_stack(ctx);
                        // Peers timing out repeatedly may have migrated:
                        // re-resolve their location from RC metadata
                        // (§5.6: "processes that do not notice its
                        // migration ... will find its new location via
                        // the RC servers").
                        let mut scratch = std::mem::take(&mut self.trouble_scratch);
                        scratch.clear();
                        if let Some(s) = self.stack.as_ref() {
                            s.peers_in_trouble_into(RELOOKUP_TIMEOUTS, &mut scratch);
                        }
                        scratch.retain(|k| k & (1 << 63) == 0);
                        for &k in &scratch {
                            self.resolve_peer(ctx, k, None);
                        }
                        self.trouble_scratch = scratch;
                    }
                    TIMER_GROUP => {
                        self.group_timer_armed = false;
                        self.group_refreshes += 1;
                        let names: Vec<String> = self.groups.keys().cloned().collect();
                        for n in names {
                            self.start_join(ctx, &n, true);
                        }
                        self.arm_group_timer(ctx);
                    }
                    TIMER_MIGRATE_GRACE => {
                        // Done redirecting; vanish.
                        if trace::enabled() {
                            trace::record(
                                ctx.now(),
                                TraceKind::Migration {
                                    phase: MigrationPhase::Vanish,
                                    key: self.proc_key,
                                },
                            );
                        }
                        self.exited = true;
                        let me = ctx.me();
                        ctx.kill(me);
                    }
                    TIMER_FILE => {
                        let now = ctx.now();
                        let expired: Vec<u64> = self
                            .file_pending
                            .iter()
                            .filter(|(_, fp)| fp.deadline <= now)
                            .map(|(id, _)| *id)
                            .collect();
                        for id in expired {
                            let mut fp = self.file_pending.remove(&id).expect("expired id");
                            if let Some(next) = fp.remaining.first().copied() {
                                // Server unresponsive: fail over.
                                fp.remaining.remove(0);
                                fp.deadline = now + FILE_OP_TIMEOUT;
                                ctx.set_timer(
                                    FILE_OP_TIMEOUT + SimDuration::from_micros(1),
                                    TIMER_FILE,
                                );
                                let req = self.req_id();
                                let m = if fp.write {
                                    FileMsg::StoreReq {
                                        req_id: req,
                                        lifn: fp.lifn.clone(),
                                        content: fp.content.clone(),
                                    }
                                } else {
                                    FileMsg::ReadReq { req_id: req, lifn: fp.lifn.clone() }
                                };
                                self.file_pending.insert(req, fp);
                                self.send_to_infra(ctx, next, m.encode_to_bytes());
                            } else {
                                let err = SnipeError::Timeout(format!(
                                    "file operation on {} timed out on every server",
                                    fp.lifn
                                ));
                                let result = if fp.write {
                                    TicketResult::FileWritten(Err(err))
                                } else {
                                    TicketResult::FileRead(Err(err))
                                };
                                self.complete_ticket(ctx, fp.ticket, result);
                                self.run_commands(ctx);
                            }
                        }
                    }
                    TIMER_RESOLVE_RETRY => {
                        let keys: Vec<u64> = self.resolving.keys().copied().collect();
                        for k in keys {
                            let uri = Uri::process(k);
                            let now = ctx.now();
                            let id = self.rc.get(now, &uri);
                            self.rc_pending
                                .insert(id, RcPending::ResolvePeer { peer_key: k, ticket: None });
                        }
                        self.flush_rc(ctx);
                    }
                    _ => {}
                }
            }
            Event::Signal { signum, .. } => {
                self.with_process(ctx, |p, api| p.on_signal(api, signum));
                self.run_commands(ctx);
            }
            Event::Packet { from, payload } => {
                // From the instant the checkpoint is taken, this
                // incarnation must not consume any more traffic (the
                // new incarnation owns the protocol state). We only
                // still listen for the daemon's spawn/detach replies,
                // and redirect stragglers once the cutover completed.
                // Dropped datagrams are retransmitted by SRUDP, so
                // nothing is lost (§5.6).
                if self.migrating && !self.cfg.chaos_disable_migration_freeze {
                    if let Ok((Proto::Raw, body)) = snipe_wire::frame::open(payload) {
                        if let Ok(dmsg) = DaemonMsg::decode_from_bytes(body) {
                            match dmsg {
                                DaemonMsg::SpawnResp { req_id, ok, endpoint, proc_key, error } => {
                                    self.on_spawn_resp(ctx, req_id, ok, endpoint, proc_key, error);
                                    return;
                                }
                                DaemonMsg::DetachResp { .. } => return,
                                _ => {}
                            }
                        }
                    }
                    if self.redirect_to.is_some() {
                        self.send_redirect(ctx, from);
                    }
                    return;
                }
                let now = ctx.now();
                let incoming = match self.stack.as_mut() {
                    Some(stack) => stack.on_datagram(now, from, payload).unwrap_or(None),
                    None => None,
                };
                match incoming {
                    None => {}
                    // MCAST traffic is consumed by the stack's member
                    // driver and arrives as tagged deliveries.
                    Some(Incoming::Mcast { .. }) => {}
                    Some(Incoming::Stream { .. }) => {}
                    Some(Incoming::Raw { from, msg }) => {
                        if self.try_redirect_notice(ctx, &msg)
                            || self.try_migrate_request(ctx, &msg)
                        {
                            // handled
                        } else if let Ok(dmsg) = DaemonMsg::decode_from_bytes(msg.clone()) {
                            match dmsg {
                                DaemonMsg::SpawnResp { req_id, ok, endpoint, proc_key, error } => {
                                    self.on_spawn_resp(ctx, req_id, ok, endpoint, proc_key, error);
                                }
                                DaemonMsg::TaskEvent { proc_key, state } => {
                                    self.with_process(ctx, |p, api| {
                                        p.on_task_event(api, proc_key, state)
                                    });
                                    self.run_commands(ctx);
                                }
                                DaemonMsg::ElectResp { group, router } => {
                                    self.on_elect_resp(ctx, group, router);
                                }
                                _ => {}
                            }
                        } else if let Ok(rmsg) = RmMsg::decode_from_bytes(msg.clone()) {
                            if let RmMsg::AllocResp { req_id, ok, allocations, error } = rmsg {
                                let (ok2, ep, key) = match allocations.first() {
                                    Some(a) if ok => (true, a.task, a.proc_key),
                                    _ => (false, Endpoint::new(ctx.host(), 0), 0),
                                };
                                self.on_spawn_resp(ctx, req_id, ok2, ep, key, error);
                            }
                        } else {
                            self.rc.on_packet(now, from, msg);
                            self.flush_rc(ctx);
                        }
                    }
                }
                self.flush_stack(ctx);
            }
        }
    }
}

portable_actor!(ProcessActor);
