//! End-to-end integration of the SNIPE client library: global naming,
//! reliable messaging, spawning, groups, files, notify lists,
//! migration and consoles — all over the simulated testbed.

use bytes::Bytes;
use snipe_core::api::TicketResult;
use snipe_core::{GroupEvent, ProcRef, SnipeApi, SnipeProcess, SnipeWorldBuilder, SpawnTarget};
use snipe_daemon::proto::TaskState;
use snipe_util::time::SimDuration;
use std::sync::{Arc, Mutex};

type Log = Arc<Mutex<Vec<String>>>;

/// Echoes every message back to the sender, prefixed with "echo:".
struct Echo;
impl SnipeProcess for Echo {
    fn on_start(&mut self, _api: &mut SnipeApi<'_, '_>) {}
    fn on_message(&mut self, api: &mut SnipeApi<'_, '_>, from: ProcRef, msg: Bytes) {
        let mut reply = b"echo:".to_vec();
        reply.extend_from_slice(&msg);
        api.send(from.key, reply);
    }
}

/// Sends `count` messages to a peer key and records replies.
struct Pinger {
    peer: u64,
    count: u32,
    log: Log,
}
impl SnipeProcess for Pinger {
    fn on_start(&mut self, api: &mut SnipeApi<'_, '_>) {
        for i in 0..self.count {
            api.send(self.peer, format!("m{i}").into_bytes());
        }
    }
    fn on_message(&mut self, _api: &mut SnipeApi<'_, '_>, _from: ProcRef, msg: Bytes) {
        self.log.lock().unwrap().push(String::from_utf8_lossy(&msg).into_owned());
    }
}

#[test]
fn point_to_point_messaging_with_name_resolution() {
    let mut w = SnipeWorldBuilder::lan(3, 1).build();
    let log: Log = Arc::new(Mutex::new(Vec::new()));
    w.register_process("echo", |_| Box::new(Echo));
    let (echo_key, _) = w.spawn_on("host1", "echo", Bytes::new()).unwrap();
    let log2 = log.clone();
    w.register_process("pinger", move |_| {
        Box::new(Pinger { peer: echo_key, count: 5, log: log2.clone() })
    });
    w.spawn_on("host2", "pinger", Bytes::new()).unwrap();
    w.run_for_secs(5);
    let got = log.lock().unwrap();
    assert_eq!(got.len(), 5, "all replies must arrive: {got:?}");
    // FIFO order preserved.
    for (i, m) in got.iter().enumerate() {
        assert_eq!(m, &format!("echo:m{i}"));
    }
}

/// Parent spawns a child through its host daemon and the RM, then talks
/// to it.
struct Parent {
    log: Log,
    via_rm: bool,
    child_ticket: u64,
}
impl SnipeProcess for Parent {
    fn on_start(&mut self, api: &mut SnipeApi<'_, '_>) {
        let target = if self.via_rm {
            SpawnTarget::ResourceManager
        } else {
            SpawnTarget::Host("host2".into())
        };
        self.child_ticket = api.spawn(target, "echo", Bytes::new());
    }
    fn on_ticket(&mut self, api: &mut SnipeApi<'_, '_>, ticket: u64, result: TicketResult) {
        if ticket == self.child_ticket {
            match result {
                TicketResult::Spawned(Ok(child)) => {
                    self.log.lock().unwrap().push(format!("spawned:{}", child.key != 0));
                    api.send(child.key, b"hi child".to_vec());
                }
                other => self.log.lock().unwrap().push(format!("spawn failed: {other:?}")),
            }
        }
    }
    fn on_message(&mut self, _api: &mut SnipeApi<'_, '_>, _from: ProcRef, msg: Bytes) {
        self.log.lock().unwrap().push(String::from_utf8_lossy(&msg).into_owned());
    }
}

#[test]
fn spawn_via_daemon_and_talk() {
    let mut w = SnipeWorldBuilder::lan(3, 2).build();
    let log: Log = Arc::new(Mutex::new(Vec::new()));
    w.register_process("echo", |_| Box::new(Echo));
    let l = log.clone();
    w.register_process("parent", move |_| {
        Box::new(Parent { log: l.clone(), via_rm: false, child_ticket: 0 })
    });
    w.spawn_on("host0", "parent", Bytes::new()).unwrap();
    w.run_for_secs(5);
    let got = log.lock().unwrap();
    assert!(got.contains(&"spawned:true".to_string()), "{got:?}");
    assert!(got.contains(&"echo:hi child".to_string()), "{got:?}");
}

#[test]
fn spawn_via_resource_manager() {
    let mut w = SnipeWorldBuilder::lan(4, 3).build();
    let log: Log = Arc::new(Mutex::new(Vec::new()));
    w.register_process("echo", |_| Box::new(Echo));
    let l = log.clone();
    w.register_process("parent", move |_| {
        Box::new(Parent { log: l.clone(), via_rm: true, child_ticket: 0 })
    });
    // Give the RM time to discover hosts before asking it to place.
    w.run_for_secs(3);
    w.spawn_on("host3", "parent", Bytes::new()).unwrap();
    w.run_for_secs(6);
    let got = log.lock().unwrap();
    assert!(got.contains(&"spawned:true".to_string()), "{got:?}");
    assert!(got.contains(&"echo:hi child".to_string()), "{got:?}");
}

/// Group member: joins and records everything it hears.
struct Member {
    group: String,
    log: Log,
    announce: Option<Vec<u8>>,
}
impl SnipeProcess for Member {
    fn on_start(&mut self, api: &mut SnipeApi<'_, '_>) {
        api.join_group(self.group.clone());
    }
    fn on_group_event(&mut self, api: &mut SnipeApi<'_, '_>, group: &str, event: GroupEvent) {
        if event == GroupEvent::Joined {
            if let Some(msg) = self.announce.take() {
                api.send_group(group.to_string(), msg);
            }
        }
    }
    fn on_group_message(
        &mut self,
        _api: &mut SnipeApi<'_, '_>,
        _group: &str,
        origin: u64,
        msg: Bytes,
    ) {
        self.log.lock().unwrap().push(format!("{origin}:{}", String::from_utf8_lossy(&msg)));
    }
}

#[test]
fn multicast_group_delivers_to_all_members_exactly_once() {
    let mut w = SnipeWorldBuilder::lan(5, 4).build();
    let logs: Vec<Log> = (0..4).map(|_| Arc::new(Mutex::new(Vec::new()))).collect();
    for (i, log) in logs.iter().enumerate() {
        let l = log.clone();
        let announce = if i == 0 { Some(b"hello group".to_vec()) } else { None };
        w.register_process(format!("member{i}"), move |_| {
            Box::new(Member { group: "weather".into(), log: l.clone(), announce: announce.clone() })
        });
    }
    // Stagger: members 1..3 join first, then member 0 joins and
    // announces.
    for i in (0..4).rev() {
        w.spawn_on(&format!("host{}", i + 1), &format!("member{i}"), Bytes::new()).unwrap();
        w.run_for(SimDuration::from_millis(500));
    }
    w.run_for_secs(10);
    for (i, log) in logs.iter().enumerate() {
        let got = log.lock().unwrap();
        let hellos = got.iter().filter(|m| m.ends_with(":hello group")).count();
        assert_eq!(hellos, 1, "member {i} must hear the announcement exactly once: {got:?}");
    }
}

/// Writes a file, reads it back.
struct FileUser {
    log: Log,
    write_ticket: u64,
    read_ticket: u64,
}
impl SnipeProcess for FileUser {
    fn on_start(&mut self, api: &mut SnipeApi<'_, '_>) {
        self.write_ticket = api.write_file("lifn:snipe:file:notes", b"remember the milk".to_vec());
    }
    fn on_ticket(&mut self, api: &mut SnipeApi<'_, '_>, ticket: u64, result: TicketResult) {
        if ticket == self.write_ticket {
            match result {
                TicketResult::FileWritten(Ok(())) => {
                    self.log.lock().unwrap().push("written".into());
                    self.read_ticket = api.read_file("lifn:snipe:file:notes");
                }
                other => self.log.lock().unwrap().push(format!("write failed: {other:?}")),
            }
        } else if ticket == self.read_ticket {
            match result {
                TicketResult::FileRead(Ok(content)) => self
                    .log
                    .lock()
                    .unwrap()
                    .push(format!("read:{}", String::from_utf8_lossy(&content))),
                other => self.log.lock().unwrap().push(format!("read failed: {other:?}")),
            }
        }
    }
}

#[test]
fn file_write_then_read() {
    let mut w = SnipeWorldBuilder::lan(3, 5).build();
    let log: Log = Arc::new(Mutex::new(Vec::new()));
    let l = log.clone();
    w.register_process("fileuser", move |_| {
        Box::new(FileUser { log: l.clone(), write_ticket: 0, read_ticket: 0 })
    });
    w.spawn_on("host2", "fileuser", Bytes::new()).unwrap();
    w.run_for_secs(5);
    let got = log.lock().unwrap();
    assert!(got.contains(&"written".to_string()), "{got:?}");
    assert!(got.contains(&"read:remember the milk".to_string()), "{got:?}");
}

/// A counter that walks to another host midway, proving state and
/// in-flight messages survive (§5.6).
struct Wanderer {
    count: u64,
    log: Log,
}
impl SnipeProcess for Wanderer {
    fn on_start(&mut self, api: &mut SnipeApi<'_, '_>) {
        api.set_timer(SimDuration::from_millis(100), 1);
    }
    fn on_timer(&mut self, api: &mut SnipeApi<'_, '_>, _token: u64) {
        self.count += 1;
        if self.count == 3 {
            self.log.lock().unwrap().push(format!("migrating at count {}", self.count));
            api.migrate_to("host3");
            return;
        }
        api.set_timer(SimDuration::from_millis(100), 1);
    }
    fn on_migrated(&mut self, api: &mut SnipeApi<'_, '_>) {
        self.log.lock().unwrap().push(format!(
            "arrived on {} with count {}",
            api.my_hostname(),
            self.count
        ));
        api.set_timer(SimDuration::from_millis(100), 1);
    }
    fn on_message(&mut self, api: &mut SnipeApi<'_, '_>, from: ProcRef, msg: Bytes) {
        self.log.lock().unwrap().push(format!("got {}", String::from_utf8_lossy(&msg)));
        api.send(from.key, b"ack".to_vec());
    }
    fn checkpoint(&mut self) -> Bytes {
        Bytes::from(self.count.to_be_bytes().to_vec())
    }
    fn restore(&mut self, state: Bytes) {
        let mut b = [0u8; 8];
        b.copy_from_slice(&state);
        self.count = u64::from_be_bytes(b);
    }
}

/// Streams messages at the wanderer throughout its migration.
struct Streamer {
    peer: u64,
    sent: u32,
    acked: Arc<Mutex<u32>>,
}
impl SnipeProcess for Streamer {
    fn on_start(&mut self, api: &mut SnipeApi<'_, '_>) {
        api.set_timer(SimDuration::from_millis(50), 1);
    }
    fn on_timer(&mut self, api: &mut SnipeApi<'_, '_>, _token: u64) {
        if self.sent < 20 {
            api.send(self.peer, format!("s{}", self.sent).into_bytes());
            self.sent += 1;
            api.set_timer(SimDuration::from_millis(50), 1);
        }
    }
    fn on_message(&mut self, _api: &mut SnipeApi<'_, '_>, _from: ProcRef, _msg: Bytes) {
        *self.acked.lock().unwrap() += 1;
    }
}

#[test]
fn migration_preserves_state_and_loses_no_messages() {
    let mut w = SnipeWorldBuilder::lan(4, 6).build();
    let log: Log = Arc::new(Mutex::new(Vec::new()));
    let acked = Arc::new(Mutex::new(0u32));
    let l = log.clone();
    w.register_process("wanderer", move |_| Box::new(Wanderer { count: 0, log: l.clone() }));
    let (wkey, wep) = w.spawn_on("host1", "wanderer", Bytes::new()).unwrap();
    let a = acked.clone();
    w.register_process("streamer", move |_| {
        Box::new(Streamer { peer: wkey, sent: 0, acked: a.clone() })
    });
    w.spawn_on("host2", "streamer", Bytes::new()).unwrap();
    w.run_for_secs(20);
    let got = log.lock().unwrap();
    assert!(
        got.iter().any(|m| m == "arrived on host3 with count 3"),
        "migration must preserve the counter: {got:?}"
    );
    // The old endpoint is gone, the key now resolves to host3.
    assert!(!w.sim_ref().is_bound(wep), "old shell must exit after grace");
    // Every streamed message was eventually delivered and acked.
    assert_eq!(*acked.lock().unwrap(), 20, "no message may be lost across migration");
    let delivered = got.iter().filter(|m| m.starts_with("got s")).count();
    assert_eq!(delivered, 20, "{got:?}");
}

/// Watches another process and records its lifecycle events.
struct Watcher {
    target: u64,
    log: Log,
}
impl SnipeProcess for Watcher {
    fn on_start(&mut self, api: &mut SnipeApi<'_, '_>) {
        api.watch(self.target);
    }
    fn on_task_event(&mut self, _api: &mut SnipeApi<'_, '_>, proc_key: u64, state: TaskState) {
        self.log.lock().unwrap().push(format!("{proc_key}:{}", state.as_str()));
    }
}

/// Exits shortly after starting.
struct ShortLife;
impl SnipeProcess for ShortLife {
    fn on_start(&mut self, api: &mut SnipeApi<'_, '_>) {
        api.set_timer(SimDuration::from_secs(2), 1);
    }
    fn on_timer(&mut self, api: &mut SnipeApi<'_, '_>, _token: u64) {
        api.exit();
    }
}

/// Spawner that reports the child key into a cell.
struct SpawnReporter {
    child: Arc<Mutex<u64>>,
}
impl SnipeProcess for SpawnReporter {
    fn on_start(&mut self, api: &mut SnipeApi<'_, '_>) {
        api.spawn(SpawnTarget::Host("host1".into()), "shortlife", Bytes::new());
    }
    fn on_ticket(&mut self, _api: &mut SnipeApi<'_, '_>, _ticket: u64, result: TicketResult) {
        if let TicketResult::Spawned(Ok(r)) = result {
            *self.child.lock().unwrap() = r.key;
        }
    }
}

#[test]
fn notify_list_reports_exit() {
    let mut w = SnipeWorldBuilder::lan(3, 7).build();
    let log: Log = Arc::new(Mutex::new(Vec::new()));
    let child = Arc::new(Mutex::new(0u64));
    w.register_process("shortlife", |_| Box::new(ShortLife));
    let c = child.clone();
    w.register_process("spawner", move |_| Box::new(SpawnReporter { child: c.clone() }));
    w.spawn_on("host0", "spawner", Bytes::new()).unwrap();
    w.run_for_secs(1); // child spawned, still alive
    let child_key = *child.lock().unwrap();
    assert_ne!(child_key, 0);
    let l = log.clone();
    w.register_process("watcher", move |_| Box::new(Watcher { target: child_key, log: l.clone() }));
    w.spawn_on("host2", "watcher", Bytes::new()).unwrap();
    w.run_for_secs(5);
    let got = log.lock().unwrap();
    assert!(got.contains(&format!("{child_key}:exited")), "watcher must hear the exit: {got:?}");
}

#[test]
fn console_reachable_through_rc_binding() {
    use snipe_core::console::{BrowserActor, ConsoleActor};
    use snipe_rcds::uri::Uri;
    let mut w = SnipeWorldBuilder::lan(3, 8).build();
    let rc = w.rc_endpoints().to_vec();
    let url = Uri::parse("http://console.snipe/").unwrap();
    let console = ConsoleActor::new(url.clone(), rc.clone())
        .page("/status", || "all systems nominal".to_string());
    let h1 = w.sim_ref().topology().host_by_name("host1").unwrap();
    let h2 = w.sim_ref().topology().host_by_name("host2").unwrap();
    w.sim().spawn(h1, 80, Box::new(console));
    let responses = Arc::new(Mutex::new(Vec::new()));
    let browser = BrowserActor::new(
        rc,
        vec![
            (SimDuration::from_secs(1), url.clone(), "/status".into()),
            (SimDuration::from_millis(100), url, "/missing".into()),
        ],
        responses.clone(),
    );
    w.sim().spawn(h2, 8080, Box::new(browser));
    w.run_for_secs(5);
    let got = responses.lock().unwrap();
    assert!(got.contains(&(200, "all systems nominal".to_string())), "{got:?}");
    assert!(got.iter().any(|(s, _)| *s == 404), "{got:?}");
}

/// Service provider registering under a LIFN (§5.7).
struct Provider;
impl SnipeProcess for Provider {
    fn on_start(&mut self, api: &mut SnipeApi<'_, '_>) {
        api.register_service("compute");
    }
    fn on_message(&mut self, api: &mut SnipeApi<'_, '_>, from: ProcRef, _msg: Bytes) {
        api.send(from.key, format!("served by {}", api.my_hostname()).into_bytes());
    }
}

struct ServiceClient {
    log: Log,
}
impl SnipeProcess for ServiceClient {
    fn on_start(&mut self, api: &mut SnipeApi<'_, '_>) {
        api.set_timer(SimDuration::from_secs(2), 1);
    }
    fn on_timer(&mut self, api: &mut SnipeApi<'_, '_>, _token: u64) {
        api.lookup_service("compute");
    }
    fn on_ticket(&mut self, api: &mut SnipeApi<'_, '_>, _ticket: u64, result: TicketResult) {
        if let TicketResult::Service(Ok(locations)) = result {
            self.log.lock().unwrap().push(format!("locations:{}", locations.len()));
            if let Some(first) = locations.first() {
                api.send(first.key, b"work".to_vec());
            }
        }
    }
    fn on_message(&mut self, _api: &mut SnipeApi<'_, '_>, _from: ProcRef, msg: Bytes) {
        self.log.lock().unwrap().push(String::from_utf8_lossy(&msg).into_owned());
    }
}

#[test]
fn multi_location_service_lifn() {
    let mut w = SnipeWorldBuilder::lan(4, 9).build();
    let log: Log = Arc::new(Mutex::new(Vec::new()));
    w.register_process("provider", |_| Box::new(Provider));
    w.spawn_on("host1", "provider", Bytes::new()).unwrap();
    w.spawn_on("host2", "provider", Bytes::new()).unwrap();
    let l = log.clone();
    w.register_process("client", move |_| Box::new(ServiceClient { log: l.clone() }));
    w.spawn_on("host3", "client", Bytes::new()).unwrap();
    w.run_for_secs(8);
    let got = log.lock().unwrap();
    assert!(got.contains(&"locations:2".to_string()), "{got:?}");
    assert!(got.iter().any(|m| m.starts_with("served by host")), "{got:?}");
}

/// §5.7: replicas behind a multicast pseudo-process all receive the
/// input stream sent to the pseudo-process's global name.
struct Replica {
    log: Log,
}
impl SnipeProcess for Replica {
    fn on_start(&mut self, api: &mut SnipeApi<'_, '_>) {
        api.join_group("replica-pool");
    }
    fn on_group_message(&mut self, api: &mut SnipeApi<'_, '_>, _g: &str, _o: u64, msg: Bytes) {
        self.log.lock().unwrap().push(format!(
            "{}:{}",
            api.my_hostname(),
            String::from_utf8_lossy(&msg)
        ));
    }
}

struct PseudoDriver;
impl SnipeProcess for PseudoDriver {
    fn on_start(&mut self, api: &mut SnipeApi<'_, '_>) {
        api.register_pseudo_process("compute-farm", "replica-pool");
        api.set_timer(snipe_util::time::SimDuration::from_secs(2), 1);
    }
    fn on_timer(&mut self, api: &mut SnipeApi<'_, '_>, _t: u64) {
        // Send through the *name*, not the group: the RC metadata
        // resolves it to the group.
        api.send_pseudo("compute-farm", b"task-input".to_vec());
    }
}

#[test]
fn pseudo_process_fans_out_to_replicas() {
    let mut w = SnipeWorldBuilder::lan(4, 10).build();
    let log: Log = Arc::new(Mutex::new(Vec::new()));
    let l = log.clone();
    w.register_process("replica", move |_| Box::new(Replica { log: l.clone() }));
    w.register_process("driver", |_| Box::new(PseudoDriver));
    w.spawn_on("host1", "replica", Bytes::new()).unwrap();
    w.spawn_on("host2", "replica", Bytes::new()).unwrap();
    w.spawn_on("host3", "driver", Bytes::new()).unwrap();
    w.run_for_secs(8);
    let got = log.lock().unwrap();
    assert!(got.contains(&"host1:task-input".to_string()), "{got:?}");
    assert!(got.contains(&"host2:task-input".to_string()), "{got:?}");
    assert_eq!(got.len(), 2, "exactly once per replica: {got:?}");
}

/// §3.5 active resource management: the RM tells a running process to
/// move; it checkpoints, migrates and keeps serving under the same key.
struct Movable {
    serving: u64,
    log: Log,
}
impl SnipeProcess for Movable {
    fn on_start(&mut self, _api: &mut SnipeApi<'_, '_>) {}
    fn on_message(&mut self, api: &mut SnipeApi<'_, '_>, from: ProcRef, _msg: Bytes) {
        self.serving += 1;
        api.send(
            from.key,
            format!("served#{} from {}", self.serving, api.my_hostname()).into_bytes(),
        );
    }
    fn on_migrated(&mut self, api: &mut SnipeApi<'_, '_>) {
        self.log.lock().unwrap().push(format!("moved to {}", api.my_hostname()));
    }
    fn checkpoint(&mut self) -> Bytes {
        Bytes::from(self.serving.to_be_bytes().to_vec())
    }
    fn restore(&mut self, state: Bytes) {
        let mut b = [0u8; 8];
        b.copy_from_slice(&state);
        self.serving = u64::from_be_bytes(b);
    }
}

struct MovableClient {
    peer: u64,
    log: Log,
}
impl SnipeProcess for MovableClient {
    fn on_start(&mut self, api: &mut SnipeApi<'_, '_>) {
        api.set_timer(SimDuration::from_millis(200), 1);
    }
    fn on_timer(&mut self, api: &mut SnipeApi<'_, '_>, _t: u64) {
        api.send(self.peer, b"work".to_vec());
        api.set_timer(SimDuration::from_millis(200), 1);
    }
    fn on_message(&mut self, _api: &mut SnipeApi<'_, '_>, _f: ProcRef, msg: Bytes) {
        self.log.lock().unwrap().push(String::from_utf8_lossy(&msg).into_owned());
    }
}

#[test]
fn resource_manager_initiated_migration() {
    use snipe_rm::proto::RmMsg;
    use snipe_util::codec::WireEncode;
    use snipe_wire::frame::{seal, Proto};
    let mut w = SnipeWorldBuilder::lan(4, 17).build();
    let log: Log = Arc::new(Mutex::new(Vec::new()));
    let l = log.clone();
    w.register_process("movable", move |_| Box::new(Movable { serving: 0, log: l.clone() }));
    let (key, task_ep) = w.spawn_on("host1", "movable", Bytes::new()).unwrap();
    let l2 = log.clone();
    w.register_process("client", move |_| Box::new(MovableClient { peer: key, log: l2.clone() }));
    w.spawn_on("host2", "client", Bytes::new()).unwrap();
    w.run_for_secs(2);
    // The RM (here: the test acting as one) directs the move.
    let rm_ep = w.rm_endpoints()[0];
    let msg = RmMsg::Migrate { task: task_ep, target_host: "host3".into() };
    let h2 = w.sim_ref().topology().host_by_name("host2").unwrap();
    let injector = snipe_netsim::topology::Endpoint::new(h2, 999);
    // Inject via a scheduled raw send from the simulator.
    let now = w.now();
    w.sim().schedule_fn(now, move |world| {
        struct OneShot {
            to: snipe_netsim::topology::Endpoint,
            bytes: Bytes,
        }
        impl snipe_netsim::actor::Actor for OneShot {
            fn on_event(
                &mut self,
                ctx: &mut snipe_netsim::actor::Ctx<'_>,
                event: snipe_netsim::actor::Event,
            ) {
                if matches!(event, snipe_netsim::actor::Event::Start) {
                    ctx.send(self.to, self.bytes.clone());
                    let me = ctx.me();
                    ctx.kill(me);
                }
            }
        }
        world.spawn(
            injector.host,
            injector.port,
            Box::new(OneShot { to: rm_ep, bytes: seal(Proto::Raw, msg.encode_to_bytes()) }),
        );
    });
    w.run_for_secs(8);
    let got = log.lock().unwrap();
    assert!(got.contains(&"moved to host3".to_string()), "{got:?}");
    // Service continued across the move, counter intact (strictly
    // increasing service numbers, some served from host1, later ones
    // from host3).
    let from_h1 = got.iter().filter(|m| m.contains("from host1")).count();
    let from_h3 = got.iter().filter(|m| m.contains("from host3")).count();
    assert!(from_h1 > 0 && from_h3 > 0, "{got:?}");
    let mut last = 0u64;
    for m in got.iter().filter(|m| m.starts_with("served#")) {
        let n: u64 = m[7..m.find(' ').unwrap()].parse().unwrap();
        assert_eq!(n, last + 1, "service counter must survive the move: {got:?}");
        last = n;
    }
}
