//! Offline stand-in for the [`proptest`](https://docs.rs/proptest)
//! property-testing crate.
//!
//! The build environment has no crate registry, so external
//! dependencies are vendored. This implements the subset of the
//! proptest 1.x surface the workspace's tests use:
//!
//! * the [`proptest!`] macro (`fn name(arg in strategy, ...) { body }`);
//! * [`Strategy`] implemented for integer ranges (`0u8..3`, `1u64..`),
//!   string "regex" literals (`"[a-z]{1,6}"`, `"\\PC{0,64}"`), tuples,
//!   and [`collection::vec`];
//! * [`any`] for primitive types;
//! * `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from real proptest, deliberately accepted: no shrinking
//! (failures report the generated inputs and the deterministic case
//! seed instead), and a fixed-derivation RNG rather than a persisted
//! failure file. Case count defaults to 64, override with
//! `PROPTEST_CASES`.

use std::ops::{Range, RangeFrom};

/// Deterministic per-case RNG (splitmix64). Each `(test name, case
/// index)` pair derives its own stream, so failures are reproducible
/// from the printed case index alone.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one generated case of one test.
    pub fn for_case(test_name: &str, case: u64) -> TestRng {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15) }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u128) -> u128 {
        debug_assert!(bound > 0);
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        wide % bound
    }
}

/// How many cases each property runs (`PROPTEST_CASES` overrides).
pub fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// `any::<T>()` — the full-range strategy for a primitive type.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Marker returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {
        $(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*
    };
}
arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only; property tests here feed arithmetic.
        let v = rng.next_u64() as f64 / u64::MAX as f64;
        (v - 0.5) * 2e9
    }
}

macro_rules! range_strategy_uint {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as u128) - (self.start as u128);
                    (self.start as u128 + rng.below(width)) as $t
                }
            }
            impl Strategy for RangeFrom<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let width = (<$t>::MAX as u128) - (self.start as u128) + 1;
                    (self.start as u128 + rng.below(width)) as $t
                }
            }
        )*
    };
}
range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! range_strategy_int {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + rng.below(width) as i128) as $t
                }
            }
            impl Strategy for RangeFrom<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let width = (<$t>::MAX as i128 - self.start as i128 + 1) as u128;
                    (self.start as i128 + rng.below(width) as i128) as $t
                }
            }
        )*
    };
}
range_strategy_int!(i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($n:ident $idx:tt),+))*) => {
        $(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*
    };
}
tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// String strategies from "regex" literals — the subset proptest tests
/// here use: a sequence of atoms, each a char class (`[a-z0-9]`, with
/// ranges), `\PC` (any printable char), or a literal char, optionally
/// followed by `{n}` / `{m,n}` repetition.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (atom, min, max) in atoms {
            let n =
                if min == max { min } else { min + rng.below((max - min + 1) as u128) as usize };
            for _ in 0..n {
                out.push(atom.generate_char(rng));
            }
        }
        out
    }
}

enum Atom {
    /// `\PC` — any printable (non-control) character.
    Printable,
    /// Explicit candidate set from a char class.
    Class(Vec<char>),
    /// A literal character.
    Literal(char),
}

impl Atom {
    fn generate_char(&self, rng: &mut TestRng) -> char {
        match self {
            Atom::Literal(c) => *c,
            Atom::Class(cs) => cs[rng.below(cs.len() as u128) as usize],
            Atom::Printable => {
                // Mostly ASCII graphic/space, sprinkled with multi-byte
                // code points to exercise UTF-8 boundaries.
                const EXOTIC: &[char] = &['é', 'ß', 'λ', '中', '☃', '🦀', '\u{00a0}', 'Ω'];
                if rng.below(8) == 0 {
                    EXOTIC[rng.below(EXOTIC.len() as u128) as usize]
                } else {
                    char::from_u32(0x20 + rng.below(0x5f) as u32).expect("printable ascii")
                }
            }
        }
    }
}

fn parse_pattern(pat: &str) -> Vec<(Atom, usize, usize)> {
    let chars: Vec<char> = pat.chars().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '\\' => {
                // Only `\PC` (printable) is supported; `\\` escapes.
                if chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C') {
                    i += 3;
                    Atom::Printable
                } else {
                    let c = *chars.get(i + 1).expect("dangling escape in pattern");
                    i += 2;
                    Atom::Literal(c)
                }
            }
            '[' => {
                let close = chars[i..].iter().position(|&c| c == ']').expect("unclosed [") + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        assert!(lo <= hi, "bad class range in pattern");
                        for c in lo..=hi {
                            set.push(char::from_u32(c).expect("class char"));
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                assert!(!set.is_empty(), "empty char class in pattern");
                i = close + 1;
                Atom::Class(set)
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..].iter().position(|&c| c == '}').expect("unclosed {") + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse().expect("bad repetition min"),
                    b.trim().parse().expect("bad repetition max"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "bad repetition range in pattern");
        out.push((atom, min, max));
    }
    out
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `vec(element_strategy, min..max)` — proptest's collection::vec.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let width = (self.size.end - self.size.start) as u128;
            let n = self.size.start + rng.below(width) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Everything a test module needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, case_count, Arbitrary, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `case_count()` generated cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$attr:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let cases = $crate::case_count();
                for case in 0..cases {
                    let mut __proptest_rng =
                        $crate::TestRng::for_case(stringify!($name), case);
                    $( let $arg = $crate::Strategy::generate(&$strat, &mut __proptest_rng); )*
                    let run = || -> () { $body };
                    // No shrinking: report the case index, which fully
                    // determines the inputs.
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run));
                    if let Err(payload) = outcome {
                        eprintln!(
                            "proptest {}: failed at case {case}/{cases} (deterministic; \
                             rerun reproduces it)",
                            stringify!($name)
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

/// Assert inside a property (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property (panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a property (panics like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let v = (3u8..7).generate(&mut rng);
            assert!((3..7).contains(&v));
            let w = (1u64..).generate(&mut rng);
            assert!(w >= 1);
            let x = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = TestRng::for_case("strings", 0);
        for _ in 0..200 {
            let s = "[a-z]{1,6}".generate(&mut rng);
            assert!((1..=6).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
            let p = "\\PC{0,64}".generate(&mut rng);
            assert!(p.chars().count() <= 64);
            assert!(p.chars().all(|c| !c.is_control()), "{p:?}");
        }
    }

    #[test]
    fn vec_and_tuple_compose() {
        let mut rng = TestRng::for_case("vecs", 1);
        for _ in 0..100 {
            let v = collection::vec((0u8..3, 0u64..8, "[a-z]{1,6}"), 1..40).generate(&mut rng);
            assert!((1..40).contains(&v.len()));
            for (a, b, s) in &v {
                assert!(*a < 3 && *b < 8 && !s.is_empty());
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let a: Vec<u64> = {
            let mut rng = TestRng::for_case("det", 7);
            (0..10).map(|_| (0u64..1000).generate(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = TestRng::for_case("det", 7);
            (0..10).map(|_| (0u64..1000).generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn macro_smoke(a in any::<u16>(), v in collection::vec(any::<u8>(), 0..16)) {
            prop_assert!(v.len() < 16);
            prop_assert_eq!(a as u32 + 1, u32::from(a) + 1);
        }
    }
}
