//! Offline stand-in for the [`crossbeam`](https://docs.rs/crossbeam)
//! crate.
//!
//! The build environment has no crate registry, so external
//! dependencies are vendored. The workspace only uses
//! `crossbeam::thread::scope` + `Scope::spawn` (scoped fork/join for
//! embarrassingly parallel experiment sweeps); since Rust 1.63 the
//! standard library provides the same capability, so this is a thin
//! signature adapter over [`std::thread::scope`].

/// Scoped threads (crossbeam 0.8 `thread` module surface).
pub mod thread {
    /// Panic payload of a scoped thread.
    pub type ThreadPayload = Box<dyn std::any::Any + Send + 'static>;

    /// A scope handle; closures passed to [`Scope::spawn`] receive one,
    /// allowing nested spawns.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle of a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread and return its result (`Err` = panic).
        pub fn join(self) -> Result<T, ThreadPayload> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope so it
        /// can spawn further threads, mirroring crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle { inner: inner.spawn(move || f(&Scope { inner })) }
        }
    }

    /// Run `f` with a scope in which borrowed-data threads can be
    /// spawned; all threads are joined before this returns.
    ///
    /// Unlike crossbeam (which collects panics from unjoined threads
    /// into the `Err` variant), a panicking unjoined thread propagates
    /// through `std::thread::scope`; callers that join every handle —
    /// the only pattern in this workspace — observe identical behavior.
    pub fn scope<'env, F, R>(f: F) -> Result<R, ThreadPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_fork_join_borrows_stack_data() {
        let data = vec![1u32, 2, 3, 4];
        let sum = crate::thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u32>()
        })
        .unwrap();
        assert_eq!(sum, 100);
    }

    #[test]
    fn nested_spawn_receives_scope() {
        let n = crate::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2).join().unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
