//! Hosts, interfaces and network segments.
//!
//! A [`Topology`] is the static shape of a SNIPE testbed: hosts with one
//! or more interfaces, each attached to a network segment carrying one
//! [`Medium`]. Multi-homed hosts (e.g. Ethernet + ATM, as at UTK) are
//! the basis of the paper's multi-path communication: the routing layer
//! in `snipe-wire` picks "the fastest of those" common networks (§5.3).

use std::collections::HashMap;

use snipe_util::id::{HostId, LinkId, NetId};
use snipe_util::time::SimTime;

use crate::medium::Medium;

/// A (host, port) addressable endpoint, the target of packet delivery.
///
/// Ports multiplex actors on one host the way UDP/TCP ports multiplex
/// sockets; well-known SNIPE services use fixed ports (see
/// `snipe-wire::ports`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Endpoint {
    /// The host.
    pub host: HostId,
    /// The port on that host.
    pub port: u16,
}

impl Endpoint {
    /// Construct an endpoint.
    pub fn new(host: HostId, port: u16) -> Endpoint {
        Endpoint { host, port }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.host, self.port)
    }
}

/// One host's attachment to one network.
#[derive(Clone, Debug)]
pub struct Interface {
    /// Globally unique link id.
    pub link: LinkId,
    /// The network this interface attaches to.
    pub net: NetId,
    /// Administratively/faultily down?
    pub up: bool,
    /// When this interface's transmitter is next free (switched media).
    pub busy_until: SimTime,
}

/// A simulated host.
#[derive(Clone, Debug)]
pub struct Host {
    /// Host id.
    pub id: HostId,
    /// Hostname, used to derive its distinguished URL.
    pub name: String,
    /// Attached interfaces in declaration order.
    pub interfaces: Vec<Interface>,
    /// Is the host up?
    pub up: bool,
    /// CPU speed multiplier (1.0 = reference workstation); the daemon
    /// reports it as load metadata.
    pub cpu_factor: f64,
}

/// Gray-link degradation: the segment stays up and lossless but slower
/// — the failure mode timeout escalation handles worst (a dead link is
/// detected fast; a link at 10% bandwidth and 5× latency looks alive
/// forever). Injected by fault scripts via `World::set_gray`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GrayLevel {
    /// Propagation latency multiplier (≥ 1.0 degrades).
    pub latency_factor: f64,
    /// Bandwidth multiplier in `(0, 1]` (< 1.0 degrades).
    pub bandwidth_factor: f64,
}

/// A network segment.
#[derive(Clone, Debug)]
pub struct Network {
    /// Network id.
    pub id: NetId,
    /// The segment's "net name" (paper §5.2.1), e.g. `utk-atm`.
    pub name: String,
    /// Medium model.
    pub medium: Medium,
    /// Attached (host, link) pairs.
    pub attached: Vec<(HostId, LinkId)>,
    /// Whether this segment participates in global IP routing (§5.3
    /// "the message is sent using the host's normal IP routing").
    pub routable: bool,
    /// Segment up (false models a switch/hub failure)?
    pub up: bool,
    /// When the shared bus is next free (shared-bus media only).
    pub busy_until: SimTime,
    /// Optional loss override injected by fault scripts.
    pub loss_override: Option<f64>,
    /// Partition group: two hosts can only communicate over routable
    /// paths if their partition groups match (0 = default group).
    pub partition: u32,
    /// Optional gray-link degradation injected by fault scripts.
    pub gray: Option<GrayLevel>,
}

/// Host configuration passed to [`Topology::add_host`].
#[derive(Clone, Debug)]
pub struct HostCfg {
    /// Hostname.
    pub name: String,
    /// CPU factor.
    pub cpu_factor: f64,
}

impl HostCfg {
    /// A host with the given name and reference CPU speed.
    pub fn named(name: impl Into<String>) -> HostCfg {
        HostCfg { name: name.into(), cpu_factor: 1.0 }
    }
}

/// The static (but fault-mutable) network shape.
#[derive(Clone, Debug, Default)]
pub struct Topology {
    hosts: Vec<Host>,
    nets: Vec<Network>,
    by_name: HashMap<String, HostId>,
    epoch: u64,
}

/// A candidate path between two hosts, as seen by route selection.
///
/// Paths traverse one network (a shared segment) or two (routed via
/// each side's edge network), so the hop list is inline and the whole
/// struct is `Copy` — route lookups and the world's route cache never
/// touch the heap.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PathInfo {
    via: [NetId; 2],
    hops: u8,
    /// Bottleneck bandwidth in bits/s.
    pub bandwidth_bps: u64,
    /// End-to-end propagation latency estimate.
    pub latency: snipe_util::time::SimDuration,
    /// Combined loss probability.
    pub loss: f64,
    /// Smallest MTU along the path.
    pub mtu: usize,
}

impl PathInfo {
    /// Networks traversed (one for a common segment, two for routed).
    pub fn nets(&self) -> &[NetId] {
        &self.via[..self.hops as usize]
    }

    /// The first-hop network (where the sender serializes).
    pub fn first_net(&self) -> NetId {
        self.via[0]
    }
}

impl Topology {
    /// Empty topology.
    pub fn new() -> Topology {
        Topology::default()
    }

    /// Add a host; returns its id.
    pub fn add_host(&mut self, cfg: HostCfg) -> HostId {
        let id = HostId::from_index(self.hosts.len());
        self.by_name.insert(cfg.name.clone(), id);
        self.hosts.push(Host {
            id,
            name: cfg.name,
            interfaces: Vec::new(),
            up: true,
            cpu_factor: cfg.cpu_factor,
        });
        id
    }

    /// Add a network segment; returns its id.
    pub fn add_network(
        &mut self,
        name: impl Into<String>,
        medium: Medium,
        routable: bool,
    ) -> NetId {
        let id = NetId::from_index(self.nets.len());
        self.nets.push(Network {
            id,
            name: name.into(),
            medium,
            attached: Vec::new(),
            routable,
            up: true,
            busy_until: SimTime::ZERO,
            loss_override: None,
            partition: 0,
            gray: None,
        });
        id
    }

    /// Attach `host` to `net` with a new interface; returns the link id.
    ///
    /// # Panics
    /// Panics on unknown ids or double attachment.
    pub fn attach(&mut self, host: HostId, net: NetId) -> LinkId {
        assert!(host.index() < self.hosts.len(), "unknown host {host}");
        assert!(net.index() < self.nets.len(), "unknown network {net}");
        let h = &mut self.hosts[host.index()];
        assert!(!h.interfaces.iter().any(|i| i.net == net), "{host} already attached to {net}");
        let link = LinkId::from_index(self.nets.iter().map(|n| n.attached.len()).sum::<usize>());
        h.interfaces.push(Interface { link, net, up: true, busy_until: SimTime::ZERO });
        self.nets[net.index()].attached.push((host, link));
        self.bump_epoch();
        link
    }

    /// Monotone counter bumped by every mutation that can change route
    /// selection. Cached routing decisions are valid only while the
    /// epoch they were computed under still matches.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Record a routing-relevant mutation. [`Topology::attach`] calls
    /// this itself; the world's fault APIs call it after flipping
    /// up/down flags, loss overrides or partition groups through
    /// [`Topology::host_mut`] / [`Topology::net_mut`]. (Those accessors
    /// deliberately do *not* bump: the packet hot path updates
    /// `busy_until` through them, which never affects route choice.)
    pub fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Host accessor.
    pub fn host(&self, id: HostId) -> &Host {
        &self.hosts[id.index()]
    }

    /// Mutable host accessor.
    pub fn host_mut(&mut self, id: HostId) -> &mut Host {
        &mut self.hosts[id.index()]
    }

    /// Network accessor.
    pub fn net(&self, id: NetId) -> &Network {
        &self.nets[id.index()]
    }

    /// Mutable network accessor.
    pub fn net_mut(&mut self, id: NetId) -> &mut Network {
        &mut self.nets[id.index()]
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// Number of networks.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Look up a host id by name.
    pub fn host_by_name(&self, name: &str) -> Option<HostId> {
        self.by_name.get(name).copied()
    }

    /// All hosts.
    pub fn hosts(&self) -> impl Iterator<Item = &Host> {
        self.hosts.iter()
    }

    /// All networks.
    pub fn nets(&self) -> impl Iterator<Item = &Network> {
        self.nets.iter()
    }

    /// Effective loss of a network (override beats medium default).
    pub fn effective_loss(&self, net: NetId) -> f64 {
        let n = self.net(net);
        n.loss_override.unwrap_or(n.medium.loss)
    }

    /// Effective bandwidth of a network (gray degradation applied).
    pub fn effective_bandwidth(&self, net: NetId) -> u64 {
        let n = self.net(net);
        match n.gray {
            Some(g) => ((n.medium.bandwidth_bps as f64 * g.bandwidth_factor) as u64).max(1),
            None => n.medium.bandwidth_bps,
        }
    }

    /// Effective propagation latency of a network (gray degradation
    /// applied).
    pub fn effective_latency(&self, net: NetId) -> snipe_util::time::SimDuration {
        let n = self.net(net);
        match n.gray {
            Some(g) => n.medium.latency.mul_f64(g.latency_factor),
            None => n.medium.latency,
        }
    }

    fn iface_usable(&self, host: HostId, net: NetId) -> bool {
        let h = self.host(host);
        h.up && h.interfaces.iter().any(|i| i.net == net && i.up) && self.net(net).up
    }

    /// Networks both hosts are attached to with usable interfaces,
    /// without allocating (route selection runs this per cache miss).
    pub fn common_networks_iter(&self, a: HostId, b: HostId) -> impl Iterator<Item = NetId> + '_ {
        let same = a == b;
        self.host(a)
            .interfaces
            .iter()
            .filter(move |_| !same)
            .filter(|ia| ia.up)
            .map(|ia| ia.net)
            .filter(move |&n| self.iface_usable(a, n) && self.iface_usable(b, n))
    }

    /// All networks both hosts are attached to with usable interfaces.
    pub fn common_networks(&self, a: HostId, b: HostId) -> Vec<NetId> {
        self.common_networks_iter(a, b).collect()
    }

    /// Is `n` a usable common segment between `a` and `b`?
    pub fn is_common_network(&self, a: HostId, b: HostId, n: NetId) -> bool {
        a != b && self.iface_usable(a, n) && self.iface_usable(b, n)
    }

    /// Usable routable networks of a host, without allocating.
    pub fn routable_networks_iter(&self, h: HostId) -> impl Iterator<Item = NetId> + '_ {
        self.host(h)
            .interfaces
            .iter()
            .filter(|i| i.up)
            .map(|i| i.net)
            .filter(move |&n| self.net(n).routable && self.iface_usable(h, n))
    }

    /// Usable routable networks of a host (for "normal IP routing").
    pub fn routable_networks(&self, h: HostId) -> Vec<NetId> {
        self.routable_networks_iter(h).collect()
    }

    /// Describe the direct path over one shared segment.
    pub fn direct_path(&self, net: NetId) -> PathInfo {
        let n = self.net(net);
        PathInfo {
            via: [net, net],
            hops: 1,
            bandwidth_bps: self.effective_bandwidth(net),
            latency: self.effective_latency(net),
            loss: self.effective_loss(net),
            mtu: n.medium.mtu,
        }
    }

    /// Describe a routed path over two routable edge networks (the WAN
    /// transit in between is modelled by the slower of the two edges).
    pub fn routed_path(&self, src_net: NetId, dst_net: NetId) -> PathInfo {
        let a = self.net(src_net);
        let b = self.net(dst_net);
        let loss_a = self.effective_loss(src_net);
        let loss_b = self.effective_loss(dst_net);
        PathInfo {
            via: [src_net, dst_net],
            hops: 2,
            bandwidth_bps: self.effective_bandwidth(src_net).min(self.effective_bandwidth(dst_net)),
            latency: self.effective_latency(src_net) + self.effective_latency(dst_net),
            loss: 1.0 - (1.0 - loss_a) * (1.0 - loss_b),
            mtu: a.medium.mtu.min(b.medium.mtu),
        }
    }

    /// Can `a` reach `b` at all right now (either a common segment or a
    /// routable path in the same partition)?
    pub fn reachable(&self, a: HostId, b: HostId) -> bool {
        if a == b {
            return self.host(a).up;
        }
        if !self.host(a).up || !self.host(b).up {
            return false;
        }
        if self.common_networks_iter(a, b).next().is_some() {
            return true;
        }
        self.routable_networks_iter(a).any(|na| {
            self.routable_networks_iter(b)
                .any(|nb| self.net(na).partition == self.net(nb).partition)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_net_world() -> (Topology, HostId, HostId, HostId, NetId, NetId) {
        let mut t = Topology::new();
        let eth = t.add_network("eth", Medium::ethernet100(), true);
        let atm = t.add_network("atm", Medium::atm155(), false);
        let a = t.add_host(HostCfg::named("a"));
        let b = t.add_host(HostCfg::named("b"));
        let c = t.add_host(HostCfg::named("c"));
        t.attach(a, eth);
        t.attach(b, eth);
        t.attach(a, atm);
        t.attach(b, atm);
        t.attach(c, eth);
        (t, a, b, c, eth, atm)
    }

    #[test]
    fn common_networks_found() {
        let (t, a, b, c, eth, atm) = two_net_world();
        let mut common = t.common_networks(a, b);
        common.sort();
        assert_eq!(common, vec![eth, atm]);
        assert_eq!(t.common_networks(a, c), vec![eth]);
    }

    #[test]
    fn interface_down_removes_path() {
        let (mut t, a, b, _c, eth, atm) = two_net_world();
        t.host_mut(a).interfaces.iter_mut().find(|i| i.net == atm).unwrap().up = false;
        assert_eq!(t.common_networks(a, b), vec![eth]);
    }

    #[test]
    fn network_down_removes_path() {
        let (mut t, a, b, _c, eth, _atm) = two_net_world();
        t.net_mut(eth).up = false;
        let common = t.common_networks(a, b);
        assert_eq!(common.len(), 1);
        assert_ne!(common[0], eth);
    }

    #[test]
    fn host_down_unreachable() {
        let (mut t, a, b, _c, _e, _m) = two_net_world();
        assert!(t.reachable(a, b));
        t.host_mut(b).up = false;
        assert!(!t.reachable(a, b));
    }

    #[test]
    fn routed_path_combines_edges() {
        let mut t = Topology::new();
        let n1 = t.add_network("site1", Medium::ethernet100(), true);
        let n2 = t.add_network("site2", Medium::atm155(), true);
        let a = t.add_host(HostCfg::named("a"));
        let b = t.add_host(HostCfg::named("b"));
        t.attach(a, n1);
        t.attach(b, n2);
        assert!(t.common_networks(a, b).is_empty());
        assert!(t.reachable(a, b));
        let p = t.routed_path(n1, n2);
        assert_eq!(p.bandwidth_bps, Medium::ethernet100().bandwidth_bps);
        assert_eq!(p.mtu, 1500);
        assert!(p.latency > Medium::ethernet100().latency);
    }

    #[test]
    fn partitions_block_routed_paths() {
        let mut t = Topology::new();
        let n1 = t.add_network("site1", Medium::ethernet100(), true);
        let n2 = t.add_network("site2", Medium::ethernet100(), true);
        let a = t.add_host(HostCfg::named("a"));
        let b = t.add_host(HostCfg::named("b"));
        t.attach(a, n1);
        t.attach(b, n2);
        assert!(t.reachable(a, b));
        t.net_mut(n2).partition = 1;
        assert!(!t.reachable(a, b));
        // A common segment is unaffected by partition groups.
        let shared = t.add_network("shared", Medium::ethernet10(), false);
        t.attach(a, shared);
        t.attach(b, shared);
        assert!(t.reachable(a, b));
    }

    #[test]
    fn loss_override() {
        let (mut t, _a, _b, _c, eth, _atm) = two_net_world();
        assert_eq!(t.effective_loss(eth), 0.0);
        t.net_mut(eth).loss_override = Some(0.5);
        assert_eq!(t.effective_loss(eth), 0.5);
    }

    #[test]
    #[should_panic(expected = "already attached")]
    fn double_attach_panics() {
        let (mut t, a, _b, _c, eth, _atm) = two_net_world();
        t.attach(a, eth);
    }

    #[test]
    fn host_lookup_by_name() {
        let (t, a, _b, _c, _e, _m) = two_net_world();
        assert_eq!(t.host_by_name("a"), Some(a));
        assert_eq!(t.host_by_name("zzz"), None);
    }

    #[test]
    fn gray_degrades_paths_without_loss() {
        let (mut t, _a, _b, _c, eth, _atm) = two_net_world();
        let clean = t.direct_path(eth);
        t.net_mut(eth).gray = Some(GrayLevel { latency_factor: 4.0, bandwidth_factor: 0.25 });
        let gray = t.direct_path(eth);
        assert_eq!(gray.bandwidth_bps, clean.bandwidth_bps / 4);
        assert_eq!(gray.latency, clean.latency * 4);
        assert_eq!(gray.loss, clean.loss, "gray links degrade, they do not drop");
        t.net_mut(eth).gray = None;
        assert_eq!(t.direct_path(eth), clean);
    }
}
