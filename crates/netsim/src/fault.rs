//! Failure injection: crash/repair processes for availability studies.
//!
//! The paper's §6 claims the replicated testbed "maintained an almost
//! perfect level of availability" from autumn 1997. Experiments E3/E8
//! reproduce that statistically: hosts fail and recover following
//! exponential inter-arrival processes, and we measure the fraction of
//! operations that still succeed.

use snipe_util::id::HostId;
use snipe_util::rng::Xoshiro256;
use snipe_util::time::{SimDuration, SimTime};

use crate::world::World;

/// Parameters of a crash/repair renewal process.
#[derive(Clone, Copy, Debug)]
pub struct FailureModel {
    /// Mean time between failures per host.
    pub mtbf: SimDuration,
    /// Mean time to repair.
    pub mttr: SimDuration,
}

impl FailureModel {
    /// Steady-state availability of a single host under this model.
    pub fn single_host_availability(&self) -> f64 {
        let up = self.mtbf.as_secs_f64();
        let down = self.mttr.as_secs_f64();
        up / (up + down)
    }
}

/// Pre-computed (deterministic) schedule of crash/repair events for one
/// host over a horizon.
pub fn schedule_host_failures(
    world: &mut World,
    host: HostId,
    model: FailureModel,
    horizon: SimTime,
    rng: &mut Xoshiro256,
) {
    let mut t = SimTime::ZERO;
    loop {
        let up_for = SimDuration::from_secs_f64(rng.gen_exp(model.mtbf.as_secs_f64()));
        t += up_for;
        if t >= horizon {
            break;
        }
        let down_at = t;
        world.schedule_fn(down_at, move |w| w.host_down(host));
        let down_for = SimDuration::from_secs_f64(rng.gen_exp(model.mttr.as_secs_f64()));
        t += down_for;
        if t >= horizon {
            // Leave it down past the horizon; still schedule recovery so
            // post-horizon queries find a live system.
            world.schedule_fn(t, move |w| w.host_up(host));
            break;
        }
        let up_at = t;
        world.schedule_fn(up_at, move |w| w.host_up(host));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::medium::Medium;
    use crate::topology::{HostCfg, Topology};

    #[test]
    fn availability_formula() {
        let m = FailureModel { mtbf: SimDuration::from_days(10), mttr: SimDuration::from_hours(4) };
        let a = m.single_host_availability();
        assert!((a - 0.9836).abs() < 0.001, "availability {a}");
    }

    #[test]
    fn schedule_produces_alternating_states() {
        let mut t = Topology::new();
        let n = t.add_network("n", Medium::ethernet100(), true);
        let h = t.add_host(HostCfg::named("h"));
        t.attach(h, n);
        let mut w = World::new(t, 1);
        let mut rng = Xoshiro256::seed_from_u64(5);
        let model =
            FailureModel { mtbf: SimDuration::from_secs(100), mttr: SimDuration::from_secs(10) };
        let horizon = SimTime::ZERO + SimDuration::from_secs(10_000);
        schedule_host_failures(&mut w, h, model, horizon, &mut rng);
        // Sample availability by stepping through the horizon.
        let mut up_samples = 0u32;
        let total = 1000u32;
        for i in 0..total {
            w.run_until(SimTime::ZERO + SimDuration::from_secs(10) * i as u64);
            if w.topology().host(h).up {
                up_samples += 1;
            }
        }
        let frac = up_samples as f64 / total as f64;
        let expect = model.single_host_availability();
        assert!((frac - expect).abs() < 0.05, "measured {frac}, expected {expect}");
    }

    #[test]
    fn overlapping_schedules_leave_world_consistent() {
        let mut t = Topology::new();
        let n = t.add_network("n", Medium::ethernet100(), true);
        let h = t.add_host(HostCfg::named("h"));
        t.attach(h, n);
        let mut w = World::new(t, 1);
        let horizon = SimTime::ZERO + SimDuration::from_secs(1_000);
        // Two independent renewal processes targeting the same host:
        // down/up events interleave arbitrarily. host_down/host_up are
        // idempotent, so the overlap must neither panic nor wedge the
        // host in a phantom state.
        let mut rng_a = Xoshiro256::seed_from_u64(11);
        let mut rng_b = Xoshiro256::seed_from_u64(99);
        let fast =
            FailureModel { mtbf: SimDuration::from_secs(30), mttr: SimDuration::from_secs(5) };
        let slow =
            FailureModel { mtbf: SimDuration::from_secs(70), mttr: SimDuration::from_secs(20) };
        schedule_host_failures(&mut w, h, fast, horizon, &mut rng_a);
        schedule_host_failures(&mut w, h, slow, horizon, &mut rng_b);
        w.run_until(horizon + SimDuration::from_secs(120));
        // Every schedule ends with a recovery event, so after both
        // horizons pass the host must be up and the queue drained.
        assert!(w.topology().host(h).up, "host recovered after overlap");
        assert_eq!(w.queue_depth(), 0, "no stragglers in the event queue");
    }
}
