//! # snipe-netsim — the deterministic testbed substitute
//!
//! The SNIPE paper evaluated on real hardware: workstations on 100 Mbit
//! Ethernet and 155 Mbit ATM at UTK, plus WAN links to Reading and
//! Wright-Patterson AFB. This crate replaces that testbed with a
//! discrete-event simulator so that every experiment in `EXPERIMENTS.md`
//! is reproducible bit-for-bit from a seed:
//!
//! * [`medium::Medium`] — calibrated media models (Ethernet 10/100, ATM
//!   155, Myrinet, WAN) with bandwidth, latency, loss, MTU and framing
//!   overhead;
//! * [`topology`] — hosts, interfaces and network segments, including
//!   multi-homed hosts (the basis of SNIPE's multi-path communication);
//! * [`world::World`] — the event loop, actor scheduling and packet
//!   delivery, with link-level serialization so protocols saturate a
//!   medium realistically (that is what Fig. 1 measures);
//! * [`actor`] — the process model: SNIPE daemons, RC servers, file
//!   servers and application tasks are all [`actor::Actor`]s;
//! * [`fault`] — failure injection: host crash/repair processes, link
//!   failures and network partitions;
//! * [`chaos`] — declarative, seed-driven fault plans: packet
//!   corruption/duplication/reordering, gray links, flapping and
//!   process restarts, replayable bit-for-bit from a plan seed;
//! * [`trace`] — flat stats counters plus the thread-local flight
//!   recorder: a fixed-capacity ring of virtual-time-stamped events
//!   every layer records into, dumped on chaos-oracle violations;
//! * [`shard`] — the sharded engine: conservative parallel
//!   discrete-event simulation over per-region shards, bit-for-bit
//!   deterministic at any thread count, for 10k–100k-host worlds.

pub mod actor;
pub mod chaos;
pub mod fault;
pub mod medium;
pub(crate) mod queue;
pub mod shard;
pub mod topology;
pub mod trace;
pub mod world;

pub use actor::{Actor, ActorId, Ctx, Event, OnWorld, PortableActor, SimCtx, TimerGate};
pub use chaos::{ChaosBinding, ChaosOp, ChaosPlan, ChaosShape, PacketChaos};
pub use medium::Medium;
pub use shard::{FaultCmd, OnShard, Partition, ShardActor, ShardCtx, ShardLoad, ShardedWorld};
pub use topology::{Endpoint, HostCfg, Topology};
pub use trace::{FaultOp, MigrationPhase, TraceEvent, TraceKind};
pub use world::World;
