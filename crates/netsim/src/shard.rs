//! The sharded deterministic engine: conservative parallel
//! discrete-event simulation over per-region shards.
//!
//! [`World`](crate::world::World) is a single event loop; it tops out
//! around a few million events per second no matter how many cores the
//! machine has. This module partitions a topology into independent
//! **regions** (connected components of "hosts share a network
//! segment" — every segment, with all its attached hosts, lives wholly
//! inside one region), gives each region its own `ShardCore` — a
//! private three-tier event queue, flat stats, RNG streams, route
//! cache, transmitter busy-tracking and trace ring — and advances all
//! cores in **deterministic barrier rounds** with conservative
//! lookahead.
//!
//! ## Why determinism survives parallelism
//!
//! * Regions are a property of the *topology*, not of the thread
//!   count: `--shards N` only chooses how many OS threads execute the
//!   fixed region set. Every per-core decision (event order, RNG
//!   draws, sequence numbers) depends only on that core's own inputs.
//! * Cross-region packets never touch another core directly. They are
//!   collected into per-core outboxes and exchanged at the round
//!   barrier through a **deterministic mailbox**: all items are sorted
//!   by `(at, src_region, src_seq)` and enqueued into their
//!   destination cores in that order, so destination-side sequence
//!   numbers are identical at any thread count.
//! * The inline (single-thread) path and the thread-pool path execute
//!   the *same* per-round core methods in the same per-core order —
//!   equality of results across 1/2/4/8 threads holds by construction
//!   and is pinned by differential tests and the `shard-determinism`
//!   gate in `scripts/check.sh`.
//!
//! ## Conservative lookahead
//!
//! Two hosts in different regions share no segment, so every
//! cross-region packet takes a routed (two-segment) path whose
//! propagation latency is at least twice the minimum base latency over
//! all routable media. That bound is the **lookahead** `L`: in a round
//! where the globally earliest pending work is at `t_min`, every core
//! may safely execute events with `at < min(t_min + L, next_fault,
//! horizon)` — any cross-region arrival generated inside the window
//! lands at or after its end. Gray-link degradation only *raises*
//! latency (the fault scheduler clamps `latency_factor` to ≥ 1.0), so
//! the static bound stays sound under chaos.
//!
//! ## Faults and chaos
//!
//! Scripted faults are data ([`FaultCmd`]), not closures: a sorted
//! timeline the coordinator applies between rounds (windows are capped
//! at the next fault time, so a fault at `t` is observed by every core
//! before any event at or after `t` runs). [`ChaosPlan`]s translate
//! op-for-op except `ProcRestart`, whose restart closures are
//! inherently single-threaded (`Rc`); engine-level soaks exercise
//! restarts through actor-level kill/respawn instead.

use std::any::Any;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex, RwLock};

use bytes::Bytes;

use snipe_util::id::{HostId, NetId};
use snipe_util::metrics::{Log2Histogram, Registry};
use snipe_util::rng::{SplitMix64, Xoshiro256};
use snipe_util::time::{SimDuration, SimTime};

use crate::actor::{ActorId, Event, PortableActor, SimCtx};
use crate::chaos::{ChaosBinding, ChaosOp, ChaosPlan, PacketChaos};
use crate::queue::{EventQueue, FnvMap, Tier, TxChannel};
use crate::topology::{Endpoint, GrayLevel, PathInfo, Topology};
use crate::trace::{DropReason, FaultOp, NetStats, TraceKind};
use crate::world::{compute_path, SIGSTART};

/// Derive a per-region seed from the world seed. Distinct regions get
/// decorrelated streams; the mapping is pure, so it is identical at
/// every thread count.
fn mix_seed(seed: u64, region: u32) -> u64 {
    SplitMix64::new(seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(region as u64 + 1)).next_u64()
}

// ---------------------------------------------------------------------------
// Partition
// ---------------------------------------------------------------------------

/// Static partition of a topology into schedulable regions, plus the
/// conservative lookahead and dense per-region transmitter-slot maps.
///
/// Computed once from the pristine topology; faults never move a host
/// between regions (they only flip up/down state), so the partition is
/// valid for the lifetime of the world.
pub struct Partition {
    region_of_host: Vec<u32>,
    region_of_net: Vec<u32>,
    regions: u32,
    /// Conservative lookahead in nanoseconds (`u64::MAX` when no
    /// cross-region traffic is possible).
    la_ns: u64,
    /// Global net index → dense per-region bus-slot index.
    net_slot: Vec<u32>,
    /// Global link index → dense per-region link-slot index.
    link_slot: Vec<u32>,
    /// Bus slots per region.
    bus_counts: Vec<u32>,
    /// Link slots per region.
    link_counts: Vec<u32>,
}

impl Partition {
    /// Partition `topo` into regions (connected components of the
    /// host–segment incidence graph) and derive the lookahead.
    ///
    /// # Panics
    /// Panics if the topology has ≥ 2 regions connected by routable
    /// media with zero base latency — conservative lookahead would be
    /// zero and parallel execution could not make safe progress. All
    /// built-in media have latency ≥ 1µs.
    pub fn of(topo: &Topology) -> Partition {
        let h = topo.host_count();
        let n = topo.net_count();
        // Union-find over host nodes [0, h) and net nodes [h, h + n).
        let mut uf: Vec<u32> = (0..(h + n) as u32).collect();
        fn find(uf: &mut [u32], mut x: u32) -> u32 {
            while uf[x as usize] != x {
                uf[x as usize] = uf[uf[x as usize] as usize]; // path halving
                x = uf[x as usize];
            }
            x
        }
        for net in topo.nets() {
            let nn = (h + net.id.index()) as u32;
            for &(host, _) in &net.attached {
                let a = find(&mut uf, nn);
                let b = find(&mut uf, host.index() as u32);
                if a != b {
                    uf[b as usize] = a;
                }
            }
        }
        // Dense region ids in first-seen order (hosts first, then
        // nets) — deterministic, independent of union order.
        let mut dense = vec![u32::MAX; h + n];
        let mut regions = 0u32;
        let mut region_of = |uf: &mut [u32], node: usize| {
            let root = find(uf, node as u32) as usize;
            if dense[root] == u32::MAX {
                dense[root] = regions;
                regions += 1;
            }
            dense[root]
        };
        let region_of_host: Vec<u32> = (0..h).map(|i| region_of(&mut uf, i)).collect();
        let region_of_net: Vec<u32> = (0..n).map(|j| region_of(&mut uf, h + j)).collect();
        // Lookahead: a cross-region path is routed over two routable
        // edges, so its latency is ≥ 2 × the minimum base latency.
        let min_lat =
            topo.nets().filter(|net| net.routable).map(|net| net.medium.latency.as_nanos()).min();
        let la_ns = if regions <= 1 {
            u64::MAX
        } else {
            match min_lat {
                // No routable media: regions cannot talk at all.
                None => u64::MAX,
                Some(0) => panic!(
                    "sharded engine requires routable media with nonzero latency \
                     (conservative lookahead would be zero)"
                ),
                Some(ns) => ns.saturating_mul(2),
            }
        };
        // Dense per-region transmitter slots, so a core's busy vectors
        // are sized by its own region, not the whole world.
        let mut bus_counts = vec![0u32; regions as usize];
        let mut net_slot = vec![0u32; n];
        for (j, slot) in net_slot.iter_mut().enumerate() {
            let r = region_of_net[j] as usize;
            *slot = bus_counts[r];
            bus_counts[r] += 1;
        }
        let total_links: usize = topo.hosts().map(|host| host.interfaces.len()).sum();
        let mut link_counts = vec![0u32; regions as usize];
        let mut link_slot = vec![0u32; total_links];
        for host in topo.hosts() {
            for iface in &host.interfaces {
                let r = region_of_net[iface.net.index()] as usize;
                link_slot[iface.link.index()] = link_counts[r];
                link_counts[r] += 1;
            }
        }
        Partition {
            region_of_host,
            region_of_net,
            regions,
            la_ns,
            net_slot,
            link_slot,
            bus_counts,
            link_counts,
        }
    }

    /// Number of regions (independent of thread count).
    pub fn regions(&self) -> usize {
        self.regions as usize
    }

    /// The region owning a host.
    pub fn region_of_host(&self, h: HostId) -> usize {
        self.region_of_host[h.index()] as usize
    }

    /// The region owning a network segment.
    pub fn region_of_net(&self, n: NetId) -> usize {
        self.region_of_net[n.index()] as usize
    }

    /// Conservative lookahead (`SimDuration::MAX` when regions cannot
    /// exchange traffic, e.g. a single-region world).
    pub fn lookahead(&self) -> SimDuration {
        if self.la_ns == u64::MAX {
            SimDuration::MAX
        } else {
            SimDuration::from_nanos(self.la_ns)
        }
    }
}

// ---------------------------------------------------------------------------
// Actor model (Send)
// ---------------------------------------------------------------------------

/// Upcast helper so concrete actor state can be read back through
/// `dyn ShardActor` without requiring trait-object upcasting support.
/// Blanket-implemented for every `'static` type.
pub trait AsAny {
    /// This value as `&dyn Any` (for downcasting).
    fn as_any(&self) -> &dyn Any;
    /// This value as `&mut dyn Any`.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Any> AsAny for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The actor trait for the sharded engine. Identical in shape to
/// [`crate::actor::Actor`], but `Send` (cores move across worker
/// threads) and reachable back through [`ShardedWorld::actor_ref`] via
/// [`AsAny`]. `Rc`-webbed single-threaded actors cannot implement
/// this; give each actor owned state instead.
pub trait ShardActor: AsAny + Send {
    /// Handle one event.
    fn on_event(&mut self, ctx: &mut ShardCtx<'_>, event: Event);
}

/// The world-facing API handed to a [`ShardActor`] during dispatch.
/// Mirrors [`crate::actor::Ctx`]; `spawn`/`kill`/`signal`/`is_bound`
/// are region-local (cross-region control is not a thing SNIPE
/// processes can do without a message anyway — send a packet).
pub struct ShardCtx<'a> {
    core: &'a mut ShardCore,
    topo: &'a Topology,
    part: &'a Partition,
    me: ActorId,
    my_endpoint: Endpoint,
}

impl ShardCtx<'_> {
    /// Current simulation time (this core's clock).
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// This actor's own endpoint.
    pub fn me(&self) -> Endpoint {
        self.my_endpoint
    }

    /// This actor's host.
    pub fn host(&self) -> HostId {
        self.my_endpoint.host
    }

    /// Send a datagram (cross-region destinations go through the
    /// deterministic mailbox transparently).
    pub fn send(&mut self, to: Endpoint, payload: Bytes) {
        let from = self.my_endpoint;
        self.core.send_packet(self.topo, self.part, from, to, payload, None);
    }

    /// Send pinned to a specific network.
    pub fn send_via(&mut self, to: Endpoint, payload: Bytes, via: NetId) {
        let from = self.my_endpoint;
        self.core.send_packet(self.topo, self.part, from, to, payload, Some(via));
    }

    /// Schedule an [`Event::Timer`] for this actor after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        let at = self.core.now + delay;
        self.core.push(at, ShardQueued::Timer { actor: self.me, token });
    }

    /// Spawn an actor on `host` at `port` — same region only. Returns
    /// `None` for a taken port, unknown host, or cross-region target.
    pub fn spawn(
        &mut self,
        host: HostId,
        port: u16,
        actor: Box<dyn ShardActor>,
    ) -> Option<Endpoint> {
        let r = spawn_region(self.topo, self.part, host)?;
        if r != self.core.region as usize {
            debug_assert_eq!(
                r, self.core.region as usize,
                "cross-region spawn from region {}",
                self.core.region
            );
            return None;
        }
        self.core.spawn(host, port, actor)
    }

    /// Allocate an unused ephemeral port on a host in this region.
    pub fn alloc_port(&mut self, host: HostId) -> u16 {
        self.core.alloc_port(host)
    }

    /// Is an actor bound at `ep`? Region-local view.
    pub fn is_bound(&self, ep: Endpoint) -> bool {
        self.core.bindings.contains_key(&ep)
    }

    /// Terminate an actor in this region.
    pub fn kill(&mut self, ep: Endpoint) {
        debug_assert_eq!(
            self.part.region_of_host(ep.host),
            self.core.region as usize,
            "cross-region kill"
        );
        self.core.kill(ep);
    }

    /// Deliver a signal to another actor in this region at the same
    /// timestamp.
    pub fn signal(&mut self, to: Endpoint, signum: u32) {
        debug_assert_eq!(
            self.part.region_of_host(to.host),
            self.core.region as usize,
            "cross-region signal"
        );
        let from = Some(self.my_endpoint);
        let now = self.core.now;
        self.core.push(now, ShardQueued::Signal { from, to, signum });
    }

    /// This region's deterministic RNG stream.
    pub fn rng(&mut self) -> &mut Xoshiro256 {
        &mut self.core.rng
    }

    /// Immutable view of the (shared) topology.
    pub fn topology(&self) -> &Topology {
        self.topo
    }

    /// Is a host currently up?
    pub fn host_up(&self, h: HostId) -> bool {
        self.topo.host(h).up
    }
}

/// Shared spawn validation for [`ShardCtx::spawn`] and
/// [`ShardedWorld::spawn`]: the region owning `host`, or `None` for an
/// unknown host id.
fn spawn_region(topo: &Topology, part: &Partition, host: HostId) -> Option<usize> {
    if host.index() >= topo.host_count() {
        return None;
    }
    Some(part.region_of_host(host))
}

impl SimCtx for ShardCtx<'_> {
    fn now(&self) -> SimTime {
        ShardCtx::now(self)
    }
    fn me(&self) -> Endpoint {
        ShardCtx::me(self)
    }
    fn host(&self) -> HostId {
        ShardCtx::host(self)
    }
    fn send(&mut self, to: Endpoint, payload: Bytes) {
        ShardCtx::send(self, to, payload);
    }
    fn send_via(&mut self, to: Endpoint, payload: Bytes, via: NetId) {
        ShardCtx::send_via(self, to, payload, via);
    }
    fn set_timer(&mut self, delay: SimDuration, token: u64) {
        ShardCtx::set_timer(self, delay, token);
    }
    fn spawn_portable(
        &mut self,
        host: HostId,
        port: u16,
        actor: Box<dyn PortableActor>,
    ) -> Option<Endpoint> {
        ShardCtx::spawn(self, host, port, Box::new(OnShard(actor)))
    }
    fn alloc_port(&mut self, host: HostId) -> u16 {
        ShardCtx::alloc_port(self, host)
    }
    fn is_bound(&self, ep: Endpoint) -> bool {
        ShardCtx::is_bound(self, ep)
    }
    fn kill(&mut self, ep: Endpoint) {
        ShardCtx::kill(self, ep);
    }
    fn signal(&mut self, to: Endpoint, signum: u32) {
        ShardCtx::signal(self, to, signum);
    }
    fn rng(&mut self) -> &mut Xoshiro256 {
        ShardCtx::rng(self)
    }
    fn topology(&self) -> &Topology {
        self.topo
    }
    fn host_up(&self, h: HostId) -> bool {
        ShardCtx::host_up(self, h)
    }
}

/// Hosts a boxed [`PortableActor`] on the sharded engine.
pub struct OnShard(pub Box<dyn PortableActor>);

impl ShardActor for OnShard {
    fn on_event(&mut self, ctx: &mut ShardCtx<'_>, event: Event) {
        self.0.on_event(ctx, event);
    }
}

// ---------------------------------------------------------------------------
// Core-internal types
// ---------------------------------------------------------------------------

enum ShardQueued {
    Deliver { from: Endpoint, to: Endpoint, payload: Bytes },
    Timer { actor: ActorId, token: u64 },
    Signal { from: Option<Endpoint>, to: Endpoint, signum: u32 },
}

struct ShardSlot {
    actor: Option<Box<dyn ShardActor>>,
    endpoint: Endpoint,
    alive: bool,
}

/// A cross-region packet in flight between rounds. `(at, src_region,
/// src_seq)` totally orders every item of a round — the mailbox
/// tie-break that makes destination-side sequence numbers independent
/// of thread count.
struct MailboxItem {
    at: SimTime,
    src_region: u32,
    src_seq: u64,
    from: Endpoint,
    to: Endpoint,
    payload: Bytes,
}

/// Work the coordinator hands a core at a round boundary, applied
/// in-order before the window runs.
enum Inbound {
    Deliver { at: SimTime, from: Endpoint, to: Endpoint, payload: Bytes },
    HostEvent { at: SimTime, host: HostId, up: bool },
    SetChaos { at: SimTime, chaos: Option<PacketChaos>, seed: u64 },
}

/// One retained per-shard flight-recorder event.
#[derive(Clone, Copy, Debug)]
pub struct ShardTraceEvent {
    /// Per-core monotone sequence number.
    pub seq: u64,
    /// Virtual time.
    pub at: SimTime,
    /// Region that recorded it.
    pub region: u32,
    /// What happened.
    pub kind: TraceKind,
}

/// Per-shard drop-oldest trace ring (the thread-local flight recorder
/// cannot serve cores that migrate across worker threads).
#[derive(Default)]
struct ShardRing {
    cap: usize,
    buf: Vec<ShardTraceEvent>,
    next: usize,
    seq: u64,
    dropped: u64,
    kind_counts: [u64; TraceKind::COUNT],
}

impl ShardRing {
    fn enable(&mut self, cap: usize) {
        *self = ShardRing::default();
        self.cap = cap.max(1);
        self.buf.reserve_exact(self.cap);
    }

    fn push(&mut self, region: u32, at: SimTime, kind: TraceKind) {
        let ev = ShardTraceEvent { seq: self.seq, at, region, kind };
        self.seq += 1;
        self.kind_counts[kind.tag()] += 1;
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.next] = ev;
            self.next = (self.next + 1) % self.cap;
            self.dropped += 1;
        }
    }

    fn iter_ordered(&self) -> impl Iterator<Item = &ShardTraceEvent> {
        let (tail, head) = self.buf.split_at(self.next.min(self.buf.len()));
        head.iter().chain(tail.iter())
    }
}

// ---------------------------------------------------------------------------
// ShardCore
// ---------------------------------------------------------------------------

type RouteKey = (HostId, HostId, Option<NetId>);

/// One region's complete engine state: queue, clock, stats, RNG
/// streams, route cache, dense busy vectors, actors, outbox, ring.
struct ShardCore {
    region: u32,
    now: SimTime,
    queue: EventQueue<ShardQueued>,
    slots: Vec<ShardSlot>,
    bindings: FnvMap<Endpoint, ActorId>,
    ephemeral: FnvMap<HostId, u16>,
    rng: Xoshiro256,
    chaos: Option<PacketChaos>,
    chaos_rng: Xoshiro256,
    stats: NetStats,
    h_latency: Log2Histogram,
    /// Busy-until per shared-bus segment of this region (dense local
    /// slots via [`Partition::net_slot`]).
    bus_busy: Vec<SimTime>,
    /// Busy-until per switched interface of this region.
    link_busy: Vec<SimTime>,
    route_cache: FnvMap<RouteKey, Option<PathInfo>>,
    route_epoch: u64,
    outbox: Vec<MailboxItem>,
    /// Monotone per-core mailbox emission counter — the `src_seq` of
    /// the deterministic mailbox tie-break.
    out_seq: u64,
    /// High-water mark of the longest single delivery stream.
    stream_hwm: usize,
    ring: ShardRing,
}

impl ShardCore {
    fn new(region: u32, topo: &Topology, part: &Partition, seed: u64) -> ShardCore {
        let mut stats = NetStats::default();
        stats.reserve_nets(topo.net_count());
        ShardCore {
            region,
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            slots: Vec::new(),
            bindings: FnvMap::default(),
            ephemeral: FnvMap::default(),
            rng: Xoshiro256::seed_from_u64(mix_seed(seed, region)),
            chaos: None,
            chaos_rng: Xoshiro256::seed_from_u64(0),
            stats,
            h_latency: Log2Histogram::default(),
            bus_busy: vec![SimTime::ZERO; part.bus_counts[region as usize] as usize],
            link_busy: vec![SimTime::ZERO; part.link_counts[region as usize] as usize],
            route_cache: FnvMap::default(),
            route_epoch: topo.epoch(),
            outbox: Vec::new(),
            out_seq: 0,
            stream_hwm: 0,
            ring: ShardRing::default(),
        }
    }

    #[inline]
    fn record(&mut self, kind: TraceKind) {
        if cfg!(not(feature = "obs-off")) && self.ring.cap > 0 {
            let (region, at) = (self.region, self.now);
            self.ring.push(region, at, kind);
        }
    }

    fn note_depth(&mut self) {
        let depth = self.queue.depth() as u64;
        if depth > self.stats.engine.peak_queue_depth {
            self.stats.engine.peak_queue_depth = depth;
        }
    }

    fn note_drop(&mut self, reason: DropReason) {
        self.stats.drop(reason);
        self.record(TraceKind::Drop { reason });
    }

    fn push(&mut self, at: SimTime, kind: ShardQueued) {
        self.queue.push(self.now, at, kind);
        self.note_depth();
    }

    fn push_delivery(
        &mut self,
        at: SimTime,
        kind: ShardQueued,
        channel: TxChannel,
        latency: SimDuration,
    ) {
        self.queue.push_delivery(self.now, at, kind, channel, latency);
        self.note_depth();
    }

    fn peek_ns(&self) -> u64 {
        self.queue.peek_at().map(|t| t.as_nanos()).unwrap_or(u64::MAX)
    }

    fn spawn(&mut self, host: HostId, port: u16, actor: Box<dyn ShardActor>) -> Option<Endpoint> {
        let ep = Endpoint::new(host, port);
        if self.bindings.contains_key(&ep) {
            return None;
        }
        let id = ActorId(self.slots.len() as u64);
        self.slots.push(ShardSlot { actor: Some(actor), endpoint: ep, alive: true });
        self.bindings.insert(ep, id);
        let now = self.now;
        self.push(now, ShardQueued::Signal { from: None, to: ep, signum: SIGSTART });
        Some(ep)
    }

    fn alloc_port(&mut self, host: HostId) -> u16 {
        let ctr = self.ephemeral.entry(host).or_insert(crate::world::EPHEMERAL_BASE);
        let span = (u16::MAX - crate::world::EPHEMERAL_BASE) as u32 + 1;
        for _ in 0..span {
            let p = *ctr;
            *ctr = p.checked_add(1).unwrap_or(crate::world::EPHEMERAL_BASE);
            if !self.bindings.contains_key(&Endpoint::new(host, p)) {
                return p;
            }
        }
        panic!("alloc_port: all {span} ephemeral ports on host {host} are bound");
    }

    fn kill(&mut self, ep: Endpoint) {
        if let Some(id) = self.bindings.remove(&ep) {
            let slot = &mut self.slots[id.0 as usize];
            slot.alive = false;
            slot.actor = None;
        }
    }

    fn endpoints_on(&self, h: HostId) -> Vec<Endpoint> {
        let mut eps: Vec<Endpoint> =
            self.bindings.keys().filter(|ep| ep.host == h).copied().collect();
        eps.sort(); // determinism
        eps
    }

    /// Route selection, memoized per core (same policy as the
    /// single-threaded world — both call [`compute_path`]).
    fn select_path(
        &mut self,
        topo: &Topology,
        from: HostId,
        to: HostId,
        via: Option<NetId>,
    ) -> Option<PathInfo> {
        if self.route_epoch != topo.epoch() {
            self.route_cache.clear();
            self.route_epoch = topo.epoch();
        }
        if let Some(&hit) = self.route_cache.get(&(from, to, via)) {
            self.stats.engine.route_cache_hits += 1;
            return hit;
        }
        self.stats.engine.route_cache_misses += 1;
        let path = compute_path(topo, from, to, via);
        self.route_cache.insert((from, to, via), path);
        path
    }

    /// Mirror of `World::send_packet`, with two differences: wire
    /// occupancy lives in the core's dense busy vectors (the shared
    /// topology is read-only during a window), and deliveries whose
    /// destination is another region go to the outbox.
    fn send_packet(
        &mut self,
        topo: &Topology,
        part: &Partition,
        from: Endpoint,
        to: Endpoint,
        payload: Bytes,
        via: Option<NetId>,
    ) {
        self.stats.sent += 1;
        self.record(TraceKind::Send { from, to, len: payload.len() as u32 });
        if from.host == to.host {
            let m = crate::medium::Medium::loopback();
            let at = self.now + m.tx_time(payload.len()) + m.latency;
            if cfg!(not(feature = "obs-off")) {
                self.h_latency.observe(at.since(self.now).as_nanos());
            }
            self.push(at, ShardQueued::Deliver { from, to, payload });
            return;
        }
        if !topo.host(from.host).up {
            self.note_drop(DropReason::HostDown);
            return;
        }
        let Some(path) = self.select_path(topo, from.host, to.host, via) else {
            self.note_drop(DropReason::NoRoute);
            return;
        };
        if payload.len() > path.mtu {
            self.note_drop(DropReason::TooBig);
            return;
        }
        let src_net = path.first_net();
        let medium = &topo.net(src_net).medium;
        let tx = medium.tx_time_at(path.bandwidth_bps, payload.len());
        let (free, channel) = if medium.shared_bus {
            let slot = part.net_slot[src_net.index()] as usize;
            (self.bus_busy[slot], TxChannel::Bus(src_net))
        } else {
            topo.host(from.host)
                .interfaces
                .iter()
                .find(|i| i.net == src_net)
                .map(|i| {
                    (
                        self.link_busy[part.link_slot[i.link.index()] as usize],
                        TxChannel::Link(i.link),
                    )
                })
                .unwrap_or((SimTime::ZERO, TxChannel::Bus(src_net)))
        };
        let start = if free > self.now { free } else { self.now };
        let finish = start + tx;
        match channel {
            TxChannel::Bus(n) if medium.shared_bus => {
                self.bus_busy[part.net_slot[n.index()] as usize] = finish;
            }
            TxChannel::Link(l) => self.link_busy[part.link_slot[l.index()] as usize] = finish,
            TxChannel::Bus(_) => {}
        }
        // Loss after occupancy: a lost frame still burned air time.
        if path.loss > 0.0 && self.rng.gen_bool(path.loss) {
            self.note_drop(DropReason::Loss);
            return;
        }
        for &n in path.nets() {
            self.stats.add_bytes(n, payload.len() as u64);
        }
        let at = finish + path.latency;
        if cfg!(not(feature = "obs-off")) {
            self.h_latency.observe(at.since(self.now).as_nanos());
        }
        let cross = part.region_of_host(to.host) != self.region as usize;
        if self.chaos.is_some() {
            self.chaos_deliver(at, from, to, payload, channel, path.latency, cross);
        } else if cross {
            self.push_outbox(at, from, to, payload);
        } else {
            self.push_delivery(
                at,
                ShardQueued::Deliver { from, to, payload },
                channel,
                latency_of(path),
            );
        }
    }

    fn push_outbox(&mut self, at: SimTime, from: Endpoint, to: Endpoint, payload: Bytes) {
        let item =
            MailboxItem { at, src_region: self.region, src_seq: self.out_seq, from, to, payload };
        self.out_seq += 1;
        self.outbox.push(item);
    }

    /// Per-packet chaos, mirroring `World::chaos_deliver`. Cross-region
    /// copies (jittered or not) ride the mailbox; their arrival times
    /// only grow (jitter ≥ 1ns), so the lookahead bound still holds.
    #[allow(clippy::too_many_arguments)]
    fn chaos_deliver(
        &mut self,
        at: SimTime,
        from: Endpoint,
        to: Endpoint,
        payload: Bytes,
        channel: TxChannel,
        latency: SimDuration,
        cross: bool,
    ) {
        let fx = self.chaos.expect("chaos_deliver called without chaos");
        let mut payload = payload;
        if fx.corrupt > 0.0 && !payload.is_empty() && self.chaos_rng.gen_bool(fx.corrupt) {
            let mut bytes = payload.to_vec();
            let flips = self.chaos_rng.gen_range_inclusive(1, 3);
            for _ in 0..flips {
                let i = self.chaos_rng.gen_range(bytes.len() as u64) as usize;
                let bit = self.chaos_rng.gen_range(8) as u8;
                bytes[i] ^= 1 << bit;
            }
            payload = Bytes::from(bytes);
            self.stats.chaos.corrupted += 1;
        }
        if fx.duplicate > 0.0 && self.chaos_rng.gen_bool(fx.duplicate) {
            let dup_at = at + self.jitter_draw(fx.jitter);
            if cross {
                self.push_outbox(dup_at, from, to, payload.clone());
            } else {
                self.push(dup_at, ShardQueued::Deliver { from, to, payload: payload.clone() });
            }
            self.stats.chaos.duplicated += 1;
        }
        if fx.reorder > 0.0 && self.chaos_rng.gen_bool(fx.reorder) {
            let late_at = at + self.jitter_draw(fx.jitter);
            if cross {
                self.push_outbox(late_at, from, to, payload);
            } else {
                self.push(late_at, ShardQueued::Deliver { from, to, payload });
            }
            self.stats.chaos.reordered += 1;
            return;
        }
        if cross {
            self.push_outbox(at, from, to, payload);
        } else {
            self.push_delivery(at, ShardQueued::Deliver { from, to, payload }, channel, latency);
        }
    }

    fn jitter_draw(&mut self, max: SimDuration) -> SimDuration {
        SimDuration::from_nanos(1 + self.chaos_rng.gen_range(max.as_nanos().max(1)))
    }

    fn dispatch_to(&mut self, topo: &Topology, part: &Partition, ep: Endpoint, event: Event) {
        let Some(&id) = self.bindings.get(&ep) else {
            return;
        };
        self.dispatch_id(topo, part, id, ep, event);
    }

    fn dispatch_id(
        &mut self,
        topo: &Topology,
        part: &Partition,
        id: ActorId,
        ep: Endpoint,
        event: Event,
    ) {
        let Some(mut actor) = self.slots[id.0 as usize].actor.take() else {
            return; // re-entrant dispatch: drop
        };
        {
            let mut ctx = ShardCtx { core: self, topo, part, me: id, my_endpoint: ep };
            actor.on_event(&mut ctx, event);
        }
        let slot = &mut self.slots[id.0 as usize];
        if slot.alive {
            slot.actor = Some(actor);
        }
    }

    /// Run one queued event (the shard-side mirror of `World::step`).
    fn step(&mut self, topo: &Topology, part: &Partition) -> bool {
        let Some((ev, tier)) = self.queue.pop() else {
            return false;
        };
        match tier {
            Tier::Now => self.stats.engine.now_pops += 1,
            Tier::Heap => self.stats.engine.heap_pops += 1,
            Tier::Stream => self.stats.engine.stream_pops += 1,
        }
        debug_assert!(ev.at >= self.now, "time went backwards in region {}", self.region);
        self.now = ev.at;
        self.stats.events += 1;
        match ev.kind {
            ShardQueued::Deliver { from, to, payload } => {
                if !topo.host(to.host).up {
                    self.note_drop(DropReason::HostDown);
                } else if let Some(&id) = self.bindings.get(&to) {
                    self.stats.delivered += 1;
                    self.record(TraceKind::Recv { from, to, len: payload.len() as u32 });
                    self.dispatch_id(topo, part, id, to, Event::Packet { from, payload });
                } else {
                    self.note_drop(DropReason::NoListener);
                }
            }
            ShardQueued::Timer { actor, token } => {
                let idx = actor.0 as usize;
                if idx < self.slots.len() && self.slots[idx].alive {
                    let ep = self.slots[idx].endpoint;
                    if topo.host(ep.host).up {
                        self.record(TraceKind::TimerFire { token });
                        self.dispatch_to(topo, part, ep, Event::Timer { token });
                    }
                }
            }
            ShardQueued::Signal { from, to, signum } => {
                if topo.host(to.host).up {
                    if signum == SIGSTART {
                        self.dispatch_to(topo, part, to, Event::Start);
                    } else {
                        self.dispatch_to(topo, part, to, Event::Signal { signum, from });
                    }
                }
            }
        }
        true
    }

    /// Apply a round's inbound list (mailbox deliveries first, then
    /// fault dispatches, then chaos toggles — the coordinator built it
    /// in that order) and then run all events with `at < end_ns`.
    fn run_round(&mut self, topo: &Topology, part: &Partition, inbound: Vec<Inbound>, end_ns: u64) {
        for item in inbound {
            match item {
                Inbound::Deliver { at, from, to, payload } => {
                    debug_assert!(at >= self.now, "mailbox item in this core's past");
                    self.queue.push(self.now, at, ShardQueued::Deliver { from, to, payload });
                    self.note_depth();
                }
                Inbound::HostEvent { at, host, up } => {
                    if at > self.now {
                        self.now = at;
                    }
                    self.record(TraceKind::Fault {
                        op: FaultOp {
                            what: if up { "host_up" } else { "host_down" },
                            a: host.index() as u64,
                            b: 0,
                        },
                    });
                    for ep in self.endpoints_on(host) {
                        self.dispatch_to(
                            topo,
                            part,
                            ep,
                            if up { Event::HostUp } else { Event::HostDown },
                        );
                    }
                }
                Inbound::SetChaos { at, chaos, seed } => {
                    if at > self.now {
                        self.now = at;
                    }
                    self.chaos = chaos;
                    self.chaos_rng = Xoshiro256::seed_from_u64(seed);
                }
            }
        }
        while let Some(at) = self.queue.peek_at() {
            if at.as_nanos() >= end_ns {
                break;
            }
            self.step(topo, part);
        }
        let smax = self.queue.stream_depth_max();
        if smax > self.stream_hwm {
            self.stream_hwm = smax;
        }
    }
}

fn latency_of(path: PathInfo) -> SimDuration {
    path.latency
}

// ---------------------------------------------------------------------------
// Faults
// ---------------------------------------------------------------------------

/// A scripted fault as plain data, routable to the owning shard at a
/// round boundary. The `Send`-safe replacement for
/// [`World::schedule_fn`](crate::world::World::schedule_fn) closures.
#[derive(Clone, Copy, Debug)]
pub enum FaultCmd {
    /// Crash a host (actors on it get [`Event::HostDown`]).
    HostDown(HostId),
    /// Repair a host.
    HostUp(HostId),
    /// Take a segment down/up.
    NetUp(NetId, bool),
    /// Flap one host interface.
    IfaceUp(HostId, NetId, bool),
    /// Override (or restore) a segment's loss rate.
    NetLoss(NetId, Option<f64>),
    /// Move a segment into a partition group (0 heals).
    PartitionNet(NetId, u32),
    /// Degrade a segment into a gray link (None restores). The
    /// scheduler clamps `latency_factor` to ≥ 1.0 so gray links can
    /// only *raise* latency — the conservative lookahead depends on it.
    Gray(NetId, Option<GrayLevel>),
    /// Install (or clear) per-packet chaos. Each core's chaos RNG is
    /// reseeded from `(seed, region)`.
    PacketChaos(Option<PacketChaos>, u64),
}

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

/// Round-planning state shared verbatim by the inline and threaded
/// execution paths — one implementation, so the two paths cannot
/// diverge.
struct Coordinator<'a> {
    topo: &'a RwLock<Topology>,
    part: &'a Partition,
    faults: &'a mut Vec<(SimTime, u64, FaultCmd)>,
    next_fault: &'a mut usize,
    mailbox_hwm: &'a mut [u64],
    inbound: Vec<Vec<Inbound>>,
    /// Lower bound (ns) on any event the pending inbound lists can
    /// introduce. Cores report their queue minima *before* inbound
    /// application, so the window planner folds this in.
    floor_ns: u64,
    have_inbound: bool,
    la_ns: u64,
    horizon_ns: u64,
}

impl Coordinator<'_> {
    fn next_fault_ns(&self) -> Option<u64> {
        self.faults.get(*self.next_fault).map(|(at, _, _)| at.as_nanos())
    }

    /// Apply every fault due at or before `completed_ns` (and within
    /// the horizon): mutate the shared topology, and emit host-event /
    /// chaos inbounds to the owning cores.
    fn apply_due_faults(&mut self, completed_ns: u64) {
        while let Some(&(at, _, cmd)) = self.faults.get(*self.next_fault) {
            let ns = at.as_nanos();
            if ns > completed_ns || ns >= self.horizon_ns {
                break;
            }
            *self.next_fault += 1;
            self.apply_fault(at, cmd);
        }
    }

    fn note_inbound(&mut self, at_ns: u64) {
        self.have_inbound = true;
        if at_ns < self.floor_ns {
            self.floor_ns = at_ns;
        }
    }

    fn apply_fault(&mut self, at: SimTime, cmd: FaultCmd) {
        let mut topo = self.topo.write().unwrap();
        match cmd {
            FaultCmd::HostDown(h) => {
                if topo.host(h).up {
                    topo.host_mut(h).up = false;
                    topo.bump_epoch();
                    let r = self.part.region_of_host(h);
                    self.inbound[r].push(Inbound::HostEvent { at, host: h, up: false });
                    self.note_inbound(at.as_nanos());
                }
            }
            FaultCmd::HostUp(h) => {
                if !topo.host(h).up {
                    topo.host_mut(h).up = true;
                    topo.bump_epoch();
                    let r = self.part.region_of_host(h);
                    self.inbound[r].push(Inbound::HostEvent { at, host: h, up: true });
                    self.note_inbound(at.as_nanos());
                }
            }
            FaultCmd::NetUp(n, up) => {
                if topo.net(n).up != up {
                    topo.net_mut(n).up = up;
                    topo.bump_epoch();
                }
            }
            FaultCmd::IfaceUp(h, n, up) => {
                if let Some(i) = topo.host_mut(h).interfaces.iter_mut().find(|i| i.net == n) {
                    if i.up != up {
                        i.up = up;
                        topo.bump_epoch();
                    }
                }
            }
            FaultCmd::NetLoss(n, loss) => {
                if topo.net(n).loss_override != loss {
                    topo.net_mut(n).loss_override = loss;
                    topo.bump_epoch();
                }
            }
            FaultCmd::PartitionNet(n, group) => {
                if topo.net(n).partition != group {
                    topo.net_mut(n).partition = group;
                    topo.bump_epoch();
                }
            }
            FaultCmd::Gray(n, gray) => {
                if topo.net(n).gray != gray {
                    topo.net_mut(n).gray = gray;
                    topo.bump_epoch();
                }
            }
            FaultCmd::PacketChaos(pc, seed) => {
                for (r, inb) in self.inbound.iter_mut().enumerate() {
                    inb.push(Inbound::SetChaos { at, chaos: pc, seed: mix_seed(seed, r as u32) });
                }
                self.note_inbound(at.as_nanos());
            }
        }
    }

    /// Plan the next window end (exclusive, in ns), or `None` when the
    /// run is complete. `mins` are the cores' pending-event minima as
    /// reported after the previous window.
    fn plan(&mut self, mins: &[u64]) -> Option<u64> {
        let ev_min = mins.iter().copied().min().unwrap_or(u64::MAX);
        let t_min = ev_min.min(self.floor_ns);
        let fault = self.next_fault_ns().filter(|&f| f < self.horizon_ns);
        let next = t_min.min(fault.unwrap_or(u64::MAX));
        if next >= self.horizon_ns {
            if self.have_inbound {
                // Final apply-only round: pending cross-region arrivals
                // (due after the horizon) still need to land in their
                // cores' queues for a later `run_until`.
                return Some(self.horizon_ns);
            }
            return None;
        }
        let mut end = self.horizon_ns;
        end = end.min(t_min.saturating_add(self.la_ns));
        if let Some(f) = fault {
            end = end.min(f);
        }
        Some(end)
    }

    fn take_inbounds(&mut self) -> Vec<Vec<Inbound>> {
        self.have_inbound = false;
        self.floor_ns = u64::MAX;
        let n = self.inbound.len();
        std::mem::replace(&mut self.inbound, (0..n).map(|_| Vec::new()).collect())
    }

    /// Route a round's outbox items through the deterministic mailbox:
    /// global `(at, src_region, src_seq)` order, then appended to the
    /// destination cores' inbound lists.
    fn route(&mut self, mut items: Vec<MailboxItem>, end_ns: u64) {
        if items.is_empty() {
            return;
        }
        items.sort_by_key(|i| (i.at, i.src_region, i.src_seq));
        let mut counts = vec![0u64; self.inbound.len()];
        for it in items {
            debug_assert!(
                it.at.as_nanos() >= end_ns,
                "cross-region arrival inside the window violates lookahead"
            );
            let r = self.part.region_of_host(it.to.host);
            counts[r] += 1;
            self.note_inbound(it.at.as_nanos());
            self.inbound[r].push(Inbound::Deliver {
                at: it.at,
                from: it.from,
                to: it.to,
                payload: it.payload,
            });
        }
        for (r, c) in counts.iter().enumerate() {
            if *c > self.mailbox_hwm[r] {
                self.mailbox_hwm[r] = *c;
            }
        }
    }
}

/// Per-core slots the worker threads and the coordinator exchange
/// round data through.
struct CoreSlot {
    inbound: Mutex<Vec<Inbound>>,
    outbox: Mutex<Vec<MailboxItem>>,
    min_ns: AtomicU64,
}

// ---------------------------------------------------------------------------
// ShardedWorld
// ---------------------------------------------------------------------------

/// Per-shard load figures for the boundedness oracle: aggregate totals
/// can hide one runaway shard, these cannot.
#[derive(Clone, Copy, Debug)]
pub struct ShardLoad {
    /// Region index.
    pub region: usize,
    /// Events currently pending in this shard's queue.
    pub queue_depth: usize,
    /// Lifetime peak of the shard's heap body slab.
    pub slab_hwm: usize,
    /// High-water mark of the longest single delivery stream.
    pub stream_hwm: usize,
    /// Most mailbox items routed into this shard in one round.
    pub mailbox_hwm: u64,
    /// High-water mark of total pending events.
    pub peak_queue_depth: u64,
    /// Events this shard has executed.
    pub events: u64,
}

/// The sharded simulation world: a drop-in sibling of
/// [`World`](crate::world::World) that runs one [`Partition`] region
/// per core on `threads` OS threads, bit-for-bit identically at any
/// thread count. See the module docs for the execution model.
pub struct ShardedWorld {
    topo: RwLock<Topology>,
    part: Partition,
    cores: Vec<ShardCore>,
    threads: usize,
    now: SimTime,
    faults: Vec<(SimTime, u64, FaultCmd)>,
    next_fault: usize,
    fault_seq: u64,
    faults_sorted: bool,
    mailbox_hwm: Vec<u64>,
    metrics: Registry,
    trace_cap: usize,
}

impl ShardedWorld {
    /// A sharded world over `topo`, seeded for determinism, executing
    /// on up to `threads` worker threads (clamped to the region count;
    /// `<= 1` runs inline). The seed/thread-count split is the whole
    /// point: `threads` never influences results.
    pub fn new(topo: Topology, seed: u64, threads: usize) -> ShardedWorld {
        let part = Partition::of(&topo);
        let cores: Vec<ShardCore> =
            (0..part.regions).map(|r| ShardCore::new(r, &topo, &part, seed)).collect();
        let mailbox_hwm = vec![0; part.regions()];
        ShardedWorld {
            topo: RwLock::new(topo),
            part,
            cores,
            threads: threads.max(1),
            now: SimTime::ZERO,
            faults: Vec::new(),
            next_fault: 0,
            fault_seq: 0,
            faults_sorted: true,
            mailbox_hwm,
            metrics: Registry::new(),
            trace_cap: 0,
        }
    }

    /// The partition (region count, lookahead, host→region map).
    pub fn partition(&self) -> &Partition {
        &self.part
    }

    /// Number of regions.
    pub fn regions(&self) -> usize {
        self.part.regions()
    }

    /// Configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Read access to the shared topology.
    pub fn topology(&self) -> std::sync::RwLockReadGuard<'_, Topology> {
        self.topo.read().unwrap()
    }

    /// Total events executed across all shards.
    pub fn events(&self) -> u64 {
        self.cores.iter().map(|c| c.stats.events).sum()
    }

    /// Total events pending across all shards.
    pub fn queue_depth(&self) -> usize {
        self.cores.iter().map(|c| c.queue.depth()).sum()
    }

    /// Merged delivery statistics (sums; `peak_queue_depth` is the
    /// worst single shard).
    pub fn stats(&self) -> NetStats {
        let mut s = NetStats::default();
        s.reserve_nets(self.topo.read().unwrap().net_count());
        for c in &self.cores {
            s.merge(&c.stats);
        }
        s
    }

    /// Per-shard load/high-water figures for the boundedness oracle.
    pub fn shard_loads(&self) -> Vec<ShardLoad> {
        self.cores
            .iter()
            .enumerate()
            .map(|(r, c)| ShardLoad {
                region: r,
                queue_depth: c.queue.depth(),
                slab_hwm: c.queue.slab_high_water(),
                stream_hwm: c.stream_hwm,
                mailbox_hwm: self.mailbox_hwm[r],
                peak_queue_depth: c.stats.engine.peak_queue_depth,
                events: c.stats.events,
            })
            .collect()
    }

    /// Spawn an actor bound to `(host, port)` on its owning shard.
    /// Delivers [`Event::Start`] at the current time. `None` if the
    /// port is taken or the host id is unknown.
    pub fn spawn(
        &mut self,
        host: HostId,
        port: u16,
        actor: Box<dyn ShardActor>,
    ) -> Option<Endpoint> {
        let r = spawn_region(&self.topo.read().unwrap(), &self.part, host)?;
        self.cores[r].spawn(host, port, actor)
    }

    /// Spawn a boxed [`PortableActor`] (wrapped in [`OnShard`]) on its
    /// owning shard.
    pub fn spawn_portable(
        &mut self,
        host: HostId,
        port: u16,
        actor: Box<dyn PortableActor>,
    ) -> Option<Endpoint> {
        self.spawn(host, port, Box::new(OnShard(actor)))
    }

    /// Allocate an unused ephemeral port on `host`.
    pub fn alloc_port(&mut self, host: HostId) -> u16 {
        let r = self.part.region_of_host(host);
        self.cores[r].alloc_port(host)
    }

    /// Is an actor currently bound at `ep`?
    pub fn is_bound(&self, ep: Endpoint) -> bool {
        self.cores[self.part.region_of_host(ep.host)].bindings.contains_key(&ep)
    }

    /// Borrow the concrete actor state at `ep` (between runs), e.g.
    /// for workload invariant checks. `None` if nothing is bound there
    /// or the bound actor is not a `T`.
    pub fn actor_ref<T: ShardActor + 'static>(&self, ep: Endpoint) -> Option<&T> {
        let core = &self.cores[self.part.region_of_host(ep.host)];
        let id = core.bindings.get(&ep)?;
        let actor = core.slots[id.0 as usize].actor.as_ref()?;
        let actor: &dyn ShardActor = &**actor;
        actor.as_any().downcast_ref::<T>()
    }

    /// Like [`ShardedWorld::actor_ref`], but also looks through an
    /// [`OnShard`] wrapper, so registry-spawned portable actors are
    /// reachable by their concrete type.
    pub fn portable_ref<T: PortableActor + 'static>(&self, ep: Endpoint) -> Option<&T> {
        let core = &self.cores[self.part.region_of_host(ep.host)];
        let id = core.bindings.get(&ep)?;
        let actor = core.slots[id.0 as usize].actor.as_ref()?;
        let actor: &dyn ShardActor = &**actor;
        if let Some(t) = actor.as_any().downcast_ref::<T>() {
            return Some(t);
        }
        let wrapped = actor.as_any().downcast_ref::<OnShard>()?;
        // Deref the box explicitly: calling `as_any` on the `Box`
        // itself would hit the blanket `AsAny` impl for the box type
        // and the downcast would miss the hosted actor.
        let inner: &dyn PortableActor = &*wrapped.0;
        inner.as_any().downcast_ref::<T>()
    }

    /// Schedule a fault command for `at`. Gray faults are clamped to
    /// `latency_factor >= 1.0` (see [`FaultCmd::Gray`]).
    pub fn schedule_fault(&mut self, at: SimTime, cmd: FaultCmd) {
        let cmd = match cmd {
            FaultCmd::Gray(n, Some(mut g)) => {
                if g.latency_factor < 1.0 {
                    g.latency_factor = 1.0;
                }
                FaultCmd::Gray(n, Some(g))
            }
            c => c,
        };
        self.faults.push((at, self.fault_seq, cmd));
        self.fault_seq += 1;
        self.faults_sorted = false;
    }

    /// Translate a chaos plan into the fault timeline, op-for-op with
    /// [`ChaosPlan::apply`] except [`ChaosOp::ProcRestart`] (restart
    /// closures are `Rc`-bound to the single-threaded world; sharded
    /// soaks model restarts at the workload level instead).
    pub fn apply_chaos_plan(&mut self, plan: &ChaosPlan, binding: &ChaosBinding) {
        if let Some(pc) = plan.packet {
            self.schedule_fault(SimTime::ZERO, FaultCmd::PacketChaos(Some(pc), plan.packet_seed()));
            self.schedule_fault(plan.packet_until, FaultCmd::PacketChaos(None, 0));
        }
        for op in &plan.ops {
            match *op {
                ChaosOp::HostFlap { host, at, down_for } => {
                    if binding.hosts.is_empty() {
                        continue;
                    }
                    let h = binding.hosts[host as usize % binding.hosts.len()];
                    self.schedule_fault(at, FaultCmd::HostDown(h));
                    self.schedule_fault(at + down_for, FaultCmd::HostUp(h));
                }
                ChaosOp::NetFlap { net, at, down_for } => {
                    if binding.nets.is_empty() {
                        continue;
                    }
                    let n = binding.nets[net as usize % binding.nets.len()];
                    self.schedule_fault(at, FaultCmd::NetUp(n, false));
                    self.schedule_fault(at + down_for, FaultCmd::NetUp(n, true));
                }
                ChaosOp::IfaceFlap { iface, at, down_for } => {
                    if binding.ifaces.is_empty() {
                        continue;
                    }
                    let (h, n) = binding.ifaces[iface as usize % binding.ifaces.len()];
                    self.schedule_fault(at, FaultCmd::IfaceUp(h, n, false));
                    self.schedule_fault(at + down_for, FaultCmd::IfaceUp(h, n, true));
                }
                ChaosOp::Gray { net, at, duration, latency_factor, bandwidth_factor } => {
                    if binding.nets.is_empty() {
                        continue;
                    }
                    let n = binding.nets[net as usize % binding.nets.len()];
                    let g = GrayLevel { latency_factor, bandwidth_factor };
                    self.schedule_fault(at, FaultCmd::Gray(n, Some(g)));
                    self.schedule_fault(at + duration, FaultCmd::Gray(n, None));
                }
                ChaosOp::LossBurst { net, at, duration, loss } => {
                    if binding.nets.is_empty() {
                        continue;
                    }
                    let n = binding.nets[net as usize % binding.nets.len()];
                    self.schedule_fault(at, FaultCmd::NetLoss(n, Some(loss)));
                    self.schedule_fault(at + duration, FaultCmd::NetLoss(n, None));
                }
                ChaosOp::Partition { net, at, duration, group } => {
                    if binding.nets.is_empty() {
                        continue;
                    }
                    let n = binding.nets[net as usize % binding.nets.len()];
                    self.schedule_fault(at, FaultCmd::PartitionNet(n, group));
                    self.schedule_fault(at + duration, FaultCmd::PartitionNet(n, 0));
                }
                ChaosOp::ProcRestart { .. } => {}
            }
        }
    }

    /// Enable per-shard trace rings of `cap` events each (a fresh ring
    /// per call, like `trace::enable`).
    pub fn enable_trace(&mut self, cap: usize) {
        self.trace_cap = cap.max(1);
        for c in &mut self.cores {
            c.ring.enable(cap);
        }
    }

    /// Render the last `n` retained trace events across all shards,
    /// merged in `(at, region, seq)` order.
    pub fn render_trace(&self, n: usize) -> String {
        let mut evs: Vec<ShardTraceEvent> =
            self.cores.iter().flat_map(|c| c.ring.iter_ordered().copied()).collect();
        evs.sort_by_key(|e| (e.at, e.region, e.seq));
        let total: u64 = self.cores.iter().map(|c| c.ring.seq).sum();
        let dropped: u64 = self.cores.iter().map(|c| c.ring.dropped).sum();
        let shown = evs.len().min(n);
        let mut out =
            format!("shard flight recorder: {total} events total, {dropped} overwritten, showing last {shown}\n");
        for ev in evs.iter().skip(evs.len() - shown) {
            out.push_str(&format!(
                "  r{:<4} #{:<8} t={:>12.6}ms  {:?}\n",
                ev.region,
                ev.seq,
                ev.at.as_secs_f64() * 1e3,
                ev.kind
            ));
        }
        out
    }

    /// Run events with timestamps `<= t`, then set every clock to `t`.
    pub fn run_until(&mut self, t: SimTime) {
        self.run_rounds(t);
    }

    /// Run for a span of simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let t = self.now + d;
        self.run_rounds(t);
    }

    /// FNV-1a digest of every shard's behavioural counters: events,
    /// traffic, drops, chaos injections, queue sequence numbers,
    /// clocks, cross-shard emissions and per-net bytes. Two runs are
    /// behaviourally identical iff their digests match — this is what
    /// the differential determinism tests and the check.sh
    /// `shard-determinism` gate compare across thread counts.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let put = |hh: &mut u64, v: u64| {
            for b in v.to_le_bytes() {
                *hh = (*hh ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        put(&mut h, self.cores.len() as u64);
        put(&mut h, self.now.as_nanos());
        for c in &self.cores {
            put(&mut h, c.stats.events);
            put(&mut h, c.stats.sent);
            put(&mut h, c.stats.delivered);
            for r in DropReason::ALL {
                put(&mut h, c.stats.drops(r));
            }
            put(&mut h, c.stats.chaos.corrupted);
            put(&mut h, c.stats.chaos.duplicated);
            put(&mut h, c.stats.chaos.reordered);
            put(&mut h, c.queue.seqs_issued());
            put(&mut h, c.out_seq);
            put(&mut h, c.now.as_nanos());
            for (net, bytes) in c.stats.bytes_by_net() {
                put(&mut h, net.index() as u64);
                put(&mut h, bytes);
            }
        }
        h
    }

    /// Mirror merged and per-shard counters into the registry: the
    /// same 16 counters, peak-depth gauge, latency histogram and
    /// per-net byte counters as [`World::sync_metrics`](crate::world::World::sync_metrics)
    /// (crate::world::World::sync_metrics), plus per-shard
    /// `shard.<i>.{slab_hwm,stream_hwm,mailbox_hwm,peak_queue_depth}`
    /// gauges so the boundedness oracle sees each shard, not just the
    /// aggregate.
    pub fn sync_metrics(&mut self) {
        let s = self.stats();
        let m = &mut self.metrics;
        let pairs: [(&str, u64); 16] = [
            ("net.sent", s.sent),
            ("net.delivered", s.delivered),
            ("net.events", s.events),
            ("net.drop.loss", s.drops(DropReason::Loss)),
            ("net.drop.no_route", s.drops(DropReason::NoRoute)),
            ("net.drop.host_down", s.drops(DropReason::HostDown)),
            ("net.drop.no_listener", s.drops(DropReason::NoListener)),
            ("net.drop.too_big", s.drops(DropReason::TooBig)),
            ("net.chaos.corrupted", s.chaos.corrupted),
            ("net.chaos.duplicated", s.chaos.duplicated),
            ("net.chaos.reordered", s.chaos.reordered),
            ("engine.heap_pops", s.engine.heap_pops),
            ("engine.now_pops", s.engine.now_pops),
            ("engine.stream_pops", s.engine.stream_pops),
            ("engine.route_cache_hits", s.engine.route_cache_hits),
            ("engine.route_cache_misses", s.engine.route_cache_misses),
        ];
        for (name, v) in pairs {
            let id = m.counter(name);
            m.set_counter(id, v);
        }
        let depth = m.gauge("engine.peak_queue_depth");
        m.set(depth, s.engine.peak_queue_depth);
        let mut merged_lat = Log2Histogram::default();
        for c in &self.cores {
            merged_lat.merge(&c.h_latency);
        }
        let hid = m.histogram("net.delivery_latency_ns");
        m.set_histo(hid, &merged_lat);
        for (net, bytes) in s.bytes_by_net() {
            let id = m.counter(&format!("net.bytes.{}", net.index()));
            m.set_counter(id, bytes);
        }
        let count = m.gauge("shard.count");
        m.set(count, self.cores.len() as u64);
        let la = m.gauge("shard.lookahead_ns");
        m.set(la, self.part.la_ns);
        for (r, c) in self.cores.iter().enumerate() {
            for (name, v) in [
                (format!("shard.{r}.slab_hwm"), c.queue.slab_high_water() as u64),
                (format!("shard.{r}.stream_hwm"), c.stream_hwm as u64),
                (format!("shard.{r}.mailbox_hwm"), self.mailbox_hwm[r]),
                (format!("shard.{r}.peak_queue_depth"), c.stats.engine.peak_queue_depth),
            ] {
                let id = m.gauge(&name);
                m.set(id, v);
            }
        }
        if self.trace_cap > 0 {
            let mut kinds = [0u64; TraceKind::COUNT];
            let mut dropped = 0u64;
            for c in &self.cores {
                for (k, v) in kinds.iter_mut().zip(c.ring.kind_counts.iter()) {
                    *k += v;
                }
                dropped += c.ring.dropped;
            }
            for (name, v) in TraceKind::NAMES.iter().zip(kinds) {
                let id = m.counter(&format!("trace.{name}"));
                m.set_counter(id, v);
            }
            let id = m.counter("trace.ring_dropped");
            m.set_counter(id, dropped);
        }
    }

    /// Sync and render the registry as a JSON object string.
    pub fn metrics_json(&mut self, indent: usize) -> String {
        self.sync_metrics();
        self.metrics.render_json(indent)
    }

    /// The barrier-round driver. Inline when effective threads ≤ 1,
    /// otherwise a scoped thread pool; both paths run the same
    /// per-core methods against the same coordinator decisions, which
    /// is the determinism argument.
    fn run_rounds(&mut self, t: SimTime) {
        if !self.faults_sorted {
            self.faults[self.next_fault..].sort_by_key(|&(at, seq, _)| (at, seq));
            self.faults_sorted = true;
        }
        let horizon_ns = t.as_nanos().saturating_add(1);
        let regions = self.cores.len();
        let threads = self.threads.min(regions).max(1);
        let mut coord = Coordinator {
            topo: &self.topo,
            part: &self.part,
            faults: &mut self.faults,
            next_fault: &mut self.next_fault,
            mailbox_hwm: &mut self.mailbox_hwm,
            inbound: (0..regions).map(|_| Vec::new()).collect(),
            floor_ns: u64::MAX,
            have_inbound: false,
            la_ns: self.part.la_ns,
            horizon_ns,
        };
        let mut mins: Vec<u64> = self.cores.iter().map(|c| c.peek_ns()).collect();
        if threads <= 1 {
            let mut completed = 0u64;
            loop {
                coord.apply_due_faults(completed);
                let Some(end) = coord.plan(&mins) else { break };
                let inbs = coord.take_inbounds();
                {
                    let topo = self.topo.read().unwrap();
                    for (core, inb) in self.cores.iter_mut().zip(inbs) {
                        core.run_round(&topo, &self.part, inb, end);
                    }
                }
                completed = end;
                let mut items = Vec::new();
                for (i, core) in self.cores.iter_mut().enumerate() {
                    items.append(&mut core.outbox);
                    mins[i] = core.peek_ns();
                }
                coord.route(items, end);
            }
        } else {
            let slots: Vec<CoreSlot> = (0..regions)
                .map(|_| CoreSlot {
                    inbound: Mutex::new(Vec::new()),
                    outbox: Mutex::new(Vec::new()),
                    min_ns: AtomicU64::new(0),
                })
                .collect();
            let end_ns = AtomicU64::new(0);
            let stop = AtomicBool::new(false);
            let chunk = regions.div_ceil(threads);
            // chunks_mut may yield fewer chunks than `threads` (e.g.
            // 4 regions on 3 threads → two chunks of 2) — size the
            // barrier by the real worker count or the round deadlocks.
            let workers = regions.div_ceil(chunk);
            let barrier = Barrier::new(workers + 1);
            let part = &self.part;
            let topo = &self.topo;
            std::thread::scope(|scope| {
                for (w, cores) in self.cores.chunks_mut(chunk).enumerate() {
                    let base = w * chunk;
                    let (slots, end_ns, stop, barrier) = (&slots, &end_ns, &stop, &barrier);
                    scope.spawn(move || loop {
                        barrier.wait(); // coordinator published end/stop + inbounds
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        let end = end_ns.load(Ordering::Acquire);
                        {
                            let topo = topo.read().unwrap();
                            for (k, core) in cores.iter_mut().enumerate() {
                                let slot = &slots[base + k];
                                let inb = std::mem::take(&mut *slot.inbound.lock().unwrap());
                                core.run_round(&topo, part, inb, end);
                                *slot.outbox.lock().unwrap() = std::mem::take(&mut core.outbox);
                                slot.min_ns.store(core.peek_ns(), Ordering::Release);
                            }
                        }
                        barrier.wait(); // window done, results in the slots
                    });
                }
                let mut completed = 0u64;
                loop {
                    coord.apply_due_faults(completed);
                    let Some(end) = coord.plan(&mins) else {
                        stop.store(true, Ordering::Release);
                        barrier.wait();
                        break;
                    };
                    for (slot, inb) in slots.iter().zip(coord.take_inbounds()) {
                        *slot.inbound.lock().unwrap() = inb;
                    }
                    end_ns.store(end, Ordering::Release);
                    barrier.wait(); // release the round
                    barrier.wait(); // wait for every core's window
                    completed = end;
                    let mut items = Vec::new();
                    for (i, slot) in slots.iter().enumerate() {
                        items.append(&mut slot.outbox.lock().unwrap());
                        mins[i] = slot.min_ns.load(Ordering::Acquire);
                    }
                    coord.route(items, end);
                }
            });
        }
        for core in &mut self.cores {
            if t > core.now {
                core.now = t;
            }
        }
        if t > self.now {
            self.now = t;
        }
        self.faults.drain(..self.next_fault);
        self.next_fault = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::ChaosShape;
    use crate::medium::Medium;
    use crate::topology::HostCfg;

    /// Workload actor: sends `burst` packets to `peer` on start and on
    /// every timer tick, counts what comes back.
    struct Pinger {
        peer: Endpoint,
        burst: usize,
        ticks: u32,
        got: u64,
        echo: bool,
    }

    impl ShardActor for Pinger {
        fn on_event(&mut self, ctx: &mut ShardCtx<'_>, event: Event) {
            match event {
                Event::Start => {
                    for i in 0..self.burst {
                        ctx.send(self.peer, Bytes::from(vec![i as u8; 64]));
                    }
                    if self.ticks > 0 {
                        ctx.set_timer(SimDuration::from_millis(1), 1);
                    }
                }
                Event::Timer { .. } => {
                    self.ticks -= 1;
                    for i in 0..self.burst {
                        ctx.send(self.peer, Bytes::from(vec![i as u8; 64]));
                    }
                    if self.ticks > 0 {
                        ctx.set_timer(SimDuration::from_millis(1), 1);
                    }
                }
                Event::Packet { from, payload } => {
                    self.got += 1;
                    if self.echo {
                        ctx.send(from, payload);
                    }
                }
                _ => {}
            }
        }
    }

    /// `clusters` routable LANs of `per` hosts each: one region per
    /// LAN, cross-region traffic over routed two-LAN paths.
    fn cluster_topology(clusters: usize, per: usize) -> Topology {
        let mut t = Topology::new();
        for c in 0..clusters {
            let medium = Medium {
                name: "lan",
                bandwidth_bps: 1_000_000_000,
                latency: SimDuration::from_micros(200),
                loss: 0.0,
                mtu: 9000,
                per_packet_overhead: 38,
                shared_bus: false,
            };
            let net = t.add_network("lan", medium.clone(), true);
            for i in 0..per {
                let h = t.add_host(HostCfg::named(&format!("h{c}x{i}")));
                t.attach(h, net);
            }
        }
        t
    }

    fn pinger_world(seed: u64, threads: usize) -> ShardedWorld {
        let topo = cluster_topology(4, 4);
        let mut w = ShardedWorld::new(topo, seed, threads);
        // Every host pings the "next" host — 1/4 of pairs cross regions.
        let hosts = 16u32;
        for i in 0..hosts {
            let me = HostId(i);
            let peer = Endpoint::new(HostId((i + 1) % hosts), 5);
            w.spawn(me, 5, Box::new(Pinger { peer, burst: 3, ticks: 10, got: 0, echo: false }));
        }
        w
    }

    #[test]
    fn partition_finds_connected_components() {
        let topo = cluster_topology(4, 4);
        let part = Partition::of(&topo);
        assert_eq!(part.regions(), 4);
        // Hosts on the same LAN share a region; different LANs differ.
        assert_eq!(part.region_of_host(HostId(0)), part.region_of_host(HostId(3)));
        assert_ne!(part.region_of_host(HostId(0)), part.region_of_host(HostId(4)));
        // Lookahead = 2 × 200µs.
        assert_eq!(part.lookahead(), SimDuration::from_micros(400));

        // A router host attached to two LANs merges them.
        let mut t = cluster_topology(2, 2);
        let router = t.add_host(HostCfg::named("router"));
        let nets: Vec<NetId> = t.nets().map(|n| n.id).collect();
        for n in nets {
            t.attach(router, n);
        }
        assert_eq!(Partition::of(&t).regions(), 1);
    }

    #[test]
    fn isolated_host_gets_own_region() {
        let mut t = cluster_topology(2, 2);
        let _lonely = t.add_host(HostCfg::named("lonely"));
        assert_eq!(Partition::of(&t).regions(), 3);
    }

    #[test]
    fn cross_region_traffic_delivered() {
        let mut w = pinger_world(7, 1);
        w.run_for(SimDuration::from_millis(50));
        let s = w.stats();
        assert_eq!(s.sent, 16 * 3 * 11, "every burst sent");
        assert_eq!(s.delivered, s.sent, "lossless LANs deliver everything");
        assert_eq!(w.queue_depth(), 0, "quiesced");
        // Each Pinger saw its predecessor's bursts.
        for i in 0..16u32 {
            let p = w.actor_ref::<Pinger>(Endpoint::new(HostId(i), 5)).unwrap();
            assert_eq!(p.got, 33, "host {i}");
        }
    }

    #[test]
    fn thread_count_never_changes_results() {
        let base = {
            let mut w = pinger_world(42, 1);
            w.run_for(SimDuration::from_millis(50));
            (w.digest(), w.metrics_json(0))
        };
        for threads in [2, 3, 4, 8] {
            let mut w = pinger_world(42, threads);
            w.run_for(SimDuration::from_millis(50));
            assert_eq!(w.digest(), base.0, "digest diverged at {threads} threads");
            assert_eq!(w.metrics_json(0), base.1, "metrics diverged at {threads} threads");
        }
    }

    #[test]
    fn faults_flap_hosts_deterministically() {
        let run = |threads: usize| {
            let mut w = pinger_world(9, threads);
            let victim = HostId(5);
            w.schedule_fault(SimTime::from_nanos(2_000_000), FaultCmd::HostDown(victim));
            w.schedule_fault(SimTime::from_nanos(6_000_000), FaultCmd::HostUp(victim));
            w.run_for(SimDuration::from_millis(50));
            // Route selection excludes down hosts, so send-time drops
            // surface as NoRoute; HostDown catches in-flight packets.
            let drops =
                w.stats().drops(DropReason::NoRoute) + w.stats().drops(DropReason::HostDown);
            (w.digest(), drops, w.stats().delivered)
        };
        let a = run(1);
        assert!(a.1 > 0, "down host must drop packets");
        assert!(a.2 > 0, "recovery resumes delivery");
        assert_eq!(run(4), a, "fault timeline must be thread-count independent");
    }

    #[test]
    fn chaos_plan_replays_bit_for_bit_at_any_thread_count() {
        let shape = ChaosShape { hosts: 8, nets: 4, ifaces: 8, procs: 0, ..ChaosShape::default() };
        let plan = ChaosPlan::generate(0xC0FFEE, &shape);
        let binding = ChaosBinding {
            hosts: (0..16).map(HostId).collect(),
            nets: (0..4).map(NetId).collect(),
            ifaces: (0..16).map(|i| (HostId(i), NetId(i / 4))).collect(),
            procs: Vec::new(),
        };
        let run = |threads: usize| {
            let mut w = pinger_world(11, threads);
            w.apply_chaos_plan(&plan, &binding);
            w.run_for(SimDuration::from_millis(80));
            w.digest()
        };
        let d1 = run(1);
        assert_eq!(run(2), d1);
        assert_eq!(run(8), d1);
    }

    #[test]
    fn echo_round_trips_cross_region() {
        let topo = cluster_topology(2, 2);
        let mut w = ShardedWorld::new(topo, 3, 2);
        let a = Endpoint::new(HostId(0), 5);
        let b = Endpoint::new(HostId(2), 5); // other region
        w.spawn(
            b.host,
            b.port,
            Box::new(Pinger { peer: a, burst: 0, ticks: 0, got: 0, echo: true }),
        );
        w.spawn(
            a.host,
            a.port,
            Box::new(Pinger { peer: b, burst: 5, ticks: 0, got: 0, echo: false }),
        );
        w.run_for(SimDuration::from_millis(20));
        assert_eq!(w.actor_ref::<Pinger>(b).unwrap().got, 5, "b received the burst");
        assert_eq!(w.actor_ref::<Pinger>(a).unwrap().got, 5, "a received the echoes");
        // Cross-region arrivals respect the routed-path latency floor
        // (= the lookahead bound).
        let s = w.stats();
        assert_eq!(s.delivered, 10);
    }

    #[test]
    fn single_region_world_runs_inline_to_horizon() {
        let topo = cluster_topology(1, 4);
        let mut w = ShardedWorld::new(topo, 1, 8);
        assert_eq!(w.regions(), 1);
        let a = Endpoint::new(HostId(0), 5);
        let b = Endpoint::new(HostId(1), 5);
        w.spawn(
            b.host,
            b.port,
            Box::new(Pinger { peer: a, burst: 0, ticks: 0, got: 0, echo: false }),
        );
        w.spawn(
            a.host,
            a.port,
            Box::new(Pinger { peer: b, burst: 2, ticks: 0, got: 0, echo: false }),
        );
        w.run_for(SimDuration::from_millis(5));
        assert_eq!(w.actor_ref::<Pinger>(b).unwrap().got, 2);
        assert_eq!(w.now(), SimTime::from_nanos(5_000_000));
    }

    #[test]
    fn packet_chaos_duplicates_cross_region_packets() {
        let topo = cluster_topology(2, 2);
        let mut w = ShardedWorld::new(topo, 5, 2);
        w.schedule_fault(
            SimTime::ZERO,
            FaultCmd::PacketChaos(
                Some(PacketChaos {
                    corrupt: 0.0,
                    duplicate: 1.0,
                    reorder: 0.0,
                    jitter: SimDuration::from_millis(1),
                }),
                99,
            ),
        );
        let b = Endpoint::new(HostId(2), 5);
        w.spawn(
            b.host,
            b.port,
            Box::new(Pinger {
                peer: Endpoint::new(HostId(0), 5),
                burst: 0,
                ticks: 0,
                got: 0,
                echo: false,
            }),
        );
        w.spawn(
            HostId(0),
            5,
            Box::new(Pinger { peer: b, burst: 4, ticks: 0, got: 0, echo: false }),
        );
        w.run_for(SimDuration::from_millis(20));
        assert_eq!(w.stats().chaos.duplicated, 4);
        assert_eq!(w.actor_ref::<Pinger>(b).unwrap().got, 8, "every packet arrives twice");
    }

    #[test]
    fn shard_loads_and_metrics_expose_per_shard_hwms() {
        let mut w = pinger_world(13, 2);
        w.run_for(SimDuration::from_millis(50));
        let loads = w.shard_loads();
        assert_eq!(loads.len(), 4);
        assert!(loads.iter().all(|l| l.queue_depth == 0), "quiesced");
        assert!(loads.iter().any(|l| l.slab_hwm > 0), "timers went through the heap");
        assert!(loads.iter().any(|l| l.mailbox_hwm > 0), "cross-region traffic flowed");
        let json = w.metrics_json(0);
        assert!(json.contains("\"shard.0.slab_hwm\""), "{json}");
        assert!(json.contains("\"shard.3.mailbox_hwm\""), "{json}");
        assert!(json.contains("\"shard.count\": 4"), "{json}");
    }

    #[test]
    fn trace_ring_merges_across_shards() {
        let mut w = pinger_world(17, 2);
        w.enable_trace(64);
        w.run_for(SimDuration::from_millis(5));
        let dump = w.render_trace(16);
        assert!(dump.contains("shard flight recorder"), "{dump}");
        assert!(dump.contains("Send"), "{dump}");
        let json = w.metrics_json(0);
        assert!(json.contains("\"trace.send\""), "{json}");
    }
}
