//! Declarative, seed-driven fault injection.
//!
//! A [`ChaosPlan`] is a value: a list of timed fault operations plus an
//! optional per-packet injection level, generated entirely from one
//! seed. Applying the same plan to the same world with the same
//! workload seed replays bit-for-bit — the tuple `(plan seed, workload
//! seed)` identifies a run completely, which is what makes a violating
//! run shrinkable and a shrunk plan a permanent regression test.
//!
//! Three layers:
//!
//! * [`PacketChaos`] — per-packet corruption / duplication / reordering
//!   applied inside the world's delivery path (from its own RNG stream,
//!   so enabling chaos never perturbs the workload's random draws);
//! * [`ChaosOp`] — timed topology faults: host / net / interface flaps,
//!   gray links, loss bursts, partitions and process-level restarts.
//!   Every op restores what it broke, so a plan *quiesces*: after
//!   [`ChaosPlan::quiesce_at`] the topology is back to its pristine
//!   state and the oracles may demand recovery;
//! * [`ChaosPlan::generate`] / [`ChaosPlan::apply`] / [`shrink_plan`] —
//!   the seeded generator, the scheduler (binding abstract indices to a
//!   concrete world via [`ChaosBinding`]), and a greedy minimizer for
//!   violating plans (the vendored proptest has no shrinking).

use std::rc::Rc;

use snipe_util::id::{HostId, NetId};
use snipe_util::rng::Xoshiro256;
use snipe_util::time::{SimDuration, SimTime};

use crate::topology::GrayLevel;
use crate::world::World;

/// Per-packet fault injection levels. Installed on a world via
/// [`World::set_packet_chaos`]; each probability is checked
/// independently per delivered packet.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PacketChaos {
    /// Probability a payload gets 1–3 random bit flips. Corrupt frames
    /// are still delivered — the wire layer's checksum must reject
    /// them without panicking.
    pub corrupt: f64,
    /// Probability an extra copy of the packet is injected at a
    /// jittered arrival time.
    pub duplicate: f64,
    /// Probability the packet's own arrival is delayed by random
    /// jitter, letting later sends overtake it.
    pub reorder: f64,
    /// Maximum extra delay for duplicated/reordered deliveries.
    pub jitter: SimDuration,
}

impl PacketChaos {
    /// No injection at all (useful as a shrink target).
    pub fn none() -> PacketChaos {
        PacketChaos {
            corrupt: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            jitter: SimDuration::from_millis(1),
        }
    }

    /// Does this level actually do anything?
    pub fn is_noop(&self) -> bool {
        self.corrupt == 0.0 && self.duplicate == 0.0 && self.reorder == 0.0
    }
}

/// One timed fault. Targets are abstract indices resolved against a
/// [`ChaosBinding`] at apply time (modulo the binding's vector length),
/// so a plan generated for "some host, some net" runs against any
/// world shape.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ChaosOp {
    /// Crash host `host` at `at`, repair it `down_for` later.
    HostFlap { host: u8, at: SimTime, down_for: SimDuration },
    /// Take a network segment down and back up.
    NetFlap { net: u8, at: SimTime, down_for: SimDuration },
    /// Flap one host interface (the host stays up, multi-path traffic
    /// must reroute).
    IfaceFlap { iface: u8, at: SimTime, down_for: SimDuration },
    /// Degrade a network without loss: latency multiplied, bandwidth
    /// divided — the failure mode timeout escalation handles worst.
    Gray { net: u8, at: SimTime, duration: SimDuration, latency_factor: f64, bandwidth_factor: f64 },
    /// Raise the loss rate on a network for a while.
    LossBurst { net: u8, at: SimTime, duration: SimDuration, loss: f64 },
    /// Move a network into partition `group`, heal back to 0.
    Partition { net: u8, at: SimTime, duration: SimDuration, group: u32 },
    /// Restart one workload process (crash + respawn, host stays up) —
    /// distinct from whole-host failure.
    ProcRestart { proc: u8, at: SimTime },
}

impl ChaosOp {
    /// When this op has fully restored what it broke.
    fn end(&self) -> SimTime {
        match *self {
            ChaosOp::HostFlap { at, down_for, .. }
            | ChaosOp::NetFlap { at, down_for, .. }
            | ChaosOp::IfaceFlap { at, down_for, .. } => at + down_for,
            ChaosOp::Gray { at, duration, .. }
            | ChaosOp::LossBurst { at, duration, .. }
            | ChaosOp::Partition { at, duration, .. } => at + duration,
            ChaosOp::ProcRestart { at, .. } => at,
        }
    }
}

/// Bounds for the plan generator: how big the target world is and how
/// vicious the packet-level injection may get.
#[derive(Clone, Copy, Debug)]
pub struct ChaosShape {
    /// Length of the run; all faults start in `[5%, 80%]` of it and
    /// quiesce by `90%`, leaving the tail for recovery.
    pub horizon: SimDuration,
    /// How many hosts may be crash-flapped (0 disables [`ChaosOp::HostFlap`]).
    pub hosts: u8,
    /// How many networks may be flapped / grayed / lossy / partitioned.
    pub nets: u8,
    /// How many (host, net) interfaces may be flapped.
    pub ifaces: u8,
    /// How many processes may be restarted (0 disables [`ChaosOp::ProcRestart`]).
    pub procs: u8,
    /// Upper bound on ops per plan (at least 1 is always generated).
    pub max_ops: u8,
    /// Probability the plan enables per-packet chaos at all.
    pub packet_prob: f64,
    /// Per-packet probability ceilings.
    pub corrupt_max: f64,
    /// See `corrupt_max`.
    pub duplicate_max: f64,
    /// See `corrupt_max`.
    pub reorder_max: f64,
    /// Ceiling on reorder/duplicate jitter.
    pub jitter_max: SimDuration,
}

impl Default for ChaosShape {
    fn default() -> ChaosShape {
        ChaosShape {
            horizon: SimDuration::from_secs(30),
            hosts: 0,
            nets: 1,
            ifaces: 0,
            procs: 0,
            max_ops: 6,
            packet_prob: 0.7,
            corrupt_max: 0.05,
            duplicate_max: 0.1,
            reorder_max: 0.1,
            jitter_max: SimDuration::from_millis(50),
        }
    }
}

/// A process-restart action: kills and respawns one workload process
/// in whatever way the workload defines.
pub type RestartFn = Rc<dyn Fn(&mut World)>;

/// Maps a plan's abstract target indices onto a concrete world.
/// Indices wrap modulo the vector length; an empty vector silently
/// skips ops of that class (e.g. a workload that cannot tolerate host
/// crashes binds no hosts).
#[derive(Default)]
pub struct ChaosBinding {
    /// Hosts eligible for [`ChaosOp::HostFlap`].
    pub hosts: Vec<HostId>,
    /// Networks eligible for net-level ops.
    pub nets: Vec<NetId>,
    /// `(host, net)` interfaces eligible for [`ChaosOp::IfaceFlap`].
    pub ifaces: Vec<(HostId, NetId)>,
    /// Restart actions for [`ChaosOp::ProcRestart`].
    pub procs: Vec<RestartFn>,
}

/// A complete, replayable fault schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosPlan {
    /// The seed this plan was generated from (kept for replay lines).
    pub plan_seed: u64,
    /// Per-packet injection, active from t=0 until `packet_until`.
    pub packet: Option<PacketChaos>,
    /// When per-packet chaos switches off.
    pub packet_until: SimTime,
    /// Timed topology faults.
    pub ops: Vec<ChaosOp>,
}

impl ChaosPlan {
    /// Generate a plan from a seed. Same `(seed, shape)` → same plan,
    /// always.
    pub fn generate(plan_seed: u64, shape: &ChaosShape) -> ChaosPlan {
        let mut rng = Xoshiro256::seed_from_u64(plan_seed);
        let h = shape.horizon.as_nanos().max(1);
        let start_of = |rng: &mut Xoshiro256| {
            SimTime::from_nanos((h as f64 * (0.05 + 0.75 * rng.gen_f64())) as u64)
        };
        // Faults quiesce by 90% of the horizon so oracles can demand
        // recovery in the tail.
        let limit = SimTime::from_nanos((h as f64 * 0.9) as u64);
        let span_of = |rng: &mut Xoshiro256, at: SimTime| {
            let d = SimDuration::from_nanos(((h as f64) * (0.02 + 0.15 * rng.gen_f64())) as u64);
            if at + d > limit {
                limit.since(at)
            } else {
                d
            }
        };

        // Which op classes the shape allows.
        let mut kinds: Vec<u8> = Vec::new();
        if shape.hosts > 0 {
            kinds.push(0);
        }
        if shape.nets > 0 {
            kinds.extend([1, 3, 4, 5]);
        }
        if shape.ifaces > 0 {
            kinds.push(2);
        }
        if shape.procs > 0 {
            kinds.push(6);
        }

        let mut ops = Vec::new();
        if !kinds.is_empty() {
            let n_ops = rng.gen_range_inclusive(1, shape.max_ops.max(1) as u64);
            for _ in 0..n_ops {
                let kind = kinds[rng.gen_range(kinds.len() as u64) as usize];
                let at = start_of(&mut rng);
                let op = match kind {
                    0 => ChaosOp::HostFlap {
                        host: (rng.gen_range(shape.hosts as u64)) as u8,
                        at,
                        down_for: span_of(&mut rng, at),
                    },
                    1 => ChaosOp::NetFlap {
                        net: (rng.gen_range(shape.nets as u64)) as u8,
                        at,
                        down_for: span_of(&mut rng, at),
                    },
                    2 => ChaosOp::IfaceFlap {
                        iface: (rng.gen_range(shape.ifaces as u64)) as u8,
                        at,
                        down_for: span_of(&mut rng, at),
                    },
                    3 => ChaosOp::Gray {
                        net: (rng.gen_range(shape.nets as u64)) as u8,
                        at,
                        duration: span_of(&mut rng, at),
                        latency_factor: 1.5 + 18.5 * rng.gen_f64(),
                        bandwidth_factor: 0.01 + 0.49 * rng.gen_f64(),
                    },
                    4 => ChaosOp::LossBurst {
                        net: (rng.gen_range(shape.nets as u64)) as u8,
                        at,
                        duration: span_of(&mut rng, at),
                        loss: 0.05 + 0.55 * rng.gen_f64(),
                    },
                    5 => ChaosOp::Partition {
                        net: (rng.gen_range(shape.nets as u64)) as u8,
                        at,
                        duration: span_of(&mut rng, at),
                        group: 1 + rng.gen_range(3) as u32,
                    },
                    _ => {
                        ChaosOp::ProcRestart { proc: (rng.gen_range(shape.procs as u64)) as u8, at }
                    }
                };
                ops.push(op);
            }
        }

        let packet = if rng.gen_bool(shape.packet_prob) {
            let jmax = shape.jitter_max.as_nanos().max(1);
            Some(PacketChaos {
                corrupt: shape.corrupt_max * rng.gen_f64(),
                duplicate: shape.duplicate_max * rng.gen_f64(),
                reorder: shape.reorder_max * rng.gen_f64(),
                jitter: SimDuration::from_nanos(1 + rng.gen_range(jmax)),
            })
        } else {
            None
        };

        ChaosPlan {
            plan_seed,
            packet,
            packet_until: SimTime::from_nanos((h as f64 * 0.85) as u64),
            ops,
        }
    }

    /// The seed the world's packet-chaos RNG is reseeded with: derived
    /// from the plan seed so the injection pattern is part of the
    /// plan's identity, never of the workload's.
    pub fn packet_seed(&self) -> u64 {
        self.plan_seed ^ 0x9E37_79B9_7F4A_7C15
    }

    /// When every fault (including packet chaos) has been restored.
    pub fn quiesce_at(&self) -> SimTime {
        let mut q = if self.packet.is_some() { self.packet_until } else { SimTime::ZERO };
        for op in &self.ops {
            q = q.max(op.end());
        }
        q
    }

    /// Install the plan on a world: packet chaos switches on now (and
    /// off at `packet_until`), every op is scheduled through
    /// [`World::schedule_fn`]. Ops whose target class has an empty
    /// binding vector are skipped.
    pub fn apply(&self, world: &mut World, binding: &ChaosBinding) {
        if let Some(pc) = self.packet {
            world.set_packet_chaos(Some(pc), self.packet_seed());
            world.schedule_fn(self.packet_until, |w| w.set_packet_chaos(None, 0));
        }
        for op in &self.ops {
            match *op {
                ChaosOp::HostFlap { host, at, down_for } => {
                    if binding.hosts.is_empty() {
                        continue;
                    }
                    let h = binding.hosts[host as usize % binding.hosts.len()];
                    world.schedule_fn(at, move |w| w.host_down(h));
                    world.schedule_fn(at + down_for, move |w| w.host_up(h));
                }
                ChaosOp::NetFlap { net, at, down_for } => {
                    if binding.nets.is_empty() {
                        continue;
                    }
                    let n = binding.nets[net as usize % binding.nets.len()];
                    world.schedule_fn(at, move |w| w.set_net_up(n, false));
                    world.schedule_fn(at + down_for, move |w| w.set_net_up(n, true));
                }
                ChaosOp::IfaceFlap { iface, at, down_for } => {
                    if binding.ifaces.is_empty() {
                        continue;
                    }
                    let (h, n) = binding.ifaces[iface as usize % binding.ifaces.len()];
                    world.schedule_fn(at, move |w| {
                        let _ = w.set_iface_up(h, n, false);
                    });
                    world.schedule_fn(at + down_for, move |w| {
                        let _ = w.set_iface_up(h, n, true);
                    });
                }
                ChaosOp::Gray { net, at, duration, latency_factor, bandwidth_factor } => {
                    if binding.nets.is_empty() {
                        continue;
                    }
                    let n = binding.nets[net as usize % binding.nets.len()];
                    world.schedule_fn(at, move |w| {
                        w.set_gray(n, Some(GrayLevel { latency_factor, bandwidth_factor }));
                    });
                    world.schedule_fn(at + duration, move |w| w.set_gray(n, None));
                }
                ChaosOp::LossBurst { net, at, duration, loss } => {
                    if binding.nets.is_empty() {
                        continue;
                    }
                    let n = binding.nets[net as usize % binding.nets.len()];
                    world.schedule_fn(at, move |w| w.set_net_loss(n, Some(loss)));
                    world.schedule_fn(at + duration, move |w| w.set_net_loss(n, None));
                }
                ChaosOp::Partition { net, at, duration, group } => {
                    if binding.nets.is_empty() {
                        continue;
                    }
                    let n = binding.nets[net as usize % binding.nets.len()];
                    world.schedule_fn(at, move |w| w.set_partition(n, group));
                    world.schedule_fn(at + duration, move |w| w.set_partition(n, 0));
                }
                ChaosOp::ProcRestart { proc, at } => {
                    if binding.procs.is_empty() {
                        continue;
                    }
                    let f = binding.procs[proc as usize % binding.procs.len()].clone();
                    world.schedule_fn(at, move |w| f(w));
                }
            }
        }
    }

    /// One-line replay recipe for a violating run.
    pub fn replay_line(&self, workload: &str, workload_seed: u64) -> String {
        format!(
            "replay: workload={workload} plan_seed={} workload_seed={workload_seed} \
             ops={} packet={:?}",
            self.plan_seed,
            self.ops.len(),
            self.packet,
        )
    }
}

/// Greedy plan minimizer: repeatedly drop ops (then packet-chaos
/// components) while `still_fails` keeps returning true, to a fixpoint.
/// O(ops²) re-runs in the worst case — fine for the ≤ `max_ops`-sized
/// plans the generator emits.
pub fn shrink_plan(
    mut plan: ChaosPlan,
    mut still_fails: impl FnMut(&ChaosPlan) -> bool,
) -> ChaosPlan {
    loop {
        let mut shrunk = false;
        let mut i = 0;
        while i < plan.ops.len() {
            let mut cand = plan.clone();
            cand.ops.remove(i);
            if still_fails(&cand) {
                plan = cand;
                shrunk = true;
            } else {
                i += 1;
            }
        }
        if plan.packet.is_some() {
            let mut cand = plan.clone();
            cand.packet = None;
            if still_fails(&cand) {
                plan = cand;
                shrunk = true;
            } else {
                for field in 0..3 {
                    let mut cand = plan.clone();
                    {
                        let pc = cand.packet.as_mut().expect("checked above");
                        let v = match field {
                            0 => &mut pc.corrupt,
                            1 => &mut pc.duplicate,
                            _ => &mut pc.reorder,
                        };
                        if *v == 0.0 {
                            continue;
                        }
                        *v = 0.0;
                    }
                    if still_fails(&cand) {
                        plan = cand;
                        shrunk = true;
                    }
                }
            }
        }
        if !shrunk {
            return plan;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::medium::Medium;
    use crate::topology::{HostCfg, Topology};

    fn shape() -> ChaosShape {
        ChaosShape { hosts: 2, nets: 2, ifaces: 4, procs: 2, max_ops: 8, ..ChaosShape::default() }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = shape();
        assert_eq!(ChaosPlan::generate(7, &s), ChaosPlan::generate(7, &s));
        assert_ne!(ChaosPlan::generate(7, &s), ChaosPlan::generate(8, &s));
    }

    #[test]
    fn ops_respect_horizon_bounds() {
        let s = shape();
        for seed in 0..50 {
            let plan = ChaosPlan::generate(seed, &s);
            assert!(!plan.ops.is_empty());
            assert!(plan.ops.len() <= s.max_ops as usize);
            let lo = SimTime::from_nanos((s.horizon.as_nanos() as f64 * 0.05) as u64);
            let hi = SimTime::from_nanos((s.horizon.as_nanos() as f64 * 0.9) as u64);
            for op in &plan.ops {
                let at = match *op {
                    ChaosOp::HostFlap { at, .. }
                    | ChaosOp::NetFlap { at, .. }
                    | ChaosOp::IfaceFlap { at, .. }
                    | ChaosOp::Gray { at, .. }
                    | ChaosOp::LossBurst { at, .. }
                    | ChaosOp::Partition { at, .. }
                    | ChaosOp::ProcRestart { at, .. } => at,
                };
                assert!(at >= lo, "op starts too early: {op:?}");
                assert!(op.end() <= hi, "op quiesces too late: {op:?}");
            }
            assert!(plan.quiesce_at() <= hi.max(plan.packet_until));
        }
    }

    #[test]
    fn applied_plans_quiesce_to_pristine_topology() {
        let s = shape();
        for seed in 0..20 {
            let plan = ChaosPlan::generate(seed, &s);
            let mut t = Topology::new();
            let eth = t.add_network("eth", Medium::ethernet100(), true);
            let atm = t.add_network("atm", Medium::atm155(), false);
            let a = t.add_host(HostCfg::named("a"));
            let b = t.add_host(HostCfg::named("b"));
            for h in [a, b] {
                t.attach(h, eth);
                t.attach(h, atm);
            }
            let mut w = World::new(t, 1);
            let binding = ChaosBinding {
                hosts: vec![a, b],
                nets: vec![eth, atm],
                ifaces: vec![(a, eth), (a, atm), (b, eth), (b, atm)],
                procs: vec![Rc::new(|_w: &mut World| {})],
            };
            plan.apply(&mut w, &binding);
            w.run_until(plan.quiesce_at() + SimDuration::from_secs(1));
            // Every fault restored what it broke: the topology is
            // indistinguishable from an untouched one.
            let topo = w.topology();
            for h in [a, b] {
                assert!(topo.host(h).up, "seed {seed}: host {h} left down");
                for i in &topo.host(h).interfaces {
                    assert!(i.up, "seed {seed}: iface left down");
                }
            }
            for n in [eth, atm] {
                let net = topo.net(n);
                assert!(net.up, "seed {seed}: net left down");
                assert_eq!(net.loss_override, None, "seed {seed}: loss left set");
                assert_eq!(net.gray, None, "seed {seed}: gray left set");
                assert_eq!(net.partition, 0, "seed {seed}: partition left set");
            }
        }
    }

    #[test]
    fn shrink_reaches_minimal_failing_plan() {
        let s = shape();
        let mut plan = ChaosPlan::generate(3, &s);
        // Ensure there are several ops including ≥2 host flaps.
        plan.ops = vec![
            ChaosOp::HostFlap {
                host: 0,
                at: SimTime::from_nanos(1_000_000_000),
                down_for: SimDuration::from_secs(1),
            },
            ChaosOp::NetFlap {
                net: 0,
                at: SimTime::from_nanos(2_000_000_000),
                down_for: SimDuration::from_secs(1),
            },
            ChaosOp::HostFlap {
                host: 1,
                at: SimTime::from_nanos(3_000_000_000),
                down_for: SimDuration::from_secs(1),
            },
            ChaosOp::LossBurst {
                net: 1,
                at: SimTime::from_nanos(4_000_000_000),
                duration: SimDuration::from_secs(1),
                loss: 0.5,
            },
        ];
        plan.packet = Some(PacketChaos {
            corrupt: 0.01,
            duplicate: 0.02,
            reorder: 0.03,
            jitter: SimDuration::from_millis(10),
        });
        // "Failure" = the plan still contains at least one host flap.
        let fails = |p: &ChaosPlan| p.ops.iter().any(|o| matches!(o, ChaosOp::HostFlap { .. }));
        let min = shrink_plan(plan, fails);
        assert_eq!(min.ops.len(), 1, "exactly one culprit op survives: {min:?}");
        assert!(matches!(min.ops[0], ChaosOp::HostFlap { .. }));
        assert_eq!(min.packet, None, "irrelevant packet chaos cleared");
    }

    #[test]
    fn empty_binding_classes_are_skipped() {
        let s = ChaosShape { hosts: 3, nets: 2, ifaces: 2, procs: 0, ..shape() };
        let plan = ChaosPlan::generate(11, &s);
        let mut t = Topology::new();
        let eth = t.add_network("eth", Medium::ethernet100(), true);
        let a = t.add_host(HostCfg::named("a"));
        t.attach(a, eth);
        let mut w = World::new(t, 1);
        // Bind nothing: every op is skipped, nothing panics, packet
        // chaos still toggles.
        plan.apply(&mut w, &ChaosBinding::default());
        w.run_until(plan.quiesce_at() + SimDuration::from_secs(1));
        assert!(w.topology().host(a).up);
    }
}
