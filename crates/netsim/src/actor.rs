//! The process model: everything that runs on a simulated host —
//! SNIPE daemons, RC servers, resource managers, file servers,
//! playgrounds and application tasks — is an [`Actor`].
//!
//! Actors are event handlers: the world delivers [`Event`]s and the
//! actor reacts through its [`Ctx`] (sending packets, setting timers,
//! spawning further actors). This shape is what makes process
//! *migration* (paper §5.6) implementable: an actor's entire state is a
//! value that can be checkpointed, shipped and resumed on another host.

use bytes::Bytes;

use snipe_util::id::HostId;
use snipe_util::time::SimTime;

use crate::shard::AsAny;
use crate::topology::Endpoint;

/// Dense actor handle within one world.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActorId(pub u64);

/// Events delivered to actors.
#[derive(Debug)]
pub enum Event {
    /// Delivered once, immediately after spawn.
    Start,
    /// A packet arrived.
    Packet {
        /// Sender endpoint.
        from: Endpoint,
        /// Payload bytes (headers already stripped by the simulator).
        payload: Bytes,
    },
    /// A timer set via [`Ctx::set_timer`] fired.
    Timer {
        /// The caller-chosen token identifying which timer.
        token: u64,
    },
    /// The actor's host crashed. State survives (process images on disk
    /// survive a reboot); actors modelling RAM-only state should reset
    /// themselves on this event.
    HostDown,
    /// The actor's host came back up.
    HostUp,
    /// An out-of-band signal (SNIPE daemons deliver signals to local
    /// tasks, §3.3). The payload is component-defined.
    Signal {
        /// Signal number.
        signum: u32,
        /// Optional sender.
        from: Option<Endpoint>,
    },
}

/// The trait every simulated process implements.
///
/// The [`AsAny`] supertrait (blanket-implemented for every `'static`
/// type) lets tests and benches read concrete actor state back through
/// [`crate::world::World::actor_ref`].
pub trait Actor: AsAny {
    /// Handle one event. `ctx` exposes the world: current time, packet
    /// sending, timers, spawning.
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event);
}

/// The world-facing API handed to an actor while it handles an event.
///
/// Constructed by [`crate::world::World`]; the lifetime ties it to the
/// event dispatch so actors cannot stash it.
pub struct Ctx<'w> {
    pub(crate) world: &'w mut crate::world::World,
    pub(crate) me: ActorId,
    pub(crate) my_endpoint: Endpoint,
}

impl<'w> Ctx<'w> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.world.now()
    }

    /// This actor's own endpoint.
    pub fn me(&self) -> Endpoint {
        self.my_endpoint
    }

    /// This actor's host.
    pub fn host(&self) -> HostId {
        self.my_endpoint.host
    }

    /// This actor's id.
    pub fn actor_id(&self) -> ActorId {
        self.me
    }

    /// Send a datagram to `to`. Unreliable: the packet may be lost or
    /// the destination may be down; reliability lives in `snipe-wire`.
    ///
    /// `via` optionally pins the outgoing network (multi-path routing);
    /// `None` lets the simulator pick per §5.3 (fastest common network,
    /// else normal IP routing).
    pub fn send(&mut self, to: Endpoint, payload: Bytes) {
        self.world.send_packet(self.my_endpoint, to, payload, None);
    }

    /// Send pinned to a specific network (used by the multi-path layer).
    pub fn send_via(&mut self, to: Endpoint, payload: Bytes, via: snipe_util::id::NetId) {
        self.world.send_packet(self.my_endpoint, to, payload, Some(via));
    }

    /// Schedule a [`Event::Timer`] for this actor after `delay`.
    pub fn set_timer(&mut self, delay: snipe_util::time::SimDuration, token: u64) {
        self.world.set_timer(self.me, delay, token);
    }

    /// Spawn a new actor on `host` at `port`; it receives
    /// [`Event::Start`] immediately (same timestamp, later in order).
    ///
    /// Returns the endpoint, or `None` if the port is taken or host
    /// unknown.
    pub fn spawn(&mut self, host: HostId, port: u16, actor: Box<dyn Actor>) -> Option<Endpoint> {
        self.world.spawn(host, port, actor)
    }

    /// Allocate an unused ephemeral port on a host.
    pub fn alloc_port(&mut self, host: HostId) -> u16 {
        self.world.alloc_port(host)
    }

    /// Is an actor currently bound at `ep`?
    pub fn is_bound(&self, ep: Endpoint) -> bool {
        self.world.is_bound(ep)
    }

    /// Terminate an actor (exit, or kill of a local task).
    pub fn kill(&mut self, ep: Endpoint) {
        self.world.kill(ep);
    }

    /// Deliver a signal to another actor at the same timestamp.
    pub fn signal(&mut self, to: Endpoint, signum: u32) {
        self.world.signal(Some(self.my_endpoint), to, signum);
    }

    /// Deterministic per-world RNG stream.
    pub fn rng(&mut self) -> &mut snipe_util::rng::Xoshiro256 {
        self.world.rng()
    }

    /// Immutable view of the topology (route metadata is public in
    /// SNIPE: hosts advertise interfaces in RC metadata, §5.2.1).
    pub fn topology(&self) -> &crate::topology::Topology {
        self.world.topology()
    }

    /// Is a host currently up? (Daemons monitor local resources.)
    pub fn host_up(&self, h: HostId) -> bool {
        self.world.topology().host(h).up
    }
}

/// The engine-agnostic world API: the intersection of [`Ctx`] (serial
/// [`crate::world::World`]) and [`crate::shard::ShardCtx`]
/// ([`crate::shard::ShardedWorld`]) that the full SNIPE protocol stack
/// actually needs. Actors written against `&mut dyn SimCtx` — see
/// [`PortableActor`] — run unchanged on either engine.
///
/// Deliberately absent: `actor_id` (a serial-world detail) and raw
/// `spawn` of engine-specific boxed actors (use
/// [`SimCtx::spawn_portable`]). Spawns are same-host/same-region only
/// on the sharded engine; every spawn in the protocol stack is local
/// (daemons exec on their own host), so portable code should only ever
/// spawn on `self.host()`.
pub trait SimCtx {
    /// Current simulation time.
    fn now(&self) -> SimTime;
    /// This actor's own endpoint.
    fn me(&self) -> Endpoint;
    /// This actor's host.
    fn host(&self) -> HostId;
    /// Send a datagram (unreliable; reliability lives in `snipe-wire`).
    fn send(&mut self, to: Endpoint, payload: Bytes);
    /// Send pinned to a specific network (multi-path layer).
    fn send_via(&mut self, to: Endpoint, payload: Bytes, via: snipe_util::id::NetId);
    /// Schedule an [`Event::Timer`] for this actor after `delay`.
    fn set_timer(&mut self, delay: snipe_util::time::SimDuration, token: u64);
    /// Spawn a portable actor; same restrictions as the engine's own
    /// `spawn` (taken port / unknown host / cross-region → `None`).
    fn spawn_portable(
        &mut self,
        host: HostId,
        port: u16,
        actor: Box<dyn PortableActor>,
    ) -> Option<Endpoint>;
    /// Allocate an unused ephemeral port on a host.
    fn alloc_port(&mut self, host: HostId) -> u16;
    /// Is an actor currently bound at `ep`?
    fn is_bound(&self, ep: Endpoint) -> bool;
    /// Terminate an actor (exit, or kill of a local task).
    fn kill(&mut self, ep: Endpoint);
    /// Deliver a signal to another actor at the same timestamp.
    fn signal(&mut self, to: Endpoint, signum: u32);
    /// Deterministic RNG stream (per-world serial, per-region sharded —
    /// draws are reproducible per engine, not across engines).
    fn rng(&mut self) -> &mut snipe_util::rng::Xoshiro256;
    /// Immutable view of the topology.
    fn topology(&self) -> &crate::topology::Topology;
    /// Is a host currently up?
    fn host_up(&self, h: HostId) -> bool;
}

impl SimCtx for Ctx<'_> {
    fn now(&self) -> SimTime {
        Ctx::now(self)
    }
    fn me(&self) -> Endpoint {
        Ctx::me(self)
    }
    fn host(&self) -> HostId {
        Ctx::host(self)
    }
    fn send(&mut self, to: Endpoint, payload: Bytes) {
        Ctx::send(self, to, payload);
    }
    fn send_via(&mut self, to: Endpoint, payload: Bytes, via: snipe_util::id::NetId) {
        Ctx::send_via(self, to, payload, via);
    }
    fn set_timer(&mut self, delay: snipe_util::time::SimDuration, token: u64) {
        Ctx::set_timer(self, delay, token);
    }
    fn spawn_portable(
        &mut self,
        host: HostId,
        port: u16,
        actor: Box<dyn PortableActor>,
    ) -> Option<Endpoint> {
        Ctx::spawn(self, host, port, Box::new(OnWorld(actor)))
    }
    fn alloc_port(&mut self, host: HostId) -> u16 {
        Ctx::alloc_port(self, host)
    }
    fn is_bound(&self, ep: Endpoint) -> bool {
        Ctx::is_bound(self, ep)
    }
    fn kill(&mut self, ep: Endpoint) {
        Ctx::kill(self, ep);
    }
    fn signal(&mut self, to: Endpoint, signum: u32) {
        Ctx::signal(self, to, signum);
    }
    fn rng(&mut self) -> &mut snipe_util::rng::Xoshiro256 {
        Ctx::rng(self)
    }
    fn topology(&self) -> &crate::topology::Topology {
        Ctx::topology(self)
    }
    fn host_up(&self, h: HostId) -> bool {
        Ctx::host_up(self, h)
    }
}

/// An engine-agnostic actor: `Send` (it must be hostable on a shard
/// core that migrates across worker threads) and written against
/// [`SimCtx`] instead of a concrete engine context.
///
/// Concrete types get the engine-specific [`Actor`] /
/// [`crate::shard::ShardActor`] impls generated by
/// [`crate::portable_actor!`]; registry-produced `Box<dyn
/// PortableActor>`s are hosted through [`OnWorld`] /
/// [`crate::shard::OnShard`] (normally via [`SimCtx::spawn_portable`]).
pub trait PortableActor: AsAny + Send {
    /// Handle one event.
    fn on_event(&mut self, ctx: &mut dyn SimCtx, event: Event);
}

/// Hosts a boxed [`PortableActor`] on the serial [`crate::world::World`].
pub struct OnWorld(pub Box<dyn PortableActor>);

impl Actor for OnWorld {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
        self.0.on_event(ctx, event);
    }
}

/// Generates the [`Actor`] and [`crate::shard::ShardActor`] impls for a
/// concrete [`PortableActor`] type, so existing call sites can keep
/// spawning and downcasting the concrete type on either engine.
#[macro_export]
macro_rules! portable_actor {
    ($ty:ty) => {
        impl $crate::actor::Actor for $ty {
            fn on_event(&mut self, ctx: &mut $crate::actor::Ctx<'_>, event: $crate::actor::Event) {
                $crate::actor::PortableActor::on_event(self, ctx, event);
            }
        }
        impl $crate::shard::ShardActor for $ty {
            fn on_event(
                &mut self,
                ctx: &mut $crate::shard::ShardCtx<'_>,
                event: $crate::actor::Event,
            ) {
                $crate::actor::PortableActor::on_event(self, ctx, event);
            }
        }
    };
}

/// Deduplicates wake-up timers for one token.
///
/// Simulator timers cannot be cancelled, so an actor that re-arms "wake
/// me at my next protocol deadline" on every event would breed an
/// ever-growing population of live timers (each firing spawns a new
/// one). A `TimerGate` arms only when the requested deadline is earlier
/// than the one already pending; spurious firings are cheap no-ops.
#[derive(Debug, Default, Clone, Copy)]
pub struct TimerGate {
    armed_until: Option<SimTime>,
}

impl TimerGate {
    /// Fresh gate with nothing armed.
    pub fn new() -> TimerGate {
        TimerGate::default()
    }

    /// Request a wake-up at `deadline` (token `token`); arms a real
    /// timer only if nothing earlier is already pending.
    pub fn arm_at(&mut self, ctx: &mut dyn SimCtx, deadline: SimTime, token: u64) {
        let now = ctx.now();
        if let Some(armed) = self.armed_until {
            if armed <= deadline && armed >= now {
                return; // an earlier (or equal) wake-up is already scheduled
            }
        }
        let delay = deadline.saturating_since(now);
        ctx.set_timer(delay, token);
        self.armed_until = Some(deadline);
    }

    /// Must be called when the gated timer fires, before re-arming.
    pub fn fired(&mut self) {
        self.armed_until = None;
    }
}

#[cfg(test)]
mod timer_gate_tests {
    use super::*;
    use crate::medium::Medium;
    use crate::topology::{HostCfg, Topology};
    use crate::world::World;
    use snipe_util::time::SimDuration;
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Spammer {
        gate: TimerGate,
        fired: Rc<RefCell<u32>>,
    }

    impl Actor for Spammer {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
            match event {
                Event::Start => {
                    // Request the same deadline many times: one timer.
                    let dl = ctx.now() + SimDuration::from_millis(10);
                    for _ in 0..100 {
                        self.gate.arm_at(ctx, dl, 1);
                    }
                }
                Event::Timer { .. } => {
                    self.gate.fired();
                    *self.fired.borrow_mut() += 1;
                }
                _ => {}
            }
        }
    }

    #[test]
    fn gate_collapses_duplicate_arms() {
        let mut t = Topology::new();
        let _ = t.add_network("n", Medium::ethernet100(), true);
        let h = t.add_host(HostCfg::named("h"));
        let mut w = World::new(t, 1);
        let fired = Rc::new(RefCell::new(0));
        w.spawn(h, 5, Box::new(Spammer { gate: TimerGate::new(), fired: fired.clone() }));
        w.run_until_idle(1000);
        assert_eq!(*fired.borrow(), 1, "100 arm requests must yield one timer");
    }
}
