//! Calibrated network media models.
//!
//! Each model captures what mattered to the paper's Fig. 1: raw signal
//! rate, per-packet framing overhead, MTU, base propagation latency and
//! loss. The numbers are taken from the media the paper names (§1, §6:
//! "wire, optical fiber, terrestrial radio, satellite", performance
//! figures for "100M-bit ethernet and 155M-bit ATM").

use snipe_util::time::SimDuration;

/// A transmission medium attached to a [`crate::topology::Topology`]
/// network segment.
#[derive(Clone, Debug, PartialEq)]
pub struct Medium {
    /// Human-readable name (appears in traces and bench output).
    pub name: &'static str,
    /// Signal rate in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation latency.
    pub latency: SimDuration,
    /// Independent per-packet loss probability in `[0, 1)`.
    pub loss: f64,
    /// Maximum payload bytes per packet (fragmentation threshold).
    pub mtu: usize,
    /// Framing overhead in bytes charged per packet on the wire
    /// (preamble + headers + trailer/cell tax).
    pub per_packet_overhead: usize,
    /// Shared-bus media (classic Ethernet) serialize all hosts on the
    /// segment through one channel; switched media (ATM, Myrinet) give
    /// each interface its own full-duplex channel.
    pub shared_bus: bool,
}

impl Medium {
    /// 10BASE-T Ethernet (10 Mbit/s shared bus).
    pub fn ethernet10() -> Medium {
        Medium {
            name: "eth10",
            bandwidth_bps: 10_000_000,
            latency: SimDuration::from_micros(100),
            loss: 0.0,
            mtu: 1500,
            per_packet_overhead: 38, // preamble 8 + MAC 18 + IFG 12
            shared_bus: true,
        }
    }

    /// 100BASE-TX Fast Ethernet, as in the paper's Fig. 1.
    pub fn ethernet100() -> Medium {
        Medium {
            name: "eth100",
            bandwidth_bps: 100_000_000,
            latency: SimDuration::from_micros(50),
            loss: 0.0,
            mtu: 1500,
            per_packet_overhead: 38,
            shared_bus: true,
        }
    }

    /// 155 Mbit/s OC-3 ATM, as in the paper's Fig. 1. The cell tax
    /// (5-byte header per 53-byte cell plus AAL5 trailer) is folded
    /// into an effective ~135 Mbit/s payload rate with per-packet
    /// AAL5 overhead.
    pub fn atm155() -> Medium {
        Medium {
            name: "atm155",
            bandwidth_bps: 135_000_000,
            latency: SimDuration::from_micros(20),
            loss: 0.0,
            mtu: 9180, // classical IP over ATM default MTU
            per_packet_overhead: 48,
            shared_bus: false,
        }
    }

    /// First-generation Myrinet (1.28 Gbit/s, cut-through switched).
    pub fn myrinet() -> Medium {
        Medium {
            name: "myrinet",
            bandwidth_bps: 1_280_000_000,
            latency: SimDuration::from_micros(5),
            loss: 0.0,
            mtu: 16_384,
            per_packet_overhead: 16,
            shared_bus: false,
        }
    }

    /// A late-1990s Internet WAN path: T3-class bottleneck, tens of ms
    /// latency, non-trivial loss.
    pub fn wan() -> Medium {
        Medium {
            name: "wan",
            bandwidth_bps: 45_000_000,
            latency: SimDuration::from_millis(35),
            loss: 0.01,
            mtu: 1500,
            per_packet_overhead: 40,
            shared_bus: false,
        }
    }

    /// A lossy WAN variant for the A1 ablation (selective-resend tuning).
    pub fn wan_lossy(loss: f64) -> Medium {
        let mut m = Medium::wan();
        m.name = "wan-lossy";
        m.loss = loss;
        m
    }

    /// Loopback within one host: effectively memory bandwidth.
    pub fn loopback() -> Medium {
        Medium {
            name: "loopback",
            bandwidth_bps: 8_000_000_000,
            latency: SimDuration::from_micros(1),
            loss: 0.0,
            // Loopback is memory: effectively unlimited datagram size.
            mtu: 1 << 30,
            per_packet_overhead: 0,
            shared_bus: false,
        }
    }

    /// Time to clock `payload_len` bytes (plus framing) onto the wire.
    pub fn tx_time(&self, payload_len: usize) -> SimDuration {
        self.tx_time_at(self.bandwidth_bps, payload_len)
    }

    /// [`Medium::tx_time`] at an overridden signal rate — used for
    /// routed paths, which serialize at the bottleneck bandwidth while
    /// keeping this medium's framing overhead.
    pub fn tx_time_at(&self, bandwidth_bps: u64, payload_len: usize) -> SimDuration {
        let bits = (payload_len + self.per_packet_overhead) as u64 * 8;
        // ns = bits / (bits/s) * 1e9, computed without overflow for any
        // realistic packet size.
        SimDuration::from_nanos(bits.saturating_mul(1_000_000_000) / bandwidth_bps)
    }

    /// The theoretical payload ceiling in bytes/second when sending
    /// back-to-back packets of `payload_len` bytes — the reference line
    /// drawn in the Fig. 1 reproduction.
    pub fn goodput_ceiling(&self, payload_len: usize) -> f64 {
        let total = (payload_len + self.per_packet_overhead) as f64;
        self.bandwidth_bps as f64 / 8.0 * (payload_len as f64 / total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_time_scales_linearly() {
        let m = Medium::ethernet100();
        let t1 = m.tx_time(1000);
        let t2 = m.tx_time(2000 + m.per_packet_overhead); // +overhead compensates framing of 1st
        assert!(t2 > t1);
        // 1500B at 100Mbit/s ≈ 123 us including overhead
        let t = m.tx_time(1500);
        let us = t.as_micros_f64();
        assert!((us - 123.0).abs() < 2.0, "got {us}us");
    }

    #[test]
    fn tx_time_at_matches_cloned_medium() {
        let m = Medium::atm155();
        let bottleneck = Medium::ethernet100().bandwidth_bps;
        let mut clone = m.clone();
        clone.bandwidth_bps = bottleneck;
        assert_eq!(m.tx_time_at(bottleneck, 1400), clone.tx_time(1400));
        assert_eq!(m.tx_time_at(m.bandwidth_bps, 1400), m.tx_time(1400));
    }

    #[test]
    fn atm_faster_than_ethernet_for_bulk() {
        let e = Medium::ethernet100();
        let a = Medium::atm155();
        assert!(a.tx_time(9000) < e.tx_time(9000));
        assert!(a.goodput_ceiling(8192) > e.goodput_ceiling(8192));
    }

    #[test]
    fn goodput_ceiling_below_raw_bandwidth() {
        for m in [Medium::ethernet10(), Medium::ethernet100(), Medium::atm155(), Medium::wan()] {
            let c = m.goodput_ceiling(1024);
            assert!(c < m.bandwidth_bps as f64 / 8.0, "{} ceiling {c}", m.name);
            assert!(c > 0.0);
        }
    }

    #[test]
    fn small_packets_pay_proportionally_more_overhead() {
        let m = Medium::ethernet100();
        let small = m.goodput_ceiling(64) / (m.bandwidth_bps as f64 / 8.0);
        let big = m.goodput_ceiling(1460) / (m.bandwidth_bps as f64 / 8.0);
        assert!(small < big);
        assert!(small < 0.7);
        assert!(big > 0.9);
    }

    #[test]
    fn presets_are_distinct() {
        let names: Vec<&str> = [
            Medium::ethernet10(),
            Medium::ethernet100(),
            Medium::atm155(),
            Medium::myrinet(),
            Medium::wan(),
            Medium::loopback(),
        ]
        .iter()
        .map(|m| m.name)
        .collect();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names, dedup);
    }

    #[test]
    fn lossy_wan_keeps_other_params() {
        let m = Medium::wan_lossy(0.2);
        assert_eq!(m.loss, 0.2);
        assert_eq!(m.bandwidth_bps, Medium::wan().bandwidth_bps);
    }
}
