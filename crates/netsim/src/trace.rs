//! Counters, the flight recorder, and optional packet tracing.
//!
//! All hot-path counters are flat arrays/vectors rather than hash maps:
//! `send_packet` and `step` bump them once per packet/event, so a
//! `HashMap` entry lookup there costs more than the rest of the
//! accounting combined. Drop reasons index a fixed array; per-network
//! byte counts index a `Vec` by `NetId` (network ids are dense, handed
//! out sequentially by `Topology::add_network`).
//!
//! ## Flight recorder
//!
//! A fixed-capacity ring of structured [`TraceEvent`]s, stamped with
//! virtual time and a per-run sequence number. Every layer above the
//! simulator records into it — the engine (sends, deliveries, drops,
//! timer fires, fault ops), the wire transports (retransmits, path
//! rotations) and the process layer (migration phases) — so when a
//! chaos oracle trips, the harness can dump the last N events as a
//! readable story instead of bisecting seeds blind.
//!
//! The recorder is **thread-local** and off by default: disabled, the
//! whole record path is one `Cell<bool>` load. Enabled, it never
//! allocates after [`enable`] preallocates the ring — at capacity it
//! drops the *oldest* event and counts it in `trace_dropped`. Thread
//! locality keeps recording deterministic under the chaos soak's
//! fan-out (each seeded run owns its thread, and its trace) with zero
//! synchronization on the simulator hot path.

use std::cell::{Cell, RefCell};

use snipe_util::id::NetId;
use snipe_util::time::SimTime;

use crate::topology::Endpoint;

/// Why a packet never arrived.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// Random loss on the medium.
    Loss,
    /// No usable path between the hosts.
    NoRoute,
    /// Destination host down at delivery time.
    HostDown,
    /// No actor bound to the destination port.
    NoListener,
    /// Payload exceeded the path MTU (wire layer should have fragmented).
    TooBig,
}

impl DropReason {
    /// Number of variants (size of the flat drop-counter array).
    pub const COUNT: usize = 5;

    /// All variants, in counter order.
    pub const ALL: [DropReason; DropReason::COUNT] = [
        DropReason::Loss,
        DropReason::NoRoute,
        DropReason::HostDown,
        DropReason::NoListener,
        DropReason::TooBig,
    ];

    /// Stable lowercase name (metrics keys, trace dumps).
    pub fn name(self) -> &'static str {
        match self {
            DropReason::Loss => "loss",
            DropReason::NoRoute => "no_route",
            DropReason::HostDown => "host_down",
            DropReason::NoListener => "no_listener",
            DropReason::TooBig => "too_big",
        }
    }
}

/// Event-engine internals: queue and route-cache behaviour. Exposed for
/// the bench harness and for regression tests on the fast path.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Events popped from the future-event heap.
    pub heap_pops: u64,
    /// Events popped from the same-timestamp now-queue (these skipped
    /// the heap entirely).
    pub now_pops: u64,
    /// Deliveries popped from per-transmitter FIFO streams (in-flight
    /// serialized packets that never paid heap sift costs).
    pub stream_pops: u64,
    /// Route lookups answered from the cache.
    pub route_cache_hits: u64,
    /// Route lookups that fell through to a fresh computation.
    pub route_cache_misses: u64,
    /// High-water mark of pending events (heap + now-queue).
    pub peak_queue_depth: u64,
}

/// Per-packet fault injections performed by the chaos layer. Corrupted
/// and duplicated packets are still *delivered* (the wire layer's
/// checksums and dedup must cope), so none of these count as drops.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Payloads with flipped bytes.
    pub corrupted: u64,
    /// Extra copies injected.
    pub duplicated: u64,
    /// Deliveries given extra reordering jitter.
    pub reordered: u64,
}

/// Aggregate statistics kept by the world.
#[derive(Clone, Debug, Default)]
pub struct NetStats {
    /// Packets handed to `send_packet`.
    pub sent: u64,
    /// Packets delivered to an actor.
    pub delivered: u64,
    /// Events dispatched in total.
    pub events: u64,
    /// Engine internals (queue tiers, route cache, queue depth).
    pub engine: EngineStats,
    /// Per-packet chaos injections (zero unless chaos is enabled).
    pub chaos: ChaosStats,
    drops: [u64; DropReason::COUNT],
    bytes_by_net: Vec<u64>,
}

impl NetStats {
    /// Drops for one reason.
    pub fn drops(&self, r: DropReason) -> u64 {
        self.drops[r as usize]
    }

    /// Total drops across reasons.
    pub fn total_drops(&self) -> u64 {
        self.drops.iter().sum()
    }

    /// Payload bytes carried by network `n`.
    pub fn bytes_on(&self, n: NetId) -> u64 {
        self.bytes_by_net.get(n.index()).copied().unwrap_or(0)
    }

    /// `(net, bytes)` for every network that carried traffic.
    pub fn bytes_by_net(&self) -> impl Iterator<Item = (NetId, u64)> + '_ {
        self.bytes_by_net
            .iter()
            .enumerate()
            .filter(|(_, &b)| b > 0)
            .map(|(i, &b)| (NetId::from_index(i), b))
    }

    /// Record a drop.
    pub(crate) fn drop(&mut self, r: DropReason) {
        self.drops[r as usize] += 1;
    }

    /// Account `len` payload bytes to network `n`.
    pub(crate) fn add_bytes(&mut self, n: NetId, len: u64) {
        let i = n.index();
        if i >= self.bytes_by_net.len() {
            self.bytes_by_net.resize(i + 1, 0);
        }
        self.bytes_by_net[i] += len;
    }

    /// Pre-size the per-network byte counters so the send path never
    /// grows the vector.
    pub(crate) fn reserve_nets(&mut self, nets: usize) {
        if self.bytes_by_net.len() < nets {
            self.bytes_by_net.resize(nets, 0);
        }
    }

    /// Fold another stats block into this one. Counters add;
    /// `peak_queue_depth` takes the max (it is a high-water mark of one
    /// queue, and the merged view reports the worst single queue). The
    /// sharded engine merges per-shard stats through this.
    pub(crate) fn merge(&mut self, other: &NetStats) {
        self.sent += other.sent;
        self.delivered += other.delivered;
        self.events += other.events;
        self.engine.heap_pops += other.engine.heap_pops;
        self.engine.now_pops += other.engine.now_pops;
        self.engine.stream_pops += other.engine.stream_pops;
        self.engine.route_cache_hits += other.engine.route_cache_hits;
        self.engine.route_cache_misses += other.engine.route_cache_misses;
        self.engine.peak_queue_depth =
            self.engine.peak_queue_depth.max(other.engine.peak_queue_depth);
        self.chaos.corrupted += other.chaos.corrupted;
        self.chaos.duplicated += other.chaos.duplicated;
        self.chaos.reordered += other.chaos.reordered;
        for (i, d) in other.drops.iter().enumerate() {
            self.drops[i] += d;
        }
        self.reserve_nets(other.bytes_by_net.len());
        for (i, b) in other.bytes_by_net.iter().enumerate() {
            self.bytes_by_net[i] += b;
        }
    }
}

/// A fault-layer operation, recorded as `what` plus two generic
/// operands (host/net ids, group numbers, process keys — whatever the
/// op manipulates). `&'static str` keeps the event `Copy` and the
/// record path allocation-free while dumps stay self-describing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultOp {
    /// Operation name (`"host_down"`, `"set_gray"`, `"respawn"`, …).
    pub what: &'static str,
    /// First operand (meaning depends on `what`).
    pub a: u64,
    /// Second operand.
    pub b: u64,
}

/// Phase marker for a live-process migration (§6 of the paper): the
/// checkpoint on the old host, the cutover to forwarding, the old
/// incarnation vanishing, and the resume on the new host.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MigrationPhase {
    /// State checkpointed and shipped in a spawn request.
    Checkpoint,
    /// Spawn confirmed: stack dropped, forwarding redirect installed.
    Cutover,
    /// Grace period over; the old incarnation exits.
    Vanish,
    /// New incarnation imported the snapshot and took over.
    Resume,
}

/// One structured flight-recorder event kind. Every variant is `Copy`
/// and fixed-size: recording is a ring-slot write, never a heap touch.
#[derive(Clone, Copy, Debug)]
pub enum TraceKind {
    /// A datagram entered `send_packet`.
    Send {
        /// Sender endpoint.
        from: Endpoint,
        /// Destination endpoint.
        to: Endpoint,
        /// Payload length.
        len: u32,
    },
    /// A datagram reached a bound actor.
    Recv {
        /// Original sender.
        from: Endpoint,
        /// Receiving endpoint.
        to: Endpoint,
        /// Payload length.
        len: u32,
    },
    /// A datagram was dropped by the engine.
    Drop {
        /// Why it never arrived.
        reason: DropReason,
    },
    /// A wire driver re-sent unacknowledged data (RTO or kicked).
    Retransmit {
        /// Peer process key (or 0 when unkeyed).
        peer: u64,
        /// Bytes re-sent.
        len: u32,
    },
    /// An actor timer fired.
    TimerFire {
        /// The actor's timer token.
        token: u64,
    },
    /// The path selector rotated a peer to a new primary route.
    PathRotate {
        /// Peer process key.
        peer: u64,
        /// Raw id of the network now carrying traffic (`u32::MAX`
        /// when the peer has no pinned candidates).
        rank: u32,
    },
    /// A fault-layer or supervision operation ran.
    Fault {
        /// The operation.
        op: FaultOp,
    },
    /// A process migration crossed a phase boundary.
    Migration {
        /// Which phase.
        phase: MigrationPhase,
        /// The migrating process key.
        key: u64,
    },
}

impl TraceKind {
    /// Number of variants (size of the per-kind counter array).
    pub const COUNT: usize = 8;

    /// Kind names, indexed by [`TraceKind::tag`].
    pub const NAMES: [&'static str; TraceKind::COUNT] = [
        "send",
        "recv",
        "drop",
        "retransmit",
        "timer_fire",
        "path_rotate",
        "fault_op",
        "migration",
    ];

    /// Dense discriminant for the per-kind counters.
    pub fn tag(&self) -> usize {
        match self {
            TraceKind::Send { .. } => 0,
            TraceKind::Recv { .. } => 1,
            TraceKind::Drop { .. } => 2,
            TraceKind::Retransmit { .. } => 3,
            TraceKind::TimerFire { .. } => 4,
            TraceKind::PathRotate { .. } => 5,
            TraceKind::Fault { .. } => 6,
            TraceKind::Migration { .. } => 7,
        }
    }
}

/// One recorded event: virtual timestamp, seed-deterministic sequence
/// number (position in this run's record stream), and the payload.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// Monotone per-run sequence number (0-based).
    pub seq: u64,
    /// Virtual time of the event.
    pub at: SimTime,
    /// What happened.
    pub kind: TraceKind,
}

struct Recorder {
    buf: Vec<TraceEvent>,
    cap: usize,
    /// Next slot to (over)write once the ring is full.
    next: usize,
    seq: u64,
    dropped: u64,
    kind_counts: [u64; TraceKind::COUNT],
}

impl Recorder {
    const fn empty() -> Recorder {
        Recorder {
            buf: Vec::new(),
            cap: 0,
            next: 0,
            seq: 0,
            dropped: 0,
            kind_counts: [0; TraceKind::COUNT],
        }
    }

    fn push(&mut self, at: SimTime, kind: TraceKind) {
        let ev = TraceEvent { seq: self.seq, at, kind };
        self.seq += 1;
        self.kind_counts[kind.tag()] += 1;
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            // Full: overwrite the oldest (the slot `next` points at).
            self.buf[self.next] = ev;
            self.next = (self.next + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Events in chronological order, oldest retained first.
    fn iter_ordered(&self) -> impl Iterator<Item = &TraceEvent> {
        let (tail, head) = self.buf.split_at(self.next.min(self.buf.len()));
        head.iter().chain(tail.iter())
    }
}

thread_local! {
    static TRACE_ON: Cell<bool> = const { Cell::new(false) };
    static RECORDER: RefCell<Recorder> = const { RefCell::new(Recorder::empty()) };
}

/// Turn the flight recorder on for this thread with a fresh ring of
/// `capacity` events (clamped to at least 1). Resets sequence numbers,
/// per-kind counts and the `trace_dropped` counter — one `enable` per
/// seeded run is what keeps traces replayable.
pub fn enable(capacity: usize) {
    RECORDER.with(|r| {
        let mut r = r.borrow_mut();
        let cap = capacity.max(1);
        *r = Recorder::empty();
        r.cap = cap;
        r.buf.reserve_exact(cap);
    });
    TRACE_ON.with(|t| t.set(true));
}

/// Turn the recorder off (the ring is kept until the next [`enable`],
/// so a post-mortem can still render it).
pub fn disable() {
    TRACE_ON.with(|t| t.set(false));
}

/// Is the recorder on for this thread? One `Cell` load — cheap enough
/// for cold call sites; hot loops should cache it (the `World` does).
/// Constant `false` under the `obs-off` gate-baseline feature, which
/// compile-folds every recording branch away.
#[inline]
pub fn enabled() -> bool {
    !cfg!(feature = "obs-off") && TRACE_ON.with(|t| t.get())
}

/// Record one event at virtual time `at`. No-op when disabled; never
/// allocates when enabled (the ring was preallocated by [`enable`]).
///
/// The enabled path is outlined (`#[cold]`): the TLS + ring machinery
/// would otherwise be inlined — dead — into every guarded call site in
/// the engine hot loop, and the I-cache bloat alone is measurable on
/// the overhead gate.
#[inline]
pub fn record(at: SimTime, kind: TraceKind) {
    if !enabled() {
        return;
    }
    record_cached(at, kind);
}

/// [`record`] minus the thread-local `enabled()` re-check, for call
/// sites that already guard on a cached copy of the flag (the `World`
/// keeps one in a plain field). A stale `true` after [`disable`] just
/// writes into the ring that `disable` deliberately keeps around.
#[cold]
#[inline(never)]
pub(crate) fn record_cached(at: SimTime, kind: TraceKind) {
    RECORDER.with(|r| r.borrow_mut().push(at, kind));
}

/// Events overwritten because the ring was full (drop-oldest policy).
pub fn trace_dropped() -> u64 {
    RECORDER.with(|r| r.borrow().dropped)
}

/// Total events recorded since [`enable`], by kind tag. Survives ring
/// overwrite, so rates (retransmits, rotations) stay exact on long
/// runs even though only the tail of the story is retained.
pub fn kind_counts() -> [u64; TraceKind::COUNT] {
    RECORDER.with(|r| r.borrow().kind_counts)
}

/// Copy out the last `n` retained events in chronological order.
pub fn last_events(n: usize) -> Vec<TraceEvent> {
    RECORDER.with(|r| {
        let r = r.borrow();
        let have = r.buf.len();
        r.iter_ordered().skip(have.saturating_sub(n)).copied().collect()
    })
}

/// Render the last `n` retained events as a readable multi-line trace
/// (one event per line, virtual-time stamped), with a header noting
/// how much of the run the ring retained.
pub fn render_last(n: usize) -> String {
    RECORDER.with(|r| {
        let r = r.borrow();
        let have = r.buf.len();
        let shown = have.min(n);
        let mut out = format!(
            "flight recorder: {} events total, {} overwritten, showing last {}\n",
            r.seq, r.dropped, shown
        );
        for ev in r.iter_ordered().skip(have - shown) {
            out.push_str(&format!(
                "  #{:<8} t={:>12.6}ms  {:?}\n",
                ev.seq,
                ev.at.as_secs_f64() * 1e3,
                ev.kind
            ));
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_counting() {
        let mut s = NetStats::default();
        s.drop(DropReason::Loss);
        s.drop(DropReason::Loss);
        s.drop(DropReason::NoRoute);
        assert_eq!(s.total_drops(), 3);
        assert_eq!(s.drops(DropReason::Loss), 2);
        assert_eq!(s.drops(DropReason::TooBig), 0);
    }

    #[test]
    fn drop_reason_indices_are_dense() {
        for (i, r) in DropReason::ALL.iter().enumerate() {
            assert_eq!(*r as usize, i);
        }
    }

    /// Off-by-one hunting at the wrap point: fill a capacity-8 ring
    /// with 11 events. Exactly the 3 oldest must be overwritten (and
    /// counted), the survivors must come back in order with no seam at
    /// the wrap, and rendering must agree.
    #[test]
    fn ring_wraps_drop_oldest_and_count() {
        enable(8);
        assert!(enabled());
        assert_eq!(trace_dropped(), 0);
        for i in 0..11u64 {
            record(SimTime::from_nanos(1000 * i), TraceKind::TimerFire { token: i });
        }
        assert_eq!(trace_dropped(), 3, "capacity 8, 11 pushed: 3 overwritten");
        let evs = last_events(100);
        assert_eq!(evs.len(), 8, "ring retains exactly its capacity");
        let seqs: Vec<u64> = evs.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (3..=10).collect::<Vec<u64>>(), "oldest 3 gone, order intact");
        for (e, want) in evs.iter().zip(3u64..) {
            assert_eq!(e.at, SimTime::from_nanos(1000 * want));
            assert!(matches!(e.kind, TraceKind::TimerFire { token } if token == want));
        }
        // last_events(n < retained) returns the newest n.
        let tail: Vec<u64> = last_events(2).iter().map(|e| e.seq).collect();
        assert_eq!(tail, vec![9, 10]);
        let dump = render_last(4);
        assert!(dump.contains("11 events total, 3 overwritten, showing last 4"), "{dump}");
        assert!(dump.contains("#7"), "{dump}");
        assert!(dump.contains("#10"), "{dump}");
        assert!(!dump.contains("#6 "), "{dump}");
        assert_eq!(kind_counts()[4], 11, "kind counts survive overwrite");
        disable();
        record(SimTime::ZERO, TraceKind::TimerFire { token: 99 });
        assert_eq!(kind_counts()[4], 11, "disabled recorder must not record");
    }

    /// Exactly-at-capacity is the other wrap-point edge: nothing may
    /// be dropped, and the very next event evicts exactly one.
    #[test]
    fn ring_at_exact_capacity_drops_nothing() {
        enable(4);
        for i in 0..4u64 {
            record(SimTime::from_nanos(i), TraceKind::TimerFire { token: i });
        }
        assert_eq!(trace_dropped(), 0);
        assert_eq!(last_events(100).len(), 4);
        assert_eq!(last_events(100)[0].seq, 0);
        record(SimTime::from_nanos(4), TraceKind::TimerFire { token: 4 });
        assert_eq!(trace_dropped(), 1);
        let seqs: Vec<u64> = last_events(100).iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4]);
        disable();
    }

    #[test]
    fn byte_accounting_by_net() {
        let mut s = NetStats::default();
        let n0 = NetId::from_index(0);
        let n2 = NetId::from_index(2);
        s.add_bytes(n2, 100);
        s.add_bytes(n0, 7);
        s.add_bytes(n2, 1);
        assert_eq!(s.bytes_on(n0), 7);
        assert_eq!(s.bytes_on(NetId::from_index(1)), 0);
        assert_eq!(s.bytes_on(n2), 101);
        let carried: Vec<_> = s.bytes_by_net().collect();
        assert_eq!(carried, vec![(n0, 7), (n2, 101)]);
    }
}
