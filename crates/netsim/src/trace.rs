//! Counters and optional packet tracing.

use std::collections::HashMap;

use snipe_util::id::NetId;

/// Why a packet never arrived.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// Random loss on the medium.
    Loss,
    /// No usable path between the hosts.
    NoRoute,
    /// Destination host down at delivery time.
    HostDown,
    /// No actor bound to the destination port.
    NoListener,
    /// Payload exceeded the path MTU (wire layer should have fragmented).
    TooBig,
}

/// Aggregate statistics kept by the world.
#[derive(Clone, Debug, Default)]
pub struct NetStats {
    /// Packets handed to `send_packet`.
    pub sent: u64,
    /// Packets delivered to an actor.
    pub delivered: u64,
    /// Drops by reason.
    pub drops: HashMap<DropReason, u64>,
    /// Payload bytes carried per network.
    pub bytes_by_net: HashMap<NetId, u64>,
    /// Events dispatched in total.
    pub events: u64,
}

impl NetStats {
    /// Total drops across reasons.
    pub fn total_drops(&self) -> u64 {
        self.drops.values().sum()
    }

    /// Record a drop.
    pub(crate) fn drop(&mut self, r: DropReason) {
        *self.drops.entry(r).or_insert(0) += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_counting() {
        let mut s = NetStats::default();
        s.drop(DropReason::Loss);
        s.drop(DropReason::Loss);
        s.drop(DropReason::NoRoute);
        assert_eq!(s.total_drops(), 3);
        assert_eq!(s.drops[&DropReason::Loss], 2);
    }
}
