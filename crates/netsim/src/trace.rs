//! Counters and optional packet tracing.
//!
//! All hot-path counters are flat arrays/vectors rather than hash maps:
//! `send_packet` and `step` bump them once per packet/event, so a
//! `HashMap` entry lookup there costs more than the rest of the
//! accounting combined. Drop reasons index a fixed array; per-network
//! byte counts index a `Vec` by `NetId` (network ids are dense, handed
//! out sequentially by `Topology::add_network`).

use snipe_util::id::NetId;

/// Why a packet never arrived.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// Random loss on the medium.
    Loss,
    /// No usable path between the hosts.
    NoRoute,
    /// Destination host down at delivery time.
    HostDown,
    /// No actor bound to the destination port.
    NoListener,
    /// Payload exceeded the path MTU (wire layer should have fragmented).
    TooBig,
}

impl DropReason {
    /// Number of variants (size of the flat drop-counter array).
    pub const COUNT: usize = 5;

    /// All variants, in counter order.
    pub const ALL: [DropReason; DropReason::COUNT] = [
        DropReason::Loss,
        DropReason::NoRoute,
        DropReason::HostDown,
        DropReason::NoListener,
        DropReason::TooBig,
    ];
}

/// Event-engine internals: queue and route-cache behaviour. Exposed for
/// the bench harness and for regression tests on the fast path.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Events popped from the future-event heap.
    pub heap_pops: u64,
    /// Events popped from the same-timestamp now-queue (these skipped
    /// the heap entirely).
    pub now_pops: u64,
    /// Deliveries popped from per-transmitter FIFO streams (in-flight
    /// serialized packets that never paid heap sift costs).
    pub stream_pops: u64,
    /// Route lookups answered from the cache.
    pub route_cache_hits: u64,
    /// Route lookups that fell through to a fresh computation.
    pub route_cache_misses: u64,
    /// High-water mark of pending events (heap + now-queue).
    pub peak_queue_depth: u64,
}

/// Per-packet fault injections performed by the chaos layer. Corrupted
/// and duplicated packets are still *delivered* (the wire layer's
/// checksums and dedup must cope), so none of these count as drops.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Payloads with flipped bytes.
    pub corrupted: u64,
    /// Extra copies injected.
    pub duplicated: u64,
    /// Deliveries given extra reordering jitter.
    pub reordered: u64,
}

/// Aggregate statistics kept by the world.
#[derive(Clone, Debug, Default)]
pub struct NetStats {
    /// Packets handed to `send_packet`.
    pub sent: u64,
    /// Packets delivered to an actor.
    pub delivered: u64,
    /// Events dispatched in total.
    pub events: u64,
    /// Engine internals (queue tiers, route cache, queue depth).
    pub engine: EngineStats,
    /// Per-packet chaos injections (zero unless chaos is enabled).
    pub chaos: ChaosStats,
    drops: [u64; DropReason::COUNT],
    bytes_by_net: Vec<u64>,
}

impl NetStats {
    /// Drops for one reason.
    pub fn drops(&self, r: DropReason) -> u64 {
        self.drops[r as usize]
    }

    /// Total drops across reasons.
    pub fn total_drops(&self) -> u64 {
        self.drops.iter().sum()
    }

    /// Payload bytes carried by network `n`.
    pub fn bytes_on(&self, n: NetId) -> u64 {
        self.bytes_by_net.get(n.index()).copied().unwrap_or(0)
    }

    /// `(net, bytes)` for every network that carried traffic.
    pub fn bytes_by_net(&self) -> impl Iterator<Item = (NetId, u64)> + '_ {
        self.bytes_by_net
            .iter()
            .enumerate()
            .filter(|(_, &b)| b > 0)
            .map(|(i, &b)| (NetId::from_index(i), b))
    }

    /// Record a drop.
    pub(crate) fn drop(&mut self, r: DropReason) {
        self.drops[r as usize] += 1;
    }

    /// Account `len` payload bytes to network `n`.
    pub(crate) fn add_bytes(&mut self, n: NetId, len: u64) {
        let i = n.index();
        if i >= self.bytes_by_net.len() {
            self.bytes_by_net.resize(i + 1, 0);
        }
        self.bytes_by_net[i] += len;
    }

    /// Pre-size the per-network byte counters so the send path never
    /// grows the vector.
    pub(crate) fn reserve_nets(&mut self, nets: usize) {
        if self.bytes_by_net.len() < nets {
            self.bytes_by_net.resize(nets, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_counting() {
        let mut s = NetStats::default();
        s.drop(DropReason::Loss);
        s.drop(DropReason::Loss);
        s.drop(DropReason::NoRoute);
        assert_eq!(s.total_drops(), 3);
        assert_eq!(s.drops(DropReason::Loss), 2);
        assert_eq!(s.drops(DropReason::TooBig), 0);
    }

    #[test]
    fn drop_reason_indices_are_dense() {
        for (i, r) in DropReason::ALL.iter().enumerate() {
            assert_eq!(*r as usize, i);
        }
    }

    #[test]
    fn byte_accounting_by_net() {
        let mut s = NetStats::default();
        let n0 = NetId::from_index(0);
        let n2 = NetId::from_index(2);
        s.add_bytes(n2, 100);
        s.add_bytes(n0, 7);
        s.add_bytes(n2, 1);
        assert_eq!(s.bytes_on(n0), 7);
        assert_eq!(s.bytes_on(NetId::from_index(1)), 0);
        assert_eq!(s.bytes_on(n2), 101);
        let carried: Vec<_> = s.bytes_by_net().collect();
        assert_eq!(carried, vec![(n0, 7), (n2, 101)]);
    }
}
