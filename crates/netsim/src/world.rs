//! The discrete-event world: clock, event queue, actor dispatch and
//! packet delivery with link-level serialization.
//!
//! ## Delivery model
//!
//! A datagram from `a` to `b` takes the best usable path per the
//! paper's §5.3: the fastest common network if one exists, otherwise
//! "normal IP routing" over each side's routable networks. Delivery
//! time is `max(now, transmitter_free) + serialization + propagation`;
//! shared-bus media (classic Ethernet) serialize the whole segment
//! through one channel, switched media serialize per interface. For
//! routed (two-segment) paths serialization is charged once at the
//! bottleneck bandwidth and both propagation latencies are added —
//! the WAN transit itself is modelled by the edge media.
//!
//! Packets are dropped (never duplicated or reordered beyond what
//! differing path delays produce) on: random medium loss, no route,
//! destination host down, no listener on the port, or payload > MTU.
//! Reliability is the job of `snipe-wire`, exactly as UDP left it to
//! SNIPE's selective-resend protocol.

use std::collections::HashMap;

use bytes::Bytes;

use snipe_util::id::{HostId, NetId};
use snipe_util::metrics::{HistoId, Log2Histogram, Registry};
use snipe_util::rng::Xoshiro256;
use snipe_util::time::{SimDuration, SimTime};

use crate::actor::{Actor, ActorId, Ctx, Event};
use crate::chaos::PacketChaos;
use crate::queue::{EventQueue, FnvMap, Tier, TxChannel};
use crate::topology::{Endpoint, GrayLevel, PathInfo, Topology};
use crate::trace::{self, DropReason, FaultOp, NetStats, TraceKind};

/// First ephemeral port handed out by [`World::alloc_port`].
pub const EPHEMERAL_BASE: u16 = 49152;

type RouteKey = (HostId, HostId, Option<NetId>);
type RouteCache = FnvMap<RouteKey, Option<PathInfo>>;

/// A one-shot closure scheduled via [`World::schedule_fn`].
type ScheduledFn = Box<dyn FnOnce(&mut World)>;

enum Queued {
    Deliver { from: Endpoint, to: Endpoint, payload: Bytes },
    Timer { actor: ActorId, token: u64 },
    Signal { from: Option<Endpoint>, to: Endpoint, signum: u32 },
    Func { token: u64 },
}

struct Slot {
    actor: Option<Box<dyn Actor>>,
    endpoint: Endpoint,
    alive: bool,
}

/// The simulation world.
pub struct World {
    now: SimTime,
    /// The three-tier event queue (now-queue, delivery streams,
    /// slab-backed heap) — see [`crate::queue`].
    equeue: EventQueue<Queued>,
    topo: Topology,
    slots: Vec<Slot>,
    bindings: FnvMap<Endpoint, ActorId>,
    ephemeral: HashMap<HostId, u16>,
    rng: Xoshiro256,
    stats: NetStats,
    funcs: HashMap<u64, ScheduledFn>,
    next_func: u64,
    /// Memoized `select_path` results, valid while `route_epoch`
    /// matches `topo.epoch()`. Negative results (`None`) are cached
    /// too: a partitioned destination is asked for just as often.
    route_cache: RouteCache,
    route_epoch: u64,
    route_cache_enabled: bool,
    /// Per-packet chaos injection (corruption/duplication/reorder),
    /// None when chaos is off (the common case — one branch per send).
    chaos: Option<PacketChaos>,
    /// Chaos draws come from their own stream so a chaos plan never
    /// perturbs the workload's RNG: a failing run replays bit-for-bit
    /// from `(plan seed, workload seed)` independently.
    chaos_rng: Xoshiro256,
    /// Snapshot of `trace::enabled()` — the flight-recorder check on
    /// the packet/timer hot paths is one predictable branch on this
    /// field, not a TLS lookup per event.
    recording: bool,
    /// The world's metrics registry. Hot counters still accumulate in
    /// `NetStats` (flat struct fields, same as ever) and the latency
    /// histogram in [`World::h_latency`]; everything is mirrored in at
    /// snapshot time so the registry itself is fully off the hot path.
    metrics: Registry,
    /// End-to-end delivery latency (queue + serialization +
    /// propagation) in nanoseconds, one sample per queued delivery.
    /// Inline field, not a registry slot: recording is a direct
    /// fixed-array bump with no id indirection.
    h_latency: Log2Histogram,
    /// Registry slot `net.delivery_latency_ns` mirrors into.
    h_latency_id: HistoId,
}

impl World {
    /// A world over the given topology, seeded for determinism.
    pub fn new(topo: Topology, seed: u64) -> World {
        let mut stats = NetStats::default();
        stats.reserve_nets(topo.net_count());
        let route_epoch = topo.epoch();
        let mut metrics = Registry::new();
        let h_latency_id = metrics.histogram("net.delivery_latency_ns");
        World {
            now: SimTime::ZERO,
            equeue: EventQueue::new(),
            topo,
            slots: Vec::new(),
            bindings: FnvMap::default(),
            ephemeral: HashMap::new(),
            rng: Xoshiro256::seed_from_u64(seed),
            stats,
            funcs: HashMap::new(),
            next_func: 0,
            route_cache: RouteCache::default(),
            route_epoch,
            route_cache_enabled: true,
            chaos: None,
            chaos_rng: Xoshiro256::seed_from_u64(0),
            recording: trace::enabled(),
            metrics,
            h_latency: Log2Histogram::default(),
            h_latency_id,
        }
    }

    /// Re-sample the thread-local flight-recorder flag. Only needed
    /// when `trace::enable`/`disable` ran *after* this world was
    /// constructed (`World::new` samples it once).
    pub fn sync_recording(&mut self) {
        self.recording = trace::enabled();
    }

    /// Enable/disable route memoization (on by default). Disabling
    /// recomputes every lookup — route decisions and traffic are
    /// identical either way (a property the test suite asserts); this
    /// exists for A/B measurement and cache-validation tests.
    pub fn set_route_cache(&mut self, enabled: bool) {
        self.route_cache_enabled = enabled;
        self.route_cache.clear();
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The topology (immutable; use the fault APIs to mutate).
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Aggregate delivery statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// The world's metrics registry (latency histogram plus, after
    /// [`World::sync_metrics`], mirrors of every flat counter).
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// Mirror the flat hot-path counters (`NetStats`, `EngineStats`,
    /// `ChaosStats`, per-net bytes) and the flight recorder's per-kind
    /// totals into the registry. Cold: call at snapshot/render time,
    /// idempotent across repeated syncs.
    pub fn sync_metrics(&mut self) {
        let s = self.stats.clone();
        let m = &mut self.metrics;
        let pairs: [(&str, u64); 16] = [
            ("net.sent", s.sent),
            ("net.delivered", s.delivered),
            ("net.events", s.events),
            ("net.drop.loss", s.drops(DropReason::Loss)),
            ("net.drop.no_route", s.drops(DropReason::NoRoute)),
            ("net.drop.host_down", s.drops(DropReason::HostDown)),
            ("net.drop.no_listener", s.drops(DropReason::NoListener)),
            ("net.drop.too_big", s.drops(DropReason::TooBig)),
            ("net.chaos.corrupted", s.chaos.corrupted),
            ("net.chaos.duplicated", s.chaos.duplicated),
            ("net.chaos.reordered", s.chaos.reordered),
            ("engine.heap_pops", s.engine.heap_pops),
            ("engine.now_pops", s.engine.now_pops),
            ("engine.stream_pops", s.engine.stream_pops),
            ("engine.route_cache_hits", s.engine.route_cache_hits),
            ("engine.route_cache_misses", s.engine.route_cache_misses),
        ];
        for (name, v) in pairs {
            let id = m.counter(name);
            m.set_counter(id, v);
        }
        let depth = m.gauge("engine.peak_queue_depth");
        m.set(depth, s.engine.peak_queue_depth);
        m.set_histo(self.h_latency_id, &self.h_latency);
        for (net, bytes) in s.bytes_by_net() {
            let id = m.counter(&format!("net.bytes.{}", net.index()));
            m.set_counter(id, bytes);
        }
        // Flight-recorder totals (exact even after ring overwrite):
        // retransmit and rotation *rates* come from here.
        if trace::enabled() {
            for (name, v) in TraceKind::NAMES.iter().zip(trace::kind_counts()) {
                let id = m.counter(&format!("trace.{name}"));
                m.set_counter(id, v);
            }
            let id = m.counter("trace.ring_dropped");
            m.set_counter(id, trace::trace_dropped());
        }
    }

    /// Sync and render the registry as a JSON object string.
    pub fn metrics_json(&mut self, indent: usize) -> String {
        self.sync_metrics();
        self.metrics.render_json(indent)
    }

    /// Total events pending across all three queue tiers. Invariant
    /// oracles use this to assert the engine quiesces after a run.
    pub fn queue_depth(&self) -> usize {
        self.equeue.depth()
    }

    /// The world RNG (actors reach it through [`Ctx::rng`]).
    pub fn rng(&mut self) -> &mut Xoshiro256 {
        &mut self.rng
    }

    fn push(&mut self, at: SimTime, kind: Queued) {
        self.equeue.push(self.now, at, kind);
        self.note_depth();
    }

    /// Queue a delivery serialized by `channel` with a fixed
    /// propagation latency, using its FIFO stream when the arrival
    /// order allows.
    fn push_delivery(
        &mut self,
        at: SimTime,
        kind: Queued,
        channel: TxChannel,
        latency: SimDuration,
    ) {
        self.equeue.push_delivery(self.now, at, kind, channel, latency);
        self.note_depth();
    }

    fn note_depth(&mut self) {
        let depth = self.equeue.depth() as u64;
        if depth > self.stats.engine.peak_queue_depth {
            self.stats.engine.peak_queue_depth = depth;
        }
    }

    /// Count a drop and, when the flight recorder is on, record it.
    fn note_drop(&mut self, reason: DropReason) {
        self.stats.drop(reason);
        if cfg!(not(feature = "obs-off")) && self.recording {
            trace::record_cached(self.now, TraceKind::Drop { reason });
        }
    }

    /// Record a fault-layer operation in the flight recorder.
    fn note_fault(&mut self, what: &'static str, a: u64, b: u64) {
        if cfg!(not(feature = "obs-off")) && self.recording {
            trace::record_cached(self.now, TraceKind::Fault { op: FaultOp { what, a, b } });
        }
    }

    /// Pop the globally next event by `(at, seq)` across the three
    /// tiers, accounting the pop against the engine's tier counters.
    fn pop_event(&mut self) -> Option<crate::queue::QueuedEvent<Queued>> {
        let (ev, tier) = self.equeue.pop()?;
        match tier {
            Tier::Now => self.stats.engine.now_pops += 1,
            Tier::Heap => self.stats.engine.heap_pops += 1,
            Tier::Stream => self.stats.engine.stream_pops += 1,
        }
        Some(ev)
    }

    /// Timestamp of the next pending event, if any.
    fn peek_at(&self) -> Option<SimTime> {
        self.equeue.peek_at()
    }

    /// Spawn an actor bound to `(host, port)`. Delivers `Event::Start`
    /// at the current time. Returns `None` if the port is in use or the
    /// host id is unknown.
    pub fn spawn(&mut self, host: HostId, port: u16, actor: Box<dyn Actor>) -> Option<Endpoint> {
        if host.index() >= self.topo.host_count() {
            return None;
        }
        let ep = Endpoint::new(host, port);
        if self.bindings.contains_key(&ep) {
            return None;
        }
        let id = ActorId(self.slots.len() as u64);
        self.slots.push(Slot { actor: Some(actor), endpoint: ep, alive: true });
        self.bindings.insert(ep, id);
        self.push(self.now, Queued::Signal { from: None, to: ep, signum: SIGSTART });
        Some(ep)
    }

    /// Spawn a boxed [`crate::actor::PortableActor`] (wrapped in
    /// [`crate::actor::OnWorld`]).
    pub fn spawn_portable(
        &mut self,
        host: HostId,
        port: u16,
        actor: Box<dyn crate::actor::PortableActor>,
    ) -> Option<Endpoint> {
        self.spawn(host, port, Box::new(crate::actor::OnWorld(actor)))
    }

    /// Borrow the concrete actor state at `ep` (between runs), e.g. for
    /// workload invariant checks. `None` if nothing is bound there or
    /// the bound actor is not a `T`.
    pub fn actor_ref<T: Actor + 'static>(&self, ep: Endpoint) -> Option<&T> {
        let id = self.bindings.get(&ep)?;
        let actor = self.slots[id.0 as usize].actor.as_ref()?;
        let actor: &dyn Actor = &**actor;
        actor.as_any().downcast_ref::<T>()
    }

    /// Like [`World::actor_ref`], but also looks through an
    /// [`crate::actor::OnWorld`] wrapper, so registry-spawned portable
    /// actors are reachable by their concrete type.
    pub fn portable_ref<T: crate::actor::PortableActor + 'static>(
        &self,
        ep: Endpoint,
    ) -> Option<&T> {
        let id = self.bindings.get(&ep)?;
        let actor = self.slots[id.0 as usize].actor.as_ref()?;
        let actor: &dyn Actor = &**actor;
        if let Some(t) = actor.as_any().downcast_ref::<T>() {
            return Some(t);
        }
        let wrapped = actor.as_any().downcast_ref::<crate::actor::OnWorld>()?;
        // Deref the box explicitly: calling `as_any` on the `Box`
        // itself could hit the blanket `AsAny` impl for the box type
        // and the downcast would miss the hosted actor.
        let inner: &dyn crate::actor::PortableActor = &*wrapped.0;
        inner.as_any().downcast_ref::<T>()
    }

    /// Allocate an unused ephemeral port on `host`.
    ///
    /// # Panics
    /// Panics if every ephemeral port on the host is bound — scanning
    /// is bounded to one full wrap of the ephemeral range so exhaustion
    /// fails loudly instead of spinning forever.
    pub fn alloc_port(&mut self, host: HostId) -> u16 {
        let ctr = self.ephemeral.entry(host).or_insert(EPHEMERAL_BASE);
        let span = (u16::MAX - EPHEMERAL_BASE) as u32 + 1;
        for _ in 0..span {
            let p = *ctr;
            *ctr = p.checked_add(1).unwrap_or(EPHEMERAL_BASE);
            if !self.bindings.contains_key(&Endpoint::new(host, p)) {
                return p;
            }
        }
        panic!("alloc_port: all {span} ephemeral ports on host {host} are bound");
    }

    /// Kill the actor at `ep` (no-op if none).
    pub fn kill(&mut self, ep: Endpoint) {
        if let Some(id) = self.bindings.remove(&ep) {
            let slot = &mut self.slots[id.0 as usize];
            slot.alive = false;
            slot.actor = None; // drop immediately unless currently executing
        }
    }

    /// Is an actor currently bound at `ep`?
    pub fn is_bound(&self, ep: Endpoint) -> bool {
        self.bindings.contains_key(&ep)
    }

    /// Deliver a signal at the current time.
    pub fn signal(&mut self, from: Option<Endpoint>, to: Endpoint, signum: u32) {
        self.push(self.now, Queued::Signal { from, to, signum });
    }

    /// Schedule a timer for an actor.
    pub fn set_timer(&mut self, actor: ActorId, delay: SimDuration, token: u64) {
        self.push(self.now + delay, Queued::Timer { actor, token });
    }

    /// Schedule a closure to run against the world at `at` (fault
    /// scripts, experiment scenarios).
    pub fn schedule_fn(&mut self, at: SimTime, f: impl FnOnce(&mut World) + 'static) {
        let token = self.next_func;
        self.next_func += 1;
        self.funcs.insert(token, Box::new(f));
        self.push(at, Queued::Func { token });
    }

    /// Take a host down; every actor on it gets [`Event::HostDown`].
    pub fn host_down(&mut self, h: HostId) {
        if !self.topo.host(h).up {
            return;
        }
        self.note_fault("host_down", h.index() as u64, 0);
        self.topo.host_mut(h).up = false;
        self.topo.bump_epoch();
        for ep in self.endpoints_on(h) {
            self.dispatch_to(ep, Event::HostDown);
        }
    }

    /// Bring a host back up; every actor on it gets [`Event::HostUp`].
    pub fn host_up(&mut self, h: HostId) {
        if self.topo.host(h).up {
            return;
        }
        self.note_fault("host_up", h.index() as u64, 0);
        self.topo.host_mut(h).up = true;
        self.topo.bump_epoch();
        for ep in self.endpoints_on(h) {
            self.dispatch_to(ep, Event::HostUp);
        }
    }

    /// Take a network segment down/up. A no-op mutation (already in the
    /// requested state) leaves the topology epoch alone, so it does not
    /// needlessly invalidate the route cache.
    pub fn set_net_up(&mut self, n: NetId, up: bool) {
        let net = self.topo.net_mut(n);
        if net.up == up {
            return;
        }
        net.up = up;
        self.topo.bump_epoch();
        self.note_fault("set_net_up", n.index() as u64, up as u64);
    }

    /// Take one host's interface on `n` down/up. Returns `false` if the
    /// host has no interface on that network (previously a silent
    /// no-op); unchanged state is acknowledged with `true` but does not
    /// bump the topology epoch.
    pub fn set_iface_up(&mut self, h: HostId, n: NetId, up: bool) -> bool {
        match self.topo.host_mut(h).interfaces.iter_mut().find(|i| i.net == n) {
            Some(i) if i.up == up => true,
            Some(i) => {
                i.up = up;
                self.topo.bump_epoch();
                self.note_fault("set_iface_up", h.index() as u64, n.index() as u64);
                true
            }
            None => false,
        }
    }

    /// Override the loss rate of a network (None restores the medium).
    /// Idempotent: re-setting the current override does not bump the
    /// topology epoch.
    pub fn set_net_loss(&mut self, n: NetId, loss: Option<f64>) {
        let net = self.topo.net_mut(n);
        if net.loss_override == loss {
            return;
        }
        net.loss_override = loss;
        self.topo.bump_epoch();
        self.note_fault("set_net_loss", n.index() as u64, loss.is_some() as u64);
    }

    /// Put a network segment in a partition group. Idempotent: joining
    /// the current group does not bump the topology epoch.
    pub fn set_partition(&mut self, n: NetId, group: u32) {
        let net = self.topo.net_mut(n);
        if net.partition == group {
            return;
        }
        net.partition = group;
        self.topo.bump_epoch();
        self.note_fault("set_partition", n.index() as u64, group as u64);
    }

    /// Degrade a network into a gray link (None restores the medium).
    /// Idempotent like the other fault APIs.
    pub fn set_gray(&mut self, n: NetId, gray: Option<GrayLevel>) {
        let net = self.topo.net_mut(n);
        if net.gray == gray {
            return;
        }
        net.gray = gray;
        self.topo.bump_epoch();
        self.note_fault("set_gray", n.index() as u64, gray.is_some() as u64);
    }

    /// Install (or clear) per-packet chaos injection. The chaos RNG is
    /// reseeded on every call, so the injection pattern depends only on
    /// `(seed, traffic)` — never on how long a previous chaos window
    /// ran.
    pub fn set_packet_chaos(&mut self, chaos: Option<PacketChaos>, seed: u64) {
        self.note_fault("set_packet_chaos", chaos.is_some() as u64, seed);
        self.chaos = chaos;
        self.chaos_rng = Xoshiro256::seed_from_u64(seed);
    }

    fn endpoints_on(&self, h: HostId) -> Vec<Endpoint> {
        let mut eps: Vec<Endpoint> =
            self.bindings.keys().filter(|ep| ep.host == h).copied().collect();
        eps.sort(); // determinism
        eps
    }

    /// Route selection per §5.3, memoized. Cache entries live until the
    /// next topology epoch bump (any fault/attach mutation).
    fn select_path(&mut self, from: HostId, to: HostId, via: Option<NetId>) -> Option<PathInfo> {
        if !self.route_cache_enabled {
            return self.compute_path(from, to, via);
        }
        if self.route_epoch != self.topo.epoch() {
            self.route_cache.clear();
            self.route_epoch = self.topo.epoch();
        }
        if let Some(&hit) = self.route_cache.get(&(from, to, via)) {
            self.stats.engine.route_cache_hits += 1;
            return hit;
        }
        self.stats.engine.route_cache_misses += 1;
        let path = self.compute_path(from, to, via);
        self.route_cache.insert((from, to, via), path);
        path
    }

    /// The route the engine would use for a packet from `from` to `to`
    /// right now (memoized, exactly as `send_packet` sees it).
    pub fn route(&mut self, from: HostId, to: HostId, via: Option<NetId>) -> Option<PathInfo> {
        self.select_path(from, to, via)
    }

    /// Fresh, uncached route computation — the reference the cache is
    /// validated against in tests.
    pub fn route_uncached(&self, from: HostId, to: HostId, via: Option<NetId>) -> Option<PathInfo> {
        self.compute_path(from, to, via)
    }

    /// Uncached route selection per §5.3 (shared with the sharded
    /// engine via [`compute_path`]).
    fn compute_path(&self, from: HostId, to: HostId, via: Option<NetId>) -> Option<PathInfo> {
        compute_path(&self.topo, from, to, via)
    }

    /// Send a datagram. Called by [`Ctx::send`].
    pub(crate) fn send_packet(
        &mut self,
        from: Endpoint,
        to: Endpoint,
        payload: Bytes,
        via: Option<NetId>,
    ) {
        self.stats.sent += 1;
        if cfg!(not(feature = "obs-off")) && self.recording {
            trace::record_cached(self.now, TraceKind::Send { from, to, len: payload.len() as u32 });
        }
        if from.host == to.host {
            // Loopback: constant small cost, no shared wire.
            let m = crate::medium::Medium::loopback();
            let at = self.now + m.tx_time(payload.len()) + m.latency;
            if cfg!(not(feature = "obs-off")) {
                self.h_latency.observe(at.since(self.now).as_nanos());
            }
            self.push(at, Queued::Deliver { from, to, payload });
            return;
        }
        if !self.topo.host(from.host).up {
            self.note_drop(DropReason::HostDown);
            return;
        }
        let Some(path) = self.select_path(from.host, to.host, via) else {
            self.note_drop(DropReason::NoRoute);
            return;
        };
        if payload.len() > path.mtu {
            self.note_drop(DropReason::TooBig);
            return;
        }
        // Serialization on the first-hop transmitter, at the bottleneck
        // bandwidth for routed paths.
        let src_net = path.first_net();
        let medium = &self.topo.net(src_net).medium;
        let shared = medium.shared_bus;
        let tx = medium.tx_time_at(path.bandwidth_bps, payload.len());
        let (free, channel) = if shared {
            (self.topo.net(src_net).busy_until, TxChannel::Bus(src_net))
        } else {
            self.topo
                .host(from.host)
                .interfaces
                .iter()
                .find(|i| i.net == src_net)
                .map(|i| (i.busy_until, TxChannel::Link(i.link)))
                .unwrap_or((SimTime::ZERO, TxChannel::Bus(src_net)))
        };
        let start = if free > self.now { free } else { self.now };
        let finish = start + tx;
        if shared {
            self.topo.net_mut(src_net).busy_until = finish;
        } else if let Some(i) =
            self.topo.host_mut(from.host).interfaces.iter_mut().find(|i| i.net == src_net)
        {
            i.busy_until = finish;
        }
        // Random loss (checked after wire occupancy: a lost frame still
        // burned air time).
        if path.loss > 0.0 && self.rng.gen_bool(path.loss) {
            self.note_drop(DropReason::Loss);
            return;
        }
        for &n in path.nets() {
            self.stats.add_bytes(n, payload.len() as u64);
        }
        let at = finish + path.latency;
        if cfg!(not(feature = "obs-off")) {
            self.h_latency.observe(at.since(self.now).as_nanos());
        }
        if self.chaos.is_some() {
            self.chaos_deliver(at, from, to, payload, channel, path.latency);
        } else {
            self.push_delivery(at, Queued::Deliver { from, to, payload }, channel, path.latency);
        }
    }

    /// Deliver one packet under per-packet chaos: maybe corrupt the
    /// payload, maybe inject a duplicate, maybe jitter the arrival.
    /// Jittered copies go through the heap, not the delivery streams —
    /// their arrival times are not monotone per channel, which is the
    /// invariant the streams rely on.
    fn chaos_deliver(
        &mut self,
        at: SimTime,
        from: Endpoint,
        to: Endpoint,
        payload: Bytes,
        channel: TxChannel,
        latency: SimDuration,
    ) {
        let fx = self.chaos.expect("chaos_deliver called without chaos");
        let mut payload = payload;
        if fx.corrupt > 0.0 && !payload.is_empty() && self.chaos_rng.gen_bool(fx.corrupt) {
            let mut bytes = payload.to_vec();
            let flips = self.chaos_rng.gen_range_inclusive(1, 3);
            for _ in 0..flips {
                let i = self.chaos_rng.gen_range(bytes.len() as u64) as usize;
                let bit = self.chaos_rng.gen_range(8) as u8;
                bytes[i] ^= 1 << bit;
            }
            payload = Bytes::from(bytes);
            self.stats.chaos.corrupted += 1;
        }
        if fx.duplicate > 0.0 && self.chaos_rng.gen_bool(fx.duplicate) {
            let dup_at = at + self.jitter_draw(fx.jitter);
            self.push(dup_at, Queued::Deliver { from, to, payload: payload.clone() });
            self.stats.chaos.duplicated += 1;
        }
        if fx.reorder > 0.0 && self.chaos_rng.gen_bool(fx.reorder) {
            let late_at = at + self.jitter_draw(fx.jitter);
            self.push(late_at, Queued::Deliver { from, to, payload });
            self.stats.chaos.reordered += 1;
            return;
        }
        self.push_delivery(at, Queued::Deliver { from, to, payload }, channel, latency);
    }

    fn jitter_draw(&mut self, max: SimDuration) -> SimDuration {
        SimDuration::from_nanos(1 + self.chaos_rng.gen_range(max.as_nanos().max(1)))
    }

    fn dispatch_to(&mut self, ep: Endpoint, event: Event) {
        let Some(&id) = self.bindings.get(&ep) else {
            return;
        };
        self.dispatch_id(id, ep, event);
    }

    fn dispatch_id(&mut self, id: ActorId, ep: Endpoint, event: Event) {
        let Some(mut actor) = self.slots[id.0 as usize].actor.take() else {
            return; // re-entrant dispatch to the same actor: drop
        };
        {
            let mut ctx = Ctx { world: self, me: id, my_endpoint: ep };
            actor.on_event(&mut ctx, event);
        }
        let slot = &mut self.slots[id.0 as usize];
        if slot.alive {
            slot.actor = Some(actor);
        }
    }

    /// Run one queued event. Returns false if the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.pop_event() else {
            return false;
        };
        debug_assert!(ev.at >= self.now, "time went backwards");
        self.now = ev.at;
        self.stats.events += 1;
        match ev.kind {
            Queued::Deliver { from, to, payload } => {
                if !self.topo.host(to.host).up {
                    self.note_drop(DropReason::HostDown);
                } else if let Some(&id) = self.bindings.get(&to) {
                    self.stats.delivered += 1;
                    if cfg!(not(feature = "obs-off")) && self.recording {
                        trace::record_cached(
                            self.now,
                            TraceKind::Recv { from, to, len: payload.len() as u32 },
                        );
                    }
                    self.dispatch_id(id, to, Event::Packet { from, payload });
                } else {
                    self.note_drop(DropReason::NoListener);
                }
            }
            Queued::Timer { actor, token } => {
                let idx = actor.0 as usize;
                if idx < self.slots.len() && self.slots[idx].alive {
                    let ep = self.slots[idx].endpoint;
                    // Timers do not fire while the host is down.
                    if self.topo.host(ep.host).up {
                        if cfg!(not(feature = "obs-off")) && self.recording {
                            trace::record_cached(self.now, TraceKind::TimerFire { token });
                        }
                        self.dispatch_to(ep, Event::Timer { token });
                    }
                }
            }
            Queued::Signal { from, to, signum } => {
                if self.topo.host(to.host).up {
                    if signum == SIGSTART {
                        self.dispatch_to(to, Event::Start);
                    } else {
                        self.dispatch_to(to, Event::Signal { signum, from });
                    }
                }
            }
            Queued::Func { token } => {
                if let Some(f) = self.funcs.remove(&token) {
                    f(self);
                }
            }
        }
        true
    }

    /// Run until the queue is empty or `limit` events have fired.
    /// Returns the number of events processed.
    pub fn run_until_idle(&mut self, limit: u64) -> u64 {
        let mut n = 0;
        while n < limit && self.step() {
            n += 1;
        }
        n
    }

    /// Run events with timestamps `<= t`, then set the clock to `t`.
    pub fn run_until(&mut self, t: SimTime) {
        while let Some(at) = self.peek_at() {
            if at > t {
                break;
            }
            self.step();
        }
        if t > self.now {
            self.now = t;
        }
    }

    /// Run for a span of simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let t = self.now + d;
        self.run_until(t);
    }
}

/// Internal signal number used to carry `Event::Start`.
pub(crate) const SIGSTART: u32 = u32::MAX;

/// Uncached route selection per §5.3, over an explicit topology. Runs
/// allocation-free: the candidate scans are iterator-based and
/// `PathInfo` is `Copy`. Both [`World`] and the sharded engine
/// ([`crate::shard`]) route through this one function, so their route
/// decisions can never drift apart.
pub(crate) fn compute_path(
    topo: &Topology,
    from: HostId,
    to: HostId,
    via: Option<NetId>,
) -> Option<PathInfo> {
    if let Some(n) = via {
        if topo.is_common_network(from, to, n) {
            return Some(topo.direct_path(n));
        }
        return None;
    }
    // Fastest common network first, by *effective* speed: a grayed
    // segment can lose the preference to a healthy slower one.
    if let Some(best) = topo.common_networks_iter(from, to).max_by_key(|&n| {
        (topo.effective_bandwidth(n), std::cmp::Reverse(topo.effective_latency(n).as_nanos()))
    }) {
        return Some(topo.direct_path(best));
    }
    // Normal IP routing over routable edges in the same partition.
    let mut best: Option<PathInfo> = None;
    for na in topo.routable_networks_iter(from) {
        for nb in topo.routable_networks_iter(to) {
            if topo.net(na).partition != topo.net(nb).partition {
                continue;
            }
            let p = topo.routed_path(na, nb);
            let better = match &best {
                None => true,
                Some(b) => {
                    (p.bandwidth_bps, std::cmp::Reverse(p.latency.as_nanos()))
                        > (b.bandwidth_bps, std::cmp::Reverse(b.latency.as_nanos()))
                }
            };
            if better {
                best = Some(p);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::medium::Medium;
    use crate::topology::HostCfg;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Test actor: records received payload lengths + timestamps,
    /// optionally echoes packets back.
    struct Recorder {
        log: Rc<RefCell<Vec<(SimTime, usize)>>>,
        echo: bool,
    }

    impl Actor for Recorder {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
            if let Event::Packet { from, payload } = event {
                self.log.borrow_mut().push((ctx.now(), payload.len()));
                if self.echo {
                    ctx.send(from, payload);
                }
            }
        }
    }

    struct SendOnStart {
        to: Endpoint,
        sizes: Vec<usize>,
    }

    impl Actor for SendOnStart {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
            if matches!(event, Event::Start) {
                for &s in &self.sizes {
                    ctx.send(self.to, Bytes::from(vec![0u8; s]));
                }
            }
        }
    }

    fn eth_pair() -> (World, HostId, HostId) {
        let mut t = Topology::new();
        let eth = t.add_network("eth", Medium::ethernet100(), true);
        let a = t.add_host(HostCfg::named("a"));
        let b = t.add_host(HostCfg::named("b"));
        t.attach(a, eth);
        t.attach(b, eth);
        (World::new(t, 1), a, b)
    }

    #[test]
    fn packet_delivery_with_latency() {
        let (mut w, a, b) = eth_pair();
        let log = Rc::new(RefCell::new(Vec::new()));
        w.spawn(b, 5, Box::new(Recorder { log: log.clone(), echo: false }));
        w.spawn(a, 6, Box::new(SendOnStart { to: Endpoint::new(b, 5), sizes: vec![1000] }));
        w.run_until_idle(100);
        let entries = log.borrow();
        assert_eq!(entries.len(), 1);
        let (at, len) = entries[0];
        assert_eq!(len, 1000);
        // tx(1000+38 bytes @100Mb) ≈ 83us + 50us latency
        let us = at.as_secs_f64() * 1e6;
        assert!((us - 133.0).abs() < 5.0, "arrival at {us}us");
    }

    #[test]
    fn shared_bus_serializes_packets() {
        let (mut w, a, b) = eth_pair();
        let log = Rc::new(RefCell::new(Vec::new()));
        w.spawn(b, 5, Box::new(Recorder { log: log.clone(), echo: false }));
        w.spawn(a, 6, Box::new(SendOnStart { to: Endpoint::new(b, 5), sizes: vec![1000, 1000] }));
        w.run_until_idle(100);
        let entries = log.borrow();
        assert_eq!(entries.len(), 2);
        let gap = entries[1].0.since(entries[0].0);
        // Second packet waits for the first to clear the bus: gap ≈ tx time ≈ 83us.
        assert!(gap >= SimDuration::from_micros(80), "gap {gap}");
    }

    #[test]
    fn echo_round_trip() {
        let (mut w, a, b) = eth_pair();
        let log_a = Rc::new(RefCell::new(Vec::new()));
        w.spawn(a, 7, Box::new(Recorder { log: log_a.clone(), echo: false }));
        w.spawn(b, 5, Box::new(Recorder { log: Rc::new(RefCell::new(Vec::new())), echo: true }));
        // a:7 sends to b:5 which echoes back to a:7.
        w.spawn(a, 8, Box::new(SendOnStart { to: Endpoint::new(b, 5), sizes: vec![64] }));
        // redirect: make the sender the recorder instead
        w.run_until_idle(100);
        // the echo goes back to a:8 (the sender), which has no recorder;
        // verify delivery stats instead.
        assert_eq!(w.stats().delivered, 2);
    }

    #[test]
    fn host_down_drops_and_notifies() {
        let (mut w, a, b) = eth_pair();
        let log = Rc::new(RefCell::new(Vec::new()));
        w.spawn(b, 5, Box::new(Recorder { log: log.clone(), echo: false }));
        w.run_until_idle(10);
        w.host_down(b);
        w.spawn(a, 6, Box::new(SendOnStart { to: Endpoint::new(b, 5), sizes: vec![100] }));
        w.run_until_idle(100);
        assert!(log.borrow().is_empty());
        let d = w.stats().drops(DropReason::NoRoute) + w.stats().drops(DropReason::HostDown);
        assert_eq!(d, 1);
        w.host_up(b);
        w.spawn(a, 9, Box::new(SendOnStart { to: Endpoint::new(b, 5), sizes: vec![100] }));
        w.run_until_idle(100);
        assert_eq!(log.borrow().len(), 1);
    }

    #[test]
    fn no_listener_counted() {
        let (mut w, a, b) = eth_pair();
        w.spawn(a, 6, Box::new(SendOnStart { to: Endpoint::new(b, 99), sizes: vec![10] }));
        w.run_until_idle(100);
        assert_eq!(w.stats().drops(DropReason::NoListener), 1);
    }

    #[test]
    fn mtu_enforced() {
        let (mut w, a, b) = eth_pair();
        w.spawn(b, 5, Box::new(Recorder { log: Rc::new(RefCell::new(Vec::new())), echo: false }));
        w.spawn(a, 6, Box::new(SendOnStart { to: Endpoint::new(b, 5), sizes: vec![2000] }));
        w.run_until_idle(100);
        assert_eq!(w.stats().drops(DropReason::TooBig), 1);
    }

    #[test]
    fn loss_rate_roughly_honoured() {
        let mut t = Topology::new();
        let n = t.add_network("lossy", Medium::wan_lossy(0.3), true);
        let a = t.add_host(HostCfg::named("a"));
        let b = t.add_host(HostCfg::named("b"));
        t.attach(a, n);
        t.attach(b, n);
        let mut w = World::new(t, 7);
        let log = Rc::new(RefCell::new(Vec::new()));
        w.spawn(b, 5, Box::new(Recorder { log: log.clone(), echo: false }));
        w.spawn(a, 6, Box::new(SendOnStart { to: Endpoint::new(b, 5), sizes: vec![100; 1000] }));
        w.run_until_idle(5000);
        let received = log.borrow().len() as f64;
        assert!((received / 1000.0 - 0.7).abs() < 0.05, "received {received}");
    }

    #[test]
    fn fastest_common_network_preferred() {
        let mut t = Topology::new();
        let eth = t.add_network("eth", Medium::ethernet100(), true);
        let atm = t.add_network("atm", Medium::atm155(), false);
        let a = t.add_host(HostCfg::named("a"));
        let b = t.add_host(HostCfg::named("b"));
        t.attach(a, eth);
        t.attach(b, eth);
        t.attach(a, atm);
        t.attach(b, atm);
        let mut w = World::new(t, 1);
        let log = Rc::new(RefCell::new(Vec::new()));
        w.spawn(b, 5, Box::new(Recorder { log, echo: false }));
        w.spawn(a, 6, Box::new(SendOnStart { to: Endpoint::new(b, 5), sizes: vec![1000] }));
        w.run_until_idle(100);
        // ATM (faster) carried the bytes.
        assert_eq!(w.stats().bytes_on(atm), 1000);
        assert_eq!(w.stats().bytes_on(eth), 0);
    }

    #[test]
    fn pinned_route_respected_and_validated() {
        let mut t = Topology::new();
        let eth = t.add_network("eth", Medium::ethernet100(), true);
        let atm = t.add_network("atm", Medium::atm155(), false);
        let a = t.add_host(HostCfg::named("a"));
        let b = t.add_host(HostCfg::named("b"));
        t.attach(a, eth);
        t.attach(b, eth);
        t.attach(a, atm);
        t.attach(b, atm);
        struct PinnedSend {
            to: Endpoint,
            via: NetId,
        }
        impl Actor for PinnedSend {
            fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
                if matches!(event, Event::Start) {
                    ctx.send_via(self.to, Bytes::from_static(&[0; 100]), self.via);
                }
            }
        }
        let mut w = World::new(t, 1);
        let log = Rc::new(RefCell::new(Vec::new()));
        w.spawn(b, 5, Box::new(Recorder { log: log.clone(), echo: false }));
        w.spawn(a, 6, Box::new(PinnedSend { to: Endpoint::new(b, 5), via: eth }));
        w.run_until_idle(100);
        assert_eq!(w.stats().bytes_on(eth), 100);
        assert_eq!(log.borrow().len(), 1);
    }

    #[test]
    fn routed_path_when_no_common_segment() {
        let mut t = Topology::new();
        let n1 = t.add_network("site1", Medium::ethernet100(), true);
        let n2 = t.add_network("site2", Medium::ethernet100(), true);
        let a = t.add_host(HostCfg::named("a"));
        let b = t.add_host(HostCfg::named("b"));
        t.attach(a, n1);
        t.attach(b, n2);
        let mut w = World::new(t, 1);
        let log = Rc::new(RefCell::new(Vec::new()));
        w.spawn(b, 5, Box::new(Recorder { log: log.clone(), echo: false }));
        w.spawn(a, 6, Box::new(SendOnStart { to: Endpoint::new(b, 5), sizes: vec![500] }));
        w.run_until_idle(100);
        assert_eq!(log.borrow().len(), 1);
        // Both edge networks carried the payload.
        assert_eq!(w.stats().bytes_on(n1), 500);
        assert_eq!(w.stats().bytes_on(n2), 500);
    }

    #[test]
    fn timers_fire_in_order() {
        let (mut w, a, _b) = eth_pair();
        struct TimerActor {
            log: Rc<RefCell<Vec<u64>>>,
        }
        impl Actor for TimerActor {
            fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
                match event {
                    Event::Start => {
                        ctx.set_timer(SimDuration::from_millis(20), 2);
                        ctx.set_timer(SimDuration::from_millis(10), 1);
                        ctx.set_timer(SimDuration::from_millis(30), 3);
                    }
                    Event::Timer { token } => self.log.borrow_mut().push(token),
                    _ => {}
                }
            }
        }
        let log = Rc::new(RefCell::new(Vec::new()));
        w.spawn(a, 5, Box::new(TimerActor { log: log.clone() }));
        w.run_until_idle(100);
        assert_eq!(&*log.borrow(), &[1, 2, 3]);
    }

    #[test]
    fn scheduled_fn_runs_at_time() {
        let (mut w, a, _b) = eth_pair();
        let flag = Rc::new(RefCell::new(SimTime::ZERO));
        let f2 = flag.clone();
        w.schedule_fn(SimTime::from_nanos(5_000_000), move |w| {
            *f2.borrow_mut() = w.now();
            w.host_down(a);
        });
        w.run_until_idle(10);
        assert_eq!(*flag.borrow(), SimTime::from_nanos(5_000_000));
        assert!(!w.topology().host(a).up);
    }

    #[test]
    fn kill_unbinds() {
        let (mut w, _a, b) = eth_pair();
        let ep = w
            .spawn(b, 5, Box::new(Recorder { log: Rc::new(RefCell::new(Vec::new())), echo: false }))
            .unwrap();
        w.run_until_idle(10);
        assert!(w.is_bound(ep));
        w.kill(ep);
        assert!(!w.is_bound(ep));
        // Port is reusable.
        assert!(w
            .spawn(b, 5, Box::new(Recorder { log: Rc::new(RefCell::new(Vec::new())), echo: false }))
            .is_some());
    }

    #[test]
    fn duplicate_port_rejected() {
        let (mut w, _a, b) = eth_pair();
        let r = || Box::new(Recorder { log: Rc::new(RefCell::new(Vec::new())), echo: false });
        assert!(w.spawn(b, 5, r()).is_some());
        assert!(w.spawn(b, 5, r()).is_none());
    }

    #[test]
    fn ephemeral_ports_unique() {
        let (mut w, _a, b) = eth_pair();
        let p1 = w.alloc_port(b);
        let p2 = w.alloc_port(b);
        assert_ne!(p1, p2);
        assert!(p1 >= EPHEMERAL_BASE);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed: u64| -> (u64, u64) {
            let mut t = Topology::new();
            let n = t.add_network("lossy", Medium::wan_lossy(0.2), true);
            let a = t.add_host(HostCfg::named("a"));
            let b = t.add_host(HostCfg::named("b"));
            t.attach(a, n);
            t.attach(b, n);
            let mut w = World::new(t, seed);
            w.spawn(
                b,
                5,
                Box::new(Recorder { log: Rc::new(RefCell::new(Vec::new())), echo: true }),
            );
            w.spawn(a, 6, Box::new(SendOnStart { to: Endpoint::new(b, 5), sizes: vec![100; 200] }));
            w.run_until_idle(10_000);
            (w.stats().delivered, w.stats().total_drops())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43)); // loss pattern differs (with overwhelming probability)
    }

    #[test]
    fn timers_suppressed_while_host_down() {
        let (mut w, a, _b) = eth_pair();
        struct T {
            fired: Rc<RefCell<u32>>,
        }
        impl Actor for T {
            fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
                match event {
                    Event::Start => ctx.set_timer(SimDuration::from_millis(10), 1),
                    Event::Timer { .. } => *self.fired.borrow_mut() += 1,
                    _ => {}
                }
            }
        }
        let fired = Rc::new(RefCell::new(0));
        w.spawn(a, 5, Box::new(T { fired: fired.clone() }));
        w.run_until_idle(1); // deliver Start only
        w.host_down(a);
        w.run_for(SimDuration::from_millis(50));
        assert_eq!(*fired.borrow(), 0);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::medium::Medium;
    use crate::topology::HostCfg;
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Recorder {
        log: Rc<RefCell<Vec<usize>>>,
    }

    impl Actor for Recorder {
        fn on_event(&mut self, _ctx: &mut Ctx<'_>, event: Event) {
            if let Event::Packet { payload, .. } = event {
                self.log.borrow_mut().push(payload.len());
            }
        }
    }

    struct Sender {
        to: Endpoint,
        size: usize,
    }

    impl Actor for Sender {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
            if matches!(event, Event::Start) {
                ctx.send(self.to, Bytes::from(vec![0u8; self.size]));
            }
        }
    }

    #[test]
    fn loopback_delivery_between_ports_of_one_host() {
        let mut t = Topology::new();
        let _n = t.add_network("lan", Medium::ethernet100(), true);
        let a = t.add_host(HostCfg::named("a"));
        // Loopback works even with no attached interface.
        let mut w = World::new(t, 1);
        let log = Rc::new(RefCell::new(Vec::new()));
        w.spawn(a, 5, Box::new(Recorder { log: log.clone() }));
        w.spawn(a, 6, Box::new(Sender { to: Endpoint::new(a, 5), size: 1 << 20 }));
        w.run_until_idle(100);
        // Huge loopback datagrams pass (MTU is effectively unlimited).
        assert_eq!(&*log.borrow(), &[1 << 20]);
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let t = Topology::new();
        let mut w = World::new(t, 1);
        w.run_until(SimTime::from_nanos(5_000));
        assert_eq!(w.now(), SimTime::from_nanos(5_000));
    }

    #[test]
    fn iface_down_reroutes_to_remaining_network() {
        let mut t = Topology::new();
        let eth = t.add_network("eth", Medium::ethernet100(), true);
        let atm = t.add_network("atm", Medium::atm155(), false);
        let a = t.add_host(HostCfg::named("a"));
        let b = t.add_host(HostCfg::named("b"));
        for h in [a, b] {
            t.attach(h, eth);
            t.attach(h, atm);
        }
        let mut w = World::new(t, 1);
        // ATM preferred (faster); kill a's ATM interface: traffic must
        // flow over Ethernet instead, automatically.
        w.set_iface_up(a, atm, false);
        let log = Rc::new(RefCell::new(Vec::new()));
        w.spawn(b, 5, Box::new(Recorder { log: log.clone() }));
        w.spawn(a, 6, Box::new(Sender { to: Endpoint::new(b, 5), size: 500 }));
        w.run_until_idle(100);
        assert_eq!(log.borrow().len(), 1);
        assert_eq!(w.stats().bytes_on(eth), 500);
        assert_eq!(w.stats().bytes_on(atm), 0);
    }

    #[test]
    fn partition_heals() {
        let mut t = Topology::new();
        let n1 = t.add_network("s1", Medium::ethernet100(), true);
        let n2 = t.add_network("s2", Medium::ethernet100(), true);
        let a = t.add_host(HostCfg::named("a"));
        let b = t.add_host(HostCfg::named("b"));
        t.attach(a, n1);
        t.attach(b, n2);
        let mut w = World::new(t, 1);
        w.set_partition(n2, 9);
        let log = Rc::new(RefCell::new(Vec::new()));
        w.spawn(b, 5, Box::new(Recorder { log: log.clone() }));
        w.spawn(a, 6, Box::new(Sender { to: Endpoint::new(b, 5), size: 10 }));
        w.run_until_idle(100);
        assert!(log.borrow().is_empty(), "partitioned: nothing may arrive");
        w.set_partition(n2, 0);
        w.spawn(a, 7, Box::new(Sender { to: Endpoint::new(b, 5), size: 10 }));
        w.run_until_idle(100);
        assert_eq!(log.borrow().len(), 1, "healed: delivery resumes");
    }

    #[test]
    fn alloc_port_skips_bound_ports_and_wraps() {
        let mut t = Topology::new();
        let _ = t.add_network("lan", Medium::ethernet100(), true);
        let a = t.add_host(HostCfg::named("a"));
        let mut w = World::new(t, 1);
        w.spawn(a, EPHEMERAL_BASE, Box::new(Recorder { log: Rc::new(RefCell::new(Vec::new())) }));
        assert_eq!(w.alloc_port(a), EPHEMERAL_BASE + 1);
    }

    #[test]
    #[should_panic(expected = "ephemeral ports")]
    fn alloc_port_exhaustion_panics() {
        let mut t = Topology::new();
        let _ = t.add_network("lan", Medium::ethernet100(), true);
        let a = t.add_host(HostCfg::named("a"));
        let mut w = World::new(t, 1);
        for p in EPHEMERAL_BASE..=u16::MAX {
            w.spawn(a, p, Box::new(Recorder { log: Rc::new(RefCell::new(Vec::new())) }));
        }
        let _ = w.alloc_port(a); // must panic, not spin forever
    }

    #[test]
    fn route_cache_invalidated_by_every_fault_api() {
        let mut t = Topology::new();
        let eth = t.add_network("eth", Medium::ethernet100(), true);
        let atm = t.add_network("atm", Medium::atm155(), false);
        let a = t.add_host(HostCfg::named("a"));
        let b = t.add_host(HostCfg::named("b"));
        for h in [a, b] {
            t.attach(h, eth);
            t.attach(h, atm);
        }
        let mut w = World::new(t, 1);
        let check = |w: &mut World| {
            assert_eq!(w.route(a, b, None), w.route_uncached(a, b, None));
            assert_eq!(w.route(b, a, None), w.route_uncached(b, a, None));
            assert_eq!(w.route(a, b, Some(atm)), w.route_uncached(a, b, Some(atm)));
        };
        check(&mut w);
        // Cached path is ATM; each mutation must be visible immediately.
        w.set_iface_up(a, atm, false);
        assert_eq!(w.route(a, b, None).unwrap().first_net(), eth);
        check(&mut w);
        w.set_iface_up(a, atm, true);
        check(&mut w);
        w.set_net_up(atm, false);
        assert_eq!(w.route(a, b, None).unwrap().first_net(), eth);
        w.set_net_up(atm, true);
        w.set_net_loss(atm, Some(0.25));
        assert_eq!(w.route(a, b, None).unwrap().loss, 0.25);
        w.set_net_loss(atm, None);
        w.host_down(b);
        assert_eq!(w.route(a, b, None), None);
        w.host_up(b);
        check(&mut w);
        w.set_partition(eth, 3);
        check(&mut w);
        assert!(w.stats().engine.route_cache_hits > 0, "repeated same-epoch lookups should hit");
    }

    #[test]
    fn engine_counters_track_queue_tiers() {
        let mut t = Topology::new();
        let eth = t.add_network("eth", Medium::ethernet100(), true);
        let a = t.add_host(HostCfg::named("a"));
        let b = t.add_host(HostCfg::named("b"));
        t.attach(a, eth);
        t.attach(b, eth);
        let mut w = World::new(t, 1);
        let log = Rc::new(RefCell::new(Vec::new()));
        w.spawn(b, 5, Box::new(Recorder { log }));
        w.spawn(a, 6, Box::new(Sender { to: Endpoint::new(b, 5), size: 100 }));
        w.spawn(a, 7, Box::new(Sender { to: Endpoint::new(b, 5), size: 100 }));
        w.run_until_idle(100);
        let e = &w.stats().engine;
        // Start signals fire at t=0 (now-queue); bus deliveries ride
        // their transmitter's FIFO stream. Every event came off
        // exactly one tier.
        assert_eq!(e.now_pops + e.heap_pops + e.stream_pops, w.stats().events);
        assert!(e.now_pops >= 3, "Start signals should use the now-queue: {e:?}");
        assert!(e.stream_pops >= 2, "shared-bus deliveries should stream: {e:?}");
        assert!(e.peak_queue_depth >= 2);
    }

    #[test]
    fn fault_apis_are_idempotence_aware() {
        let mut t = Topology::new();
        let eth = t.add_network("eth", Medium::ethernet100(), true);
        let atm = t.add_network("atm", Medium::atm155(), false);
        let a = t.add_host(HostCfg::named("a"));
        t.attach(a, eth);
        let mut w = World::new(t, 1);
        let epoch = |w: &World| w.topology().epoch();

        // No-op mutations leave the epoch (and thus the route cache)
        // alone; real mutations bump it.
        let e0 = epoch(&w);
        w.set_net_up(eth, true);
        w.set_net_loss(eth, None);
        w.set_partition(eth, 0);
        w.set_gray(eth, None);
        assert!(w.set_iface_up(a, eth, true));
        assert_eq!(epoch(&w), e0, "unchanged state must not invalidate routes");

        w.set_net_up(eth, false);
        assert_eq!(epoch(&w), e0 + 1);
        w.set_net_up(eth, false); // repeat: no bump
        assert_eq!(epoch(&w), e0 + 1);
        w.set_net_up(eth, true);
        w.set_net_loss(eth, Some(0.1));
        w.set_net_loss(eth, Some(0.1));
        w.set_partition(eth, 2);
        w.set_partition(eth, 2);
        w.set_gray(eth, Some(GrayLevel { latency_factor: 2.0, bandwidth_factor: 0.5 }));
        w.set_gray(eth, Some(GrayLevel { latency_factor: 2.0, bandwidth_factor: 0.5 }));
        assert!(w.set_iface_up(a, eth, false));
        assert!(w.set_iface_up(a, eth, false));
        assert_eq!(epoch(&w), e0 + 6, "one bump per actual state change");

        // Missing interface is surfaced, not silently ignored, and
        // does not touch the epoch.
        let e1 = epoch(&w);
        assert!(!w.set_iface_up(a, atm, false), "host a has no ATM interface");
        assert_eq!(epoch(&w), e1);
    }

    #[test]
    fn chaos_corruption_still_delivers_and_counts() {
        let mut t = Topology::new();
        let eth = t.add_network("eth", Medium::ethernet100(), true);
        let a = t.add_host(HostCfg::named("a"));
        let b = t.add_host(HostCfg::named("b"));
        t.attach(a, eth);
        t.attach(b, eth);
        let mut w = World::new(t, 1);
        w.set_packet_chaos(
            Some(crate::chaos::PacketChaos {
                corrupt: 1.0,
                duplicate: 0.0,
                reorder: 0.0,
                jitter: SimDuration::from_millis(1),
            }),
            99,
        );
        let log = Rc::new(RefCell::new(Vec::new()));
        w.spawn(b, 5, Box::new(Recorder { log: log.clone() }));
        w.spawn(a, 6, Box::new(Sender { to: Endpoint::new(b, 5), size: 100 }));
        w.run_until_idle(100);
        // Corruption is not a drop: the mangled payload arrives.
        assert_eq!(log.borrow().len(), 1);
        assert_eq!(w.stats().chaos.corrupted, 1);
        assert_eq!(w.stats().total_drops(), 0);
    }

    #[test]
    fn chaos_duplication_delivers_extra_copies() {
        let mut t = Topology::new();
        let eth = t.add_network("eth", Medium::ethernet100(), true);
        let a = t.add_host(HostCfg::named("a"));
        let b = t.add_host(HostCfg::named("b"));
        t.attach(a, eth);
        t.attach(b, eth);
        let mut w = World::new(t, 1);
        w.set_packet_chaos(
            Some(crate::chaos::PacketChaos {
                corrupt: 0.0,
                duplicate: 1.0,
                reorder: 0.0,
                jitter: SimDuration::from_millis(2),
            }),
            7,
        );
        let log = Rc::new(RefCell::new(Vec::new()));
        w.spawn(b, 5, Box::new(Recorder { log: log.clone() }));
        for p in 0..4 {
            w.spawn(a, 10 + p, Box::new(Sender { to: Endpoint::new(b, 5), size: 64 }));
        }
        w.run_until_idle(1000);
        assert_eq!(log.borrow().len(), 8, "every packet arrives twice");
        assert_eq!(w.stats().chaos.duplicated, 4);
    }

    #[test]
    fn chaos_reorder_keeps_every_packet() {
        let mut t = Topology::new();
        let eth = t.add_network("eth", Medium::ethernet100(), true);
        let a = t.add_host(HostCfg::named("a"));
        let b = t.add_host(HostCfg::named("b"));
        t.attach(a, eth);
        t.attach(b, eth);
        let mut w = World::new(t, 1);
        w.set_packet_chaos(
            Some(crate::chaos::PacketChaos {
                corrupt: 0.0,
                duplicate: 0.0,
                reorder: 1.0,
                jitter: SimDuration::from_millis(10),
            }),
            7,
        );
        let log = Rc::new(RefCell::new(Vec::new()));
        w.spawn(b, 5, Box::new(Recorder { log: log.clone() }));
        for p in 0..8 {
            w.spawn(a, 10 + p, Box::new(Sender { to: Endpoint::new(b, 5), size: 64 }));
        }
        w.run_until_idle(1000);
        assert_eq!(log.borrow().len(), 8, "reordering never loses packets");
        assert_eq!(w.stats().chaos.reordered, 8);
    }

    #[test]
    fn chaos_is_deterministic_and_does_not_perturb_workload_rng() {
        let run = |chaos: bool| -> (u64, u64, u64) {
            let mut t = Topology::new();
            let n = t.add_network("lossy", Medium::wan_lossy(0.2), true);
            let a = t.add_host(HostCfg::named("a"));
            let b = t.add_host(HostCfg::named("b"));
            t.attach(a, n);
            t.attach(b, n);
            let mut w = World::new(t, 42);
            if chaos {
                w.set_packet_chaos(
                    Some(crate::chaos::PacketChaos {
                        corrupt: 1.0,
                        duplicate: 0.0,
                        reorder: 0.0,
                        jitter: SimDuration::from_millis(1),
                    }),
                    5,
                );
            }
            let log = Rc::new(RefCell::new(Vec::new()));
            w.spawn(b, 5, Box::new(Recorder { log }));
            for p in 0..50 {
                w.spawn(a, 10 + p, Box::new(Sender { to: Endpoint::new(b, 5), size: 100 }));
            }
            w.run_until_idle(10_000);
            (w.stats().delivered, w.stats().total_drops(), w.stats().chaos.corrupted)
        };
        // Chaos draws come from a separate stream: the workload's loss
        // pattern (world RNG) is identical with chaos on or off, and
        // corruption never drops a packet.
        let plain = run(false);
        let chaotic = run(true);
        assert_eq!(plain.0, chaotic.0, "same deliveries");
        assert_eq!(plain.1, chaotic.1, "same loss pattern");
        assert_eq!(plain.2, 0);
        assert_eq!(chaotic.2, chaotic.0, "every delivered packet was corrupted");
        // And the chaotic run itself replays exactly.
        assert_eq!(run(true), chaotic);
    }

    #[test]
    fn gray_link_loses_route_preference() {
        let mut t = Topology::new();
        let eth = t.add_network("eth", Medium::ethernet100(), true);
        let atm = t.add_network("atm", Medium::atm155(), false);
        let a = t.add_host(HostCfg::named("a"));
        let b = t.add_host(HostCfg::named("b"));
        for h in [a, b] {
            t.attach(h, eth);
            t.attach(h, atm);
        }
        let mut w = World::new(t, 1);
        // ATM is normally preferred (155 > 100 Mbit)...
        assert_eq!(w.route(a, b, None).unwrap().first_net(), atm);
        // ...but grayed down to 10% bandwidth it loses to Ethernet.
        w.set_gray(atm, Some(GrayLevel { latency_factor: 5.0, bandwidth_factor: 0.1 }));
        assert_eq!(w.route(a, b, None).unwrap().first_net(), eth);
        w.set_gray(atm, None);
        assert_eq!(w.route(a, b, None).unwrap().first_net(), atm);
    }

    #[test]
    fn signals_are_delivered_with_sender() {
        let mut t = Topology::new();
        let _ = t.add_network("lan", Medium::ethernet100(), true);
        let a = t.add_host(HostCfg::named("a"));
        struct SignalLog {
            got: Rc<RefCell<Vec<(u32, Option<Endpoint>)>>>,
        }
        impl Actor for SignalLog {
            fn on_event(&mut self, _ctx: &mut Ctx<'_>, event: Event) {
                if let Event::Signal { signum, from } = event {
                    self.got.borrow_mut().push((signum, from));
                }
            }
        }
        let got = Rc::new(RefCell::new(Vec::new()));
        let mut w = World::new(t, 1);
        let ep = w.spawn(a, 5, Box::new(SignalLog { got: got.clone() })).unwrap();
        w.run_until_idle(5);
        w.signal(None, ep, 15);
        w.run_until_idle(5);
        assert_eq!(&*got.borrow(), &[(15, None)]);
    }
}
