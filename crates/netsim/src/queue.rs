//! The three-tier event queue: now-queue, per-transmitter delivery
//! streams, and a slab-backed future heap.
//!
//! Extracted from [`crate::world::World`] so the sharded engine
//! ([`crate::shard`]) can give every shard its own queue of the exact
//! same shape. The queue is generic over the event body `T` (the
//! single-threaded world queues closures; shard events must be `Send`)
//! and knows nothing about actors, packets or the clock — callers pass
//! `now` in and account pops against their own stats.
//!
//! ## Why three tiers
//!
//! * **Now-queue** — events scheduled *at the current timestamp*, in
//!   seq (FIFO) order. Packet storms are dominated by same-instant
//!   bursts (loopback sends, signals, zero-delay chains); pushing those
//!   through the heap costs `O(log n)` sift per event for an ordering
//!   the FIFO already has.
//! * **Delivery streams** — FIFOs of pending deliveries that share a
//!   serializing transmitter and a propagation latency. Such deliveries
//!   arrive in exactly the order they were sent: each transmitter's
//!   `busy_until` only moves forward, so serialization finish times are
//!   monotone per channel, and adding a constant latency preserves
//!   that. An oversubscribed segment can have hundreds of thousands of
//!   packets in flight — as a heap they are `O(log n)` sift traffic
//!   each, as a stream they cost `O(1)` at both ends.
//! * **Heap** — everything else (timers, far-future events, jittered
//!   chaos copies), ordered by `(at, seq)` with bodies parked in a slab
//!   so the sifted element stays three words.
//!
//! The pop scan takes the global `(at, seq)` minimum across all three
//! tiers, so dispatch order is identical to a single heap's.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};

use snipe_util::id::{LinkId, NetId};
use snipe_util::time::{SimDuration, SimTime};

/// FNV-1a, for the hot-path maps (route cache, port bindings, stream
/// ids). Those are probed once or more per packet, where SipHash
/// (std's default, DoS-hardened) is measurable overhead; keys are
/// attacker-free simulator ids, so the cheap hash is safe. Keys hash
/// identically across runs, keeping behaviour independent of
/// process-random hash state.
#[derive(Default)]
pub(crate) struct FnvHasher(u64);

impl Hasher for FnvHasher {
    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 { 0xcbf29ce484222325 } else { self.0 };
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        self.0 = h;
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// A `HashMap` on the FNV hasher (deterministic, fast for small keys).
pub(crate) type FnvMap<K, V> = HashMap<K, V, BuildHasherDefault<FnvHasher>>;

/// The serializing transmitter of a delivery: the segment itself for
/// shared-bus media, the sender's interface for switched media.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) enum TxChannel {
    /// A shared-bus segment serializes the whole segment.
    Bus(NetId),
    /// A switched medium serializes per sending interface.
    Link(LinkId),
}

/// A queued event body plus its ordering key.
pub(crate) struct QueuedEvent<T> {
    pub(crate) at: SimTime,
    pub(crate) seq: u64,
    pub(crate) kind: T,
}

/// Which tier an event was popped from — callers bump their own
/// `EngineStats` counters from this (the world's tests pin those
/// counters, and each shard accounts pops to its own flat stats).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Tier {
    /// Same-timestamp FIFO.
    Now,
    /// Slab-backed future heap.
    Heap,
    /// Per-transmitter delivery stream.
    Stream,
}

/// Future-heap entry: ordering key plus a slab index for the event
/// body. Keeping the heap element at three words matters more than
/// anything else in the engine — an oversubscribed storm parks
/// hundreds of thousands of pending deliveries in the heap, and every
/// push/pop sifts `O(log n)` elements. Sifting 24-byte keys instead of
/// full `QueuedEvent`s (5+ words of payload enum) cuts the dominant
/// memory traffic of the event loop; the bodies sit still in the slab
/// and are touched exactly twice (insert, remove).
#[derive(Clone, Copy, PartialEq, Eq)]
struct HeapEntry {
    at: SimTime,
    seq: u64,
    idx: u32,
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // (at, seq) is unique: idx never participates.
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// FIFO of pending deliveries that share a transmitter and a
/// propagation latency (see module docs).
struct DeliveryStream<T> {
    /// `(at, seq)` of the front event; `STREAM_EMPTY` when drained.
    /// Kept inline so the pop scan touches one contiguous array.
    front: (SimTime, u64),
    queue: VecDeque<QueuedEvent<T>>,
}

/// Sort key no real event can have (seq is bumped past any use long
/// before u64 wraps).
const STREAM_EMPTY: (SimTime, u64) = (SimTime::MAX, u64::MAX);

/// Cap on distinct `(channel, latency)` streams; beyond it, new
/// channels fall back to the heap. Real topologies produce a handful
/// (shared buses × path latencies + active switched links); the cap
/// only bounds the per-pop scan in adversarial shapes.
const MAX_STREAMS: usize = 64;

/// The three-tier event queue. Owns the seq counter that totally
/// orders same-timestamp events.
pub(crate) struct EventQueue<T> {
    /// Future events, ordered by `(at, seq)`; bodies live in `slab`.
    heap: BinaryHeap<Reverse<HeapEntry>>,
    /// Bodies of heap-resident events, indexed by `HeapEntry::idx`.
    /// Vacated slots are recycled through `slab_free`, so the slab
    /// stops allocating once it reaches the high-water mark.
    slab: Vec<Option<T>>,
    slab_free: Vec<u32>,
    /// Per-transmitter delivery FIFOs.
    streams: Vec<DeliveryStream<T>>,
    stream_ids: FnvMap<(TxChannel, SimDuration), u32>,
    /// Events scheduled at the caller's current timestamp, in seq
    /// (FIFO) order. Invariant: every entry has `at == now` as of its
    /// push (enforced by `push`; the caller's clock only advances once
    /// this queue is drained, because its entries sort before anything
    /// later).
    now_queue: VecDeque<QueuedEvent<T>>,
    seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slab: Vec::new(),
            slab_free: Vec::new(),
            streams: Vec::new(),
            stream_ids: FnvMap::default(),
            now_queue: VecDeque::new(),
            seq: 0,
        }
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub(crate) fn new() -> EventQueue<T> {
        EventQueue::default()
    }

    /// Sequence numbers handed out so far (= events ever pushed).
    pub(crate) fn seqs_issued(&self) -> u64 {
        self.seq
    }

    /// Total events pending across all three tiers.
    pub(crate) fn depth(&self) -> usize {
        self.heap.len()
            + self.now_queue.len()
            + self.streams.iter().map(|s| s.queue.len()).sum::<usize>()
    }

    /// High-water mark of the heap's body slab (never shrinks: slots
    /// are recycled, so `slab.len()` is the lifetime peak).
    pub(crate) fn slab_high_water(&self) -> usize {
        self.slab.len()
    }

    /// Longest single delivery stream right now.
    pub(crate) fn stream_depth_max(&self) -> usize {
        self.streams.iter().map(|s| s.queue.len()).max().unwrap_or(0)
    }

    fn next_seq(&mut self) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        seq
    }

    /// Push an event for `at`; `now` routes same-instant events to the
    /// now-queue.
    pub(crate) fn push(&mut self, now: SimTime, at: SimTime, kind: T) {
        let seq = self.next_seq();
        if at == now {
            self.now_queue.push_back(QueuedEvent { at, seq, kind });
        } else {
            self.push_heap(QueuedEvent { at, seq, kind });
        }
    }

    /// Queue a delivery serialized by `channel` with a fixed
    /// propagation latency, using its FIFO stream when the arrival
    /// order allows (it always does — the guard only covers hostile
    /// direct topology mutation).
    pub(crate) fn push_delivery(
        &mut self,
        now: SimTime,
        at: SimTime,
        kind: T,
        channel: TxChannel,
        latency: SimDuration,
    ) {
        let seq = self.next_seq();
        let ev = QueuedEvent { at, seq, kind };
        if at == now {
            self.now_queue.push_back(ev);
            return;
        }
        let sid = match self.stream_ids.get(&(channel, latency)) {
            Some(&s) => Some(s),
            None if self.streams.len() < MAX_STREAMS => {
                let s = self.streams.len() as u32;
                self.streams.push(DeliveryStream { front: STREAM_EMPTY, queue: VecDeque::new() });
                self.stream_ids.insert((channel, latency), s);
                Some(s)
            }
            None => None,
        };
        match sid {
            Some(s) => {
                let stream = &mut self.streams[s as usize];
                if stream.queue.back().is_some_and(|b| ev.at < b.at) {
                    self.push_heap(ev);
                } else {
                    if stream.queue.is_empty() {
                        stream.front = (ev.at, ev.seq);
                    }
                    stream.queue.push_back(ev);
                }
            }
            None => self.push_heap(ev),
        }
    }

    fn push_heap(&mut self, ev: QueuedEvent<T>) {
        let idx = match self.slab_free.pop() {
            Some(i) => {
                self.slab[i as usize] = Some(ev.kind);
                i
            }
            None => {
                let i = u32::try_from(self.slab.len()).expect("event slab overflow");
                self.slab.push(Some(ev.kind));
                i
            }
        };
        self.heap.push(Reverse(HeapEntry { at: ev.at, seq: ev.seq, idx }));
    }

    /// Pop the globally next event by `(at, seq)` across the three
    /// tiers. Any tier can hold events tied on timestamp with another —
    /// e.g. the heap keeps events at `now` that were scheduled *before*
    /// the clock reached it — so ties always compare by seq, and the
    /// pop order is exactly the order a single heap would produce.
    pub(crate) fn pop(&mut self) -> Option<(QueuedEvent<T>, Tier)> {
        // 0 = now-queue, 1 = heap, 2+i = stream i.
        let mut best = match self.now_queue.front() {
            Some(ev) => (ev.at, ev.seq),
            None => STREAM_EMPTY,
        };
        let mut src = 0usize;
        if let Some(Reverse(h)) = self.heap.peek() {
            if (h.at, h.seq) < best {
                best = (h.at, h.seq);
                src = 1;
            }
        }
        for (i, s) in self.streams.iter().enumerate() {
            if s.front < best {
                best = s.front;
                src = 2 + i;
            }
        }
        if best == STREAM_EMPTY {
            return None;
        }
        match src {
            0 => self.now_queue.pop_front().map(|ev| (ev, Tier::Now)),
            1 => {
                let Reverse(h) = self.heap.pop()?;
                let kind = self.slab[h.idx as usize].take().expect("heap entry without body");
                self.slab_free.push(h.idx);
                Some((QueuedEvent { at: h.at, seq: h.seq, kind }, Tier::Heap))
            }
            i => {
                let stream = &mut self.streams[i - 2];
                let ev = stream.queue.pop_front();
                stream.front = match stream.queue.front() {
                    Some(next) => (next.at, next.seq),
                    None => STREAM_EMPTY,
                };
                ev.map(|ev| (ev, Tier::Stream))
            }
        }
    }

    /// Timestamp of the next pending event, if any.
    pub(crate) fn peek_at(&self) -> Option<SimTime> {
        let mut best = match self.now_queue.front() {
            Some(ev) => ev.at,
            None => SimTime::MAX,
        };
        if let Some(Reverse(h)) = self.heap.peek() {
            best = best.min(h.at);
        }
        for s in &self.streams {
            best = best.min(s.front.0);
        }
        // An event at SimTime::MAX is unschedulable (arrival times add
        // latency to a finite clock), so MAX means "no events".
        (best != SimTime::MAX).then_some(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: SimTime = SimTime::ZERO;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn pop_order_is_global_at_seq_min_across_tiers() {
        let mut q: EventQueue<u32> = EventQueue::new();
        // Heap event at t=10, stream events at t=5 and t=10, now events at t=0.
        q.push(T0, t(10), 0);
        let ch = TxChannel::Bus(NetId(0));
        q.push_delivery(T0, t(5), 1, ch, SimDuration::from_nanos(1));
        q.push_delivery(T0, t(10), 2, ch, SimDuration::from_nanos(1));
        q.push(T0, T0, 3);
        q.push(T0, T0, 4);
        let mut got = Vec::new();
        while let Some((ev, _)) = q.pop() {
            got.push((ev.at, ev.kind));
        }
        assert_eq!(got, vec![(T0, 3), (T0, 4), (t(5), 1), (t(10), 0), (t(10), 2)]);
    }

    #[test]
    fn tiers_reported_and_depth_tracked() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.push(T0, T0, 0);
        q.push(T0, t(7), 1);
        q.push_delivery(T0, t(3), 2, TxChannel::Link(LinkId(1)), SimDuration::from_nanos(2));
        assert_eq!(q.depth(), 3);
        let tiers: Vec<Tier> = std::iter::from_fn(|| q.pop().map(|(_, tier)| tier)).collect();
        assert_eq!(tiers, vec![Tier::Now, Tier::Stream, Tier::Heap]);
        assert_eq!(q.depth(), 0);
        assert_eq!(q.seqs_issued(), 3);
    }

    #[test]
    fn slab_recycles_and_high_water_is_peak() {
        let mut q: EventQueue<u32> = EventQueue::new();
        for i in 0..10 {
            q.push(T0, t(1 + i), i as u32);
        }
        assert_eq!(q.slab_high_water(), 10);
        for _ in 0..10 {
            q.pop();
        }
        // Refill: recycled slots, no slab growth.
        for i in 0..10 {
            q.push(t(11), t(20 + i), i as u32);
        }
        assert_eq!(q.slab_high_water(), 10);
    }

    #[test]
    fn out_of_order_stream_push_falls_back_to_heap() {
        let mut q: EventQueue<u32> = EventQueue::new();
        let ch = TxChannel::Bus(NetId(0));
        let lat = SimDuration::from_nanos(1);
        q.push_delivery(T0, t(10), 0, ch, lat);
        // Earlier arrival on the same stream: must not corrupt FIFO order.
        q.push_delivery(T0, t(5), 1, ch, lat);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(ev, _)| ev.kind)).collect();
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn peek_at_sees_all_tiers() {
        let mut q: EventQueue<u32> = EventQueue::new();
        assert_eq!(q.peek_at(), None);
        q.push(T0, t(9), 0);
        assert_eq!(q.peek_at(), Some(t(9)));
        q.push_delivery(T0, t(4), 1, TxChannel::Bus(NetId(2)), SimDuration::from_nanos(1));
        assert_eq!(q.peek_at(), Some(t(4)));
        q.push(T0, T0, 2);
        assert_eq!(q.peek_at(), Some(T0));
    }
}
