//! Allocation regression test for the cached send path.
//!
//! After warm-up (route cache populated, queue tiers and slabs at
//! steady-state capacity) the engine must drive packets without heap
//! allocation: no `Medium` clones, no per-packet `Vec` collection in
//! path selection, no per-event boxing. A counting global allocator
//! makes any regression an immediate test failure.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(l)
    }
    unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(l)
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, new: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(p, l, new)
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        System.dealloc(p, l)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

use bytes::Bytes;
use snipe_netsim::actor::{Actor, Ctx, Event};
use snipe_netsim::medium::Medium;
use snipe_netsim::topology::{Endpoint, HostCfg, Topology};
use snipe_netsim::world::World;
use snipe_util::time::SimDuration;

/// Timer-driven flooder. Deliberately does NOT echo received packets:
/// an echo loop amplifies the backlog every round, which would grow the
/// queues (and thus allocate) forever instead of reaching steady state.
struct Flooder {
    peer: Endpoint,
    burst: usize,
}

impl Actor for Flooder {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
        match event {
            Event::Start | Event::Timer { .. } => {
                for _ in 0..self.burst {
                    ctx.send(self.peer, Bytes::from_static(&[0x5A; 64]));
                }
                ctx.set_timer(SimDuration::from_millis(1), 1);
            }
            _ => {}
        }
    }
}

#[test]
fn steady_state_send_path_does_not_allocate() {
    let mut topo = Topology::new();
    let eth = topo.add_network("eth", Medium::ethernet100(), true);
    let a = topo.add_host(HostCfg::named("a"));
    let b = topo.add_host(HostCfg::named("b"));
    topo.attach(a, eth);
    topo.attach(b, eth);
    let mut w = World::new(topo, 7);
    w.spawn(a, 40, Box::new(Flooder { peer: Endpoint::new(b, 40), burst: 4 }));
    w.spawn(b, 40, Box::new(Flooder { peer: Endpoint::new(a, 40), burst: 4 }));

    // Warm-up: populate the route cache and grow every queue tier,
    // slab and counter vector to its steady-state capacity.
    w.run_for(SimDuration::from_millis(200));
    let sent_before = w.stats().sent;
    assert!(w.stats().engine.route_cache_hits > 0, "cache should be warm");

    let before = ALLOCS.load(Ordering::Relaxed);
    w.run_for(SimDuration::from_millis(200));
    let allocated = ALLOCS.load(Ordering::Relaxed) - before;

    let sent = w.stats().sent - sent_before;
    assert!(sent > 1_000, "workload too quiet: {sent} packets");
    assert_eq!(allocated, 0, "cached send path allocated {allocated} times over {sent} packets");
}
