//! Allocation regression test for the observability layer.
//!
//! The flight recorder is compiled into every hot path (engine, wire
//! drivers, process actors), so its steady-state cost budget is one
//! branch when disabled and one ring-slot write when enabled — never a
//! heap touch. Same contract for the metrics registry's increment and
//! histogram-observe paths: registration (cold) may allocate, the
//! per-event calls (hot) may not. A counting global allocator turns any
//! regression into an immediate test failure.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(l)
    }
    unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(l)
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, new: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(p, l, new)
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        System.dealloc(p, l)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

use snipe_netsim::topology::Endpoint;
use snipe_netsim::trace::{self, DropReason, TraceKind};
use snipe_util::id::HostId;
use snipe_util::metrics::Registry;
use snipe_util::time::SimTime;

#[test]
fn recorder_and_registry_steady_state_do_not_allocate() {
    // Cold setup: ring buffer reserved up front, counters registered
    // by name. All allocation happens here.
    trace::enable(1024);
    let mut reg = Registry::new();
    let c_events = reg.counter("test.events");
    let g_depth = reg.gauge("test.depth");
    let h_latency = reg.histogram("test.latency_ns");

    let from = Endpoint::new(HostId(1), 40);
    let to = Endpoint::new(HostId(2), 40);

    // Warm-up: wrap the ring completely so steady state is the
    // overwrite path, not the initial fill.
    for i in 0..2048u64 {
        trace::record(SimTime::from_nanos(i), TraceKind::Send { from, to, len: 64 });
    }
    assert!(trace::trace_dropped() > 0, "ring must have wrapped during warm-up");

    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        let at = SimTime::from_nanos(i * 1000);
        trace::record(at, TraceKind::Send { from, to, len: 64 });
        trace::record(at, TraceKind::Recv { from, to, len: 64 });
        trace::record(at, TraceKind::Drop { reason: DropReason::Loss });
        trace::record(at, TraceKind::Retransmit { peer: 7, len: 64 });
        trace::record(at, TraceKind::TimerFire { token: i });
        reg.inc(c_events);
        reg.add(c_events, 3);
        reg.set(g_depth, i);
        reg.set_max(g_depth, i + 1);
        reg.observe(h_latency, i * 17 + 1);
    }
    let allocated = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(allocated, 0, "recorder/registry steady state allocated {allocated} times");

    // The events and counts are all there despite the zero-alloc path.
    assert_eq!(reg.counter_value(c_events), 40_000);
    assert_eq!(reg.histo(h_latency).count(), 10_000);
    let counts = trace::kind_counts();
    assert_eq!(counts[TraceKind::Send { from, to, len: 0 }.tag()], 12_048);
    trace::disable();
}

#[test]
fn disabled_recorder_steady_state_does_not_allocate() {
    // With recording off (the bench configuration), record() must be a
    // branch and nothing else.
    trace::disable();
    let from = Endpoint::new(HostId(1), 40);
    let to = Endpoint::new(HostId(2), 40);
    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        trace::record(SimTime::from_nanos(i), TraceKind::Send { from, to, len: 64 });
    }
    let allocated = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(allocated, 0, "disabled recorder allocated {allocated} times");
    assert!(trace::last_events(4).is_empty());
}
