//! Offline stand-in for the [`criterion`](https://docs.rs/criterion)
//! benchmark harness.
//!
//! The build environment has no crate registry, so external
//! dependencies are vendored. This implements the subset of the
//! criterion 0.5 API the workspace's benches use — `criterion_group!`/
//! `criterion_main!`, [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] with `iter`/`iter_batched`,
//! [`Throughput`] and `sample_size` — backed by a plain wall-clock
//! timer. It reports the median over samples plus min/max, and derived
//! throughput when configured. No statistics beyond that: the goal is
//! honest, reproducible numbers without a registry, not criterion's
//! full analysis.

use std::hint;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortizes setup (all variants behave the same
/// here: setup runs outside the timed section for every batch).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Setup re-run for every single iteration.
    PerIteration,
}

/// Work per iteration, used to derive throughput lines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Top-level harness state.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { default_sample_size: 20 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self, name: name.into(), throughput: None, sample_size: None }
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let samples = self.sample_size.unwrap_or(self._c.default_sample_size);
        let mut b = Bencher { samples, results: Vec::new() };
        f(&mut b);
        let stats = b.stats();
        let id = format!("{}/{}", self.name, name);
        report(&id, &stats, self.throughput);
        self
    }

    /// End the group (parity with criterion; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Median/min/max of per-iteration nanoseconds.
struct SampleStats {
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
}

fn report(id: &str, s: &SampleStats, throughput: Option<Throughput>) {
    let tp = match throughput {
        Some(Throughput::Bytes(n)) if s.median_ns > 0.0 => {
            let mbps = n as f64 / (s.median_ns / 1e9) / 1e6;
            format!("  {mbps:.1} MB/s")
        }
        Some(Throughput::Elements(n)) if s.median_ns > 0.0 => {
            let eps = n as f64 / (s.median_ns / 1e9);
            format!("  {eps:.0} elem/s")
        }
        _ => String::new(),
    };
    println!(
        "bench {id:<44} {:>12} ns/iter (min {}, max {}){tp}",
        fmt_ns(s.median_ns),
        fmt_ns(s.min_ns),
        fmt_ns(s.max_ns),
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Collects timed samples for one benchmark.
pub struct Bencher {
    samples: usize,
    /// Per-sample mean nanoseconds per iteration.
    results: Vec<f64>,
}

/// Target wall-clock time for one timed sample; iteration counts adapt
/// so fast routines still get a measurable window.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(10);

impl Bencher {
    /// Benchmark a routine.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibrate: how many iterations fill the target window?
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                hint::black_box(routine());
            }
            let el = t.elapsed();
            if el >= TARGET_SAMPLE_TIME || iters >= 1 << 20 {
                break;
            }
            let scale =
                (TARGET_SAMPLE_TIME.as_secs_f64() / el.as_secs_f64().max(1e-9)).clamp(2.0, 100.0);
            iters = ((iters as f64 * scale) as u64).max(iters + 1);
        }
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                hint::black_box(routine());
            }
            let el = t.elapsed();
            self.results.push(el.as_nanos() as f64 / iters as f64);
        }
    }

    /// Benchmark a routine whose input is rebuilt (outside the timed
    /// section) for every batch.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            hint::black_box(routine(input));
            let el = t.elapsed();
            self.results.push(el.as_nanos() as f64);
        }
    }

    fn stats(&self) -> SampleStats {
        assert!(!self.results.is_empty(), "bench_function closure never called iter()");
        let mut v = self.results.clone();
        v.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN timings"));
        SampleStats { median_ns: v[v.len() / 2], min_ns: v[0], max_ns: v[v.len() - 1] }
    }
}

/// Define a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define `main` running benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_produces_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        g.throughput(Throughput::Bytes(1024));
        g.bench_function("noop_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(4);
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
