//! Integration: file servers over the simulator — sink/source
//! processes, replication with integrity, and checkpoint-style
//! store/read. File operations ride the reliable SRUDP stack exactly as
//! the clients in `snipe-core` do (§5.9).

use bytes::Bytes;
use snipe_files::proto::FileMsg;
use snipe_files::{FileServerActor, FileServerConfig};
use snipe_netsim::actor::{Actor, Ctx, Event};
use snipe_netsim::medium::Medium;
use snipe_netsim::topology::{Endpoint, HostCfg, Topology};
use snipe_netsim::world::World;
use snipe_rcds::server::RcServerActor;
use snipe_util::codec::{WireDecode, WireEncode};
use snipe_util::time::SimDuration;
use snipe_wire::frame::{seal, Proto};
use snipe_wire::ports;
use snipe_wire::stack::{endpoint_key, Incoming, StackConfig, WireStack};
use snipe_wire::Out;
use std::sync::{Arc, Mutex};

/// What the driver does at each script step.
enum Step {
    /// Reliable FileMsg to a server endpoint.
    Reliable(Endpoint, FileMsg),
    /// Raw FileMsg datagram (sink append/close traffic).
    Raw(Endpoint, FileMsg),
}

/// Test driver speaking the reliable stack, logging every FileMsg that
/// arrives either reliably or raw.
struct StackDriver {
    stack: Option<WireStack>,
    script: Vec<(SimDuration, Step)>,
    log: Arc<Mutex<Vec<FileMsg>>>,
}

const TIMER_SCRIPT: u64 = 1;
const TIMER_STACK: u64 = 2;

impl StackDriver {
    fn new(script: Vec<(SimDuration, Step)>, log: Arc<Mutex<Vec<FileMsg>>>) -> StackDriver {
        StackDriver { stack: None, script, log }
    }

    fn flush(&mut self, ctx: &mut Ctx<'_>) {
        let Some(stack) = self.stack.as_mut() else {
            return;
        };
        for o in stack.drain() {
            match o {
                Out::Send { to, via, bytes, .. } => match via {
                    Some(n) => ctx.send_via(to, bytes, n),
                    None => ctx.send(to, bytes),
                },
                Out::Deliver { msg, .. } => {
                    if let Ok(m) = FileMsg::decode_from_bytes(msg) {
                        self.log.lock().unwrap().push(m);
                    }
                }
                Out::Wake { .. } => {}
            }
        }
        if let Some(dl) = stack.next_deadline() {
            let delay = dl.saturating_since(ctx.now()) + SimDuration::from_micros(1);
            ctx.set_timer(delay, TIMER_STACK);
        }
    }
}

impl Actor for StackDriver {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
        match event {
            Event::Start => {
                let me = ctx.me();
                self.stack = Some(WireStack::new(endpoint_key(me), StackConfig::default()));
                if !self.script.is_empty() {
                    ctx.set_timer(self.script[0].0, TIMER_SCRIPT);
                }
            }
            Event::Timer { token: TIMER_SCRIPT } => {
                let (_, step) = self.script.remove(0);
                let now = ctx.now();
                match step {
                    Step::Reliable(to, msg) => {
                        let stack = self.stack.as_mut().expect("started");
                        stack.set_peer(endpoint_key(to), to, vec![]);
                        stack.send(now, endpoint_key(to), msg.encode_to_bytes()).unwrap();
                    }
                    Step::Raw(to, msg) => {
                        ctx.send(to, seal(Proto::Raw, msg.encode_to_bytes()));
                    }
                }
                if !self.script.is_empty() {
                    ctx.set_timer(self.script[0].0, TIMER_SCRIPT);
                }
                self.flush(ctx);
            }
            Event::Timer { token: TIMER_STACK } => {
                let now = ctx.now();
                if let Some(s) = self.stack.as_mut() {
                    s.on_timer(now);
                }
                self.flush(ctx);
            }
            Event::Timer { .. } => {}
            Event::Packet { from, payload } => {
                let now = ctx.now();
                if let Some(stack) = self.stack.as_mut() {
                    if let Ok(Some(Incoming::Raw { msg, .. })) =
                        stack.on_datagram(now, from, payload)
                    {
                        if let Ok(m) = FileMsg::decode_from_bytes(msg) {
                            self.log.lock().unwrap().push(m);
                        }
                    }
                }
                self.flush(ctx);
            }
            _ => {}
        }
    }
}

fn build(servers: usize) -> (World, Vec<Endpoint>, snipe_util::id::HostId) {
    let mut topo = Topology::new();
    let net = topo.add_network("lan", Medium::ethernet100(), true);
    let rc_host = topo.add_host(HostCfg::named("rc0"));
    topo.attach(rc_host, net);
    let rc_ep = Endpoint::new(rc_host, ports::RC_SERVER);
    let mut eps = Vec::new();
    for i in 0..servers {
        let h = topo.add_host(HostCfg::named(format!("fs{i}")));
        topo.attach(h, net);
        eps.push(Endpoint::new(h, ports::FILE_SERVER));
    }
    let client = topo.add_host(HostCfg::named("client"));
    topo.attach(client, net);
    let mut world = World::new(topo, 3);
    world.spawn(
        rc_host,
        ports::RC_SERVER,
        Box::new(RcServerActor::new(1, vec![], SimDuration::from_millis(200))),
    );
    for (i, ep) in eps.iter().enumerate() {
        let peers: Vec<Endpoint> = eps.iter().copied().filter(|e| e != ep).collect();
        let cfg = FileServerConfig::new(format!("fs{i}"), vec![rc_ep], peers);
        world.spawn(ep.host, ep.port, Box::new(FileServerActor::new(cfg)));
    }
    (world, eps, client)
}

#[test]
fn store_and_read_round_trip_with_hash() {
    let (mut world, eps, client) = build(1);
    let log = Arc::new(Mutex::new(Vec::new()));
    let content = Bytes::from(vec![7u8; 5000]);
    let driver = StackDriver::new(
        vec![
            (
                SimDuration::from_millis(10),
                Step::Reliable(
                    eps[0],
                    FileMsg::StoreReq {
                        req_id: 1,
                        lifn: "lifn:snipe:file:data".into(),
                        content: content.clone(),
                    },
                ),
            ),
            (
                SimDuration::from_millis(50),
                Step::Reliable(
                    eps[0],
                    FileMsg::ReadReq { req_id: 2, lifn: "lifn:snipe:file:data".into() },
                ),
            ),
            (
                SimDuration::from_millis(10),
                Step::Reliable(
                    eps[0],
                    FileMsg::ReadReq { req_id: 3, lifn: "lifn:snipe:file:missing".into() },
                ),
            ),
        ],
        log.clone(),
    );
    world.spawn(client, 40, Box::new(driver));
    world.run_for(SimDuration::from_secs(2));
    let log = log.lock().unwrap();
    assert!(log.iter().any(|m| matches!(m, FileMsg::StoreResp { req_id: 1, ok: true })), "{log:?}");
    let read = log
        .iter()
        .find_map(|m| match m {
            FileMsg::ReadResp { req_id: 2, ok: true, content, hash } => {
                Some((content.clone(), hash.clone()))
            }
            _ => None,
        })
        .expect("read response");
    assert_eq!(read.0, content);
    assert_eq!(&read.1[..], &snipe_crypto::sha256::sha256(&content)[..]);
    assert!(log.iter().any(|m| matches!(m, FileMsg::ReadResp { req_id: 3, ok: false, .. })));
}

#[test]
fn sink_accumulates_and_file_becomes_readable() {
    let (mut world, eps, client) = build(1);
    let log = Arc::new(Mutex::new(Vec::new()));
    let driver = StackDriver::new(
        vec![(
            SimDuration::from_millis(10),
            Step::Reliable(
                eps[0],
                FileMsg::OpenSink { req_id: 1, lifn: "lifn:snipe:file:log".into() },
            ),
        )],
        log.clone(),
    );
    world.spawn(client, 40, Box::new(driver));
    world.run_for(SimDuration::from_millis(200));
    let sink = log
        .lock()
        .unwrap()
        .iter()
        .find_map(|m| match m {
            FileMsg::SinkOpened { req_id: 1, sink } => Some(*sink),
            _ => None,
        })
        .expect("sink opened");
    let driver2 = StackDriver::new(
        vec![
            (
                SimDuration::from_millis(1),
                Step::Raw(sink, FileMsg::Append { data: Bytes::from_static(b"hello ") }),
            ),
            (
                SimDuration::from_millis(1),
                Step::Raw(sink, FileMsg::Append { data: Bytes::from_static(b"world") }),
            ),
            (SimDuration::from_millis(1), Step::Raw(sink, FileMsg::CloseSink)),
            (
                SimDuration::from_millis(50),
                Step::Reliable(
                    eps[0],
                    FileMsg::ReadReq { req_id: 2, lifn: "lifn:snipe:file:log".into() },
                ),
            ),
        ],
        log.clone(),
    );
    world.spawn(client, 41, Box::new(driver2));
    world.run_for(SimDuration::from_secs(2));
    let log = log.lock().unwrap();
    let read = log
        .iter()
        .find_map(|m| match m {
            FileMsg::ReadResp { req_id: 2, ok: true, content, .. } => Some(content.clone()),
            _ => None,
        })
        .expect("read after sink close");
    assert_eq!(&read[..], b"hello world");
    assert!(!world.is_bound(sink), "sink process must exit after close");
}

#[test]
fn source_streams_file_to_destination() {
    let (mut world, eps, client) = build(1);
    let log = Arc::new(Mutex::new(Vec::new()));
    let content = Bytes::from((0..5000u32).map(|i| (i % 256) as u8).collect::<Vec<u8>>());
    let dest = Endpoint::new(client, 42);
    let driver = StackDriver::new(
        vec![
            (
                SimDuration::from_millis(10),
                Step::Reliable(
                    eps[0],
                    FileMsg::StoreReq {
                        req_id: 1,
                        lifn: "lifn:snipe:file:big".into(),
                        content: content.clone(),
                    },
                ),
            ),
            (
                SimDuration::from_millis(100),
                Step::Reliable(
                    eps[0],
                    FileMsg::OpenSource { req_id: 2, lifn: "lifn:snipe:file:big".into(), dest },
                ),
            ),
        ],
        log.clone(),
    );
    world.spawn(client, 40, Box::new(driver));
    let recv_log = Arc::new(Mutex::new(Vec::new()));
    world.spawn(client, 42, Box::new(StackDriver::new(vec![], recv_log.clone())));
    world.run_for(SimDuration::from_secs(3));
    let chunks = recv_log.lock().unwrap();
    let mut data = Vec::new();
    let mut saw_last = false;
    for m in chunks.iter() {
        if let FileMsg::SourceData { data: d, last, .. } = m {
            data.extend_from_slice(d);
            saw_last |= *last;
        }
    }
    assert!(saw_last, "source must mark the last chunk");
    assert_eq!(Bytes::from(data), content);
}

#[test]
fn replication_daemon_copies_to_peer() {
    let (mut world, eps, client) = build(3);
    let log = Arc::new(Mutex::new(Vec::new()));
    let driver = StackDriver::new(
        vec![(
            SimDuration::from_millis(10),
            Step::Reliable(
                eps[0],
                FileMsg::StoreReq {
                    req_id: 1,
                    lifn: "lifn:snipe:file:repl".into(),
                    content: Bytes::from_static(b"replicate me"),
                },
            ),
        )],
        log.clone(),
    );
    world.spawn(client, 40, Box::new(driver));
    world.run_for(SimDuration::from_secs(3));
    let log2 = Arc::new(Mutex::new(Vec::new()));
    let driver2 = StackDriver::new(
        vec![(
            SimDuration::from_millis(1),
            Step::Reliable(
                eps[1],
                FileMsg::ReadReq { req_id: 2, lifn: "lifn:snipe:file:repl".into() },
            ),
        )],
        log2.clone(),
    );
    world.spawn(client, 41, Box::new(driver2));
    world.run_for(SimDuration::from_secs(2));
    let log2 = log2.lock().unwrap();
    let read = log2.iter().find_map(|m| match m {
        FileMsg::ReadResp { req_id: 2, ok, content, .. } => Some((*ok, content.clone())),
        _ => None,
    });
    assert_eq!(read, Some((true, Bytes::from_static(b"replicate me"))));
}

#[test]
fn striped_read_assembles_across_replicas() {
    let (mut world, eps, client) = build(3);
    let log = Arc::new(Mutex::new(Vec::new()));
    let content = Bytes::from((0..20_000u32).map(|i| (i * 31 % 251) as u8).collect::<Vec<u8>>());
    // Seed the same file on every replica so the fetcher can stripe.
    let script = eps
        .iter()
        .map(|&ep| {
            (
                SimDuration::from_millis(10),
                Step::Reliable(
                    ep,
                    FileMsg::StoreReq {
                        req_id: 1,
                        lifn: "lifn:snipe:file:striped".into(),
                        content: content.clone(),
                    },
                ),
            )
        })
        .collect();
    world.spawn(client, 40, Box::new(StackDriver::new(script, log.clone())));
    world.run_for(SimDuration::from_secs(1));
    let fetcher = snipe_files::FetchActor::new(
        "lifn:snipe:file:striped",
        eps.clone(),
        4096,
        SimDuration::from_millis(5),
    );
    world.spawn(client, 50, Box::new(fetcher));
    world.run_for(SimDuration::from_secs(3));
    let fa = world
        .portable_ref::<snipe_files::FetchActor>(Endpoint::new(client, 50))
        .expect("fetch actor alive");
    assert_eq!(fa.result.as_ref(), Some(&content), "striped fetch must reassemble the file");
    assert!(!fa.failed);
    // 20 000 bytes / 4096 ⇒ 5 stripes, each completed exactly once.
    let mut sorted = fa.completions.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    assert_eq!(fa.stats.stripes_completed, 5);
    assert_eq!(fa.stats.integrity_rejects, 0);
}

#[test]
fn striped_read_survives_replica_death_mid_transfer() {
    let (mut world, eps, client) = build(3);
    let log = Arc::new(Mutex::new(Vec::new()));
    let content = Bytes::from((0..40_000u32).map(|i| (i * 13 % 241) as u8).collect::<Vec<u8>>());
    let script = eps
        .iter()
        .map(|&ep| {
            (
                SimDuration::from_millis(10),
                Step::Reliable(
                    ep,
                    FileMsg::StoreReq {
                        req_id: 1,
                        lifn: "lifn:snipe:file:hardy".into(),
                        content: content.clone(),
                    },
                ),
            )
        })
        .collect();
    world.spawn(client, 40, Box::new(StackDriver::new(script, log.clone())));
    world.run_for(SimDuration::from_secs(1));
    let fetcher = snipe_files::FetchActor::new(
        "lifn:snipe:file:hardy",
        eps.clone(),
        4096,
        SimDuration::from_millis(5),
    );
    world.spawn(client, 50, Box::new(fetcher));
    // Let the fetch start, then kill one replica mid-transfer; its
    // stripes must be re-dispatched to the survivors.
    world.run_for(SimDuration::from_millis(8));
    world.host_down(eps[1].host);
    world.run_for(SimDuration::from_secs(8));
    let fa = world
        .portable_ref::<snipe_files::FetchActor>(Endpoint::new(client, 50))
        .expect("fetch actor alive");
    assert_eq!(fa.result.as_ref(), Some(&content), "fetch must survive a replica crash");
    let mut sorted = fa.completions.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), fa.completions.len(), "no stripe completed twice");
}

#[test]
fn replica_survives_origin_server_death() {
    let (mut world, eps, client) = build(2);
    let log = Arc::new(Mutex::new(Vec::new()));
    let driver = StackDriver::new(
        vec![(
            SimDuration::from_millis(10),
            Step::Reliable(
                eps[0],
                FileMsg::StoreReq {
                    req_id: 1,
                    lifn: "lifn:snipe:file:ckpt".into(),
                    content: Bytes::from_static(b"checkpoint"),
                },
            ),
        )],
        log.clone(),
    );
    world.spawn(client, 40, Box::new(driver));
    world.run_for(SimDuration::from_secs(2));
    world.host_down(eps[0].host);
    let log2 = Arc::new(Mutex::new(Vec::new()));
    let driver2 = StackDriver::new(
        vec![(
            SimDuration::from_millis(1),
            Step::Reliable(
                eps[1],
                FileMsg::ReadReq { req_id: 2, lifn: "lifn:snipe:file:ckpt".into() },
            ),
        )],
        log2.clone(),
    );
    world.spawn(client, 41, Box::new(driver2));
    world.run_for(SimDuration::from_secs(2));
    let ok = log2
        .lock()
        .unwrap()
        .iter()
        .any(|m| matches!(m, FileMsg::ReadResp { req_id: 2, ok: true, .. }));
    assert!(ok, "surviving replica must serve the file");
}
