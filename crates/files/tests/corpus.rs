//! Hostile-input corpus for the file-service decoder (the
//! `wire/tests/corpus.rs` pattern at the FileMsg layer).
//!
//! FileMsg bodies ride SRUDP, whose envelope checksum stops random
//! line noise — but a forged body arrives intact, and a buggy peer can
//! emit anything. The contract: the decoder never panics, truncation
//! and forgery are errors, the server counts every undecodable
//! delivery (`FileServerActor::decode_drops`), and the striped-fetch
//! state machine counts forged stripe replies instead of absorbing
//! them.

use bytes::Bytes;
use snipe_crypto::sha256::sha256;
use snipe_files::proto::FileMsg;
use snipe_files::StripedFetch;
use snipe_netsim::topology::Endpoint;
use snipe_util::codec::{Encoder, WireDecode, WireEncode};
use snipe_util::id::HostId;
use snipe_util::time::{SimDuration, SimTime};

fn ep(h: u32, p: u16) -> Endpoint {
    Endpoint::new(HostId(h), p)
}

/// Deterministic garbage generator (splitmix64).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn bytes(&mut self, len: usize) -> Bytes {
        let mut v = Vec::with_capacity(len);
        while v.len() < len {
            v.extend_from_slice(&self.next().to_le_bytes());
        }
        v.truncate(len);
        Bytes::from(v)
    }
}

/// One representative frame per message kind, so the truncation and
/// flip sweeps cover every decode arm.
fn samples() -> Vec<FileMsg> {
    let body = Bytes::from_static(b"stripe payload bytes");
    let hash = Bytes::copy_from_slice(&sha256(&body));
    vec![
        FileMsg::OpenSink { req_id: 1, lifn: "lifn:a".into() },
        FileMsg::SinkOpened { req_id: 1, sink: ep(3, 200) },
        FileMsg::Append { data: body.clone() },
        FileMsg::CloseSink,
        FileMsg::StoreLocal { lifn: "lifn:a".into(), content: body.clone() },
        FileMsg::OpenSource { req_id: 2, lifn: "lifn:a".into(), dest: ep(4, 300) },
        FileMsg::SourceData { lifn: "lifn:a".into(), seq: 3, data: body.clone(), last: true },
        FileMsg::ReadReq { req_id: 5, lifn: "lifn:a".into() },
        FileMsg::ReadResp { req_id: 5, ok: true, content: body.clone(), hash: hash.clone() },
        FileMsg::StoreReq { req_id: 6, lifn: "lifn:a".into(), content: body.clone() },
        FileMsg::StoreResp { req_id: 6, ok: true },
        FileMsg::ReplicaPush { lifn: "lifn:a".into(), content: body.clone(), hash: hash.clone() },
        FileMsg::ReplicaAck { lifn: "lifn:a".into() },
        FileMsg::ReadStripe { req_id: 7, lifn: "lifn:a".into(), offset: 4096, len: 2048 },
        FileMsg::StripeData {
            req_id: 7,
            ok: true,
            offset: 4096,
            total_len: 20_000,
            data: body,
            hash,
        },
    ]
}

#[test]
fn every_strict_prefix_of_every_message_kind_errs() {
    for msg in samples() {
        let full = msg.encode_to_bytes();
        // Sanity: the pristine frame round-trips.
        assert_eq!(FileMsg::decode_from_bytes(full.clone()).unwrap(), msg);
        for len in 0..full.len() {
            assert!(
                FileMsg::decode_from_bytes(full.slice(0..len)).is_err(),
                "{msg:?}: prefix of {len}/{} bytes decoded",
                full.len()
            );
        }
    }
}

#[test]
fn every_bit_flip_never_panics_and_magic_flips_always_err() {
    for msg in samples() {
        let full = msg.encode_to_bytes();
        for i in 0..full.len() {
            for bit in 0..8 {
                let mut hostile = full.to_vec();
                hostile[i] ^= 1 << bit;
                // Must not panic; a changed magic or tag byte must err.
                let r = FileMsg::decode_from_bytes(Bytes::from(hostile));
                if i == 0 {
                    assert!(r.is_err(), "{msg:?}: flipped magic byte decoded");
                }
            }
        }
    }
}

#[test]
fn random_garbage_never_panics_and_never_aliases_magic_free_frames() {
    let mut rng = Rng(0xbadf00d);
    for i in 0..2_000u64 {
        let len = (i % 97) as usize;
        let garbage = rng.bytes(len);
        let magic_ok = garbage.first() == Some(&0xA4);
        let r = FileMsg::decode_from_bytes(garbage);
        if !magic_ok {
            assert!(r.is_err(), "garbage without the magic byte decoded");
        }
    }
}

#[test]
fn forged_giant_length_fields_are_rejected_without_allocating() {
    // A StoreReq claiming a 4 GiB content field in a tiny datagram.
    let mut enc = Encoder::new();
    enc.put_u8(0xA4); // file-service magic
    enc.put_u8(10); // T_STORE_REQ
    enc.put_u64(1);
    enc.put_str("lifn:a");
    enc.put_u32(u32::MAX); // hostile content length
    assert!(FileMsg::decode_from_bytes(enc.finish()).is_err());
}

#[test]
fn forged_stripe_replies_are_counted_not_absorbed() {
    let replicas = vec![ep(1, 4), ep(2, 4)];
    let mut f = StripedFetch::new("lifn:a", replicas.clone(), 2048, SimDuration::from_millis(400));
    let now = SimTime::ZERO;
    f.start(now);
    let sent = f.drain_outbox();
    assert_eq!(sent.len(), 1);
    let (target, req) = &sent[0];
    let FileMsg::ReadStripe { req_id, offset, .. } = *req else { panic!("expected ReadStripe") };

    // Unknown request id: stale, not acted on.
    f.on_msg(
        now,
        *target,
        FileMsg::StripeData {
            req_id: req_id ^ 0xFFFF,
            ok: true,
            offset,
            total_len: 4096,
            data: Bytes::from_static(b"x"),
            hash: Bytes::new(),
        },
    );
    assert_eq!(f.stats.stale_replies, 1);

    // Right id, wrong replica: mismatched, the pending slot survives.
    let other = replicas.iter().copied().find(|e| e != target).unwrap();
    let body = Bytes::from(vec![7u8; 2048]);
    let good_hash = Bytes::copy_from_slice(&sha256(&body));
    f.on_msg(
        now,
        other,
        FileMsg::StripeData {
            req_id,
            ok: true,
            offset,
            total_len: 4096,
            data: body.clone(),
            hash: good_hash.clone(),
        },
    );
    assert_eq!(f.stats.mismatched_replies, 1);

    // Right id and replica, forged hash: integrity reject + refetch.
    f.on_msg(
        now,
        *target,
        FileMsg::StripeData {
            req_id,
            ok: true,
            offset,
            total_len: 4096,
            data: body,
            hash: Bytes::from(vec![0u8; 32]),
        },
    );
    assert_eq!(f.stats.integrity_rejects, 1);
    assert!(!f.done(), "a forged stripe must not complete the fetch");
    assert!(!f.drain_outbox().is_empty(), "the rejected stripe must be re-requested");
}
