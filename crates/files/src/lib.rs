//! # snipe-files — SNIPE file servers, sinks and sources
//!
//! "RCDS file servers will be used to replicate files that are used by
//! SNIPE processes, including data files, mobile code, and checkpoint
//! files ... Replication daemons on these servers communicate with one
//! another, creating and deleting replicas of files according to local
//! policy, redundancy requirements, and demand. Name-to-location
//! binding for these files is maintained by metadata servers" (§3.2).
//!
//! And §5.9: "A 'file sink' process reads SNIPE messages sent to it and
//! stores them into a file. A 'file source' process reads a file
//! consisting of SNIPE messages and sends them to a SNIPE address.
//! Opening a file for writing thus consists of spawning a file sink
//! process..." — sinks and sources are literally actors here.
//!
//! Files are named by LIFN; every stored file carries its SHA-256 so
//! replicas and readers can verify integrity (§2.1).

pub mod fetch;
pub mod proto;
pub mod server;
pub mod sink;

pub use fetch::{rank_replicas, FetchActor, FetchStats, StripedFetch};
pub use proto::FileMsg;
pub use server::{FileServerActor, FileServerConfig};
