//! File service protocol messages.

use bytes::Bytes;

use snipe_netsim::topology::Endpoint;
use snipe_util::codec::{Decoder, Encoder, WireDecode, WireEncode};
use snipe_util::error::{SnipeError, SnipeResult};
use snipe_util::id::HostId;

/// Protocol magic for file traffic.
const MAGIC: u8 = 0xA4;

fn put_ep(enc: &mut Encoder, ep: Endpoint) {
    enc.put_u32(ep.host.0);
    enc.put_u16(ep.port);
}

fn get_ep(dec: &mut Decoder) -> SnipeResult<Endpoint> {
    Ok(Endpoint::new(HostId(dec.get_u32()?), dec.get_u16()?))
}

/// File service wire messages (Raw-sealed).
#[derive(Clone, Debug, PartialEq)]
pub enum FileMsg {
    /// Spawn a file sink for writing `lifn` (§5.9).
    OpenSink {
        /// Echoed id.
        req_id: u64,
        /// File name.
        lifn: String,
    },
    /// Sink ready at `sink`.
    SinkOpened {
        /// Echoed id.
        req_id: u64,
        /// Where to send [`FileMsg::Append`] messages.
        sink: Endpoint,
    },
    /// Append a chunk to a sink.
    Append {
        /// Chunk bytes.
        data: Bytes,
    },
    /// Finish a sink; the file becomes readable and replicable.
    CloseSink,
    /// Sink → server (loopback): store the assembled file.
    StoreLocal {
        /// File name.
        lifn: String,
        /// Full content.
        content: Bytes,
    },
    /// Spawn a file source streaming `lifn` to `dest` (§5.9).
    OpenSource {
        /// Echoed id.
        req_id: u64,
        /// File name.
        lifn: String,
        /// Destination for the stream.
        dest: Endpoint,
    },
    /// One streamed chunk from a source.
    SourceData {
        /// File name.
        lifn: String,
        /// Chunk index.
        seq: u32,
        /// Chunk bytes.
        data: Bytes,
        /// Last chunk?
        last: bool,
    },
    /// Whole-file read (checkpoints, mobile code images).
    ReadReq {
        /// Echoed id.
        req_id: u64,
        /// File name.
        lifn: String,
    },
    /// Read outcome.
    ReadResp {
        /// Echoed id.
        req_id: u64,
        /// Found?
        ok: bool,
        /// Content (when ok).
        content: Bytes,
        /// SHA-256 of content (when ok).
        hash: Bytes,
    },
    /// Whole-file write.
    StoreReq {
        /// Echoed id.
        req_id: u64,
        /// File name.
        lifn: String,
        /// Content.
        content: Bytes,
    },
    /// Write outcome.
    StoreResp {
        /// Echoed id.
        req_id: u64,
        /// Stored?
        ok: bool,
    },
    /// Replication daemon push to a peer server.
    ReplicaPush {
        /// File name.
        lifn: String,
        /// Content.
        content: Bytes,
        /// Expected SHA-256 (integrity check, §2.1).
        hash: Bytes,
    },
    /// Peer acknowledges holding a replica.
    ReplicaAck {
        /// File name.
        lifn: String,
    },
    /// Read one byte range of a file (striped parallel reads pull
    /// different ranges from different replicas).
    ReadStripe {
        /// Echoed id (unique per stripe attempt).
        req_id: u64,
        /// File name.
        lifn: String,
        /// Byte offset of the stripe.
        offset: u32,
        /// Requested stripe length (the reply may be shorter at EOF).
        len: u32,
    },
    /// Stripe read outcome.
    StripeData {
        /// Echoed id.
        req_id: u64,
        /// Found (and range valid)?
        ok: bool,
        /// Echoed stripe offset.
        offset: u32,
        /// Total file length — lets the first stripe reply size the
        /// whole fetch plan.
        total_len: u32,
        /// Stripe bytes (when ok).
        data: Bytes,
        /// SHA-256 of `data` (per-stripe integrity check, when ok).
        hash: Bytes,
    },
}

const T_OPEN_SINK: u8 = 1;
const T_SINK_OPENED: u8 = 2;
const T_APPEND: u8 = 3;
const T_CLOSE_SINK: u8 = 4;
const T_STORE_LOCAL: u8 = 5;
const T_OPEN_SOURCE: u8 = 6;
const T_SOURCE_DATA: u8 = 7;
const T_READ_REQ: u8 = 8;
const T_READ_RESP: u8 = 9;
const T_STORE_REQ: u8 = 10;
const T_STORE_RESP: u8 = 11;
const T_REPLICA_PUSH: u8 = 12;
const T_REPLICA_ACK: u8 = 13;
const T_READ_STRIPE: u8 = 14;
const T_STRIPE_DATA: u8 = 15;

impl WireEncode for FileMsg {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(MAGIC);
        match self {
            FileMsg::OpenSink { req_id, lifn } => {
                enc.put_u8(T_OPEN_SINK);
                enc.put_u64(*req_id);
                enc.put_str(lifn);
            }
            FileMsg::SinkOpened { req_id, sink } => {
                enc.put_u8(T_SINK_OPENED);
                enc.put_u64(*req_id);
                put_ep(enc, *sink);
            }
            FileMsg::Append { data } => {
                enc.put_u8(T_APPEND);
                enc.put_bytes(data);
            }
            FileMsg::CloseSink => enc.put_u8(T_CLOSE_SINK),
            FileMsg::StoreLocal { lifn, content } => {
                enc.put_u8(T_STORE_LOCAL);
                enc.put_str(lifn);
                enc.put_bytes(content);
            }
            FileMsg::OpenSource { req_id, lifn, dest } => {
                enc.put_u8(T_OPEN_SOURCE);
                enc.put_u64(*req_id);
                enc.put_str(lifn);
                put_ep(enc, *dest);
            }
            FileMsg::SourceData { lifn, seq, data, last } => {
                enc.put_u8(T_SOURCE_DATA);
                enc.put_str(lifn);
                enc.put_u32(*seq);
                enc.put_bytes(data);
                enc.put_bool(*last);
            }
            FileMsg::ReadReq { req_id, lifn } => {
                enc.put_u8(T_READ_REQ);
                enc.put_u64(*req_id);
                enc.put_str(lifn);
            }
            FileMsg::ReadResp { req_id, ok, content, hash } => {
                enc.put_u8(T_READ_RESP);
                enc.put_u64(*req_id);
                enc.put_bool(*ok);
                enc.put_bytes(content);
                enc.put_bytes(hash);
            }
            FileMsg::StoreReq { req_id, lifn, content } => {
                enc.put_u8(T_STORE_REQ);
                enc.put_u64(*req_id);
                enc.put_str(lifn);
                enc.put_bytes(content);
            }
            FileMsg::StoreResp { req_id, ok } => {
                enc.put_u8(T_STORE_RESP);
                enc.put_u64(*req_id);
                enc.put_bool(*ok);
            }
            FileMsg::ReplicaPush { lifn, content, hash } => {
                enc.put_u8(T_REPLICA_PUSH);
                enc.put_str(lifn);
                enc.put_bytes(content);
                enc.put_bytes(hash);
            }
            FileMsg::ReplicaAck { lifn } => {
                enc.put_u8(T_REPLICA_ACK);
                enc.put_str(lifn);
            }
            FileMsg::ReadStripe { req_id, lifn, offset, len } => {
                enc.put_u8(T_READ_STRIPE);
                enc.put_u64(*req_id);
                enc.put_str(lifn);
                enc.put_u32(*offset);
                enc.put_u32(*len);
            }
            FileMsg::StripeData { req_id, ok, offset, total_len, data, hash } => {
                enc.put_u8(T_STRIPE_DATA);
                enc.put_u64(*req_id);
                enc.put_bool(*ok);
                enc.put_u32(*offset);
                enc.put_u32(*total_len);
                enc.put_bytes(data);
                enc.put_bytes(hash);
            }
        }
    }
}

impl WireDecode for FileMsg {
    fn decode(dec: &mut Decoder) -> SnipeResult<Self> {
        if dec.get_u8()? != MAGIC {
            return Err(SnipeError::Codec("not a file message".into()));
        }
        Ok(match dec.get_u8()? {
            T_OPEN_SINK => FileMsg::OpenSink { req_id: dec.get_u64()?, lifn: dec.get_str()? },
            T_SINK_OPENED => FileMsg::SinkOpened { req_id: dec.get_u64()?, sink: get_ep(dec)? },
            T_APPEND => FileMsg::Append { data: dec.get_bytes()? },
            T_CLOSE_SINK => FileMsg::CloseSink,
            T_STORE_LOCAL => {
                FileMsg::StoreLocal { lifn: dec.get_str()?, content: dec.get_bytes()? }
            }
            T_OPEN_SOURCE => FileMsg::OpenSource {
                req_id: dec.get_u64()?,
                lifn: dec.get_str()?,
                dest: get_ep(dec)?,
            },
            T_SOURCE_DATA => FileMsg::SourceData {
                lifn: dec.get_str()?,
                seq: dec.get_u32()?,
                data: dec.get_bytes()?,
                last: dec.get_bool()?,
            },
            T_READ_REQ => FileMsg::ReadReq { req_id: dec.get_u64()?, lifn: dec.get_str()? },
            T_READ_RESP => FileMsg::ReadResp {
                req_id: dec.get_u64()?,
                ok: dec.get_bool()?,
                content: dec.get_bytes()?,
                hash: dec.get_bytes()?,
            },
            T_STORE_REQ => FileMsg::StoreReq {
                req_id: dec.get_u64()?,
                lifn: dec.get_str()?,
                content: dec.get_bytes()?,
            },
            T_STORE_RESP => FileMsg::StoreResp { req_id: dec.get_u64()?, ok: dec.get_bool()? },
            T_REPLICA_PUSH => FileMsg::ReplicaPush {
                lifn: dec.get_str()?,
                content: dec.get_bytes()?,
                hash: dec.get_bytes()?,
            },
            T_REPLICA_ACK => FileMsg::ReplicaAck { lifn: dec.get_str()? },
            T_READ_STRIPE => FileMsg::ReadStripe {
                req_id: dec.get_u64()?,
                lifn: dec.get_str()?,
                offset: dec.get_u32()?,
                len: dec.get_u32()?,
            },
            T_STRIPE_DATA => FileMsg::StripeData {
                req_id: dec.get_u64()?,
                ok: dec.get_bool()?,
                offset: dec.get_u32()?,
                total_len: dec.get_u32()?,
                data: dec.get_bytes()?,
                hash: dec.get_bytes()?,
            },
            t => return Err(SnipeError::Codec(format!("unknown file tag {t}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_round_trip() {
        let msgs = vec![
            FileMsg::OpenSink { req_id: 1, lifn: "lifn:snipe:file:x".into() },
            FileMsg::SinkOpened { req_id: 1, sink: Endpoint::new(HostId(1), 200) },
            FileMsg::Append { data: Bytes::from_static(b"chunk") },
            FileMsg::CloseSink,
            FileMsg::StoreLocal { lifn: "l".into(), content: Bytes::from_static(b"c") },
            FileMsg::OpenSource { req_id: 2, lifn: "l".into(), dest: Endpoint::new(HostId(2), 3) },
            FileMsg::SourceData {
                lifn: "l".into(),
                seq: 0,
                data: Bytes::from_static(b"d"),
                last: true,
            },
            FileMsg::ReadReq { req_id: 3, lifn: "l".into() },
            FileMsg::ReadResp {
                req_id: 3,
                ok: true,
                content: Bytes::from_static(b"c"),
                hash: Bytes::from_static(&[0; 32]),
            },
            FileMsg::StoreReq { req_id: 4, lifn: "l".into(), content: Bytes::from_static(b"c") },
            FileMsg::StoreResp { req_id: 4, ok: true },
            FileMsg::ReplicaPush {
                lifn: "l".into(),
                content: Bytes::from_static(b"c"),
                hash: Bytes::from_static(&[1; 32]),
            },
            FileMsg::ReplicaAck { lifn: "l".into() },
            FileMsg::ReadStripe { req_id: 5, lifn: "l".into(), offset: 4096, len: 1024 },
            FileMsg::StripeData {
                req_id: 5,
                ok: true,
                offset: 4096,
                total_len: 9000,
                data: Bytes::from_static(b"stripe"),
                hash: Bytes::from_static(&[2; 32]),
            },
        ];
        for m in msgs {
            assert_eq!(FileMsg::decode_from_bytes(m.encode_to_bytes()).unwrap(), m);
        }
    }

    #[test]
    fn wrong_magic_rejected() {
        assert!(FileMsg::decode_from_bytes(Bytes::from_static(&[0xA1, 1])).is_err());
    }
}
