//! The file server actor with its replication daemon.

use std::collections::HashMap;

use bytes::Bytes;

use snipe_crypto::sha256::sha256;
use snipe_netsim::actor::{Event, PortableActor, SimCtx, TimerGate};
use snipe_netsim::portable_actor;
use snipe_netsim::topology::Endpoint;
use snipe_rcds::assertion::Assertion;
use snipe_rcds::client::RcClient;
use snipe_rcds::uri::Uri;
use snipe_util::codec::{WireDecode, WireEncode};
use snipe_util::time::SimDuration;
use snipe_wire::frame::{seal, Proto};
use snipe_wire::stack::{endpoint_key, Incoming, StackConfig, WireStack};
use snipe_wire::Out;

use crate::proto::FileMsg;
use crate::sink::{FileSinkActor, FileSourceActor};

const TIMER_REPLICATE: u64 = 1;
const TIMER_RC: u64 = 2;
const TIMER_STACK: u64 = 3;

/// File server configuration.
#[derive(Clone)]
pub struct FileServerConfig {
    /// Name used in replica-location metadata.
    pub name: String,
    /// RC replicas for location registration.
    pub rc_replicas: Vec<Endpoint>,
    /// Peer file servers to replicate to.
    pub peers: Vec<Endpoint>,
    /// Desired replica count per file ("redundancy requirements", §3.2).
    pub replication_factor: usize,
    /// Replication daemon tick.
    pub replicate_interval: SimDuration,
}

impl FileServerConfig {
    /// Defaults for a named server.
    pub fn new(name: impl Into<String>, rc_replicas: Vec<Endpoint>, peers: Vec<Endpoint>) -> Self {
        FileServerConfig {
            name: name.into(),
            rc_replicas,
            peers,
            replication_factor: 2,
            replicate_interval: SimDuration::from_millis(500),
        }
    }
}

struct Stored {
    content: Bytes,
    hash: [u8; 32],
    /// Peers known to hold a replica (including via acks).
    replicas: usize,
}

/// The file server actor (listens on `snipe_wire::ports::FILE_SERVER`).
///
/// File operations ride the normal SNIPE reliable message layer
/// (SRUDP via [`WireStack`]) — exactly as §5.9 specifies: files are
/// read and written "using the normal message passing routines used to
/// send messages between processes". Only sink/source chunk traffic
/// (already MTU-sized) and RC lookups stay on raw datagrams.
pub struct FileServerActor {
    cfg: FileServerConfig,
    rc: RcClient,
    stack: Option<WireStack>,
    stack_gate: TimerGate,
    rc_gate: TimerGate,
    files: HashMap<String, Stored>,
    /// Integrity rejections observed (diagnostics).
    pub rejected_pushes: u64,
    /// Reliable-path payloads that failed to decode as file messages.
    pub decode_drops: u64,
}

impl FileServerActor {
    /// New server.
    pub fn new(cfg: FileServerConfig) -> FileServerActor {
        let rc = RcClient::new(cfg.rc_replicas.clone(), SimDuration::from_millis(250));
        FileServerActor {
            cfg,
            rc,
            stack: None,
            stack_gate: TimerGate::new(),
            rc_gate: TimerGate::new(),
            files: HashMap::new(),
            rejected_pushes: 0,
            decode_drops: 0,
        }
    }

    fn flush_stack(&mut self, ctx: &mut dyn SimCtx) -> Vec<(u64, Endpoint, FileMsg)> {
        let mut delivered = Vec::new();
        let mut drops = 0u64;
        let Some(stack) = self.stack.as_mut() else {
            return delivered;
        };
        for o in stack.drain() {
            match o {
                Out::Send { to, via, bytes, .. } => match via {
                    Some(n) => ctx.send_via(to, bytes, n),
                    None => ctx.send(to, bytes),
                },
                Out::Deliver { from_key, from_ep, msg, .. } => {
                    match FileMsg::decode_from_bytes(msg) {
                        Ok(m) => delivered.push((from_key, from_ep, m)),
                        Err(_) => drops += 1,
                    }
                }
                Out::Wake { .. } => {}
            }
        }
        let deadline = stack.next_deadline();
        self.decode_drops += drops;
        if let Some(dl) = deadline {
            self.stack_gate.arm_at(ctx, dl + SimDuration::from_micros(1), TIMER_STACK);
        }
        delivered
    }

    fn reliable_send(&mut self, ctx: &mut dyn SimCtx, to_key: u64, msg: &FileMsg) {
        let now = ctx.now();
        if let Some(stack) = self.stack.as_mut() {
            stack.send(now, to_key, msg.encode_to_bytes()).expect("default frag size");
        }
        let _ = self.flush_stack(ctx);
    }

    /// Pre-load a file before the world starts (models the server's
    /// disk contents, which survive a process crash/restart exactly as
    /// the paper's disk-backed servers do). No RC registration happens
    /// here — callers that need the location published store normally.
    pub fn preload(&mut self, lifn: impl Into<String>, content: Bytes) {
        let hash = sha256(&content);
        self.files
            .insert(lifn.into(), Stored { content, hash, replicas: self.cfg.replication_factor });
    }

    /// Number of files held.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Does this server hold `lifn`?
    pub fn holds(&self, lifn: &str) -> bool {
        self.files.contains_key(lifn)
    }

    fn flush_rc(&mut self, ctx: &mut dyn SimCtx) {
        for (to, bytes) in self.rc.drain_sends() {
            ctx.send(to, seal(Proto::Raw, bytes));
        }
        self.rc.drain_done();
        if let Some(dl) = self.rc.next_deadline() {
            self.rc_gate.arm_at(ctx, dl + SimDuration::from_micros(1), TIMER_RC);
        }
    }

    fn register_replica(&mut self, ctx: &mut dyn SimCtx, lifn: &str, hash: &[u8]) {
        // Name-to-location binding in RC (§3.2): one attribute per
        // replica location, plus the integrity hash.
        let Ok(uri) = Uri::parse(lifn.to_string()) else {
            return;
        };
        let me = ctx.me();
        let now = ctx.now();
        self.rc.put(
            now,
            &uri,
            vec![
                Assertion::new(
                    format!("replica:{}", self.cfg.name),
                    format!("{}:{}", me.host.0, me.port),
                ),
                Assertion::new("sha256", snipe_crypto::sha256::hex(hash)),
                Assertion::new("type", "file"),
            ],
        );
        self.flush_rc(ctx);
    }

    fn store(&mut self, ctx: &mut dyn SimCtx, lifn: String, content: Bytes) {
        let hash = sha256(&content);
        self.files.insert(lifn.clone(), Stored { content, hash, replicas: 1 });
        self.register_replica(ctx, &lifn, &hash);
    }

    fn replicate_tick(&mut self, ctx: &mut dyn SimCtx) {
        if !self.cfg.peers.is_empty() {
            // Push under-replicated files to the first peers in the
            // (deterministic) peer order; acks raise the replica count.
            let mut pushes: Vec<(u64, FileMsg)> = Vec::new();
            let mut names: Vec<&String> = self
                .files
                .iter()
                .filter(|(_, s)| s.replicas < self.cfg.replication_factor)
                .map(|(n, _)| n)
                .collect();
            names.sort();
            for name in names {
                let s = &self.files[name];
                let needed = self.cfg.replication_factor - s.replicas;
                for &peer in self.cfg.peers.iter().take(needed) {
                    pushes.push((
                        endpoint_key(peer),
                        FileMsg::ReplicaPush {
                            lifn: name.clone(),
                            content: s.content.clone(),
                            hash: Bytes::copy_from_slice(&s.hash),
                        },
                    ));
                }
            }
            for (key, msg) in pushes {
                self.reliable_send(ctx, key, &msg);
            }
        }
        ctx.set_timer(self.cfg.replicate_interval, TIMER_REPLICATE);
    }
}

impl PortableActor for FileServerActor {
    fn on_event(&mut self, ctx: &mut dyn SimCtx, event: Event) {
        match event {
            Event::Start | Event::HostUp => {
                if self.stack.is_none() {
                    let me = ctx.me();
                    let mut stack = WireStack::new(endpoint_key(me), StackConfig::default());
                    for &peer in &self.cfg.peers {
                        stack.set_peer(endpoint_key(peer), peer, vec![]);
                    }
                    self.stack = Some(stack);
                } else if matches!(event, Event::HostUp) {
                    // Reboot: pending timers were swallowed while the
                    // host was down; kick every transport awake.
                    let now = ctx.now();
                    if let Some(stack) = self.stack.as_mut() {
                        stack.on_host_up(now);
                    }
                    let delivered = self.flush_stack(ctx);
                    for (from_key, from_ep, msg) in delivered {
                        self.handle_file_msg(ctx, from_key, from_ep, msg);
                    }
                }
                ctx.set_timer(self.cfg.replicate_interval, TIMER_REPLICATE);
            }
            Event::HostDown => {}
            Event::Timer { token: TIMER_REPLICATE } => self.replicate_tick(ctx),
            Event::Timer { token: TIMER_RC } => {
                self.rc_gate.fired();
                self.rc.on_timer(ctx.now());
                self.flush_rc(ctx);
            }
            Event::Timer { token: TIMER_STACK } => {
                self.stack_gate.fired();
                let now = ctx.now();
                if let Some(stack) = self.stack.as_mut() {
                    stack.on_timer(now);
                }
                let delivered = self.flush_stack(ctx);
                for (from_key, from_ep, msg) in delivered {
                    self.handle_file_msg(ctx, from_key, from_ep, msg);
                }
            }
            Event::Timer { .. } | Event::Signal { .. } => {}
            Event::Packet { from, payload } => {
                // StoreLocal from our own sinks arrives as a raw-sealed
                // loopback datagram; everything else goes through the
                // reliable stack (SRUDP) or is an RC response.
                let now = ctx.now();
                let incoming = self
                    .stack
                    .as_mut()
                    .and_then(|stack| stack.on_datagram(now, from, payload).unwrap_or_default());
                if let Some(Incoming::Raw { from, msg }) = incoming {
                    if let Ok(fmsg) = FileMsg::decode_from_bytes(msg.clone()) {
                        self.handle_raw_file_msg(ctx, from, fmsg);
                    } else {
                        self.rc.on_packet(now, from, msg);
                        self.flush_rc(ctx);
                    }
                }
                let delivered = self.flush_stack(ctx);
                for (from_key, from_ep, msg) in delivered {
                    self.handle_file_msg(ctx, from_key, from_ep, msg);
                }
            }
        }
    }
}

impl FileServerActor {
    /// Raw-path messages: sink StoreLocal (loopback) only.
    fn handle_raw_file_msg(&mut self, ctx: &mut dyn SimCtx, _from: Endpoint, msg: FileMsg) {
        if let FileMsg::StoreLocal { lifn, content } = msg {
            self.store(ctx, lifn, content);
        }
    }

    /// Reliable-path file operations.
    fn handle_file_msg(
        &mut self,
        ctx: &mut dyn SimCtx,
        from_key: u64,
        _from_ep: Endpoint,
        msg: FileMsg,
    ) {
        match msg {
            FileMsg::OpenSink { req_id, lifn } => {
                let me = ctx.me();
                let port = ctx.alloc_port(ctx.host());
                let sink = FileSinkActor::new(lifn, me);
                if let Some(ep) = ctx.spawn_portable(ctx.host(), port, Box::new(sink)) {
                    let resp = FileMsg::SinkOpened { req_id, sink: ep };
                    self.reliable_send(ctx, from_key, &resp);
                }
            }
            FileMsg::OpenSource { req_id, lifn, dest } => {
                let _ = req_id;
                let ok = if let Some(s) = self.files.get(&lifn) {
                    let port = ctx.alloc_port(ctx.host());
                    let src = FileSourceActor::new(lifn.clone(), s.content.clone(), dest);
                    ctx.spawn_portable(ctx.host(), port, Box::new(src)).is_some()
                } else {
                    false
                };
                if !ok {
                    // Report not-found via an empty last chunk.
                    let msg = FileMsg::SourceData { lifn, seq: 0, data: Bytes::new(), last: true };
                    ctx.send(dest, seal(Proto::Raw, msg.encode_to_bytes()));
                }
            }
            FileMsg::ReadReq { req_id, lifn } => {
                let resp = match self.files.get(&lifn) {
                    Some(s) => FileMsg::ReadResp {
                        req_id,
                        ok: true,
                        content: s.content.clone(),
                        hash: Bytes::copy_from_slice(&s.hash),
                    },
                    None => FileMsg::ReadResp {
                        req_id,
                        ok: false,
                        content: Bytes::new(),
                        hash: Bytes::new(),
                    },
                };
                self.reliable_send(ctx, from_key, &resp);
            }
            FileMsg::ReadStripe { req_id, lifn, offset, len } => {
                // One stripe of a striped read: the slice plus its own
                // hash, so the fetcher can verify each stripe
                // independently and re-dispatch just the bad ones.
                let resp = match self.files.get(&lifn) {
                    Some(s) if (offset as usize) < s.content.len() || offset == 0 => {
                        let start = offset as usize;
                        let end = (start + len as usize).min(s.content.len());
                        let data = s.content.slice(start..end);
                        let hash = sha256(&data);
                        FileMsg::StripeData {
                            req_id,
                            ok: true,
                            offset,
                            total_len: s.content.len() as u32,
                            data,
                            hash: Bytes::copy_from_slice(&hash),
                        }
                    }
                    _ => FileMsg::StripeData {
                        req_id,
                        ok: false,
                        offset,
                        total_len: 0,
                        data: Bytes::new(),
                        hash: Bytes::new(),
                    },
                };
                self.reliable_send(ctx, from_key, &resp);
            }
            FileMsg::StoreReq { req_id, lifn, content } => {
                self.store(ctx, lifn, content);
                let resp = FileMsg::StoreResp { req_id, ok: true };
                self.reliable_send(ctx, from_key, &resp);
            }
            FileMsg::ReplicaPush { lifn, content, hash } => {
                // Verify integrity before accepting (§2.1).
                let computed = sha256(&content);
                if computed[..] != hash[..] {
                    self.rejected_pushes += 1;
                    return;
                }
                if !self.files.contains_key(&lifn) {
                    self.store(ctx, lifn.clone(), content);
                }
                let ack = FileMsg::ReplicaAck { lifn };
                self.reliable_send(ctx, from_key, &ack);
            }
            FileMsg::ReplicaAck { lifn } => {
                if let Some(s) = self.files.get_mut(&lifn) {
                    s.replicas = (s.replicas + 1).min(self.cfg.replication_factor);
                }
            }
            FileMsg::StoreLocal { .. }
            | FileMsg::SinkOpened { .. }
            | FileMsg::Append { .. }
            | FileMsg::CloseSink
            | FileMsg::SourceData { .. }
            | FileMsg::ReadResp { .. }
            | FileMsg::StoreResp { .. }
            | FileMsg::StripeData { .. } => {}
        }
    }
}

portable_actor!(FileServerActor);
