//! File sink and source processes (§5.9).

use bytes::Bytes;

use snipe_netsim::actor::{Event, PortableActor, SimCtx};
use snipe_netsim::portable_actor;
use snipe_netsim::topology::Endpoint;
use snipe_util::codec::{WireDecode, WireEncode};
use snipe_wire::frame::{open, seal, Proto};

use crate::proto::FileMsg;

/// A file sink: accumulates [`FileMsg::Append`] chunks until
/// [`FileMsg::CloseSink`], then hands the assembled file to its parent
/// server and exits.
pub struct FileSinkActor {
    lifn: String,
    server: Endpoint,
    buf: Vec<u8>,
}

impl FileSinkActor {
    /// Sink for `lifn`, reporting to `server` when closed.
    pub fn new(lifn: String, server: Endpoint) -> FileSinkActor {
        FileSinkActor { lifn, server, buf: Vec::new() }
    }
}

impl PortableActor for FileSinkActor {
    fn on_event(&mut self, ctx: &mut dyn SimCtx, event: Event) {
        let Event::Packet { payload, .. } = event else {
            return;
        };
        let Ok((Proto::Raw, body)) = open(payload) else {
            return;
        };
        let Ok(msg) = FileMsg::decode_from_bytes(body) else {
            return;
        };
        match msg {
            FileMsg::Append { data } => self.buf.extend_from_slice(&data),
            FileMsg::CloseSink => {
                let store = FileMsg::StoreLocal {
                    lifn: std::mem::take(&mut self.lifn),
                    content: Bytes::from(std::mem::take(&mut self.buf)),
                };
                ctx.send(self.server, seal(Proto::Raw, store.encode_to_bytes()));
                let me = ctx.me();
                ctx.kill(me);
            }
            _ => {}
        }
    }
}

/// Chunk size used by file sources.
pub const SOURCE_CHUNK: usize = 1024;

/// A file source: streams a file's content to a destination endpoint as
/// a series of [`FileMsg::SourceData`] messages, then exits.
pub struct FileSourceActor {
    lifn: String,
    content: Bytes,
    dest: Endpoint,
    next: usize,
}

impl FileSourceActor {
    /// Source streaming `content` (named `lifn`) to `dest`.
    pub fn new(lifn: String, content: Bytes, dest: Endpoint) -> FileSourceActor {
        FileSourceActor { lifn, content, dest, next: 0 }
    }
}

impl PortableActor for FileSourceActor {
    fn on_event(&mut self, ctx: &mut dyn SimCtx, event: Event) {
        match event {
            Event::Start | Event::Timer { .. } => {
                // Send a bounded burst per tick to avoid swamping the
                // destination, then re-arm.
                for _ in 0..8 {
                    let start = self.next * SOURCE_CHUNK;
                    if start >= self.content.len() && !(self.content.is_empty() && self.next == 0) {
                        let me = ctx.me();
                        ctx.kill(me);
                        return;
                    }
                    let end = (start + SOURCE_CHUNK).min(self.content.len());
                    let last = end == self.content.len();
                    let msg = FileMsg::SourceData {
                        lifn: self.lifn.clone(),
                        seq: self.next as u32,
                        data: self.content.slice(start..end),
                        last,
                    };
                    ctx.send(self.dest, seal(Proto::Raw, msg.encode_to_bytes()));
                    self.next += 1;
                    if last {
                        let me = ctx.me();
                        ctx.kill(me);
                        return;
                    }
                }
                ctx.set_timer(snipe_util::time::SimDuration::from_micros(500), 1);
            }
            _ => {}
        }
    }
}

portable_actor!(FileSinkActor);
portable_actor!(FileSourceActor);
