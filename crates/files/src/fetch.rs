//! Striped, performance-aware file reads.
//!
//! A large file read does not have to come from one replica: the RC
//! catalog names several holders, and the wire layer already measures
//! per-peer RTT EWMAs for its own failover decisions. This module
//! reuses those measurements to *rank* replicas and then stripes the
//! transfer across the best few — each stripe is fetched with its own
//! integrity hash, verified independently, and re-dispatched to the
//! next-best replica if it times out, fails, or arrives corrupt.
//!
//! [`StripedFetch`] is the sans-IO state machine (fully unit-testable);
//! [`FetchActor`] wraps it with a [`WireStack`] so it runs on both the
//! serial and sharded engines.

use std::collections::HashMap;

use bytes::Bytes;

use snipe_crypto::sha256::sha256;
use snipe_netsim::actor::{Event, PortableActor, SimCtx, TimerGate};
use snipe_netsim::portable_actor;
use snipe_netsim::topology::Endpoint;
use snipe_util::codec::{WireDecode, WireEncode};
use snipe_util::time::{SimDuration, SimTime};
use snipe_wire::path::UNMEASURED_RTT_SCORE;
use snipe_wire::stack::{endpoint_key, Incoming, StackConfig, WireStack};
use snipe_wire::Out;

use crate::proto::FileMsg;

/// Order replica candidates by measured path quality: lowest
/// [`WireStack::peer_score`] first (smoothed RTT plus failure
/// penalties), unmeasured peers at the neutral prior, ties broken by
/// endpoint so the ranking is deterministic.
pub fn rank_replicas(stack: &WireStack, candidates: &[Endpoint]) -> Vec<Endpoint> {
    let mut ranked: Vec<(f64, Endpoint)> = candidates
        .iter()
        .map(|&ep| (stack.peer_score(endpoint_key(ep)).unwrap_or(UNMEASURED_RTT_SCORE), ep))
        .collect();
    ranked.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| (a.1.host.0, a.1.port).cmp(&(b.1.host.0, b.1.port)))
    });
    ranked.into_iter().map(|(_, ep)| ep).collect()
}

/// Counters a striped fetch accumulates (diagnostics and oracles).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FetchStats {
    /// Stripe requests sent (including re-dispatches).
    pub requests_sent: u64,
    /// Stripes completed and verified.
    pub stripes_completed: u64,
    /// Stripe requests that timed out and were re-dispatched.
    pub timeouts: u64,
    /// Stripes rejected for hash/offset/length mismatch.
    pub integrity_rejects: u64,
    /// Replies from a replica other than the one queried.
    pub mismatched_replies: u64,
    /// Replies for requests no longer pending.
    pub stale_replies: u64,
    /// Explicit `ok = false` replies (replica lacks the file).
    pub failed_replies: u64,
}

struct Slot {
    offset: u32,
    len: u32,
    data: Option<Bytes>,
    attempts: u32,
    next_replica: usize,
}

struct Pending {
    slot: usize,
    target: Endpoint,
    deadline: SimTime,
}

/// Default cap on per-stripe dispatch attempts. Generous because chaos
/// runs re-dispatch through long partitions; the cap only exists to
/// bound a fetch whose replicas are all permanently gone.
const DEFAULT_MAX_ATTEMPTS: u32 = 200;

/// Sans-IO striped fetch: drives stripe requests against a ranked
/// replica list, verifies every stripe, re-dispatches stragglers.
pub struct StripedFetch {
    lifn: String,
    replicas: Vec<Endpoint>,
    stripe_len: u32,
    timeout: SimDuration,
    max_attempts: u32,
    next_id: u64,
    total_len: Option<u32>,
    slots: Vec<Slot>,
    pending: HashMap<u64, Pending>,
    outbox: Vec<(Endpoint, FileMsg)>,
    /// Stripe indices in completion order — the exactly-once oracle
    /// checks this log (sorted) for loss and duplication.
    pub completions: Vec<u32>,
    result: Option<Bytes>,
    failed: bool,
    /// Counters.
    pub stats: FetchStats,
}

impl StripedFetch {
    /// A fetch of `lifn` striped over `replicas` (best first).
    pub fn new(
        lifn: impl Into<String>,
        replicas: Vec<Endpoint>,
        stripe_len: u32,
        timeout: SimDuration,
    ) -> StripedFetch {
        assert!(!replicas.is_empty(), "striped fetch needs at least one replica");
        assert!(stripe_len > 0, "stripe length must be positive");
        StripedFetch {
            lifn: lifn.into(),
            replicas,
            stripe_len,
            timeout,
            max_attempts: DEFAULT_MAX_ATTEMPTS,
            next_id: 1,
            total_len: None,
            slots: Vec::new(),
            pending: HashMap::new(),
            outbox: Vec::new(),
            completions: Vec::new(),
            result: None,
            failed: false,
            stats: FetchStats::default(),
        }
    }

    /// Cap per-stripe dispatch attempts.
    pub fn with_max_attempts(mut self, n: u32) -> StripedFetch {
        self.max_attempts = n.max(1);
        self
    }

    /// Re-order the replica preference list (e.g. after fresh RTT
    /// measurements). Indices held by in-flight slots keep rotating
    /// over the new order.
    pub fn rank_hint(&mut self, ranked: Vec<Endpoint>) {
        if !ranked.is_empty() {
            self.replicas = ranked;
        }
    }

    /// The assembled, verified content once every stripe landed.
    pub fn result(&self) -> Option<&Bytes> {
        self.result.as_ref()
    }

    /// Did the fetch give up (a stripe exhausted its attempts)?
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Finished, one way or the other?
    pub fn done(&self) -> bool {
        self.result.is_some() || self.failed
    }

    /// Requests to put on the wire (reliable path).
    pub fn drain_outbox(&mut self) -> Vec<(Endpoint, FileMsg)> {
        std::mem::take(&mut self.outbox)
    }

    /// Earliest pending-stripe deadline.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.pending.values().map(|p| p.deadline).min()
    }

    /// Kick off the fetch: stripe 0 goes to the best replica; its
    /// reply carries the total length that shapes the fan-out.
    pub fn start(&mut self, now: SimTime) {
        if !self.slots.is_empty() {
            return;
        }
        self.slots.push(Slot {
            offset: 0,
            len: self.stripe_len,
            data: None,
            attempts: 0,
            next_replica: 0,
        });
        self.dispatch(now, 0);
    }

    fn dispatch(&mut self, now: SimTime, slot_idx: usize) {
        let n = self.replicas.len();
        let slot = &mut self.slots[slot_idx];
        if slot.attempts >= self.max_attempts {
            self.failed = true;
            return;
        }
        slot.attempts += 1;
        let target = self.replicas[slot.next_replica % n];
        slot.next_replica = (slot.next_replica + 1) % n;
        let req_id = self.next_id;
        self.next_id += 1;
        let (offset, len) = (slot.offset, slot.len);
        self.pending
            .insert(req_id, Pending { slot: slot_idx, target, deadline: now + self.timeout });
        self.outbox
            .push((target, FileMsg::ReadStripe { req_id, lifn: self.lifn.clone(), offset, len }));
        self.stats.requests_sent += 1;
    }

    /// Re-dispatch every stripe whose request passed its deadline. The
    /// stale request stays forgotten: a late reply counts as stale.
    pub fn on_timer(&mut self, now: SimTime) {
        let expired: Vec<u64> =
            self.pending.iter().filter(|(_, p)| p.deadline <= now).map(|(&id, _)| id).collect();
        for id in expired {
            let p = self.pending.remove(&id).expect("collected above");
            self.stats.timeouts += 1;
            if self.slots[p.slot].data.is_none() && !self.done() {
                self.dispatch(now, p.slot);
            }
        }
    }

    /// Feed a reply from the wire. Non-stripe messages are ignored.
    pub fn on_msg(&mut self, now: SimTime, from: Endpoint, msg: FileMsg) {
        let FileMsg::StripeData { req_id, ok, offset, total_len, data, hash } = msg else {
            return;
        };
        let Some(p) = self.pending.get(&req_id) else {
            self.stats.stale_replies += 1;
            return;
        };
        if p.target != from {
            // Forged or misrouted: only the replica we queried may
            // answer this ticket. Keep waiting for the real one.
            self.stats.mismatched_replies += 1;
            return;
        }
        let slot_idx = p.slot;
        self.pending.remove(&req_id);
        if self.slots[slot_idx].data.is_some() {
            // A straggler's re-dispatch already landed this stripe.
            self.stats.stale_replies += 1;
            return;
        }
        if !ok {
            self.stats.failed_replies += 1;
            self.dispatch(now, slot_idx);
            return;
        }
        // Verify before trusting: echoed offset, per-stripe hash, and
        // a length consistent with the (agreed) total.
        let slot_offset = self.slots[slot_idx].offset;
        let computed = sha256(&data);
        let total = self.total_len.unwrap_or(total_len);
        let expected_len = total.saturating_sub(slot_offset).min(self.stripe_len) as usize;
        if offset != slot_offset
            || computed[..] != hash[..]
            || total_len != total
            || data.len() != expected_len
        {
            self.stats.integrity_rejects += 1;
            self.dispatch(now, slot_idx);
            return;
        }
        let first = self.total_len.is_none();
        self.total_len = Some(total);
        self.slots[slot_idx].data = Some(data);
        self.completions.push(slot_idx as u32);
        self.stats.stripes_completed += 1;
        if first {
            self.fan_out(now, total);
        }
        if self.slots.iter().all(|s| s.data.is_some()) {
            let mut out = Vec::with_capacity(total as usize);
            for s in &self.slots {
                out.extend_from_slice(s.data.as_ref().expect("all complete"));
            }
            self.result = Some(Bytes::from(out));
            self.pending.clear();
        }
    }

    /// First stripe told us the file size: create the remaining slots
    /// and spray them round-robin over the ranked replicas.
    fn fan_out(&mut self, now: SimTime, total: u32) {
        let n_slots = if total == 0 { 1 } else { total.div_ceil(self.stripe_len) as usize };
        let n_replicas = self.replicas.len();
        for i in 1..n_slots {
            self.slots.push(Slot {
                offset: i as u32 * self.stripe_len,
                len: self.stripe_len,
                data: None,
                attempts: 0,
                next_replica: i % n_replicas,
            });
        }
        for i in 1..n_slots {
            self.dispatch(now, i);
        }
    }
}

const TIMER_STACK: u64 = 1;
const TIMER_FETCH: u64 = 2;
const TIMER_BEGIN: u64 = 3;

/// Portable actor that runs one [`StripedFetch`] over a [`WireStack`].
/// It stays alive after completion so harnesses can read the result
/// back via `actor_ref`/`portable_ref`.
pub struct FetchActor {
    lifn: String,
    candidates: Vec<Endpoint>,
    start_after: SimDuration,
    stripe_len: u32,
    timeout: SimDuration,
    fetch: Option<StripedFetch>,
    stack: Option<WireStack>,
    stack_gate: TimerGate,
    fetch_gate: TimerGate,
    /// Assembled content once every stripe verified.
    pub result: Option<Bytes>,
    /// Stripe completion log (exactly-once oracle input).
    pub completions: Vec<u32>,
    /// Counters snapshot.
    pub stats: FetchStats,
    /// Fetch gave up.
    pub failed: bool,
}

impl FetchActor {
    /// Fetch `lifn` from `candidates`, starting `start_after` into the
    /// run (gives the catalog time to settle in chaos scenarios).
    pub fn new(
        lifn: impl Into<String>,
        candidates: Vec<Endpoint>,
        stripe_len: u32,
        start_after: SimDuration,
    ) -> FetchActor {
        FetchActor {
            lifn: lifn.into(),
            candidates,
            start_after,
            stripe_len,
            timeout: SimDuration::from_millis(400),
            fetch: None,
            stack: None,
            stack_gate: TimerGate::new(),
            fetch_gate: TimerGate::new(),
            result: None,
            completions: Vec::new(),
            stats: FetchStats::default(),
            failed: false,
        }
    }

    /// Override the per-stripe timeout.
    pub fn with_timeout(mut self, t: SimDuration) -> FetchActor {
        self.timeout = t;
        self
    }

    fn pump(&mut self, ctx: &mut dyn SimCtx) {
        let now = ctx.now();
        loop {
            let (Some(stack), Some(fetch)) = (self.stack.as_mut(), self.fetch.as_mut()) else {
                return;
            };
            fetch.rank_hint(rank_replicas(stack, &self.candidates));
            let sends = fetch.drain_outbox();
            let had_sends = !sends.is_empty();
            for (to, msg) in sends {
                stack
                    .send(now, endpoint_key(to), msg.encode_to_bytes())
                    .expect("stripe request fits default frag");
            }
            let mut delivered = Vec::new();
            for o in stack.drain() {
                match o {
                    Out::Send { to, via, bytes, .. } => match via {
                        Some(n) => ctx.send_via(to, bytes, n),
                        None => ctx.send(to, bytes),
                    },
                    Out::Deliver { from_ep, msg, .. } => {
                        if let Ok(m) = FileMsg::decode_from_bytes(msg) {
                            delivered.push((from_ep, m));
                        }
                    }
                    Out::Wake { .. } => {}
                }
            }
            let had_deliveries = !delivered.is_empty();
            for (from, m) in delivered {
                if let Some(f) = self.fetch.as_mut() {
                    f.on_msg(now, from, m);
                }
            }
            if !had_sends && !had_deliveries {
                break;
            }
        }
        if let Some(stack) = self.stack.as_ref() {
            if let Some(dl) = stack.next_deadline() {
                self.stack_gate.arm_at(ctx, dl + SimDuration::from_micros(1), TIMER_STACK);
            }
        }
        if let Some(fetch) = self.fetch.as_ref() {
            if let Some(dl) = fetch.next_deadline() {
                self.fetch_gate.arm_at(ctx, dl + SimDuration::from_micros(1), TIMER_FETCH);
            }
            // Mirror progress into the readback fields.
            self.completions = fetch.completions.clone();
            self.stats = fetch.stats;
            self.failed = fetch.is_failed();
            if self.result.is_none() {
                self.result = fetch.result().cloned();
            }
        }
    }
}

impl PortableActor for FetchActor {
    fn on_event(&mut self, ctx: &mut dyn SimCtx, event: Event) {
        match event {
            Event::Start => {
                let me = ctx.me();
                let mut stack = WireStack::new(endpoint_key(me), StackConfig::default());
                for &peer in &self.candidates {
                    stack.set_peer(endpoint_key(peer), peer, vec![]);
                }
                self.stack = Some(stack);
                ctx.set_timer(self.start_after, TIMER_BEGIN);
            }
            Event::HostUp => {
                let now = ctx.now();
                if let Some(stack) = self.stack.as_mut() {
                    stack.on_host_up(now);
                }
                self.pump(ctx);
            }
            Event::Timer { token: TIMER_BEGIN } => {
                if self.fetch.is_none() {
                    let ranked = match self.stack.as_ref() {
                        Some(stack) => rank_replicas(stack, &self.candidates),
                        None => self.candidates.clone(),
                    };
                    let mut fetch =
                        StripedFetch::new(self.lifn.clone(), ranked, self.stripe_len, self.timeout);
                    fetch.start(ctx.now());
                    self.fetch = Some(fetch);
                    self.pump(ctx);
                }
            }
            Event::Timer { token: TIMER_STACK } => {
                self.stack_gate.fired();
                let now = ctx.now();
                if let Some(stack) = self.stack.as_mut() {
                    stack.on_timer(now);
                }
                self.pump(ctx);
            }
            Event::Timer { token: TIMER_FETCH } => {
                self.fetch_gate.fired();
                let now = ctx.now();
                if let Some(fetch) = self.fetch.as_mut() {
                    fetch.on_timer(now);
                }
                self.pump(ctx);
            }
            Event::Packet { from, payload } => {
                let now = ctx.now();
                let incoming = self
                    .stack
                    .as_mut()
                    .and_then(|stack| stack.on_datagram(now, from, payload).unwrap_or_default());
                // Raw datagrams are not part of the stripe protocol.
                let _ = matches!(incoming, Some(Incoming::Raw { .. }));
                self.pump(ctx);
            }
            Event::Timer { .. } | Event::HostDown | Event::Signal { .. } => {}
        }
    }
}

portable_actor!(FetchActor);

#[cfg(test)]
mod tests {
    use super::*;
    use snipe_util::id::HostId;

    fn ep(i: u32) -> Endpoint {
        Endpoint { host: HostId(i), port: 7100 }
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(0) + SimDuration::from_millis(ms)
    }

    fn reply_for(req: &FileMsg, content: &Bytes, stripe_len: u32) -> FileMsg {
        let FileMsg::ReadStripe { req_id, offset, .. } = req else {
            panic!("expected ReadStripe, got {req:?}");
        };
        let start = *offset as usize;
        let end = (start + stripe_len as usize).min(content.len());
        let data = content.slice(start..end);
        let hash = Bytes::copy_from_slice(&sha256(&data));
        FileMsg::StripeData {
            req_id: *req_id,
            ok: true,
            offset: *offset,
            total_len: content.len() as u32,
            data,
            hash,
        }
    }

    fn content(n: usize) -> Bytes {
        Bytes::from((0..n).map(|i| (i * 7 + 13) as u8).collect::<Vec<u8>>())
    }

    #[test]
    fn single_stripe_fetch_completes() {
        let body = content(40);
        let mut f = StripedFetch::new("lifn:a", vec![ep(1)], 64, SimDuration::from_millis(100));
        f.start(t(0));
        let sends = f.drain_outbox();
        assert_eq!(sends.len(), 1);
        assert_eq!(sends[0].0, ep(1));
        f.on_msg(t(1), ep(1), reply_for(&sends[0].1, &body, 64));
        assert_eq!(f.result(), Some(&body));
        assert_eq!(f.completions, vec![0]);
        assert!(f.done() && !f.is_failed());
    }

    #[test]
    fn multi_stripe_fans_out_and_assembles_out_of_order() {
        let body = content(300);
        let replicas = vec![ep(1), ep(2), ep(3)];
        let mut f = StripedFetch::new("lifn:b", replicas, 128, SimDuration::from_millis(100));
        f.start(t(0));
        let first = f.drain_outbox();
        assert_eq!(first.len(), 1);
        f.on_msg(t(1), first[0].0, reply_for(&first[0].1, &body, 128));
        // 300 bytes / 128 ⇒ 3 stripes; two more go out, spread over
        // distinct replicas.
        let rest = f.drain_outbox();
        assert_eq!(rest.len(), 2);
        assert_ne!(rest[0].0, rest[1].0);
        // Answer out of order.
        f.on_msg(t(2), rest[1].0, reply_for(&rest[1].1, &body, 128));
        f.on_msg(t(3), rest[0].0, reply_for(&rest[0].1, &body, 128));
        assert_eq!(f.result(), Some(&body));
        assert_eq!(f.stats.stripes_completed, 3);
        let mut sorted = f.completions.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn straggler_redispatches_to_next_replica_and_late_reply_is_stale() {
        let body = content(50);
        let mut f =
            StripedFetch::new("lifn:c", vec![ep(1), ep(2)], 64, SimDuration::from_millis(100));
        f.start(t(0));
        let first = f.drain_outbox();
        assert_eq!(first[0].0, ep(1));
        // Past the deadline: re-dispatch goes to the other replica.
        f.on_timer(t(200));
        assert_eq!(f.stats.timeouts, 1);
        let second = f.drain_outbox();
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].0, ep(2));
        // The original reply limps in late: dropped as stale.
        f.on_msg(t(210), ep(1), reply_for(&first[0].1, &body, 64));
        assert_eq!(f.stats.stale_replies, 1);
        assert!(f.result().is_none());
        f.on_msg(t(220), ep(2), reply_for(&second[0].1, &body, 64));
        assert_eq!(f.result(), Some(&body));
    }

    #[test]
    fn corrupt_stripe_is_rejected_and_refetched() {
        let body = content(40);
        let mut f =
            StripedFetch::new("lifn:d", vec![ep(1), ep(2)], 64, SimDuration::from_millis(100));
        f.start(t(0));
        let first = f.drain_outbox();
        let FileMsg::ReadStripe { req_id, .. } = first[0].1 else { panic!() };
        // Right hash, wrong bytes? No — wrong hash for the bytes.
        let bad = FileMsg::StripeData {
            req_id,
            ok: true,
            offset: 0,
            total_len: 40,
            data: body.clone(),
            hash: Bytes::from_static(&[0u8; 32]),
        };
        f.on_msg(t(1), ep(1), bad);
        assert_eq!(f.stats.integrity_rejects, 1);
        let retry = f.drain_outbox();
        assert_eq!(retry.len(), 1);
        assert_eq!(retry[0].0, ep(2));
        f.on_msg(t(2), ep(2), reply_for(&retry[0].1, &body, 64));
        assert_eq!(f.result(), Some(&body));
    }

    #[test]
    fn reply_from_wrong_replica_is_dropped() {
        let body = content(40);
        let mut f =
            StripedFetch::new("lifn:e", vec![ep(1), ep(2)], 64, SimDuration::from_millis(100));
        f.start(t(0));
        let first = f.drain_outbox();
        assert_eq!(first[0].0, ep(1));
        // A forged reply from a replica we never asked.
        f.on_msg(t(1), ep(2), reply_for(&first[0].1, &body, 64));
        assert_eq!(f.stats.mismatched_replies, 1);
        assert!(f.result().is_none());
        // The real one still completes the ticket.
        f.on_msg(t(2), ep(1), reply_for(&first[0].1, &body, 64));
        assert_eq!(f.result(), Some(&body));
    }

    #[test]
    fn not_found_reply_fails_over() {
        let body = content(40);
        let mut f =
            StripedFetch::new("lifn:f", vec![ep(1), ep(2)], 64, SimDuration::from_millis(100));
        f.start(t(0));
        let first = f.drain_outbox();
        let FileMsg::ReadStripe { req_id, .. } = first[0].1 else { panic!() };
        let miss = FileMsg::StripeData {
            req_id,
            ok: false,
            offset: 0,
            total_len: 0,
            data: Bytes::new(),
            hash: Bytes::new(),
        };
        f.on_msg(t(1), ep(1), miss);
        assert_eq!(f.stats.failed_replies, 1);
        let retry = f.drain_outbox();
        assert_eq!(retry[0].0, ep(2));
        f.on_msg(t(2), ep(2), reply_for(&retry[0].1, &body, 64));
        assert_eq!(f.result(), Some(&body));
    }

    #[test]
    fn fetch_gives_up_after_max_attempts() {
        let mut f = StripedFetch::new("lifn:g", vec![ep(1)], 64, SimDuration::from_millis(100))
            .with_max_attempts(3);
        f.start(t(0));
        for round in 1..=3 {
            let _ = f.drain_outbox();
            f.on_timer(t(200 * round));
        }
        assert!(f.is_failed() && f.done());
        assert_eq!(f.stats.timeouts, 3);
    }

    #[test]
    fn unmeasured_ranking_is_deterministic_by_endpoint() {
        let me = Endpoint { host: HostId(99), port: 7100 };
        let stack = WireStack::new(endpoint_key(me), StackConfig::default());
        let ranked = rank_replicas(&stack, &[ep(3), ep(1), ep(2)]);
        assert_eq!(ranked, vec![ep(1), ep(2), ep(3)]);
    }
}
