//! Offline stand-in for the [`bytes`](https://docs.rs/bytes) crate.
//!
//! The build environment for this repository has no access to a crate
//! registry, so the handful of external dependencies are vendored as
//! minimal API-compatible implementations. This crate provides the
//! subset of `bytes` 1.x the workspace actually uses:
//!
//! * [`Bytes`] — an immutable, cheaply cloneable, sliceable byte
//!   buffer (reference counting via `Arc`, zero-copy `slice`/`split_to`,
//!   allocation-free `from_static` and `clone`);
//! * [`BytesMut`] — a growable buffer that freezes into [`Bytes`];
//! * [`Buf`] / [`BufMut`] — the big-endian cursor read/write traits.
//!
//! Semantics follow the real crate where the workspace depends on them
//! (content equality/hashing, FIFO `split_to`, BE integer encoding).

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// Shared immutable storage: either borrowed `'static` memory (so
/// `Bytes::from_static` and `Bytes::new` never allocate) or an
/// `Arc`-owned heap buffer.
#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Repr {
    #[inline]
    fn as_slice(&self) -> &[u8] {
        match self {
            Repr::Static(s) => s,
            Repr::Shared(a) => a,
        }
    }
}

/// A cheaply cloneable, immutable slice of contiguous memory.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    #[inline]
    pub const fn new() -> Bytes {
        Bytes { repr: Repr::Static(&[]), start: 0, end: 0 }
    }

    /// Wrap borrowed static memory (no allocation, clones are free).
    #[inline]
    pub const fn from_static(s: &'static [u8]) -> Bytes {
        Bytes { repr: Repr::Static(s), start: 0, end: s.len() }
    }

    /// Copy a slice into a new shared buffer.
    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Is the buffer empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    #[inline]
    fn as_slice(&self) -> &[u8] {
        &self.repr.as_slice()[self.start..self.end]
    }

    /// A zero-copy sub-slice sharing the same storage.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice {begin}..{end} out of bounds of {len}");
        Bytes { repr: self.repr.clone(), start: self.start + begin, end: self.start + end }
    }

    /// Split off and return the first `at` bytes, advancing `self` past
    /// them (zero-copy).
    ///
    /// # Panics
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to {at} out of bounds of {}", self.len());
        let head = Bytes { repr: self.repr.clone(), start: self.start, end: self.start + at };
        self.start += at;
        head
    }

    /// Split off and return the bytes after `at`, truncating `self` to
    /// the first `at` bytes (zero-copy).
    ///
    /// # Panics
    /// Panics if `at > len`.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_off {at} out of bounds of {}", self.len());
        let tail = Bytes { repr: self.repr.clone(), start: self.start + at, end: self.end };
        self.end = self.start + at;
        tail
    }

    /// Shorten the buffer to `len` bytes (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        if len < self.len() {
            self.end = self.start + len;
        }
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    #[inline]
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    #[inline]
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes { repr: Repr::Shared(Arc::from(v)), start: 0, end }
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Bytes {
        let end = v.len();
        Bytes { repr: Repr::Shared(Arc::from(v)), start: 0, end }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(s: &'static [u8; N]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Vec<u8> {
        b.to_vec()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
    /// Read cursor for the `Buf` impl.
    read: usize,
}

impl BytesMut {
    /// Empty buffer.
    #[inline]
    pub fn new() -> BytesMut {
        BytesMut { buf: Vec::new(), read: 0 }
    }

    /// Empty buffer with reserved capacity.
    #[inline]
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { buf: Vec::with_capacity(cap), read: 0 }
    }

    /// Unread length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len() - self.read
    }

    /// Is the buffer empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    /// Reserve space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Convert into an immutable [`Bytes`] (consumes the buffer).
    pub fn freeze(mut self) -> Bytes {
        if self.read > 0 {
            self.buf.drain(..self.read);
        }
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.buf[self.read..]
    }
}

impl AsRef<[u8]> for BytesMut {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self
    }
}

/// Big-endian cursor reads over a byte buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Advance the read cursor.
    fn advance(&mut self, cnt: usize);

    /// Any bytes left?
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copy bytes out, advancing.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Read a big-endian `i64`.
    fn get_i64(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_be_bytes(b)
    }

    /// Read a big-endian IEEE-754 `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for Bytes {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }
    #[inline]
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    #[inline]
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance {cnt} out of bounds of {}", self.len());
        self.start += cnt;
    }
}

impl Buf for BytesMut {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }
    #[inline]
    fn chunk(&self) -> &[u8] {
        self
    }
    #[inline]
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance {cnt} out of bounds of {}", self.len());
        self.read += cnt;
    }
}

impl Buf for &[u8] {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }
    #[inline]
    fn chunk(&self) -> &[u8] {
        self
    }
    #[inline]
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Big-endian appends to a growable byte buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, s: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian IEEE-754 `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for BytesMut {
    #[inline]
    fn put_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    #[inline]
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_and_clone_share_storage() {
        let b = Bytes::from_static(b"hello world");
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(&b[..5], b"hello");
    }

    #[test]
    fn slice_and_split_are_zero_copy_views() {
        let mut b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4, 5]);
        let s = b.slice(1..3);
        assert_eq!(&s[..], &[4, 5]);
        let tail = b.split_off(1);
        assert_eq!(&b[..], &[3]);
        assert_eq!(&tail[..], &[4, 5]);
    }

    #[test]
    fn buf_round_trip_big_endian() {
        let mut m = BytesMut::with_capacity(32);
        m.put_u8(7);
        m.put_u16(0xBEEF);
        m.put_u32(0xDEAD_BEEF);
        m.put_u64(42);
        m.put_i64(-42);
        m.put_f64(1.5);
        let mut b = m.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16(), 0xBEEF);
        assert_eq!(b.get_u32(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64(), 42);
        assert_eq!(b.get_i64(), -42);
        assert_eq!(b.get_f64(), 1.5);
        assert!(!b.has_remaining());
    }

    #[test]
    fn content_equality_and_hash() {
        use std::collections::HashSet;
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = Bytes::from_static(&[1, 2, 3]);
        assert_eq!(a, b);
        let mut s = HashSet::new();
        s.insert(a);
        assert!(s.contains(&b));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn split_past_end_panics() {
        let mut b = Bytes::from_static(b"ab");
        let _ = b.split_to(3);
    }
}
