//! Resource manager protocol messages.

use bytes::Bytes;

use snipe_netsim::topology::Endpoint;
use snipe_util::codec::{Decoder, Encoder, WireDecode, WireEncode};
use snipe_util::error::{SnipeError, SnipeResult};
use snipe_util::id::HostId;

use snipe_daemon::proto::SpawnSpec;

/// Passive reservation vs active proxy allocation (§3.5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocMode {
    /// Reserve capacity; the caller spawns via the daemons itself.
    Passive,
    /// The RM spawns on the caller's behalf and returns live endpoints.
    Active,
}

/// One granted allocation.
#[derive(Clone, Debug, PartialEq)]
pub struct Allocation {
    /// Chosen host's name.
    pub hostname: String,
    /// The host's daemon endpoint (always valid).
    pub daemon: Endpoint,
    /// Spawned task endpoint (active mode only; port 0 otherwise).
    pub task: Endpoint,
    /// Spawned task's process key (active mode only; 0 otherwise).
    pub proc_key: u64,
}

fn put_ep(enc: &mut Encoder, ep: Endpoint) {
    enc.put_u32(ep.host.0);
    enc.put_u16(ep.port);
}

fn get_ep(dec: &mut Decoder) -> SnipeResult<Endpoint> {
    Ok(Endpoint::new(HostId(dec.get_u32()?), dec.get_u16()?))
}

impl WireEncode for Allocation {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.hostname);
        put_ep(enc, self.daemon);
        put_ep(enc, self.task);
        enc.put_u64(self.proc_key);
    }
}

impl WireDecode for Allocation {
    fn decode(dec: &mut Decoder) -> SnipeResult<Self> {
        Ok(Allocation {
            hostname: dec.get_str()?,
            daemon: get_ep(dec)?,
            task: get_ep(dec)?,
            proc_key: dec.get_u64()?,
        })
    }
}

/// RM wire messages (Raw-sealed on the RM port).
#[derive(Clone, Debug, PartialEq)]
pub enum RmMsg {
    /// Request `count` resources matching `spec`.
    AllocReq {
        /// Echoed id.
        req_id: u64,
        /// Requirements + program (program used in active mode).
        spec: SpawnSpec,
        /// How many tasks/hosts.
        count: u32,
        /// Passive or active.
        mode: AllocMode,
    },
    /// Allocation outcome.
    AllocResp {
        /// Echoed id.
        req_id: u64,
        /// All `count` allocations succeeded?
        ok: bool,
        /// Granted allocations (possibly partial on !ok).
        allocations: Vec<Allocation>,
        /// Failure description.
        error: String,
    },
    /// §4 dual-certificate authorization request.
    AuthReq {
        /// Echoed id.
        req_id: u64,
        /// Encoded user certificate granting the process access.
        user_cert: Bytes,
        /// Encoded host certificate vouching for the requesting process.
        host_cert: Bytes,
        /// The resource being requested (hostname or URI).
        resource: String,
    },
    /// Authorization outcome: a certificate signed by the RM.
    AuthResp {
        /// Echoed id.
        req_id: u64,
        /// Granted?
        ok: bool,
        /// Encoded authorization certificate (when ok).
        grant: Bytes,
        /// Failure description.
        error: String,
    },
    /// Active-mode task control: suspend/kill relayed to the daemon.
    TaskControl {
        /// Target daemon.
        daemon: Endpoint,
        /// Task port on that host.
        port: u16,
        /// 0 = kill, otherwise the signal number to deliver.
        signum: u32,
    },
    /// Active-mode migration (§3.5): tell the task at `task` to move to
    /// `target_host`.
    Migrate {
        /// The task's current endpoint.
        task: Endpoint,
        /// Destination hostname.
        target_host: String,
    },
}

/// Protocol magic for RM traffic.
const MAGIC: u8 = 0xA3;

const T_ALLOC_REQ: u8 = 1;
const T_ALLOC_RESP: u8 = 2;
const T_AUTH_REQ: u8 = 3;
const T_AUTH_RESP: u8 = 4;
const T_TASK_CONTROL: u8 = 5;
const T_MIGRATE: u8 = 6;

impl WireEncode for RmMsg {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(MAGIC);
        match self {
            RmMsg::AllocReq { req_id, spec, count, mode } => {
                enc.put_u8(T_ALLOC_REQ);
                enc.put_u64(*req_id);
                spec.encode(enc);
                enc.put_u32(*count);
                enc.put_u8(matches!(mode, AllocMode::Active) as u8);
            }
            RmMsg::AllocResp { req_id, ok, allocations, error } => {
                enc.put_u8(T_ALLOC_RESP);
                enc.put_u64(*req_id);
                enc.put_bool(*ok);
                snipe_util::codec::encode_seq(enc, allocations.iter());
                enc.put_str(error);
            }
            RmMsg::AuthReq { req_id, user_cert, host_cert, resource } => {
                enc.put_u8(T_AUTH_REQ);
                enc.put_u64(*req_id);
                enc.put_bytes(user_cert);
                enc.put_bytes(host_cert);
                enc.put_str(resource);
            }
            RmMsg::AuthResp { req_id, ok, grant, error } => {
                enc.put_u8(T_AUTH_RESP);
                enc.put_u64(*req_id);
                enc.put_bool(*ok);
                enc.put_bytes(grant);
                enc.put_str(error);
            }
            RmMsg::TaskControl { daemon, port, signum } => {
                enc.put_u8(T_TASK_CONTROL);
                put_ep(enc, *daemon);
                enc.put_u16(*port);
                enc.put_u32(*signum);
            }
            RmMsg::Migrate { task, target_host } => {
                enc.put_u8(T_MIGRATE);
                put_ep(enc, *task);
                enc.put_str(target_host);
            }
        }
    }
}

impl WireDecode for RmMsg {
    fn decode(dec: &mut Decoder) -> SnipeResult<Self> {
        if dec.get_u8()? != MAGIC {
            return Err(SnipeError::Codec("not an RM message".into()));
        }
        Ok(match dec.get_u8()? {
            T_ALLOC_REQ => RmMsg::AllocReq {
                req_id: dec.get_u64()?,
                spec: SpawnSpec::decode(dec)?,
                count: dec.get_u32()?,
                mode: if dec.get_u8()? == 1 { AllocMode::Active } else { AllocMode::Passive },
            },
            T_ALLOC_RESP => RmMsg::AllocResp {
                req_id: dec.get_u64()?,
                ok: dec.get_bool()?,
                allocations: snipe_util::codec::decode_seq(dec)?,
                error: dec.get_str()?,
            },
            T_AUTH_REQ => RmMsg::AuthReq {
                req_id: dec.get_u64()?,
                user_cert: dec.get_bytes()?,
                host_cert: dec.get_bytes()?,
                resource: dec.get_str()?,
            },
            T_AUTH_RESP => RmMsg::AuthResp {
                req_id: dec.get_u64()?,
                ok: dec.get_bool()?,
                grant: dec.get_bytes()?,
                error: dec.get_str()?,
            },
            T_TASK_CONTROL => RmMsg::TaskControl {
                daemon: get_ep(dec)?,
                port: dec.get_u16()?,
                signum: dec.get_u32()?,
            },
            T_MIGRATE => RmMsg::Migrate { task: get_ep(dec)?, target_host: dec.get_str()? },
            t => return Err(SnipeError::Codec(format!("unknown RM tag {t}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_round_trip() {
        let msgs = vec![
            RmMsg::AllocReq {
                req_id: 1,
                spec: SpawnSpec::program("w", Bytes::new()),
                count: 4,
                mode: AllocMode::Active,
            },
            RmMsg::AllocResp {
                req_id: 1,
                ok: true,
                allocations: vec![Allocation {
                    hostname: "h".into(),
                    daemon: Endpoint::new(HostId(1), 1),
                    task: Endpoint::new(HostId(1), 100),
                    proc_key: 9,
                }],
                error: String::new(),
            },
            RmMsg::AuthReq {
                req_id: 2,
                user_cert: Bytes::from_static(b"u"),
                host_cert: Bytes::from_static(b"h"),
                resource: "worker1".into(),
            },
            RmMsg::AuthResp { req_id: 2, ok: false, grant: Bytes::new(), error: "no".into() },
            RmMsg::TaskControl { daemon: Endpoint::new(HostId(2), 1), port: 100, signum: 0 },
            RmMsg::Migrate { task: Endpoint::new(HostId(2), 100), target_host: "w3".into() },
        ];
        for m in msgs {
            assert_eq!(RmMsg::decode_from_bytes(m.encode_to_bytes()).unwrap(), m);
        }
    }
}
