//! # snipe-rm — the General Resource Manager
//!
//! "Resource managers are tasked with managing resources and monitoring
//! the state of the resources they manage ... For the sake of
//! redundancy, any host may be managed by multiple resource managers.
//! ... resource management may either be 'passive' (allowing a process
//! to reserve resources on a particular host ...) or 'active' (where
//! the resource manager acts as a proxy for the requester, allocating
//! resources on its behalf). In the latter mode, a resource manager may
//! actually suspend, kill, or (if the code is mobile) migrate processes
//! between hosts" (§3.5).
//!
//! This descends from PVM's General Resource Manager (GRM, §3) —
//! "modified to allow for redundant resource management processes".
//! Unlike PVM's single resource manager (§2.2), any number of
//! [`RmActor`]s can run; they coordinate through RC metadata rather
//! than shared private state, so clients simply fail over.
//!
//! RMs are also the certificate authorities of the §4 security model:
//! [`manager::RmActor`] verifies the two certificates (user grant +
//! requesting host) and issues its own signed resource authorization.

pub mod manager;
pub mod proto;

pub use manager::{RmActor, RmConfig};
pub use proto::{AllocMode, RmMsg};
