//! The resource manager actor.
//!
//! State design: the RM keeps **no private authoritative state** — it
//! reads host descriptors and load from RC metadata (§5.2: "little is
//! hidden in internal data structures") and holds only soft caches and
//! in-flight request bookkeeping. That is what makes redundant RMs
//! trivially correct: clients fail over to any replica RM and observe
//! the same RC-backed view.

use std::collections::HashMap;

use bytes::Bytes;

use snipe_crypto::cert::{CertClaim, Certificate, TrustPurpose, TrustStore};
use snipe_crypto::sign::KeyPair;
use snipe_netsim::actor::{Event, PortableActor, SimCtx, TimerGate};
use snipe_netsim::portable_actor;
use snipe_netsim::topology::Endpoint;
use snipe_rcds::client::RcClient;
use snipe_rcds::uri::Uri;
use snipe_util::codec::{WireDecode, WireEncode};
use snipe_util::id::HostId;
use snipe_util::rng::Xoshiro256;
use snipe_util::time::{SimDuration, SimTime};
use snipe_wire::frame::{open, seal, Proto};

use snipe_daemon::proto::{DaemonMsg, SpawnSpec};

use crate::proto::{AllocMode, Allocation, RmMsg};

const TIMER_REFRESH: u64 = 1;
const TIMER_RC: u64 = 2;
const TIMER_PENDING: u64 = 3;

/// RM configuration.
#[derive(Clone)]
pub struct RmConfig {
    /// RC replicas to read host metadata from.
    pub rc_replicas: Vec<Endpoint>,
    /// How often to refresh the host cache.
    pub refresh_interval: SimDuration,
    /// Per-allocation daemon response timeout.
    pub spawn_timeout: SimDuration,
    /// Keys this RM trusts for user/host certification (§4 CA role).
    pub trust: TrustStore,
    /// Deterministic seed for this RM's signing key.
    pub key_seed: u64,
}

impl RmConfig {
    /// Defaults against the given RC replicas.
    pub fn new(rc_replicas: Vec<Endpoint>) -> RmConfig {
        RmConfig {
            rc_replicas,
            refresh_interval: SimDuration::from_secs(2),
            spawn_timeout: SimDuration::from_millis(500),
            trust: TrustStore::new(),
            key_seed: 0x524d,
        }
    }
}

/// Cached view of one managed host.
#[derive(Clone, Debug)]
struct HostInfo {
    hostname: String,
    daemon: Endpoint,
    cpu_factor: f64,
    load: f64,
    arch: String,
}

/// An allocation in progress.
struct PendingAlloc {
    client: Endpoint,
    client_req: u64,
    spec: SpawnSpec,
    want: u32,
    granted: Vec<Allocation>,
    /// daemon req id -> (hostname, daemon ep)
    outstanding: HashMap<u64, (String, Endpoint)>,
    /// Hosts already tried (avoid retrying a dead host).
    tried: Vec<String>,
    deadline: SimTime,
    retries: u32,
}

/// The resource manager actor (listens on `snipe_wire::ports::RESOURCE_MANAGER`).
pub struct RmActor {
    cfg: RmConfig,
    rc: RcClient,
    keypair: KeyPair,
    hosts: Vec<HostInfo>,
    /// Soft reservations: hostname -> count, decayed on refresh.
    reserved: HashMap<String, u32>,
    /// RC request id -> host URI being fetched.
    rc_gets: HashMap<u64, String>,
    pending: HashMap<u64, PendingAlloc>,
    rc_gate: TimerGate,
    next_id: u64,
    /// Allocations served (diagnostics).
    pub allocations_served: u64,
    /// Authorizations granted / denied (diagnostics).
    pub auth_granted: u64,
    /// Authorizations denied.
    pub auth_denied: u64,
}

impl RmActor {
    /// New RM.
    pub fn new(cfg: RmConfig) -> RmActor {
        let mut rng = Xoshiro256::seed_from_u64(cfg.key_seed);
        let keypair = KeyPair::generate_default(&mut rng);
        let rc = RcClient::new(cfg.rc_replicas.clone(), SimDuration::from_millis(250));
        RmActor {
            cfg,
            rc,
            keypair,
            hosts: Vec::new(),
            reserved: HashMap::new(),
            rc_gets: HashMap::new(),
            pending: HashMap::new(),
            rc_gate: TimerGate::new(),
            next_id: 1,
            allocations_served: 0,
            auth_granted: 0,
            auth_denied: 0,
        }
    }

    /// The RM's public key (trust anchor for daemons, §4).
    pub fn public_key(&self) -> &snipe_crypto::sign::PublicKey {
        &self.keypair.public
    }

    /// The RM's signing keypair (so worlds can pre-distribute trust).
    pub fn keypair_for_seed(seed: u64) -> KeyPair {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        KeyPair::generate_default(&mut rng)
    }

    /// Number of hosts currently cached.
    pub fn known_hosts(&self) -> usize {
        self.hosts.len()
    }

    fn send_msg(&self, ctx: &mut dyn SimCtx, to: Endpoint, msg: &RmMsg) {
        ctx.send(to, seal(Proto::Raw, msg.encode_to_bytes()));
    }

    fn flush_rc(&mut self, ctx: &mut dyn SimCtx) {
        for (to, bytes) in self.rc.drain_sends() {
            ctx.send(to, seal(Proto::Raw, bytes));
        }
        let done = self.rc.drain_done();
        for (id, result) in done {
            let Some(uri) = self.rc_gets.remove(&id) else {
                // A Find completion: schedule Gets for each found host.
                if let Ok(reply) = &result {
                    for u in &reply.uris {
                        if let Ok(parsed) = Uri::parse(u.clone()) {
                            let rid = self.rc.get(ctx.now(), &parsed);
                            self.rc_gets.insert(rid, u.clone());
                        }
                    }
                }
                continue;
            };
            let Ok(reply) = result else { continue };
            // Parse a host descriptor.
            let mut hostname = String::new();
            let mut daemon = None;
            let mut cpu_factor = 1.0;
            let mut load = 0.0;
            let mut arch = String::new();
            if let Some(rest) = uri.strip_prefix("snipe://") {
                hostname = rest.trim_end_matches('/').to_string();
            }
            for a in &reply.assertions {
                match a.name.as_str() {
                    "daemon-endpoint" => {
                        if let Some((h, p)) = a.value.split_once(':') {
                            if let (Ok(h), Ok(p)) = (h.parse::<u32>(), p.parse::<u16>()) {
                                daemon = Some(Endpoint::new(HostId(h), p));
                            }
                        }
                    }
                    "cpu-factor" => cpu_factor = a.value.parse().unwrap_or(1.0),
                    "load" => load = a.value.parse().unwrap_or(0.0),
                    "arch" => arch = a.value.clone(),
                    _ => {}
                }
            }
            if let Some(daemon) = daemon {
                match self.hosts.iter_mut().find(|h| h.hostname == hostname) {
                    Some(h) => {
                        h.daemon = daemon;
                        h.cpu_factor = cpu_factor;
                        h.load = load;
                        h.arch = arch;
                    }
                    None => self.hosts.push(HostInfo { hostname, daemon, cpu_factor, load, arch }),
                }
            }
        }
        if let Some(dl) = self.rc.next_deadline() {
            self.rc_gate.arm_at(ctx, dl + SimDuration::from_micros(1), TIMER_RC);
        }
    }

    /// Rank usable hosts for a spec: effective load ascending.
    fn select_hosts(&self, spec: &SpawnSpec, count: usize, exclude: &[String]) -> Vec<HostInfo> {
        let mut candidates: Vec<&HostInfo> = self
            .hosts
            .iter()
            .filter(|h| spec.arch.is_empty() || h.arch == spec.arch)
            .filter(|h| h.cpu_factor >= spec.min_cpu_factor)
            .filter(|h| !exclude.contains(&h.hostname))
            .collect();
        candidates.sort_by(|a, b| {
            let ea = (a.load + *self.reserved.get(&a.hostname).unwrap_or(&0) as f64) / a.cpu_factor;
            let eb = (b.load + *self.reserved.get(&b.hostname).unwrap_or(&0) as f64) / b.cpu_factor;
            ea.partial_cmp(&eb).expect("loads are finite").then(a.hostname.cmp(&b.hostname))
        });
        candidates.into_iter().take(count).cloned().collect()
    }

    fn handle_alloc(
        &mut self,
        ctx: &mut dyn SimCtx,
        from: Endpoint,
        req_id: u64,
        spec: SpawnSpec,
        count: u32,
        mode: AllocMode,
    ) {
        let chosen = self.select_hosts(&spec, count as usize, &[]);
        if chosen.len() < count as usize {
            let resp = RmMsg::AllocResp {
                req_id,
                ok: false,
                allocations: vec![],
                error: format!("only {} of {count} hosts available", chosen.len()),
            };
            self.send_msg(ctx, from, &resp);
            return;
        }
        for h in &chosen {
            *self.reserved.entry(h.hostname.clone()).or_insert(0) += 1;
        }
        match mode {
            AllocMode::Passive => {
                self.allocations_served += 1;
                let allocations = chosen
                    .iter()
                    .map(|h| Allocation {
                        hostname: h.hostname.clone(),
                        daemon: h.daemon,
                        task: Endpoint::new(h.daemon.host, 0),
                        proc_key: 0,
                    })
                    .collect();
                let resp = RmMsg::AllocResp { req_id, ok: true, allocations, error: String::new() };
                self.send_msg(ctx, from, &resp);
            }
            AllocMode::Active => {
                // Proxy: spawn on each chosen daemon.
                let alloc_id = self.next_id;
                self.next_id += 1;
                let mut outstanding = HashMap::new();
                let mut tried = Vec::new();
                for h in &chosen {
                    let did = self.next_id;
                    self.next_id += 1;
                    let msg = DaemonMsg::SpawnReq { req_id: did, spec: spec.clone() };
                    ctx.send(h.daemon, seal(Proto::Raw, msg.encode_to_bytes()));
                    outstanding.insert(did, (h.hostname.clone(), h.daemon));
                    tried.push(h.hostname.clone());
                }
                let deadline = ctx.now() + self.cfg.spawn_timeout;
                self.pending.insert(
                    alloc_id,
                    PendingAlloc {
                        client: from,
                        client_req: req_id,
                        spec,
                        want: count,
                        granted: Vec::new(),
                        outstanding,
                        tried,
                        deadline,
                        retries: 0,
                    },
                );
                ctx.set_timer(self.cfg.spawn_timeout + SimDuration::from_micros(1), TIMER_PENDING);
            }
        }
    }

    fn handle_spawn_resp(
        &mut self,
        ctx: &mut dyn SimCtx,
        did: u64,
        ok: bool,
        endpoint: Endpoint,
        proc_key: u64,
    ) {
        let Some((alloc_id, _)) = self
            .pending
            .iter()
            .find(|(_, p)| p.outstanding.contains_key(&did))
            .map(|(k, p)| (*k, p.client))
        else {
            return;
        };
        let p = self.pending.get_mut(&alloc_id).expect("found above");
        let (hostname, daemon) = p.outstanding.remove(&did).expect("contains did");
        if ok {
            p.granted.push(Allocation { hostname, daemon, task: endpoint, proc_key });
        }
        if p.granted.len() as u32 == p.want {
            let p = self.pending.remove(&alloc_id).expect("present");
            self.allocations_served += 1;
            let resp = RmMsg::AllocResp {
                req_id: p.client_req,
                ok: true,
                allocations: p.granted,
                error: String::new(),
            };
            self.send_msg(ctx, p.client, &resp);
        }
    }

    /// Timeout path: retry missing spawns on other hosts, or fail.
    fn check_pending(&mut self, ctx: &mut dyn SimCtx) {
        let now = ctx.now();
        let expired: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| p.deadline <= now && !p.outstanding.is_empty())
            .map(|(k, _)| *k)
            .collect();
        for alloc_id in expired {
            let p = self.pending.get_mut(&alloc_id).expect("expired present");
            p.outstanding.clear();
            let missing = p.want as usize - p.granted.len();
            if p.retries >= 2 {
                let p = self.pending.remove(&alloc_id).expect("present");
                let resp = RmMsg::AllocResp {
                    req_id: p.client_req,
                    ok: false,
                    allocations: p.granted,
                    error: "spawn timeout".into(),
                };
                self.send_msg(ctx, p.client, &resp);
                continue;
            }
            p.retries += 1;
            p.deadline = now + self.cfg.spawn_timeout;
            let spec = p.spec.clone();
            let tried = p.tried.clone();
            let replacement = self.select_hosts(&spec, missing, &tried);
            if replacement.len() < missing {
                let p = self.pending.remove(&alloc_id).expect("present");
                let resp = RmMsg::AllocResp {
                    req_id: p.client_req,
                    ok: false,
                    allocations: p.granted,
                    error: "no replacement hosts".into(),
                };
                self.send_msg(ctx, p.client, &resp);
                continue;
            }
            let mut new_outstanding = Vec::new();
            for h in &replacement {
                let did = self.next_id;
                self.next_id += 1;
                new_outstanding.push((did, h.hostname.clone(), h.daemon));
            }
            let p = self.pending.get_mut(&alloc_id).expect("still present");
            for (did, hostname, daemon) in &new_outstanding {
                p.outstanding.insert(*did, (hostname.clone(), *daemon));
                p.tried.push(hostname.clone());
            }
            let spec = p.spec.clone();
            for (did, _, daemon) in new_outstanding {
                let msg = DaemonMsg::SpawnReq { req_id: did, spec: spec.clone() };
                ctx.send(daemon, seal(Proto::Raw, msg.encode_to_bytes()));
            }
            ctx.set_timer(self.cfg.spawn_timeout + SimDuration::from_micros(1), TIMER_PENDING);
        }
    }

    /// §4: verify the two certificates and issue a signed authorization.
    fn handle_auth(
        &mut self,
        ctx: &mut dyn SimCtx,
        from: Endpoint,
        req_id: u64,
        user_cert: Bytes,
        host_cert: Bytes,
        resource: String,
    ) {
        let deny = |this: &mut Self, ctx: &mut dyn SimCtx, error: String| {
            this.auth_denied += 1;
            let resp = RmMsg::AuthResp { req_id, ok: false, grant: Bytes::new(), error };
            this.send_msg(ctx, from, &resp);
        };
        let user = match Certificate::decode_from_bytes(user_cert) {
            Ok(c) => c,
            Err(e) => return deny(self, ctx, format!("bad user cert: {e}")),
        };
        let host = match Certificate::decode_from_bytes(host_cert) {
            Ok(c) => c,
            Err(e) => return deny(self, ctx, format!("bad host cert: {e}")),
        };
        // "The first certificate is verified by checking the user's key
        // certificate ... the second by checking the requesting host's
        // key certificate" (§4).
        if let Err(e) = self.cfg.trust.verify(TrustPurpose::UserCertification, &user) {
            return deny(self, ctx, format!("user cert untrusted: {e}"));
        }
        if let Err(e) = self.cfg.trust.verify(TrustPurpose::HostCertification, &host) {
            return deny(self, ctx, format!("host cert untrusted: {e}"));
        }
        // The user's certificate must cover the requested resource.
        match user.claim("resources") {
            Some(r) if r == "*" || r.split(',').any(|x| x == resource) => {}
            _ => return deny(self, ctx, "user not granted this resource".into()),
        }
        // Issue our own signed authorization (the statement transmitted
        // to the hosts where the resources reside).
        self.auth_granted += 1;
        let grant = Certificate::issue(
            ctx.rng(),
            &self.keypair,
            user.subject.clone(),
            user.subject_key.clone(),
            vec![
                CertClaim { name: "allowed-hosts".into(), value: resource },
                CertClaim {
                    name: "granted-by".into(),
                    value: self.keypair.public.fingerprint_hex(),
                },
            ],
        );
        let resp = RmMsg::AuthResp {
            req_id,
            ok: true,
            grant: grant.encode_to_bytes(),
            error: String::new(),
        };
        self.send_msg(ctx, from, &resp);
    }

    fn refresh(&mut self, ctx: &mut dyn SimCtx) {
        // Decay reservations (daemon load reports supersede them).
        self.reserved.clear();
        self.rc.find(ctx.now(), "type", "host");
        self.flush_rc(ctx);
        ctx.set_timer(self.cfg.refresh_interval, TIMER_REFRESH);
    }
}

impl PortableActor for RmActor {
    fn on_event(&mut self, ctx: &mut dyn SimCtx, event: Event) {
        match event {
            Event::Start | Event::HostUp => self.refresh(ctx),
            Event::HostDown => {}
            Event::Timer { token: TIMER_REFRESH } => self.refresh(ctx),
            Event::Timer { token: TIMER_RC } => {
                self.rc_gate.fired();
                self.rc.on_timer(ctx.now());
                self.flush_rc(ctx);
            }
            Event::Timer { token: TIMER_PENDING } => self.check_pending(ctx),
            Event::Timer { .. } | Event::Signal { .. } => {}
            Event::Packet { from, payload } => {
                let Ok((Proto::Raw, body)) = open(payload) else {
                    return;
                };
                if let Ok(msg) = RmMsg::decode_from_bytes(body.clone()) {
                    match msg {
                        RmMsg::AllocReq { req_id, spec, count, mode } => {
                            self.handle_alloc(ctx, from, req_id, spec, count, mode)
                        }
                        RmMsg::AuthReq { req_id, user_cert, host_cert, resource } => {
                            self.handle_auth(ctx, from, req_id, user_cert, host_cert, resource)
                        }
                        RmMsg::TaskControl { daemon, port, signum } => {
                            let msg = if signum == 0 {
                                DaemonMsg::Kill { port }
                            } else {
                                DaemonMsg::Signal { port, signum }
                            };
                            ctx.send(daemon, seal(Proto::Raw, msg.encode_to_bytes()));
                        }
                        RmMsg::Migrate { task, target_host } => {
                            // §3.5 active mode: the RM directs a mobile
                            // process to another host; the process
                            // checkpoint/cutover machinery does the rest.
                            let mut e = snipe_util::codec::Encoder::new();
                            e.put_u8(0xAA);
                            e.put_str(&target_host);
                            ctx.send(task, seal(Proto::Raw, e.finish()));
                        }
                        RmMsg::AllocResp { .. } | RmMsg::AuthResp { .. } => {}
                    }
                    return;
                }
                if let Ok(dmsg) = DaemonMsg::decode_from_bytes(body.clone()) {
                    if let DaemonMsg::SpawnResp { req_id, ok, endpoint, proc_key, .. } = dmsg {
                        self.handle_spawn_resp(ctx, req_id, ok, endpoint, proc_key);
                    }
                    return;
                }
                self.rc.on_packet(ctx.now(), from, body);
                self.flush_rc(ctx);
            }
        }
    }
}

portable_actor!(RmActor);
