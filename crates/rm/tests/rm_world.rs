//! Integration: resource managers over the simulator — active/passive
//! allocation, load balancing, failover to redundant RMs and the §4
//! dual-certificate authorization flow.

use bytes::Bytes;
use snipe_crypto::cert::{CertClaim, Certificate, TrustPurpose, TrustStore};
use snipe_crypto::sign::KeyPair;
use snipe_daemon::proto::SpawnSpec;
use snipe_daemon::registry::ProgramRegistry;
use snipe_daemon::{DaemonActor, DaemonConfig};
use snipe_netsim::actor::{Actor, Ctx, Event, PortableActor, SimCtx};
use snipe_netsim::medium::Medium;
use snipe_netsim::topology::{Endpoint, HostCfg, Topology};
use snipe_netsim::world::World;
use snipe_rcds::server::RcServerActor;
use snipe_rm::proto::{AllocMode, RmMsg};
use snipe_rm::{RmActor, RmConfig};
use snipe_util::codec::{WireDecode, WireEncode};
use snipe_util::rng::Xoshiro256;
use snipe_util::time::SimDuration;
use snipe_wire::frame::{open, seal, Proto};
use snipe_wire::ports;
use std::sync::{Arc, Mutex};

struct Idle;
impl PortableActor for Idle {
    fn on_event(&mut self, _ctx: &mut dyn SimCtx, _event: Event) {}
}

struct Driver {
    script: Vec<(SimDuration, Endpoint, RmMsg)>,
    log: Arc<Mutex<Vec<RmMsg>>>,
}

impl Actor for Driver {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: Event) {
        match event {
            Event::Start => {
                if !self.script.is_empty() {
                    ctx.set_timer(self.script[0].0, 1);
                }
            }
            Event::Timer { .. } => {
                let (_, to, msg) = self.script.remove(0);
                ctx.send(to, seal(Proto::Raw, msg.encode_to_bytes()));
                if !self.script.is_empty() {
                    ctx.set_timer(self.script[0].0, 1);
                }
            }
            Event::Packet { payload, .. } => {
                if let Ok((Proto::Raw, body)) = open(payload) {
                    if let Ok(msg) = RmMsg::decode_from_bytes(body) {
                        self.log.lock().unwrap().push(msg);
                    }
                }
            }
            _ => {}
        }
    }
}

/// RC server + `workers` worker hosts with daemons + one RM + a client.
fn build(workers: usize, trust: TrustStore) -> (World, Endpoint, snipe_util::id::HostId) {
    let registry = ProgramRegistry::new();
    registry.register("idle", |_| Box::new(Idle));
    let mut topo = Topology::new();
    let net = topo.add_network("lan", Medium::ethernet100(), true);
    let rc_host = topo.add_host(HostCfg::named("rc0"));
    topo.attach(rc_host, net);
    let rc_ep = Endpoint::new(rc_host, ports::RC_SERVER);
    let mut worker_hosts = Vec::new();
    for i in 0..workers {
        let mut cfg = HostCfg::named(format!("w{i}"));
        cfg.cpu_factor = 1.0 + i as f64 * 0.5; // later hosts are faster
        let h = topo.add_host(cfg);
        topo.attach(h, net);
        worker_hosts.push(h);
    }
    let rm_host = topo.add_host(HostCfg::named("rm0"));
    topo.attach(rm_host, net);
    let client = topo.add_host(HostCfg::named("client"));
    topo.attach(client, net);
    let mut world = World::new(topo, 11);
    world.spawn(
        rc_host,
        ports::RC_SERVER,
        Box::new(RcServerActor::new(1, vec![], SimDuration::from_millis(200))),
    );
    for (i, &h) in worker_hosts.iter().enumerate() {
        let cfg = DaemonConfig::new(format!("w{i}"), vec![rc_ep]);
        world.spawn(h, ports::DAEMON, Box::new(DaemonActor::new(cfg, registry.clone())));
    }
    let mut rm_cfg = RmConfig::new(vec![rc_ep]);
    rm_cfg.trust = trust;
    let rm_ep = Endpoint::new(rm_host, ports::RESOURCE_MANAGER);
    world.spawn(rm_host, ports::RESOURCE_MANAGER, Box::new(RmActor::new(rm_cfg)));
    (world, rm_ep, client)
}

#[test]
fn active_allocation_spawns_tasks() {
    let (mut world, rm_ep, client) = build(4, TrustStore::new());
    let log = Arc::new(Mutex::new(Vec::new()));
    let driver = Driver {
        script: vec![(
            SimDuration::from_secs(3), // give the RM time to learn hosts
            rm_ep,
            RmMsg::AllocReq {
                req_id: 1,
                spec: SpawnSpec::program("idle", Bytes::new()),
                count: 3,
                mode: AllocMode::Active,
            },
        )],
        log: log.clone(),
    };
    world.spawn(client, 40, Box::new(driver));
    world.run_for(SimDuration::from_secs(6));
    let log = log.lock().unwrap();
    let resp = log
        .iter()
        .find_map(|m| match m {
            RmMsg::AllocResp { req_id: 1, ok, allocations, error } => {
                Some((*ok, allocations.clone(), error.clone()))
            }
            _ => None,
        })
        .expect("alloc response");
    assert!(resp.0, "allocation failed: {}", resp.2);
    assert_eq!(resp.1.len(), 3);
    // Tasks actually run.
    for a in &resp.1 {
        assert!(world.is_bound(a.task), "task {a:?} must be alive");
        assert!(a.proc_key != 0);
    }
    // Spread over distinct hosts.
    let mut hosts: Vec<&str> = resp.1.iter().map(|a| a.hostname.as_str()).collect();
    hosts.sort_unstable();
    hosts.dedup();
    assert_eq!(hosts.len(), 3);
}

#[test]
fn passive_allocation_returns_reservations() {
    let (mut world, rm_ep, client) = build(2, TrustStore::new());
    let log = Arc::new(Mutex::new(Vec::new()));
    let driver = Driver {
        script: vec![(
            SimDuration::from_secs(3),
            rm_ep,
            RmMsg::AllocReq {
                req_id: 2,
                spec: SpawnSpec::program("idle", Bytes::new()),
                count: 2,
                mode: AllocMode::Passive,
            },
        )],
        log: log.clone(),
    };
    world.spawn(client, 40, Box::new(driver));
    world.run_for(SimDuration::from_secs(5));
    let log = log.lock().unwrap();
    let resp = log
        .iter()
        .find_map(|m| match m {
            RmMsg::AllocResp { req_id: 2, ok, allocations, .. } => Some((*ok, allocations.clone())),
            _ => None,
        })
        .expect("alloc response");
    assert!(resp.0);
    assert_eq!(resp.1.len(), 2);
    for a in &resp.1 {
        assert_eq!(a.proc_key, 0, "passive mode must not spawn");
        assert_eq!(a.daemon.port, ports::DAEMON);
    }
}

#[test]
fn overcommit_rejected() {
    let (mut world, rm_ep, client) = build(2, TrustStore::new());
    let log = Arc::new(Mutex::new(Vec::new()));
    let driver = Driver {
        script: vec![(
            SimDuration::from_secs(3),
            rm_ep,
            RmMsg::AllocReq {
                req_id: 3,
                spec: SpawnSpec::program("idle", Bytes::new()),
                count: 10,
                mode: AllocMode::Active,
            },
        )],
        log: log.clone(),
    };
    world.spawn(client, 40, Box::new(driver));
    world.run_for(SimDuration::from_secs(5));
    let log = log.lock().unwrap();
    assert!(log.iter().any(|m| matches!(m, RmMsg::AllocResp { req_id: 3, ok: false, .. })));
}

#[test]
fn dead_worker_worked_around() {
    let (mut world, rm_ep, client) = build(3, TrustStore::new());
    let log = Arc::new(Mutex::new(Vec::new()));
    // Kill the least-loaded (first-ranked) worker before the request:
    // the RM will pick it first, time out, and retry on another host.
    let w0 = world.topology().host_by_name("w0").unwrap();
    world.schedule_fn(snipe_util::time::SimTime::ZERO + SimDuration::from_millis(2500), move |w| {
        w.host_down(w0)
    });
    let driver = Driver {
        script: vec![(
            SimDuration::from_secs(3),
            rm_ep,
            RmMsg::AllocReq {
                req_id: 4,
                spec: SpawnSpec::program("idle", Bytes::new()),
                count: 1,
                mode: AllocMode::Active,
            },
        )],
        log: log.clone(),
    };
    world.spawn(client, 40, Box::new(driver));
    world.run_for(SimDuration::from_secs(8));
    let log = log.lock().unwrap();
    let resp = log
        .iter()
        .find_map(|m| match m {
            RmMsg::AllocResp { req_id: 4, ok, allocations, .. } => Some((*ok, allocations.clone())),
            _ => None,
        })
        .expect("alloc response");
    assert!(resp.0, "RM must retry around the dead host: {log:?}");
    assert_ne!(resp.1[0].hostname, "w0");
}

#[test]
fn dual_certificate_authorization_flow() {
    // Build trust: the RM trusts `user_ca` for users and `host_ca` for
    // hosts (§4: the RM is also conveniently a CA, but here they are
    // separate parties to exercise the general shape).
    let mut rng = Xoshiro256::seed_from_u64(99);
    let user_ca = KeyPair::generate_default(&mut rng);
    let host_ca = KeyPair::generate_default(&mut rng);
    let alice = KeyPair::generate_default(&mut rng);
    let hostkey = KeyPair::generate_default(&mut rng);
    let mut trust = TrustStore::new();
    trust.trust(TrustPurpose::UserCertification, user_ca.public.clone());
    trust.trust(TrustPurpose::HostCertification, host_ca.public.clone());

    let user_cert = Certificate::issue(
        &mut rng,
        &user_ca,
        "urn:snipe:user:alice",
        alice.public.clone(),
        vec![CertClaim { name: "resources".into(), value: "w0,w1".into() }],
    );
    let host_cert =
        Certificate::issue(&mut rng, &host_ca, "snipe://client/", hostkey.public.clone(), vec![]);
    // A forged user certificate signed by a random key.
    let mallory_ca = KeyPair::generate_default(&mut rng);
    let forged = Certificate::issue(
        &mut rng,
        &mallory_ca,
        "urn:snipe:user:mallory",
        alice.public.clone(),
        vec![CertClaim { name: "resources".into(), value: "*".into() }],
    );

    let (mut world, rm_ep, client) = build(2, trust);
    let log = Arc::new(Mutex::new(Vec::new()));
    let driver = Driver {
        script: vec![
            (
                SimDuration::from_millis(100),
                rm_ep,
                RmMsg::AuthReq {
                    req_id: 1,
                    user_cert: user_cert.encode_to_bytes(),
                    host_cert: host_cert.encode_to_bytes(),
                    resource: "w0".into(),
                },
            ),
            (
                SimDuration::from_millis(100),
                rm_ep,
                RmMsg::AuthReq {
                    req_id: 2,
                    user_cert: forged.encode_to_bytes(),
                    host_cert: host_cert.encode_to_bytes(),
                    resource: "w0".into(),
                },
            ),
            (
                SimDuration::from_millis(100),
                rm_ep,
                RmMsg::AuthReq {
                    req_id: 3,
                    user_cert: user_cert.encode_to_bytes(),
                    host_cert: host_cert.encode_to_bytes(),
                    resource: "w9".into(), // not in alice's grant
                },
            ),
        ],
        log: log.clone(),
    };
    world.spawn(client, 40, Box::new(driver));
    world.run_for(SimDuration::from_secs(2));
    let log = log.lock().unwrap();
    let get = |id: u64| {
        log.iter()
            .find_map(|m| match m {
                RmMsg::AuthResp { req_id, ok, grant, .. } if *req_id == id => {
                    Some((*ok, grant.clone()))
                }
                _ => None,
            })
            .unwrap_or_else(|| panic!("no auth resp {id}: {log:?}"))
    };
    let (ok1, grant) = get(1);
    assert!(ok1, "legitimate request must be granted");
    // The grant verifies against the RM's key and covers the host.
    let rm_key = RmActor::keypair_for_seed(0x524d).public;
    let cert = Certificate::decode_from_bytes(grant).unwrap();
    assert!(cert.verify_with(&rm_key));
    assert_eq!(cert.claim("allowed-hosts"), Some("w0"));
    assert!(!get(2).0, "forged user cert must be denied");
    assert!(!get(3).0, "out-of-grant resource must be denied");
}
