//! # snipe-util — foundation types for the SNIPE reproduction
//!
//! Small, dependency-light building blocks shared by every other crate in
//! the workspace:
//!
//! * [`time`] — the virtual clock ([`SimTime`], [`SimDuration`]) that the
//!   whole system runs on; experiments are deterministic because no
//!   component ever consults a wall clock.
//! * [`codec`] — the XDR-like wire codec. SNIPE's client library performs
//!   "data conversion (e.g. between different host architectures)" (§3.4
//!   of the paper); this module is that canonical network byte format.
//! * [`rng`] — seedable, platform-stable pseudo-random generators
//!   (SplitMix64 / Xoshiro256**) used for failure injection and workload
//!   generation.
//! * [`error`] — the common error type.
//! * [`stats`] — streaming statistics and histograms for the benchmark
//!   harness.
//! * [`metrics`] — the typed counter/gauge/histogram registry every
//!   subsystem reports through (flat storage, zero-alloc updates).
//! * [`id`] — small integer identifiers for simulation entities.

pub mod codec;
pub mod error;
pub mod id;
pub mod metrics;
pub mod rng;
pub mod stats;
pub mod time;

pub use codec::{Decoder, Encoder, WireDecode, WireEncode};
pub use error::{SnipeError, SnipeResult};
pub use id::{HostId, LinkId, NetId, ProcId};
pub use metrics::{CounterId, GaugeId, HistoId, Log2Histogram, Registry};
pub use rng::{SplitMix64, Xoshiro256};
pub use time::{SimDuration, SimTime};
