//! The common error type used across the SNIPE workspace.

use std::fmt;

/// Result alias used throughout the workspace.
pub type SnipeResult<T> = Result<T, SnipeError>;

/// Errors surfaced by SNIPE components.
///
/// The variants mirror the failure classes the paper cares about:
/// unreachable/unknown names, authentication failures, quota and
/// permission violations in playgrounds, and malformed wire data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnipeError {
    /// A URI / name could not be resolved by any reachable RC server.
    NameNotFound(String),
    /// No route / all replicas or links unreachable.
    Unreachable(String),
    /// A peer, server or host is down.
    Unavailable(String),
    /// Cryptographic verification failed (bad signature, bad MAC,
    /// untrusted certificate chain).
    AuthenticationFailed(String),
    /// The caller holds no credential granting the operation.
    PermissionDenied(String),
    /// A playground resource quota (fuel, memory, messages) was exceeded.
    QuotaExceeded(String),
    /// Malformed or truncated wire data.
    Codec(String),
    /// Protocol violation (unexpected message for connection state, ...).
    Protocol(String),
    /// The operation timed out in simulated time.
    Timeout(String),
    /// Invalid argument or configuration.
    Invalid(String),
    /// The target exists but is in the wrong state (e.g. migrating,
    /// exited, already registered).
    WrongState(String),
}

impl SnipeError {
    /// Short machine-readable tag for logs and counters.
    pub fn kind(&self) -> &'static str {
        match self {
            SnipeError::NameNotFound(_) => "name-not-found",
            SnipeError::Unreachable(_) => "unreachable",
            SnipeError::Unavailable(_) => "unavailable",
            SnipeError::AuthenticationFailed(_) => "auth-failed",
            SnipeError::PermissionDenied(_) => "permission-denied",
            SnipeError::QuotaExceeded(_) => "quota-exceeded",
            SnipeError::Codec(_) => "codec",
            SnipeError::Protocol(_) => "protocol",
            SnipeError::Timeout(_) => "timeout",
            SnipeError::Invalid(_) => "invalid",
            SnipeError::WrongState(_) => "wrong-state",
        }
    }
}

impl fmt::Display for SnipeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (tag, msg) = match self {
            SnipeError::NameNotFound(m) => ("name not found", m),
            SnipeError::Unreachable(m) => ("unreachable", m),
            SnipeError::Unavailable(m) => ("unavailable", m),
            SnipeError::AuthenticationFailed(m) => ("authentication failed", m),
            SnipeError::PermissionDenied(m) => ("permission denied", m),
            SnipeError::QuotaExceeded(m) => ("quota exceeded", m),
            SnipeError::Codec(m) => ("codec error", m),
            SnipeError::Protocol(m) => ("protocol error", m),
            SnipeError::Timeout(m) => ("timeout", m),
            SnipeError::Invalid(m) => ("invalid", m),
            SnipeError::WrongState(m) => ("wrong state", m),
        };
        write!(f, "{tag}: {msg}")
    }
}

impl std::error::Error for SnipeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_kind() {
        let e = SnipeError::NameNotFound("urn:snipe:x".into());
        assert_eq!(e.kind(), "name-not-found");
        assert_eq!(format!("{e}"), "name not found: urn:snipe:x");
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SnipeError::Timeout("t".into()));
    }
}
