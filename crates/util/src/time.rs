//! Virtual time.
//!
//! Every SNIPE component in this reproduction is scheduled against a
//! discrete-event clock rather than the OS clock, so a whole "year" of
//! testbed operation (experiment E3) runs in milliseconds and every run
//! is reproducible from its seed.
//!
//! [`SimTime`] is an absolute instant in nanoseconds since the start of
//! the simulation; [`SimDuration`] is a span between instants. Both are
//! thin wrappers over `u64`/`i64`-free arithmetic: durations are unsigned
//! and saturating where sensible, and overflow panics in debug builds.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An absolute instant on the simulation clock, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The beginning of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as an "infinitely far"
    /// timer deadline).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: earlier instant is in the future"),
        )
    }

    /// The duration since `earlier`, or zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Maximum representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds (rounds to nearest nanosecond).
    ///
    /// # Panics
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Construct from whole hours.
    #[inline]
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600_000_000_000)
    }

    /// Construct from whole days.
    #[inline]
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d * 86_400_000_000_000)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Span as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Span as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Span as fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Checked multiplication by an integer factor.
    #[inline]
    pub fn checked_mul(self, rhs: u64) -> Option<SimDuration> {
        self.0.checked_mul(rhs).map(SimDuration)
    }

    /// Multiply by a non-negative float factor (rounds to nanoseconds).
    pub fn mul_f64(self, f: f64) -> SimDuration {
        assert!(f.is_finite() && f >= 0.0, "invalid factor: {f}");
        SimDuration((self.0 as f64 * f).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_millis(1500), SimDuration::from_micros(1_500_000));
        assert_eq!(SimDuration::from_hours(2), SimDuration::from_secs(7200));
        assert_eq!(SimDuration::from_days(1), SimDuration::from_hours(24));
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(5);
        assert_eq!(t.as_nanos(), 5_000_000);
        assert_eq!(t.since(SimTime::ZERO), SimDuration::from_millis(5));
        assert_eq!(SimTime::ZERO.saturating_since(t), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "in the future")]
    fn since_panics_when_reversed() {
        let t = SimTime::from_nanos(10);
        let _ = SimTime::ZERO.since(t);
    }

    #[test]
    fn float_round_trip() {
        let d = SimDuration::from_secs_f64(0.25);
        assert_eq!(d, SimDuration::from_millis(250));
        assert!((d.as_secs_f64() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mul_div() {
        let d = SimDuration::from_micros(10) * 3;
        assert_eq!(d, SimDuration::from_micros(30));
        assert_eq!(d / 3, SimDuration::from_micros(10));
        assert_eq!(SimDuration::from_secs(1).mul_f64(0.5), SimDuration::from_millis(500));
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert_eq!(format!("{}", SimDuration::from_millis(1)), "1.000ms");
        assert_eq!(format!("{}", SimDuration::from_nanos(5)), "5ns");
    }
}
