//! Seedable, platform-stable pseudo-random number generators.
//!
//! Failure injection, workload generation and router-election jitter all
//! need randomness, but experiments must replay bit-for-bit from a seed
//! on any platform. We therefore implement SplitMix64 (for seeding) and
//! Xoshiro256** (as the workhorse generator) from their published
//! reference algorithms instead of depending on `rand`'s unspecified
//! `StdRng` algorithm. `rand` remains a dev/bench dependency only.

/// SplitMix64: a tiny, fast generator used to expand a 64-bit seed into
/// the 256-bit state Xoshiro needs (as recommended by Vigna).
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Xoshiro256**: the workspace's deterministic RNG.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seed via SplitMix64 expansion, per the reference implementation.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Xoshiro256 { s }
    }

    /// Derive an independent child generator (for giving each component
    /// its own stream while keeping the whole world seeded by one value).
    pub fn fork(&mut self) -> Xoshiro256 {
        Xoshiro256::seed_from_u64(self.next_u64())
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, bound)` via Lemire's method. `bound` must be > 0.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Widening multiply rejection sampling (unbiased).
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform in the inclusive integer range `[lo, hi]`.
    pub fn gen_range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.gen_range(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Exponentially distributed value with the given mean.
    ///
    /// Used for failure inter-arrival and repair times in the
    /// availability experiments (E3/E8).
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "mean must be positive");
        // Inverse CDF; 1-u avoids ln(0).
        -mean * (1.0 - self.gen_f64()).ln()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Pick a uniformly random element, or `None` if empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.gen_range(xs.len() as u64) as usize])
        }
    }

    /// Fill a byte buffer with random data.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&b[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the published algorithm.
        let mut sm = SplitMix64::new(1234567);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        // Determinism: same seed, same stream.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), a);
        assert_eq!(sm2.next_u64(), b);
    }

    #[test]
    fn xoshiro_is_deterministic_and_forkable() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut fa = a.fork();
        let mut fb = b.fork();
        assert_eq!(fa.next_u64(), fb.next_u64());
    }

    #[test]
    fn gen_range_is_in_bounds() {
        let mut r = Xoshiro256::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(13);
            assert!(v < 13);
            let w = r.gen_range_inclusive(5, 9);
            assert!((5..=9).contains(&w));
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = Xoshiro256::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn gen_exp_has_roughly_right_mean() {
        let mut r = Xoshiro256::seed_from_u64(11);
        let mut sum = 0.0;
        for _ in 0..20_000 {
            sum += r.gen_exp(3.0);
        }
        let mean = sum / 20_000.0;
        assert!((mean - 3.0).abs() < 0.15, "mean {mean} too far from 3.0");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = Xoshiro256::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted (astronomically unlikely)");
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut r = Xoshiro256::seed_from_u64(1);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn choose_empty_and_nonempty() {
        let mut r = Xoshiro256::seed_from_u64(3);
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
        assert!(r.choose(&[1, 2, 3]).is_some());
    }
}
