//! XDR-like canonical wire codec.
//!
//! SNIPE's client library performs "data conversion (e.g. between
//! different host architectures)" (paper §3.4). This module is that
//! canonical format: all multi-byte integers are big-endian (network
//! order), lengths are explicit `u32` prefixes, and every composite type
//! implements [`WireEncode`]/[`WireDecode`] so the same bytes decode on
//! any host. It doubles as the checkpoint format for process migration.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::{SnipeError, SnipeResult};

/// Maximum length accepted for a single variable-length field (strings,
/// byte blobs, vectors). Guards against corrupt length prefixes causing
/// multi-gigabyte allocations.
pub const MAX_FIELD_LEN: usize = 64 << 20; // 64 MiB

/// Streaming encoder over a growable buffer.
pub struct Encoder {
    buf: BytesMut,
}

impl Encoder {
    /// Fresh empty encoder.
    pub fn new() -> Self {
        Encoder { buf: BytesMut::new() }
    }

    /// Encoder with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Encoder { buf: BytesMut::with_capacity(cap) }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finish, yielding the encoded bytes.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    /// Write a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Write a boolean as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.put_u8(v as u8);
    }

    /// Write a big-endian u16.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.put_u16(v);
    }

    /// Write a big-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32(v);
    }

    /// Write a big-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64(v);
    }

    /// Write a big-endian i64.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.put_i64(v);
    }

    /// Write an IEEE-754 f64 in network order.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_f64(v);
    }

    /// Write a length-prefixed byte blob.
    pub fn put_bytes(&mut self, v: &[u8]) {
        assert!(v.len() <= MAX_FIELD_LEN, "field too large to encode");
        self.buf.put_u32(v.len() as u32);
        self.buf.put_slice(v);
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Write raw bytes with no length prefix (caller manages framing).
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.put_slice(v);
    }
}

impl Default for Encoder {
    fn default() -> Self {
        Self::new()
    }
}

/// Streaming decoder over a byte slice.
pub struct Decoder {
    buf: Bytes,
}

impl Decoder {
    /// Decode from owned bytes.
    pub fn new(buf: Bytes) -> Self {
        Decoder { buf }
    }

    /// Decode from a slice (copies).
    pub fn from_slice(buf: &[u8]) -> Self {
        Decoder { buf: Bytes::copy_from_slice(buf) }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }

    fn need(&self, n: usize, what: &str) -> SnipeResult<()> {
        if self.buf.remaining() < n {
            return Err(SnipeError::Codec(format!(
                "truncated input: need {n} bytes for {what}, have {}",
                self.buf.remaining()
            )));
        }
        Ok(())
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> SnipeResult<u8> {
        self.need(1, "u8")?;
        Ok(self.buf.get_u8())
    }

    /// Read a boolean; any nonzero byte other than 1 is rejected.
    pub fn get_bool(&mut self) -> SnipeResult<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnipeError::Codec(format!("invalid bool byte {b}"))),
        }
    }

    /// Read a big-endian u16.
    pub fn get_u16(&mut self) -> SnipeResult<u16> {
        self.need(2, "u16")?;
        Ok(self.buf.get_u16())
    }

    /// Read a big-endian u32.
    pub fn get_u32(&mut self) -> SnipeResult<u32> {
        self.need(4, "u32")?;
        Ok(self.buf.get_u32())
    }

    /// Read a big-endian u64.
    pub fn get_u64(&mut self) -> SnipeResult<u64> {
        self.need(8, "u64")?;
        Ok(self.buf.get_u64())
    }

    /// Read a big-endian i64.
    pub fn get_i64(&mut self) -> SnipeResult<i64> {
        self.need(8, "i64")?;
        Ok(self.buf.get_i64())
    }

    /// Read an IEEE-754 f64.
    pub fn get_f64(&mut self) -> SnipeResult<f64> {
        self.need(8, "f64")?;
        Ok(self.buf.get_f64())
    }

    /// Read a length-prefixed byte blob.
    pub fn get_bytes(&mut self) -> SnipeResult<Bytes> {
        let len = self.get_u32()? as usize;
        if len > MAX_FIELD_LEN {
            return Err(SnipeError::Codec(format!("field length {len} exceeds limit")));
        }
        self.need(len, "bytes body")?;
        Ok(self.buf.split_to(len))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> SnipeResult<String> {
        let b = self.get_bytes()?;
        String::from_utf8(b.to_vec())
            .map_err(|e| SnipeError::Codec(format!("invalid utf-8 string: {e}")))
    }

    /// Read `n` raw bytes (no length prefix).
    pub fn get_raw(&mut self, n: usize) -> SnipeResult<Bytes> {
        self.need(n, "raw bytes")?;
        Ok(self.buf.split_to(n))
    }

    /// Error unless the input is fully consumed.
    pub fn expect_end(&self) -> SnipeResult<()> {
        if self.buf.has_remaining() {
            return Err(SnipeError::Codec(format!(
                "{} trailing bytes after decode",
                self.buf.remaining()
            )));
        }
        Ok(())
    }
}

/// Types encodable in the canonical wire format.
pub trait WireEncode {
    /// Append this value to the encoder.
    fn encode(&self, enc: &mut Encoder);

    /// Convenience: encode standalone into bytes.
    fn encode_to_bytes(&self) -> Bytes {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.finish()
    }
}

/// Types decodable from the canonical wire format.
pub trait WireDecode: Sized {
    /// Read one value from the decoder.
    fn decode(dec: &mut Decoder) -> SnipeResult<Self>;

    /// Convenience: decode a standalone value, requiring full consumption.
    fn decode_from_bytes(bytes: Bytes) -> SnipeResult<Self> {
        let mut dec = Decoder::new(bytes);
        let v = Self::decode(&mut dec)?;
        dec.expect_end()?;
        Ok(v)
    }
}

macro_rules! impl_wire_prim {
    ($ty:ty, $put:ident, $get:ident) => {
        impl WireEncode for $ty {
            fn encode(&self, enc: &mut Encoder) {
                enc.$put(*self);
            }
        }
        impl WireDecode for $ty {
            fn decode(dec: &mut Decoder) -> SnipeResult<Self> {
                dec.$get()
            }
        }
    };
}

impl_wire_prim!(u8, put_u8, get_u8);
impl_wire_prim!(u16, put_u16, get_u16);
impl_wire_prim!(u32, put_u32, get_u32);
impl_wire_prim!(u64, put_u64, get_u64);
impl_wire_prim!(i64, put_i64, get_i64);
impl_wire_prim!(f64, put_f64, get_f64);
impl_wire_prim!(bool, put_bool, get_bool);

impl WireEncode for String {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(self);
    }
}

impl WireDecode for String {
    fn decode(dec: &mut Decoder) -> SnipeResult<Self> {
        dec.get_str()
    }
}

impl WireEncode for Bytes {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_bytes(self);
    }
}

impl WireDecode for Bytes {
    fn decode(dec: &mut Decoder) -> SnipeResult<Self> {
        dec.get_bytes()
    }
}

impl WireEncode for Vec<u8> {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_bytes(self);
    }
}

impl WireDecode for Vec<u8> {
    fn decode(dec: &mut Decoder) -> SnipeResult<Self> {
        Ok(dec.get_bytes()?.to_vec())
    }
}

impl<T: WireEncode> WireEncode for Option<T> {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            None => enc.put_bool(false),
            Some(v) => {
                enc.put_bool(true);
                v.encode(enc);
            }
        }
    }
}

impl<T: WireDecode> WireDecode for Option<T> {
    fn decode(dec: &mut Decoder) -> SnipeResult<Self> {
        if dec.get_bool()? {
            Ok(Some(T::decode(dec)?))
        } else {
            Ok(None)
        }
    }
}

/// Vectors of encodable values (length-prefixed).
///
/// `Vec<u8>` has a dedicated blob impl above; this generic impl covers
/// other element types.
impl<T: WireEncode> WireEncode for Vec<Box<T>> {
    fn encode(&self, enc: &mut Encoder) {
        encode_seq(enc, self.iter().map(|b| b.as_ref()));
    }
}

/// Encode an arbitrary sequence with a u32 count prefix.
pub fn encode_seq<'a, T: WireEncode + 'a>(
    enc: &mut Encoder,
    items: impl ExactSizeIterator<Item = &'a T>,
) {
    enc.put_u32(items.len() as u32);
    for it in items {
        it.encode(enc);
    }
}

/// Decode a sequence previously written by [`encode_seq`].
pub fn decode_seq<T: WireDecode>(dec: &mut Decoder) -> SnipeResult<Vec<T>> {
    let n = dec.get_u32()? as usize;
    if n > MAX_FIELD_LEN {
        return Err(SnipeError::Codec(format!("sequence length {n} exceeds limit")));
    }
    let mut out = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        out.push(T::decode(dec)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trip() {
        let mut e = Encoder::new();
        e.put_u8(7);
        e.put_bool(true);
        e.put_u16(0xBEEF);
        e.put_u32(0xDEAD_BEEF);
        e.put_u64(u64::MAX - 1);
        e.put_i64(-42);
        e.put_f64(3.5);
        e.put_str("snipe");
        e.put_bytes(b"\x00\x01\x02");
        let mut d = Decoder::new(e.finish());
        assert_eq!(d.get_u8().unwrap(), 7);
        assert!(d.get_bool().unwrap());
        assert_eq!(d.get_u16().unwrap(), 0xBEEF);
        assert_eq!(d.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(d.get_i64().unwrap(), -42);
        assert_eq!(d.get_f64().unwrap(), 3.5);
        assert_eq!(d.get_str().unwrap(), "snipe");
        assert_eq!(&d.get_bytes().unwrap()[..], b"\x00\x01\x02");
        d.expect_end().unwrap();
    }

    #[test]
    fn network_byte_order_is_big_endian() {
        let mut e = Encoder::new();
        e.put_u32(0x0102_0304);
        assert_eq!(&e.finish()[..], &[1, 2, 3, 4]);
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut d = Decoder::from_slice(&[0, 0, 0, 10, 1, 2]);
        let err = d.get_bytes().unwrap_err();
        assert_eq!(err.kind(), "codec");
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut e = Encoder::new();
        e.put_u32(u32::MAX);
        let mut d = Decoder::new(e.finish());
        assert_eq!(d.get_bytes().unwrap_err().kind(), "codec");
    }

    #[test]
    fn invalid_bool_rejected() {
        let mut d = Decoder::from_slice(&[2]);
        assert_eq!(d.get_bool().unwrap_err().kind(), "codec");
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut e = Encoder::new();
        e.put_bytes(&[0xFF, 0xFE]);
        let mut d = Decoder::new(e.finish());
        assert_eq!(d.get_str().unwrap_err().kind(), "codec");
    }

    #[test]
    fn option_round_trip() {
        let some: Option<u64> = Some(9);
        let none: Option<u64> = None;
        let s = Option::<u64>::decode_from_bytes(some.encode_to_bytes()).unwrap();
        let n = Option::<u64>::decode_from_bytes(none.encode_to_bytes()).unwrap();
        assert_eq!(s, Some(9));
        assert_eq!(n, None);
    }

    #[test]
    fn seq_round_trip() {
        let mut e = Encoder::new();
        let v: Vec<u32> = vec![1, 2, 3, 4, 5];
        encode_seq(&mut e, v.iter());
        let mut d = Decoder::new(e.finish());
        let back: Vec<u32> = decode_seq(&mut d).unwrap();
        assert_eq!(back, v);
        d.expect_end().unwrap();
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut e = Encoder::new();
        e.put_u8(1);
        e.put_u8(2);
        let r = u8::decode_from_bytes(e.finish());
        assert_eq!(r.unwrap_err().kind(), "codec");
    }
}
