//! Typed metrics registry: named counters, gauges and log2-bucket
//! histograms behind flat storage.
//!
//! The registry replaces ad-hoc per-subsystem counter structs with one
//! uniform namespace (`"net.sent"`, `"wire.decode.checksum"`, …) that
//! the bench harness snapshots into `results/*.json`. The design rule
//! is the same one the engine's `NetStats` already follows: **hot-path
//! updates are plain array increments**. Registration (name → id) is
//! the only map-shaped work and happens once, at setup; after that a
//! [`CounterId`]/[`GaugeId`]/[`HistoId`] is an index into a flat `Vec`
//! and `add`/`set_max`/`observe` never allocate or hash.
//!
//! Naming convention: dot-separated lowercase path, subsystem first
//! (`net.drop.loss`, `engine.heap_pops`, `wire.rotations`). Per-entity
//! series append the entity index last (`net.bytes.3`).

/// Handle to a registered counter (flat index; `Copy`, 4 bytes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(u32);

/// Handle to a registered gauge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeId(u32);

/// Handle to a registered histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistoId(u32);

/// Number of log2 buckets: one per bit width of a `u64` sample, plus
/// bucket 0 for the sample `0`.
pub const LOG2_BUCKETS: usize = 65;

/// Power-of-two histogram: bucket `b` counts samples whose bit width
/// is `b` (i.e. `2^(b-1) <= x < 2^b`; bucket 0 holds exact zeros).
/// Fixed 65-slot array — recording is a shift, three adds, no bounds
/// surprises, no allocation ever.
#[derive(Clone, Debug)]
pub struct Log2Histogram {
    buckets: [u64; LOG2_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram { buckets: [0; LOG2_BUCKETS], count: 0, sum: 0 }
    }
}

impl Log2Histogram {
    /// Record one sample.
    #[inline]
    pub fn observe(&mut self, x: u64) {
        let b = (64 - x.leading_zeros()) as usize;
        self.buckets[b] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(x);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (wrapping).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Bucket counts (index = sample bit width).
    pub fn buckets(&self) -> &[u64; LOG2_BUCKETS] {
        &self.buckets
    }

    /// Fold another histogram into this one (bucket-wise add; `sum`
    /// wraps, matching [`Log2Histogram::observe`]). Merging per-shard
    /// latency histograms this way is exact: log2 buckets are
    /// merge-closed, so the merged quantile bounds equal those of a
    /// histogram that had observed every sample directly.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (b, c) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += c;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Nearest-bucket quantile estimate: the upper bound `2^b` of the
    /// bucket containing the `q`-th sample (0 for an empty histogram).
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64 - 1.0) * q.clamp(0.0, 1.0)) as u64;
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen > rank {
                return if b >= 64 { u64::MAX } else { 1u64 << b };
            }
        }
        u64::MAX
    }
}

/// A metrics registry: flat counter/gauge/histogram storage addressed
/// by typed ids, with names kept aside for registration and rendering.
///
/// Not global and not thread-safe by design — each owner (a `World`, a
/// `WireStack`) embeds its own registry, exactly like it embedded its
/// own stats struct before. Determinism falls out: snapshots depend
/// only on the owner's event stream.
#[derive(Default)]
pub struct Registry {
    counter_names: Vec<String>,
    counters: Vec<u64>,
    gauge_names: Vec<String>,
    gauges: Vec<u64>,
    histo_names: Vec<String>,
    histos: Vec<Log2Histogram>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Register (or look up) a counter by name. Cold path: linear name
    /// scan, possible allocation. Call at setup, keep the id.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(i) = self.counter_names.iter().position(|n| n == name) {
            return CounterId(i as u32);
        }
        self.counter_names.push(name.to_owned());
        self.counters.push(0);
        CounterId((self.counters.len() - 1) as u32)
    }

    /// Register (or look up) a gauge by name.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(i) = self.gauge_names.iter().position(|n| n == name) {
            return GaugeId(i as u32);
        }
        self.gauge_names.push(name.to_owned());
        self.gauges.push(0);
        GaugeId((self.gauges.len() - 1) as u32)
    }

    /// Register (or look up) a histogram by name.
    pub fn histogram(&mut self, name: &str) -> HistoId {
        if let Some(i) = self.histo_names.iter().position(|n| n == name) {
            return HistoId(i as u32);
        }
        self.histo_names.push(name.to_owned());
        self.histos.push(Log2Histogram::default());
        HistoId((self.histos.len() - 1) as u32)
    }

    /// Bump a counter. Hot path: one indexed add.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0 as usize] += n;
    }

    /// Bump a counter by one.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.0 as usize] += 1;
    }

    /// Overwrite a counter with an externally accumulated total. For
    /// cold snapshot-sync from a subsystem's own flat counters (the
    /// source stays the hot accumulator; the registry mirrors it at
    /// render time). Idempotent across repeated syncs.
    pub fn set_counter(&mut self, id: CounterId, v: u64) {
        self.counters[id.0 as usize] = v;
    }

    /// Set a gauge.
    #[inline]
    pub fn set(&mut self, id: GaugeId, v: u64) {
        self.gauges[id.0 as usize] = v;
    }

    /// Raise a gauge to `v` if larger (high-water marks).
    #[inline]
    pub fn set_max(&mut self, id: GaugeId, v: u64) {
        let g = &mut self.gauges[id.0 as usize];
        if v > *g {
            *g = v;
        }
    }

    /// Record a histogram sample. Hot path: no allocation.
    #[inline]
    pub fn observe(&mut self, id: HistoId, x: u64) {
        self.histos[id.0 as usize].observe(x);
    }

    /// Overwrite a histogram with an externally accumulated one. Cold
    /// snapshot-sync counterpart of [`Registry::set_counter`] for
    /// subsystems that keep the hot histogram inline (no registry
    /// indirection on the record path). Idempotent across syncs.
    pub fn set_histo(&mut self, id: HistoId, h: &Log2Histogram) {
        self.histos[id.0 as usize] = h.clone();
    }

    /// Current counter value.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0 as usize]
    }

    /// Current gauge value.
    pub fn gauge_value(&self, id: GaugeId) -> u64 {
        self.gauges[id.0 as usize]
    }

    /// Histogram by id.
    pub fn histo(&self, id: HistoId) -> &Log2Histogram {
        &self.histos[id.0 as usize]
    }

    /// Counter value by name (tests, ad-hoc inspection).
    pub fn counter_by_name(&self, name: &str) -> Option<u64> {
        self.counter_names.iter().position(|n| n == name).map(|i| self.counters[i])
    }

    /// Sum of every counter whose name starts with `prefix` — handy
    /// for "total decode drops" style assertions.
    pub fn counter_prefix_sum(&self, prefix: &str) -> u64 {
        self.counter_names
            .iter()
            .zip(&self.counters)
            .filter(|(n, _)| n.starts_with(prefix))
            .map(|(_, &v)| v)
            .sum()
    }

    /// Render the whole registry as a JSON object, names sorted, zero
    /// histogram buckets elided. Cold path (allocates freely).
    pub fn render_json(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let pad2 = " ".repeat(indent + 2);
        let mut out = String::from("{\n");

        let mut counters: Vec<(&str, u64)> = self
            .counter_names
            .iter()
            .map(String::as_str)
            .zip(self.counters.iter().copied())
            .collect();
        counters.sort_unstable_by_key(|&(n, _)| n);
        out.push_str(&format!("{pad2}\"counters\": {{"));
        for (i, (n, v)) in counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            out.push_str(&format!("{sep}\"{n}\": {v}"));
        }
        out.push_str("},\n");

        let mut gauges: Vec<(&str, u64)> =
            self.gauge_names.iter().map(String::as_str).zip(self.gauges.iter().copied()).collect();
        gauges.sort_unstable_by_key(|&(n, _)| n);
        out.push_str(&format!("{pad2}\"gauges\": {{"));
        for (i, (n, v)) in gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            out.push_str(&format!("{sep}\"{n}\": {v}"));
        }
        out.push_str("},\n");

        let mut histos: Vec<(&str, &Log2Histogram)> =
            self.histo_names.iter().map(String::as_str).zip(self.histos.iter()).collect();
        histos.sort_unstable_by_key(|&(n, _)| n);
        out.push_str(&format!("{pad2}\"histograms\": {{"));
        for (i, (n, h)) in histos.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            out.push_str(&format!(
                "{sep}\"{n}\": {{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p99\": {}, \"buckets\": [",
                h.count(),
                h.sum(),
                h.quantile_bound(0.50),
                h.quantile_bound(0.99),
            ));
            let mut first = true;
            for (b, &c) in h.buckets().iter().enumerate() {
                if c > 0 {
                    if !first {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("[{b}, {c}]"));
                    first = false;
                }
            }
            out.push_str("]}");
        }
        out.push_str("}\n");
        out.push_str(&format!("{pad}}}"));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent_and_ids_are_stable() {
        let mut r = Registry::new();
        let a = r.counter("net.sent");
        let b = r.counter("net.drop.loss");
        assert_ne!(a, b);
        assert_eq!(r.counter("net.sent"), a);
        r.add(a, 3);
        r.inc(a);
        assert_eq!(r.counter_value(a), 4);
        assert_eq!(r.counter_by_name("net.sent"), Some(4));
        assert_eq!(r.counter_by_name("nope"), None);
        assert_eq!(r.counter_prefix_sum("net."), 4);
    }

    #[test]
    fn gauge_set_max_is_a_high_water_mark() {
        let mut r = Registry::new();
        let g = r.gauge("engine.peak_depth");
        r.set_max(g, 10);
        r.set_max(g, 4);
        assert_eq!(r.gauge_value(g), 10);
        r.set(g, 2);
        assert_eq!(r.gauge_value(g), 2);
    }

    #[test]
    fn log2_buckets_land_on_bit_width() {
        let mut h = Log2Histogram::default();
        for x in [0u64, 1, 2, 3, 4, 1024, u64::MAX] {
            h.observe(x);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.buckets()[0], 1); // 0
        assert_eq!(h.buckets()[1], 1); // 1
        assert_eq!(h.buckets()[2], 2); // 2, 3
        assert_eq!(h.buckets()[3], 1); // 4
        assert_eq!(h.buckets()[11], 1); // 1024
        assert_eq!(h.buckets()[64], 1); // u64::MAX
    }

    #[test]
    fn quantile_bound_tracks_the_mass() {
        let mut h = Log2Histogram::default();
        for _ in 0..99 {
            h.observe(100); // bucket 7, bound 128
        }
        h.observe(1 << 40);
        assert_eq!(h.quantile_bound(0.5), 128);
        assert_eq!(h.quantile_bound(1.0), 1 << 41);
        assert_eq!(Log2Histogram::default().quantile_bound(0.5), 0);
    }

    #[test]
    fn histogram_merge_equals_direct_observation() {
        let mut parts = [Log2Histogram::default(), Log2Histogram::default()];
        let mut whole = Log2Histogram::default();
        for (i, x) in [1u64, 100, 1 << 20, 0, u64::MAX, 37].iter().enumerate() {
            parts[i % 2].observe(*x);
            whole.observe(*x);
        }
        let mut merged = Log2Histogram::default();
        merged.merge(&parts[0]);
        merged.merge(&parts[1]);
        assert_eq!(merged.count(), whole.count());
        assert_eq!(merged.sum(), whole.sum());
        assert_eq!(merged.buckets(), whole.buckets());
        assert_eq!(merged.quantile_bound(0.5), whole.quantile_bound(0.5));
    }

    #[test]
    fn render_json_is_sorted_and_parsable_shape() {
        let mut r = Registry::new();
        let b = r.counter("b.two");
        let a = r.counter("a.one");
        r.inc(b);
        r.add(a, 7);
        let g = r.gauge("g.depth");
        r.set(g, 9);
        let h = r.histogram("h.lat");
        r.observe(h, 5);
        let s = r.render_json(0);
        let ia = s.find("\"a.one\": 7").expect("a.one rendered");
        let ib = s.find("\"b.two\": 1").expect("b.two rendered");
        assert!(ia < ib, "names must render sorted:\n{s}");
        assert!(s.contains("\"g.depth\": 9"));
        assert!(s.contains("\"h.lat\""));
        assert!(s.contains("[3, 1]"), "sample 5 has bit width 3:\n{s}");
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }
}
