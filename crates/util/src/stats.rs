//! Streaming statistics and fixed-bucket histograms.
//!
//! Used by the benchmark harness to summarize experiment runs (mean,
//! stddev, percentiles) without storing every sample, and by tests to
//! check distributional properties of the failure injectors.

/// Welford online mean/variance accumulator plus min/max.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Self {
        Summary { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Add one sample.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (0 with fewer than two samples).
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Smallest sample (NaN if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest sample (NaN if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merge another summary into this one (parallel reduction).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exact-percentile reservoir: stores all samples (fine for bench-scale
/// sample counts) and answers arbitrary quantiles.
#[derive(Clone, Debug, Default)]
pub struct Percentiles {
    samples: Vec<f64>,
    sorted: bool,
}

impl Percentiles {
    /// Empty reservoir.
    pub fn new() -> Self {
        Percentiles { samples: Vec::new(), sorted: true }
    }

    /// Add one sample.
    pub fn add(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank; NaN if empty.
    pub fn quantile(&mut self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.samples.is_empty() {
            return f64::NAN;
        }
        if !self.sorted {
            self.samples.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
        let idx = ((self.samples.len() as f64 - 1.0) * q).floor() as usize;
        self.samples[idx]
    }

    /// Median shorthand.
    pub fn median(&mut self) -> f64 {
        self.quantile(0.5)
    }
}

/// Fixed-width linear histogram over `[lo, hi)` with overflow buckets.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// A histogram with `n` equal buckets spanning `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(hi > lo && n > 0, "invalid histogram bounds");
        Histogram { lo, hi, buckets: vec![0; n], underflow: 0, overflow: 0 }
    }

    /// Record one sample.
    pub fn add(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.buckets.len() as f64;
            let i = ((x - self.lo) / w) as usize;
            let i = i.min(self.buckets.len() - 1);
            self.buckets[i] += 1;
        }
    }

    /// Bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Samples below `lo` / at-or-above `hi`.
    pub fn out_of_range(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// Total samples recorded, including out-of-range.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.underflow + self.overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let mut s = Summary::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            s.add(x);
        }
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.stddev() - 1.2909944487).abs() < 1e-6);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
    }

    #[test]
    fn summary_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Summary::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &x in &xs[..37] {
            a.add(x);
        }
        for &x in &xs[37..] {
            b.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.stddev() - whole.stddev()).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_is_safe() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert!(s.min().is_nan());
    }

    #[test]
    fn percentiles() {
        let mut p = Percentiles::new();
        for i in 1..=100 {
            p.add(i as f64);
        }
        assert_eq!(p.median(), 50.0);
        assert_eq!(p.quantile(0.0), 1.0);
        assert_eq!(p.quantile(1.0), 100.0);
        assert_eq!(p.quantile(0.99), 99.0);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [-1.0, 0.0, 0.5, 5.0, 9.99, 10.0, 42.0] {
            h.add(x);
        }
        assert_eq!(h.total(), 7);
        assert_eq!(h.out_of_range(), (1, 2));
        assert_eq!(h.buckets()[0], 2); // 0.0 and 0.5
        assert_eq!(h.buckets()[5], 1);
        assert_eq!(h.buckets()[9], 1);
    }
}
