//! Small integer identifiers for simulation entities.
//!
//! Global, Internet-wide names in SNIPE are URIs (see `snipe-rcds`);
//! these dense integer ids exist purely so the simulator and its tables
//! can index hosts, networks, links and processes in O(1) without string
//! hashing on the hot path.

use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index value.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Construct from a raw index.
            #[inline]
            pub const fn from_index(i: usize) -> Self {
                $name(i as u32)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Debug::fmt(self, f)
            }
        }
    };
}

define_id!(
    /// A simulated host (workstation, MPP node, PDA, ...).
    HostId,
    "h"
);
define_id!(
    /// A simulated network segment (one medium: an Ethernet, an ATM
    /// switch fabric, a WAN cloud...).
    NetId,
    "net"
);
define_id!(
    /// One host's attachment to one network (a NIC).
    LinkId,
    "if"
);

/// A process identifier, unique within one simulation world.
///
/// SNIPE itself names processes by URN; `ProcId` is the simulator-local
/// handle that the URN's metadata resolves to.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub u64);

impl ProcId {
    /// Raw value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_round_trip() {
        let h = HostId::from_index(7);
        assert_eq!(h.index(), 7);
        assert_eq!(format!("{h}"), "h7");
        assert_eq!(format!("{}", NetId(3)), "net3");
        assert_eq!(format!("{}", LinkId(1)), "if1");
        assert_eq!(format!("{}", ProcId(42)), "p42");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(HostId(1));
        s.insert(HostId(1));
        s.insert(HostId(2));
        assert_eq!(s.len(), 2);
        assert!(HostId(1) < HostId(2));
    }
}
