//! E2 shape check: the same ping-pong rank program over PVMPI and over
//! MPI Connect; SNIPE must be at least as fast (the paper: "slightly
//! higher point-to-point communication performance").

use bytes::Bytes;
use mpi_connect::{MpiApi, MpiRank, PvmpiRankActor, SnipeMpiProcess};
use pvm_baseline::{PvmMaster, PvmSlave, MASTER_PORT, SLAVE_PORT};
use snipe_core::SnipeWorldBuilder;
use snipe_daemon::registry::ProgramRegistry;
use snipe_netsim::medium::Medium;
use snipe_netsim::topology::{Endpoint, HostCfg, Topology};
use snipe_netsim::world::World;
use snipe_util::time::{SimDuration, SimTime};
use std::sync::{Arc, Mutex};

/// Ping side: sends `rounds` pings, measures completion time.
struct Pinger {
    peer: u64,
    rounds: u32,
    done_at: Arc<Mutex<Option<SimTime>>>,
    remaining: u32,
}
impl MpiRank for Pinger {
    fn on_start(&mut self, api: &mut dyn MpiApi) {
        self.remaining = self.rounds;
        api.send(self.peer, Bytes::from(vec![0u8; 64]));
    }
    fn on_recv(&mut self, api: &mut dyn MpiApi, _from: u64, _data: Bytes) {
        self.remaining -= 1;
        if self.remaining == 0 {
            *self.done_at.lock().unwrap() = Some(api.now());
        } else {
            api.send(self.peer, Bytes::from(vec![0u8; 64]));
        }
    }
}

/// Pong side: echoes.
struct Ponger;
impl MpiRank for Ponger {
    fn on_start(&mut self, _api: &mut dyn MpiApi) {}
    fn on_recv(&mut self, api: &mut dyn MpiApi, from: u64, data: Bytes) {
        api.send(from, data);
    }
}

const ROUNDS: u32 = 50;

fn run_snipe_mode() -> f64 {
    let mut w = SnipeWorldBuilder::two_site(2, 77).build();
    let done = Arc::new(Mutex::new(None));
    w.register_process("ponger", |_| Box::new(SnipeMpiProcess::new(Box::new(Ponger))));
    let (pong_key, _) = w.spawn_on("site1-host1", "ponger", Bytes::new()).unwrap();
    w.run_for(SimDuration::from_millis(100));
    let d = done.clone();
    w.register_process("pinger", move |_| {
        Box::new(SnipeMpiProcess::new(Box::new(Pinger {
            peer: pong_key,
            rounds: ROUNDS,
            done_at: d.clone(),
            remaining: 0,
        })))
    });
    w.spawn_on("site0-host1", "pinger", Bytes::new()).unwrap();
    w.run_for_secs(20);
    let t = done.lock().unwrap().expect("snipe ping-pong must complete");
    t.as_secs_f64()
}

fn run_pvmpi_mode() -> f64 {
    // Same physical layout as two_site.
    let mut topo = Topology::new();
    let s0 = topo.add_network("site0", Medium::ethernet100(), true);
    let s1 = topo.add_network("site1", Medium::ethernet100(), true);
    let mut hosts = Vec::new();
    for i in 0..2 {
        let h = topo.add_host(HostCfg::named(format!("site0-host{i}")));
        topo.attach(h, s0);
        hosts.push(h);
    }
    for i in 0..2 {
        let h = topo.add_host(HostCfg::named(format!("site1-host{i}")));
        topo.attach(h, s1);
        hosts.push(h);
    }
    let mut world = World::new(topo, 77);
    let registry = ProgramRegistry::new();
    let master_ep = Endpoint::new(hosts[0], MASTER_PORT);
    world.spawn(hosts[0], MASTER_PORT, Box::new(PvmMaster::new()));
    for &h in &hosts {
        world.spawn(h, SLAVE_PORT, Box::new(PvmSlave::new(master_ep, registry.clone())));
    }
    world.run_for(SimDuration::from_millis(200)); // enrol slaves
    let done = Arc::new(Mutex::new(None));
    // Ponger = tid 2 on site1-host1; pinger = tid 1 on site0-host1.
    let pong = PvmpiRankActor::build(2, master_ep, Box::new(Ponger));
    world.spawn(hosts[3], 300, Box::new(pong));
    let start = world.now();
    world.run_for(SimDuration::from_millis(100));
    let ping = PvmpiRankActor::build(
        1,
        master_ep,
        Box::new(Pinger { peer: 2, rounds: ROUNDS, done_at: done.clone(), remaining: 0 }),
    );
    world.spawn(hosts[1], 300, Box::new(ping));
    world.run_for(SimDuration::from_secs(20));
    let t = done.lock().unwrap().expect("pvmpi ping-pong must complete");
    t.since(start).as_secs_f64()
}

#[test]
fn snipe_mode_completes_and_beats_pvmpi() {
    let snipe = run_snipe_mode();
    let pvmpi = run_pvmpi_mode();
    // Shape: both finish; SNIPE (direct connection after one RC lookup)
    // is faster than PVMPI (two pvmd relays per message + master
    // lookups): "slightly higher point-to-point performance".
    assert!(snipe > 0.0 && pvmpi > 0.0);
    assert!(
        snipe < pvmpi,
        "MPI Connect ({snipe:.6}s) must beat PVMPI ({pvmpi:.6}s) over {ROUNDS} rounds"
    );
}
