//! PVMPI mode: ranks enrolled in PVM, daemon-routed inter-MPP traffic.

use bytes::Bytes;

use snipe_netsim::topology::Endpoint;
use snipe_util::time::{SimDuration, SimTime};

use pvm_baseline::proto::Tid;
use pvm_baseline::task::{PvmTask, PvmTaskActor, PvmTaskApi};

use crate::mpi::{MpiApi, MpiRank};

/// Adapter: exposes [`MpiApi`] over the PVM task API.
struct PvmpiApi<'a, 'b> {
    inner: &'a mut PvmTaskApi<'b>,
}

impl MpiApi for PvmpiApi<'_, '_> {
    fn now(&self) -> SimTime {
        self.inner.now()
    }
    fn my_id(&self) -> u64 {
        self.inner.my_tid() as u64
    }
    fn send(&mut self, to: u64, data: Bytes) {
        self.inner.send(to as Tid, data);
    }
    fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.inner.set_timer(delay, token);
    }
}

/// A PVM task hosting an MPI rank.
struct PvmpiTask {
    rank: Box<dyn MpiRank>,
}

impl PvmTask for PvmpiTask {
    fn on_start(&mut self, api: &mut PvmTaskApi<'_>) {
        let mut wrapped = PvmpiApi { inner: api };
        self.rank.on_start(&mut wrapped);
    }
    fn on_message(&mut self, api: &mut PvmTaskApi<'_>, from: Tid, msg: Bytes) {
        let mut wrapped = PvmpiApi { inner: api };
        self.rank.on_recv(&mut wrapped, from as u64, msg);
    }
    fn on_timer(&mut self, api: &mut PvmTaskApi<'_>, token: u64) {
        let mut wrapped = PvmpiApi { inner: api };
        self.rank.on_timer(&mut wrapped, token);
    }
}

/// Build the actor for a PVMPI-mode rank: enrolled in the virtual
/// machine at `master`, with all data routed through the pvmds — the
/// path whose maintenance burden and overhead §6.1 describes.
pub struct PvmpiRankActor;

impl PvmpiRankActor {
    /// Construct the rank actor.
    pub fn build(tid: Tid, master: Endpoint, rank: Box<dyn MpiRank>) -> PvmTaskActor {
        PvmTaskActor::new(tid, master, Box::new(PvmpiTask { rank })).with_daemon_routing()
    }
}
