//! # mpi-connect — the paper's §6.1 middleware case study
//!
//! PVMPI let "different vendor implementations of MPI-1.1 inter-operate
//! almost transparently", bridging ranks on different MPPs through PVM.
//! Because many MPPs could not run a pvmd next to a batch job, "PVMPI
//! was modified into MPI Connect, a new system based upon PVMPI that
//! used SNIPE for name resolution and across host communication instead
//! of utilizing PVM. This system proved easier to maintain (no virtual
//! machine to disappear) and also offered a slightly higher
//! point-to-point communication performance."
//!
//! This crate reproduces both systems over the same mini-MPI:
//!
//! * an [`MpiRank`] application trait with a transport-neutral
//!   [`MpiApi`];
//! * [`pvmpi::PvmpiRankActor`] — ranks enrolled in a PVM virtual
//!   machine, inter-MPP messages routed task → pvmd → pvmd → task;
//! * [`snipemode::SnipeMpiProcess`] — ranks as SNIPE processes,
//!   resolved once through RC metadata and then connected directly
//!   over SRUDP.
//!
//! Experiment E2 runs identical ping-pong and bandwidth workloads over
//! both and compares.

pub mod mpi;
pub mod pvmpi;
pub mod snipemode;

pub use mpi::{MpiApi, MpiRank};
pub use pvmpi::PvmpiRankActor;
pub use snipemode::SnipeMpiProcess;
