//! The transport-neutral mini-MPI application model.

use bytes::Bytes;

use snipe_util::time::{SimDuration, SimTime};

/// The API ranks program against; implemented by both the PVMPI and the
/// MPI Connect adapters. Peers are named by transport-level ids (PVM
/// tids or SNIPE process keys) distributed out of band, like the
/// rank-to-id tables both middlewares maintained.
pub trait MpiApi {
    /// Current simulated time.
    fn now(&self) -> SimTime;
    /// This rank's transport id.
    fn my_id(&self) -> u64;
    /// Reliable message to a peer rank (intra- or inter-MPP).
    fn send(&mut self, to: u64, data: Bytes);
    /// Arm a timer.
    fn set_timer(&mut self, delay: SimDuration, token: u64);
}

/// An MPI rank program.
pub trait MpiRank: Send {
    /// Rank started.
    fn on_start(&mut self, api: &mut dyn MpiApi);
    /// Message received.
    fn on_recv(&mut self, api: &mut dyn MpiApi, from: u64, data: Bytes) {
        let _ = (api, from, data);
    }
    /// Timer fired.
    fn on_timer(&mut self, api: &mut dyn MpiApi, token: u64) {
        let _ = (api, token);
    }
}
