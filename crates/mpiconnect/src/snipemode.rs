//! MPI Connect mode: ranks as SNIPE processes.
//!
//! "MPI Connect ... used SNIPE for name resolution and across host
//! communication" (§6.1): a rank resolves its peer's location once
//! through RC metadata and then talks directly over SRUDP — no pvmd in
//! the path, no virtual machine to disappear.

use bytes::Bytes;

use snipe_core::{ProcRef, SnipeApi, SnipeProcess};
use snipe_util::time::{SimDuration, SimTime};

use crate::mpi::{MpiApi, MpiRank};

/// Adapter: exposes [`MpiApi`] over the SNIPE client library.
struct SnipeApiAdapter<'a, 'b, 'c> {
    inner: &'a mut SnipeApi<'b, 'c>,
}

impl MpiApi for SnipeApiAdapter<'_, '_, '_> {
    fn now(&self) -> SimTime {
        self.inner.now()
    }
    fn my_id(&self) -> u64 {
        self.inner.my_key()
    }
    fn send(&mut self, to: u64, data: Bytes) {
        self.inner.send(to, data);
    }
    fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.inner.set_timer(delay, token);
    }
}

/// A SNIPE process hosting an MPI rank.
pub struct SnipeMpiProcess {
    rank: Box<dyn MpiRank>,
}

impl SnipeMpiProcess {
    /// Wrap a rank.
    pub fn new(rank: Box<dyn MpiRank>) -> SnipeMpiProcess {
        SnipeMpiProcess { rank }
    }
}

impl SnipeProcess for SnipeMpiProcess {
    fn on_start(&mut self, api: &mut SnipeApi<'_, '_>) {
        let mut wrapped = SnipeApiAdapter { inner: api };
        self.rank.on_start(&mut wrapped);
    }
    fn on_message(&mut self, api: &mut SnipeApi<'_, '_>, from: ProcRef, msg: Bytes) {
        let mut wrapped = SnipeApiAdapter { inner: api };
        self.rank.on_recv(&mut wrapped, from.key, msg);
    }
    fn on_timer(&mut self, api: &mut SnipeApi<'_, '_>, token: u64) {
        let mut wrapped = SnipeApiAdapter { inner: api };
        self.rank.on_timer(&mut wrapped, token);
    }
}
