//! # snipe-crypto — the SNIPE security substrate
//!
//! Implements the paper's §4 security model:
//!
//! * every principal has a public key stored as an attribute of its RC
//!   metadata; a **key certificate** is a signed subset of that metadata
//!   ([`cert`]),
//! * resources are authenticated with **cryptographic hash functions**
//!   ([`mod@sha256`]) signed by providers ([`sign`]),
//! * privacy uses a TLS-substitute **secure channel** with hijack
//!   detection ([`channel`]).
//!
//! ## Substitution notice (simulation-grade cryptography)
//!
//! The 1997 system used MD5/SHA-1, RSA-era signatures and the TLS 1.0
//! draft. This reproduction implements the same *model* with primitives
//! written from scratch: SHA-256, HMAC, ChaCha20, Diffie–Hellman and
//! Schnorr signatures over a deterministically generated Schnorr group.
//! The implementations follow the published algorithms and pass their
//! test vectors, but they are **not constant-time and not audited** —
//! they exist so that forged signatures, tampered messages and hijacked
//! connections are *detected in experiments*, not to protect real data.

pub mod bigint;
pub mod cert;
pub mod chacha20;
pub mod channel;
pub mod group;
pub mod hmac;
pub mod sha256;
pub mod sign;

pub use cert::{Certificate, TrustPurpose, TrustStore};
pub use channel::SecureChannel;
pub use group::SchnorrGroup;
pub use sha256::{sha256, Sha256};
pub use sign::{KeyPair, PublicKey, SecretKey, Signature};
