//! Authenticated secure channels — the TLS substitute of §4.
//!
//! The paper: resource managers "maintain an authenticated connection
//! with each of \[their\] managed resources, which is able to detect
//! connection hijacking"; privacy was planned via TLS with certificates
//! that "may be signed RC metadata in addition to X.509v3".
//!
//! This module provides exactly that shape:
//!
//! 1. an ephemeral **Diffie–Hellman handshake** over the Schnorr group,
//!    optionally authenticated by signing the handshake transcript with
//!    each side's long-term key (certified via `cert`),
//! 2. a **record layer**: ChaCha20 encryption + HMAC-SHA256 tags with
//!    strictly increasing sequence numbers, so any injected, replayed,
//!    reordered or modified record — i.e. a hijack attempt — is
//!    rejected.

use bytes::Bytes;

use snipe_util::codec::{Decoder, Encoder, WireDecode, WireEncode};
use snipe_util::error::{SnipeError, SnipeResult};
use snipe_util::rng::Xoshiro256;

use crate::bigint::BigUint;
use crate::chacha20::{chacha20_xor, KEY_LEN, NONCE_LEN};
use crate::group::SchnorrGroup;
use crate::hmac::{derive_key, verify_tag, HmacSha256};
use crate::sign::{KeyPair, PublicKey, Signature};

/// Which side of the handshake we are; determines key directions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// The connecting side.
    Initiator,
    /// The accepting side.
    Responder,
}

/// An ephemeral DH share `g^e mod p` plus an optional transcript
/// signature by the sender's long-term key.
#[derive(Clone, Debug)]
pub struct HandshakeMsg {
    /// The DH public share.
    pub share: PublicKey,
    /// Signature over `share` bytes by the sender's identity key.
    pub auth: Option<Signature>,
}

impl WireEncode for HandshakeMsg {
    fn encode(&self, enc: &mut Encoder) {
        self.share.encode(enc);
        self.auth.encode(enc);
    }
}

impl WireDecode for HandshakeMsg {
    fn decode(dec: &mut Decoder) -> SnipeResult<Self> {
        Ok(HandshakeMsg { share: PublicKey::decode(dec)?, auth: Option::<Signature>::decode(dec)? })
    }
}

/// An in-progress handshake holding our ephemeral secret.
pub struct Handshake {
    ephemeral: BigUint,
    msg: HandshakeMsg,
    role: Role,
}

impl Handshake {
    /// Start a handshake. If `identity` is given, the share is signed so
    /// the peer can authenticate us against our certified public key.
    pub fn start(rng: &mut Xoshiro256, role: Role, identity: Option<&KeyPair>) -> Handshake {
        let group = SchnorrGroup::default_group();
        let one = BigUint::one();
        let e = BigUint::random_below(rng, &group.q.sub(&one)).add(&one);
        let share = PublicKey::from_element(group.g.mod_exp(&e, &group.p));
        let auth = identity.map(|kp| kp.sign(rng, &share.encode_to_bytes()));
        Handshake { ephemeral: e, msg: HandshakeMsg { share, auth }, role }
    }

    /// The message to send to the peer.
    pub fn message(&self) -> &HandshakeMsg {
        &self.msg
    }

    /// Complete the handshake with the peer's message.
    ///
    /// If `expected_peer` is provided, the peer's message must carry a
    /// valid signature by that key (mutual authentication); otherwise
    /// the channel is encrypted but unauthenticated, like anonymous DH.
    pub fn complete(
        self,
        peer: &HandshakeMsg,
        expected_peer: Option<&PublicKey>,
    ) -> SnipeResult<SecureChannel> {
        let group = SchnorrGroup::default_group();
        if let Some(pk) = expected_peer {
            let sig = peer.auth.as_ref().ok_or_else(|| {
                SnipeError::AuthenticationFailed("peer did not authenticate handshake".into())
            })?;
            if !pk.verify(&peer.share.encode_to_bytes(), sig) {
                return Err(SnipeError::AuthenticationFailed(
                    "peer handshake signature invalid".into(),
                ));
            }
        }
        let peer_elem = peer.share.element();
        if peer_elem.is_zero() || peer_elem.is_one() || *peer_elem >= group.p {
            return Err(SnipeError::Protocol("degenerate DH share".into()));
        }
        let shared = peer_elem.mod_exp(&self.ephemeral, &group.p);
        Ok(SecureChannel::from_shared_secret(&shared.to_bytes_be(), self.role))
    }
}

/// Directional record-protection keys.
#[derive(Debug)]
struct DirectionKeys {
    key: [u8; KEY_LEN],
    nonce_base: [u8; NONCE_LEN],
    mac_key: [u8; 32],
    seq: u64,
}

impl DirectionKeys {
    fn derive(secret: &[u8], label: &str) -> DirectionKeys {
        let material = derive_key(secret, label, KEY_LEN + NONCE_LEN + 32);
        let mut key = [0u8; KEY_LEN];
        let mut nonce_base = [0u8; NONCE_LEN];
        let mut mac_key = [0u8; 32];
        key.copy_from_slice(&material[..KEY_LEN]);
        nonce_base.copy_from_slice(&material[KEY_LEN..KEY_LEN + NONCE_LEN]);
        mac_key.copy_from_slice(&material[KEY_LEN + NONCE_LEN..]);
        DirectionKeys { key, nonce_base, mac_key, seq: 0 }
    }

    fn nonce_for(&self, seq: u64) -> [u8; NONCE_LEN] {
        let mut n = self.nonce_base;
        let sb = seq.to_be_bytes();
        for i in 0..8 {
            n[NONCE_LEN - 8 + i] ^= sb[i];
        }
        n
    }
}

/// A sealed record: sequence number, ciphertext and MAC tag.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    /// Sender's sequence number (strictly increasing from 0).
    pub seq: u64,
    /// ChaCha20 ciphertext.
    pub ciphertext: Vec<u8>,
    /// HMAC-SHA256 over `seq ‖ ciphertext`.
    pub tag: [u8; 32],
}

impl WireEncode for Record {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.seq);
        enc.put_bytes(&self.ciphertext);
        enc.put_raw(&self.tag);
    }
}

impl WireDecode for Record {
    fn decode(dec: &mut Decoder) -> SnipeResult<Self> {
        let seq = dec.get_u64()?;
        let ciphertext = dec.get_bytes()?.to_vec();
        let raw = dec.get_raw(32)?;
        let mut tag = [0u8; 32];
        tag.copy_from_slice(&raw);
        Ok(Record { seq, ciphertext, tag })
    }
}

/// An established secure channel (one side of it).
#[derive(Debug)]
pub struct SecureChannel {
    send: DirectionKeys,
    recv: DirectionKeys,
}

impl SecureChannel {
    /// Derive directional keys from a DH shared secret.
    pub fn from_shared_secret(secret: &[u8], role: Role) -> SecureChannel {
        let (send_label, recv_label) = match role {
            Role::Initiator => ("initiator->responder", "responder->initiator"),
            Role::Responder => ("responder->initiator", "initiator->responder"),
        };
        SecureChannel {
            send: DirectionKeys::derive(secret, send_label),
            recv: DirectionKeys::derive(secret, recv_label),
        }
    }

    /// Encrypt and authenticate a message.
    pub fn seal(&mut self, plaintext: &[u8]) -> Record {
        let seq = self.send.seq;
        self.send.seq += 1;
        let mut ct = plaintext.to_vec();
        let nonce = self.send.nonce_for(seq);
        chacha20_xor(&self.send.key, &nonce, 1, &mut ct);
        let mut mac = HmacSha256::new(&self.send.mac_key);
        mac.update(&seq.to_be_bytes());
        mac.update(&ct);
        Record { seq, ciphertext: ct, tag: mac.finalize() }
    }

    /// Verify and decrypt a record. Rejects tampered tags and any
    /// sequence regression/replay (hijack detection).
    pub fn open(&mut self, record: &Record) -> SnipeResult<Bytes> {
        if record.seq < self.recv.seq {
            return Err(SnipeError::AuthenticationFailed(format!(
                "record replay/reorder: seq {} already consumed (expect >= {})",
                record.seq, self.recv.seq
            )));
        }
        let mut mac = HmacSha256::new(&self.recv.mac_key);
        mac.update(&record.seq.to_be_bytes());
        mac.update(&record.ciphertext);
        if !verify_tag(&mac.finalize(), &record.tag) {
            return Err(SnipeError::AuthenticationFailed("record MAC mismatch (hijack?)".into()));
        }
        self.recv.seq = record.seq + 1;
        let mut pt = record.ciphertext.clone();
        let nonce = self.recv.nonce_for(record.seq);
        chacha20_xor(&self.recv.key, &nonce, 1, &mut pt);
        Ok(Bytes::from(pt))
    }
}

/// Convenience: run both sides of an unauthenticated handshake locally
/// (used by tests and by the simulator's in-memory connections).
pub fn handshake_pair(rng: &mut Xoshiro256) -> (SecureChannel, SecureChannel) {
    let a = Handshake::start(rng, Role::Initiator, None);
    let b = Handshake::start(rng, Role::Responder, None);
    let am = a.message().clone();
    let bm = b.message().clone();
    let ca = a.complete(&bm, None).expect("handshake a");
    let cb = b.complete(&am, None).expect("handshake b");
    (ca, cb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_both_directions() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let (mut a, mut b) = handshake_pair(&mut rng);
        let r = a.seal(b"hello from a");
        assert_eq!(&b.open(&r).unwrap()[..], b"hello from a");
        let r2 = b.seal(b"hello from b");
        assert_eq!(&a.open(&r2).unwrap()[..], b"hello from b");
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let mut rng = Xoshiro256::seed_from_u64(2);
        let (mut a, _b) = handshake_pair(&mut rng);
        let r = a.seal(b"secret data here");
        assert_ne!(&r.ciphertext[..], b"secret data here");
    }

    #[test]
    fn tampering_detected() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let (mut a, mut b) = handshake_pair(&mut rng);
        let mut r = a.seal(b"payload");
        r.ciphertext[0] ^= 0xFF;
        assert_eq!(b.open(&r).unwrap_err().kind(), "auth-failed");
    }

    #[test]
    fn replay_detected() {
        let mut rng = Xoshiro256::seed_from_u64(4);
        let (mut a, mut b) = handshake_pair(&mut rng);
        let r = a.seal(b"once");
        b.open(&r).unwrap();
        assert_eq!(b.open(&r).unwrap_err().kind(), "auth-failed");
    }

    #[test]
    fn cross_channel_injection_detected() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        let (mut a1, _) = handshake_pair(&mut rng);
        let (_, mut b2) = handshake_pair(&mut rng);
        let r = a1.seal(b"wrong channel");
        assert!(b2.open(&r).is_err());
    }

    #[test]
    fn mutual_authentication() {
        let mut rng = Xoshiro256::seed_from_u64(6);
        let id_a = KeyPair::generate_default(&mut rng);
        let id_b = KeyPair::generate_default(&mut rng);
        let ha = Handshake::start(&mut rng, Role::Initiator, Some(&id_a));
        let hb = Handshake::start(&mut rng, Role::Responder, Some(&id_b));
        let ma = ha.message().clone();
        let mb = hb.message().clone();
        let mut ca = ha.complete(&mb, Some(&id_b.public)).unwrap();
        let mut cb = hb.complete(&ma, Some(&id_a.public)).unwrap();
        let r = ca.seal(b"authenticated");
        assert_eq!(&cb.open(&r).unwrap()[..], b"authenticated");
    }

    #[test]
    fn wrong_identity_rejected() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        let id_a = KeyPair::generate_default(&mut rng);
        let id_mallory = KeyPair::generate_default(&mut rng);
        let ha = Handshake::start(&mut rng, Role::Initiator, Some(&id_a));
        let hb = Handshake::start(&mut rng, Role::Responder, None);
        let ma = ha.message().clone();
        // Responder expected mallory, got a.
        let err = hb.complete(&ma, Some(&id_mallory.public)).unwrap_err();
        assert_eq!(err.kind(), "auth-failed");
    }

    #[test]
    fn unauthenticated_peer_rejected_when_auth_required() {
        let mut rng = Xoshiro256::seed_from_u64(8);
        let id_b = KeyPair::generate_default(&mut rng);
        let ha = Handshake::start(&mut rng, Role::Initiator, None); // anonymous
        let hb = Handshake::start(&mut rng, Role::Responder, Some(&id_b));
        let ma = ha.message().clone();
        let err = hb.complete(&ma, Some(&id_b.public)).unwrap_err();
        assert_eq!(err.kind(), "auth-failed");
    }

    #[test]
    fn record_wire_round_trip() {
        let mut rng = Xoshiro256::seed_from_u64(9);
        let (mut a, mut b) = handshake_pair(&mut rng);
        let r = a.seal(b"wire format");
        let back = Record::decode_from_bytes(r.encode_to_bytes()).unwrap();
        assert_eq!(back, r);
        assert_eq!(&b.open(&back).unwrap()[..], b"wire format");
    }

    #[test]
    fn degenerate_share_rejected() {
        let mut rng = Xoshiro256::seed_from_u64(10);
        let h = Handshake::start(&mut rng, Role::Initiator, None);
        let evil = HandshakeMsg { share: PublicKey::from_element(BigUint::one()), auth: None };
        assert_eq!(h.complete(&evil, None).unwrap_err().kind(), "protocol");
    }

    #[test]
    fn empty_message_seals() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        let (mut a, mut b) = handshake_pair(&mut rng);
        let r = a.seal(b"");
        assert_eq!(b.open(&r).unwrap().len(), 0);
    }
}
