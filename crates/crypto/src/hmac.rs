//! HMAC-SHA256 (RFC 2104) and an HKDF-style key derivation.
//!
//! HMAC authenticates secure-channel records (hijack detection, paper
//! §4) and also serves as the PRF for deriving session keys from a
//! Diffie–Hellman shared secret. The original SNIPE RC servers used "MD5
//! hashed shared secrets" (§6); HMAC-SHA256 is the modern equivalent of
//! that construction.

use crate::sha256::{Sha256, DIGEST_LEN};

const BLOCK: usize = 64;

/// One-shot HMAC-SHA256.
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> [u8; DIGEST_LEN] {
    let mut mac = HmacSha256::new(key);
    mac.update(msg);
    mac.finalize()
}

/// Incremental HMAC-SHA256.
pub struct HmacSha256 {
    inner: Sha256,
    outer_key: [u8; BLOCK],
}

impl HmacSha256 {
    /// Create with an arbitrary-length key.
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; BLOCK];
        if key.len() > BLOCK {
            let d = crate::sha256::sha256(key);
            k[..DIGEST_LEN].copy_from_slice(&d);
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK];
        let mut opad = [0u8; BLOCK];
        for i in 0..BLOCK {
            ipad[i] = k[i] ^ 0x36;
            opad[i] = k[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 { inner, outer_key: opad }
    }

    /// Absorb message bytes.
    pub fn update(&mut self, msg: &[u8]) {
        self.inner.update(msg);
    }

    /// Produce the tag.
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.outer_key);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// Constant-time-ish tag comparison (full-width XOR accumulate).
pub fn verify_tag(expected: &[u8], actual: &[u8]) -> bool {
    if expected.len() != actual.len() {
        return false;
    }
    let mut acc = 0u8;
    for (a, b) in expected.iter().zip(actual) {
        acc |= a ^ b;
    }
    acc == 0
}

/// HKDF-style expand: derive `n` bytes of key material from a secret and
/// a context label (simplified single-salt HKDF, RFC 5869 shape).
pub fn derive_key(secret: &[u8], label: &str, n: usize) -> Vec<u8> {
    let prk = hmac_sha256(b"snipe-hkdf-salt", secret);
    let mut out = Vec::with_capacity(n);
    let mut t: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while out.len() < n {
        let mut mac = HmacSha256::new(&prk);
        mac.update(&t);
        mac.update(label.as_bytes());
        mac.update(&[counter]);
        t = mac.finalize().to_vec();
        let take = (n - out.len()).min(t.len());
        out.extend_from_slice(&t[..take]);
        counter = counter.checked_add(1).expect("derive_key output too long");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::hex;

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0b; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(hex(&tag), "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
    }

    #[test]
    fn rfc4231_case2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(hex(&tag), "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
    }

    #[test]
    fn rfc4231_case3_long_key_data() {
        let key = [0xaa; 20];
        let data = [0xdd; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(hex(&tag), "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
    }

    #[test]
    fn rfc4231_case6_oversized_key() {
        let key = [0xaa; 131];
        let tag = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(hex(&tag), "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut mac = HmacSha256::new(b"key");
        mac.update(b"hello ");
        mac.update(b"world");
        assert_eq!(mac.finalize(), hmac_sha256(b"key", b"hello world"));
    }

    #[test]
    fn verify_tag_rejects_mismatch() {
        let t1 = hmac_sha256(b"k", b"a");
        let mut t2 = t1;
        t2[0] ^= 1;
        assert!(verify_tag(&t1, &t1));
        assert!(!verify_tag(&t1, &t2));
        assert!(!verify_tag(&t1, &t1[..16]));
    }

    #[test]
    fn derive_key_lengths_and_independence() {
        let a = derive_key(b"secret", "client->server", 44);
        let b = derive_key(b"secret", "server->client", 44);
        let c = derive_key(b"other", "client->server", 44);
        assert_eq!(a.len(), 44);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Deterministic.
        assert_eq!(a, derive_key(b"secret", "client->server", 44));
        // Prefix property: shorter request is a prefix of longer.
        let long = derive_key(b"secret", "client->server", 100);
        assert_eq!(&long[..44], &a[..]);
    }
}
