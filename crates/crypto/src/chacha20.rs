//! ChaCha20 stream cipher (RFC 8439), implemented from the specification.
//!
//! Provides the privacy half of the secure channel (the paper planned
//! TLS; see the substitution notice in the crate docs).

/// Key size in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce size in bytes.
pub const NONCE_LEN: usize = 12;

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

fn chacha_block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; 64] {
    let mut state = [0u32; 16];
    state[0] = 0x6170_7865;
    state[1] = 0x3320_646e;
    state[2] = 0x7962_2d32;
    state[3] = 0x6b20_6574;
    for i in 0..8 {
        state[4 + i] =
            u32::from_le_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes([
            nonce[4 * i],
            nonce[4 * i + 1],
            nonce[4 * i + 2],
            nonce[4 * i + 3],
        ]);
    }
    let mut w = state;
    for _ in 0..10 {
        quarter_round(&mut w, 0, 4, 8, 12);
        quarter_round(&mut w, 1, 5, 9, 13);
        quarter_round(&mut w, 2, 6, 10, 14);
        quarter_round(&mut w, 3, 7, 11, 15);
        quarter_round(&mut w, 0, 5, 10, 15);
        quarter_round(&mut w, 1, 6, 11, 12);
        quarter_round(&mut w, 2, 7, 8, 13);
        quarter_round(&mut w, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let v = w[i].wrapping_add(state[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&v.to_le_bytes());
    }
    out
}

/// XOR `data` in place with the ChaCha20 keystream starting at block
/// `initial_counter`. Encryption and decryption are the same operation.
pub fn chacha20_xor(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    initial_counter: u32,
    data: &mut [u8],
) {
    let mut counter = initial_counter;
    for chunk in data.chunks_mut(64) {
        let ks = chacha_block(key, counter, nonce);
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
        counter = counter.wrapping_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::hex;

    // RFC 8439 §2.3.2 block function test vector.
    #[test]
    fn rfc8439_block_vector() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let block = chacha_block(&key, 1, &nonce);
        assert_eq!(hex(&block[..16]), "10f1e7e4d13b5915500fdd1fa32071c4");
        assert_eq!(hex(&block[48..]), "b5129cd1de164eb9cbd083e8a2503c4e");
    }

    // RFC 8439 §2.4.2 encryption test vector.
    #[test]
    fn rfc8439_encrypt_vector() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let mut data = *b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        chacha20_xor(&key, &nonce, 1, &mut data);
        assert_eq!(
            hex(&data[..32]),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
        );
    }

    #[test]
    fn xor_round_trips() {
        let key = [7u8; 32];
        let nonce = [3u8; 12];
        let plain: Vec<u8> = (0..300u32).map(|i| (i * 7 % 256) as u8).collect();
        let mut buf = plain.clone();
        chacha20_xor(&key, &nonce, 0, &mut buf);
        assert_ne!(buf, plain);
        chacha20_xor(&key, &nonce, 0, &mut buf);
        assert_eq!(buf, plain);
    }

    #[test]
    fn different_nonce_different_stream() {
        let key = [1u8; 32];
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        chacha20_xor(&key, &[0u8; 12], 0, &mut a);
        chacha20_xor(&key, &[1u8; 12], 0, &mut b);
        assert_ne!(a, b);
    }
}
